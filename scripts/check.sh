#!/usr/bin/env bash
# Tier-1 verification plus lint and observability smoke runs.
#
# Default mode:
#   1. configure + build everything (warnings are errors)
#   2. run the unit/integration test suite
#   3. run dedisys_lint over the shipped descriptors: the good ones must
#      pass, the seeded-bad one must fail
#   4. run one bench binary with --json and assert the result file parses
#      and carries latency percentile summaries (p50/p95/p99)
#
# Modes:
#   scripts/check.sh [build-dir]     default tier-1 pass (build dir: build)
#   scripts/check.sh --asan          rebuild in build-asan with
#                                    DEDISYS_SANITIZE=address;undefined and
#                                    run the test suite under ASan+UBSan
#   scripts/check.sh --tidy          clang-tidy over src/ (skipped with a
#                                    message when clang-tidy is missing)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-2}"

MODE="default"
BUILD_DIR="build"
case "${1:-}" in
  --asan) MODE="asan" ;;
  --tidy) MODE="tidy" ;;
  "") ;;
  *) BUILD_DIR="$1" ;;
esac

if [ "$MODE" = "asan" ]; then
  BUILD_DIR="build-asan"
  cmake -B "$BUILD_DIR" -S . -DDEDISYS_SANITIZE="address;undefined"
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
  echo "check.sh --asan: all green"
  exit 0
fi

if [ "$MODE" = "tidy" ]; then
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "check.sh --tidy: clang-tidy not installed, skipping"
    exit 0
  fi
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  mapfile -t SOURCES < <(find src tools -name '*.cpp' | sort)
  clang-tidy -p "$BUILD_DIR" "${SOURCES[@]}"
  echo "check.sh --tidy: all green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Constraint lint: clean descriptors must pass, the seeded-bad descriptor
# (unknown attribute + division by zero) must be rejected.
"$BUILD_DIR/tools/dedisys_lint" --classes examples/descriptors/classes.xml \
  examples/descriptors/good_flight.xml
if "$BUILD_DIR/tools/dedisys_lint" --classes examples/descriptors/classes.xml \
  examples/descriptors/bad_unknown_attr.xml > /dev/null; then
  echo "check.sh: dedisys_lint accepted the seeded-bad descriptor" >&2
  exit 1
fi

# Observability smoke: a traced bench run must export parseable JSON with
# latency percentiles.
OUT="$(mktemp /tmp/BENCH_smoke_XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT
"$BUILD_DIR/bench/bench_fig5_2_healthy_degraded" --json "$OUT" > /dev/null
"$BUILD_DIR/bench/json_validate" --require-latencies "$OUT"

echo "check.sh: all green"
