#!/usr/bin/env bash
# Tier-1 verification plus one observability smoke run.
#
#   1. configure + build everything
#   2. run the unit/integration test suite
#   3. run one bench binary with --json and assert the result file parses
#      and carries latency percentile summaries (p50/p95/p99)
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="${JOBS:-2}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Observability smoke: a traced bench run must export parseable JSON with
# latency percentiles.
OUT="$(mktemp /tmp/BENCH_smoke_XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT
"$BUILD_DIR/bench/bench_fig5_2_healthy_degraded" --json "$OUT" > /dev/null
"$BUILD_DIR/bench/json_validate" --require-latencies "$OUT"

echo "check.sh: all green"
