#!/usr/bin/env bash
# Tier-1 verification plus lint and observability smoke runs.
#
# Default mode:
#   1. configure + build everything (warnings are errors)
#   2. run the unit/integration test suite
#   3. run dedisys_lint over the shipped descriptors: the good ones must
#      pass, the seeded-bad one must fail
#   4. run one bench binary with --json and assert the result file parses
#      and carries latency percentile summaries (p50/p95/p99)
#
# Modes:
#   scripts/check.sh [build-dir]     default tier-1 pass (build dir: build);
#                                    includes the chaos smoke and the
#                                    --asan tier
#   scripts/check.sh --asan          rebuild in build-asan with
#                                    DEDISYS_SANITIZE=address;undefined and
#                                    run the test suite under ASan+UBSan
#   scripts/check.sh --chaos         chaos smoke only: 3 seeded fault
#                                    plans, each run twice; invariants must
#                                    hold and the trace timelines must be
#                                    byte-identical per seed
#   scripts/check.sh --memo          validation-memo smoke only: run the
#                                    self-asserting bench_memo_validation
#                                    (memo-on outcomes must equal memo-off,
#                                    with cache hits and lower cost)
#   scripts/check.sh --gray          gray-failure gate only: shrinker
#                                    self-test, 20 random gray plans
#                                    through the invariant harness, a
#                                    byte-identical gray timeline pair and
#                                    the committed regression corpus
#   scripts/check.sh --trace         trace gate only: dedisys_trace
#                                    self-test, the trace-driven invariant
#                                    checker cross-checked against the
#                                    chaos harness on 5 seeded gray plans
#                                    plus the regression corpus, and an
#                                    exported metrics document validated
#                                    end to end (json_validate --metrics,
#                                    --tree/--top/--check over the file)
#   scripts/check.sh --lint          constraint-lint gate only: dedisys_lint
#                                    with --werror --conflicts over
#                                    examples/descriptors/ — clean files
#                                    pass, the seeded-bad / conflicting /
#                                    tautology descriptors must fail with
#                                    the documented exit codes (1 =
#                                    diagnostics, 2 = parse failure)
#   scripts/check.sh --shard         sharded front-door gate only: the
#                                    test_shard routing/admission pins, a
#                                    cross-shard chaos soak (invariants +
#                                    byte-identical timelines) and a
#                                    saturation smoke whose --json output
#                                    must validate
#   scripts/check.sh --threads       threaded-runtime gate: rebuild in
#                                    build-tsan with DEDISYS_SANITIZE=thread
#                                    and run the threaded smoke + the
#                                    sim-vs-threaded equivalence suite
#                                    under TSan
#   scripts/check.sh --tidy          clang-tidy over src/ (skipped with a
#                                    message when clang-tidy is missing)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-2}"

MODE="default"
BUILD_DIR="build"
case "${1:-}" in
  --asan) MODE="asan" ;;
  --chaos) MODE="chaos" ;;
  --memo) MODE="memo" ;;
  --gray) MODE="gray" ;;
  --shard) MODE="shard" ;;
  --trace) MODE="trace" ;;
  --threads) MODE="threads" ;;
  --lint) MODE="lint" ;;
  --tidy) MODE="tidy" ;;
  "") ;;
  *) BUILD_DIR="$1" ;;
esac

# Chaos smoke: seeded fault plans against the random workload.  Each seed
# runs twice — the soak binary exits nonzero on any invariant violation,
# and the two trace timelines must match byte for byte (determinism).
chaos_smoke() {
  local soak="$1/bench/bench_chaos_soak"
  local a b
  a="$(mktemp /tmp/chaos_a_XXXXXX.txt)"
  b="$(mktemp /tmp/chaos_b_XXXXXX.txt)"
  for seed in 1 2 3; do
    "$soak" --seed "$seed" --ops 40 --events 8 --horizon-ms 250 \
      --timeline > "$a" 2> /dev/null
    "$soak" --seed "$seed" --ops 40 --events 8 --horizon-ms 250 \
      --timeline > "$b" 2> /dev/null
    if ! cmp -s "$a" "$b"; then
      echo "check.sh: chaos seed $seed is not deterministic" >&2
      rm -f "$a" "$b"
      exit 1
    fi
    echo "chaos smoke: seed $seed ok ($(wc -l < "$a") trace lines)"
  done
  rm -f "$a" "$b"
}

# Gray-failure gate: the shrinker must minimize a synthetic plan and the
# known legacy-views split-brain plan (<= 3 ops), 20 random gray plans
# must hold every invariant (plus determinism and memo equivalence), two
# runs of one gray seed must emit byte-identical timelines, and the
# committed regression corpus must replay clean.
gray_smoke() {
  local gray="$1/bench/bench_gray_chaos"
  "$gray" --selftest 2> /dev/null \
    || { echo "check.sh: gray shrinker self-test failed" >&2; exit 1; }
  echo "gray gate: shrinker self-test ok"
  "$gray" --plans 20 --seed 1 \
    || { echo "check.sh: gray property suite failed" >&2; exit 1; }
  echo "gray gate: 20 random gray plans ok"
  local a b
  a="$(mktemp /tmp/gray_a_XXXXXX.txt)"
  b="$(mktemp /tmp/gray_b_XXXXXX.txt)"
  "$gray" --seed 5 --timeline > "$a" 2> /dev/null
  "$gray" --seed 5 --timeline > "$b" 2> /dev/null
  if ! cmp -s "$a" "$b"; then
    echo "check.sh: gray seed 5 is not deterministic" >&2
    rm -f "$a" "$b"
    exit 1
  fi
  echo "gray gate: timelines byte-identical ($(wc -l < "$a") trace lines)"
  rm -f "$a" "$b"
  "$gray" --corpus tests/gray_corpus \
    || { echo "check.sh: gray corpus replay failed" >&2; exit 1; }
  echo "gray gate: regression corpus ok"
}

# Trace gate: the span analyzer / trace-driven invariant checker must pass
# its synthetic self-test (including the legacy split-brain end-to-end
# pin), agree with the chaos harness's state-based ground truth on 5
# seeded gray plans and on every committed regression plan, and a real
# metrics export must survive the whole offline pipeline: JSON shape
# validation plus the tree/top/check file modes.
trace_smoke() {
  local trace="$1/tools/dedisys_trace"
  local validate="$1/bench/json_validate"
  "$trace" --selftest 2> /dev/null \
    || { echo "check.sh: dedisys_trace self-test failed" >&2; exit 1; }
  echo "trace gate: analyzer/checker self-test ok"
  "$trace" --cross-check 5 --seed 1 \
    || { echo "check.sh: trace/chaos cross-check failed" >&2; exit 1; }
  echo "trace gate: 5 seeded gray plans cross-checked ok"
  "$trace" --corpus tests/gray_corpus \
    || { echo "check.sh: trace corpus cross-check failed" >&2; exit 1; }
  echo "trace gate: regression corpus cross-checked ok"
  local export_file
  export_file="$(mktemp /tmp/trace_export_XXXXXX.json)"
  "$trace" --export "$export_file" --seed 7 > /dev/null
  "$validate" --metrics "$export_file" \
    || { echo "check.sh: metrics export failed validation" >&2
         rm -f "$export_file"; exit 1; }
  "$trace" --tree "$export_file" > /dev/null \
    && "$trace" --top 3 "$export_file" > /dev/null \
    && "$trace" --check "$export_file" > /dev/null \
    || { echo "check.sh: offline trace modes failed on export" >&2
         rm -f "$export_file"; exit 1; }
  rm -f "$export_file"
  echo "trace gate: exported metrics document validated end to end"
}

# Constraint-lint gate: clean descriptors must pass even with warnings
# promoted and conflict detection on; the seeded-bad descriptors must be
# rejected with the documented exit codes — 1 for diagnostics (unknown
# attribute, conflicting pair, tautology under --werror), 2 for parse
# failures (which must not abort linting of the remaining files).
lint_gate() {
  local lint="$1/tools/dedisys_lint"
  local cls="examples/descriptors/classes.xml"
  local rc
  "$lint" --classes "$cls" --werror --conflicts \
    examples/descriptors/good_flight.xml \
    || { echo "check.sh: lint rejected the clean descriptor" >&2; exit 1; }
  rc=0; "$lint" --classes "$cls" --werror --conflicts \
    examples/descriptors/bad_unknown_attr.xml > /dev/null || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "check.sh: seeded-bad descriptor: expected exit 1, got $rc" >&2
    exit 1
  fi
  rc=0; "$lint" --classes "$cls" --conflicts \
    examples/descriptors/bad_conflict.xml > /dev/null || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "check.sh: conflicting pair: expected exit 1, got $rc" >&2
    exit 1
  fi
  rc=0; "$lint" --classes "$cls" \
    examples/descriptors/warn_tautology.xml > /dev/null || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "check.sh: tautology descriptor must pass without --werror" >&2
    exit 1
  fi
  rc=0; "$lint" --classes "$cls" --werror \
    examples/descriptors/warn_tautology.xml > /dev/null || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "check.sh: tautology descriptor must fail under --werror" >&2
    exit 1
  fi
  local junk
  junk="$(mktemp /tmp/lint_junk_XXXXXX.xml)"
  printf 'not xml at all' > "$junk"
  rc=0; "$lint" --classes "$cls" "$junk" \
    examples/descriptors/good_flight.xml > /dev/null 2>&1 || rc=$?
  rm -f "$junk"
  if [ "$rc" -ne 2 ]; then
    echo "check.sh: parse failure: expected exit 2, got $rc" >&2
    exit 1
  fi
  echo "lint gate: descriptors and exit codes ok"
}

# Shard gate: the routing/admission pins of test_shard, a cross-shard
# chaos soak (invariants must hold and two runs of one seed must emit
# byte-identical timelines), and a saturation smoke — the sweep must show
# a clean low-rate point and real shedding under overload (the binary
# self-asserts that) and its --json report must parse.
shard_smoke() {
  "$1/tests/test_shard" --gtest_brief=1 \
    || { echo "check.sh: test_shard failed" >&2; exit 1; }
  echo "shard gate: routing/admission pins ok"
  local soak="$1/bench/bench_chaos_soak"
  local a b
  a="$(mktemp /tmp/shard_chaos_a_XXXXXX.txt)"
  b="$(mktemp /tmp/shard_chaos_b_XXXXXX.txt)"
  for seed in 1 2; do
    "$soak" --seed "$seed" --nodes 4 --shards 2 --ops 40 --events 8 \
      --horizon-ms 250 --timeline > "$a" 2> /dev/null \
      || { echo "check.sh: sharded chaos seed $seed violated invariants" >&2
           rm -f "$a" "$b"; exit 1; }
    "$soak" --seed "$seed" --nodes 4 --shards 2 --ops 40 --events 8 \
      --horizon-ms 250 --timeline > "$b" 2> /dev/null
    if ! cmp -s "$a" "$b"; then
      echo "check.sh: sharded chaos seed $seed is not deterministic" >&2
      rm -f "$a" "$b"
      exit 1
    fi
    echo "shard gate: cross-shard chaos seed $seed ok"
  done
  rm -f "$a" "$b"
  local out
  out="$(mktemp /tmp/BENCH_shard_smoke_XXXXXX.json)"
  "$1/bench/bench_shard_saturation" --smoke --json "$out" > /dev/null \
    || { echo "check.sh: saturation smoke failed" >&2; rm -f "$out"; exit 1; }
  "$1/bench/json_validate" "$out" \
    || { echo "check.sh: saturation --json failed validation" >&2
         rm -f "$out"; exit 1; }
  rm -f "$out"
  echo "shard gate: saturation smoke + json ok"
}

# Memo smoke: bench_memo_validation asserts its own acceptance criteria
# (memo-on outcomes identical to memo-off, cache hits recorded, strictly
# less simulated time) and exits nonzero on any failure.
memo_smoke() {
  "$1/bench/bench_memo_validation" > /dev/null
  echo "memo smoke: memo-on/off equivalence and speedup ok"
}

if [ "$MODE" = "asan" ]; then
  BUILD_DIR="build-asan"
  cmake -B "$BUILD_DIR" -S . -DDEDISYS_SANITIZE="address;undefined"
  cmake --build "$BUILD_DIR" -j "$JOBS"
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
  echo "check.sh --asan: all green"
  exit 0
fi

if [ "$MODE" = "chaos" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_chaos_soak
  chaos_smoke "$BUILD_DIR"
  echo "check.sh --chaos: all green"
  exit 0
fi

if [ "$MODE" = "memo" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_memo_validation
  memo_smoke "$BUILD_DIR"
  echo "check.sh --memo: all green"
  exit 0
fi

if [ "$MODE" = "gray" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_gray_chaos
  gray_smoke "$BUILD_DIR"
  echo "check.sh --gray: all green"
  exit 0
fi

if [ "$MODE" = "shard" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target test_shard bench_chaos_soak bench_shard_saturation json_validate
  shard_smoke "$BUILD_DIR"
  echo "check.sh --shard: all green"
  exit 0
fi

if [ "$MODE" = "trace" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" --target dedisys_trace json_validate
  trace_smoke "$BUILD_DIR"
  echo "check.sh --trace: all green"
  exit 0
fi

if [ "$MODE" = "threads" ]; then
  BUILD_DIR="build-tsan"
  cmake -B "$BUILD_DIR" -S . -DDEDISYS_SANITIZE="thread"
  cmake --build "$BUILD_DIR" -j "$JOBS" --target test_runtime
  "$BUILD_DIR/tests/test_runtime"
  echo "check.sh --threads: all green"
  exit 0
fi

if [ "$MODE" = "lint" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
  cmake --build "$BUILD_DIR" -j "$JOBS" --target dedisys_lint
  lint_gate "$BUILD_DIR"
  echo "check.sh --lint: all green"
  exit 0
fi

if [ "$MODE" = "tidy" ]; then
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "check.sh --tidy: clang-tidy not installed, skipping"
    exit 0
  fi
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  mapfile -t SOURCES < <(find src tools -name '*.cpp' | sort)
  clang-tidy -p "$BUILD_DIR" "${SOURCES[@]}"
  echo "check.sh --tidy: all green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

# Constraint lint gate (also available standalone as --lint).
lint_gate "$BUILD_DIR"

# Observability smoke: a traced bench run must export parseable JSON with
# latency percentiles.
OUT="$(mktemp /tmp/BENCH_smoke_XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT
"$BUILD_DIR/bench/bench_fig5_2_healthy_degraded" --json "$OUT" > /dev/null
"$BUILD_DIR/bench/json_validate" --require-latencies "$OUT"

# Fault-tolerance gates: chaos smoke, the validation-memo smoke and the
# gray-failure gate on this build, then the sanitizer tiers (their own
# build dirs: TSan over the threaded-runtime suite, ASan+UBSan over the
# full test suite).
chaos_smoke "$BUILD_DIR"
memo_smoke "$BUILD_DIR"
gray_smoke "$BUILD_DIR"
trace_smoke "$BUILD_DIR"
shard_smoke "$BUILD_DIR"
"$0" --threads
"$0" --asan

echo "check.sh: all green"
