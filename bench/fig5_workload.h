// The full Section-5.1 operation suite shared by the Fig. 5.2/5.3/5.4
// benchmarks: create, setter, getter, empty, satisfied/violated
// constraints, accepted threats (good case = identical threats on one
// object; bad case = distinct threats on many objects), delete.
#pragma once

#include "bench/bench_common.h"

namespace dedisys::bench {

struct FullRates {
  double create = 0;
  double setter = 0;
  double getter = 0;
  double empty = 0;
  double satisfied = 0;
  double violated = 0;
  double threat_good = 0;  ///< accepted threats, one object (identical)
  double threat_bad = 0;   ///< accepted threats, distinct objects
  double del = 0;
};

inline FullRates measure_full(Cluster& cluster, std::size_t node,
                              std::size_t n, bool measure_threats) {
  FullRates r;
  std::vector<ObjectId> ids;
  r.create = Workload::create(cluster, node, n, ids);

  const Value payload{std::string{"x"}};
  const std::vector<ObjectId> one{ids.front()};
  r.setter = (Workload::invoke(cluster, node, n, one, "setValue", {payload}) +
              Workload::invoke(cluster, node, n, ids, "setValue", {payload})) /
             2;
  r.getter = (Workload::invoke(cluster, node, n, one, "getValue") +
              Workload::invoke(cluster, node, n, ids, "getValue")) /
             2;
  r.empty = (Workload::invoke(cluster, node, n, one, "emptyPlain") +
             Workload::invoke(cluster, node, n, ids, "emptyPlain")) /
            2;
  r.satisfied =
      (Workload::invoke(cluster, node, n, one, "emptySatisfied") +
       Workload::invoke(cluster, node, n, ids, "emptySatisfied")) /
      2;
  r.violated =
      (Workload::invoke(cluster, node, n, one, "emptyViolated") +
       Workload::invoke(cluster, node, n, ids, "emptyViolated")) /
      2;

  if (measure_threats) {
    scenarios::AcceptAllNegotiation accept_all;
    r.threat_good = Workload::invoke(cluster, node, n, one, "emptyThreat", {},
                                     &accept_all);
    r.threat_bad = Workload::invoke(cluster, node, n, ids, "emptyThreat", {},
                                    &accept_all);
  }

  r.del = Workload::destroy(cluster, node, ids);
  return r;
}

inline void print_full_rates(const std::string& label, const FullRates& r,
                             bool with_threats) {
  print_row(label,
            {r.create, r.setter, r.getter, r.empty, r.satisfied, r.violated,
             with_threats ? r.threat_good : 0.0,
             with_threats ? r.threat_bad : 0.0, r.del});
}

inline std::vector<std::string> full_rate_columns() {
  return {"configuration", "Create",  "Setter",   "Getter",
          "Empty",         "Satisf.", "Violated", "Thr(1)",
          "Thr(1000)",     "Delete"};
}

}  // namespace dedisys::bench
