// Validation memoization under an admin-revalidation workload.
//
// A single node carries a fleet of Flight entities guarded by the OCL
// ticket-constraint.  The workload alternates full revalidation sweeps
// (the administrator's enable_constraint / audit path — also the shape of
// batched reconciliation) with occasional ticket sales that each bust one
// cached entry.  The run is executed twice, memo off and memo on, and the
// binary asserts its own acceptance criteria:
//
//   * equivalence — both runs report identical violating objects per
//     sweep and identical final sold counts,
//   * speedup — the memo-on run spends strictly less simulated time and
//     records cache hits.
//
// Exit status is nonzero when either assertion fails, so check.sh --memo
// can use this binary directly as a smoke gate.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "middleware/admin.h"
#include "scenarios/flight.h"
#include "validation/memo.h"

namespace dedisys::bench {
namespace {

constexpr const char* kDescriptor = R"(<constraints>
  <constraint name="TicketConstraint" type="HARD" priority="RELAXABLE"
              minSatisfactionDegree="POSSIBLY_SATISFIED">
    <ocl>self.soldTickets &lt;= self.seats</ocl>
    <context-class>Flight</context-class>
    <affected-methods>
      <affected-method>
        <objectMethod name="sellTickets">
          <objectClass>Flight</objectClass>
          <arguments><argument>int</argument></arguments>
        </objectMethod>
      </affected-method>
    </affected-methods>
  </constraint>
</constraints>)";

constexpr std::size_t kFlights = 50;
constexpr std::size_t kSweeps = 40;

struct RunResult {
  SimTime elapsed = 0;
  double revalidations_per_s = 0;
  std::vector<std::size_t> violations_per_sweep;
  std::vector<std::int64_t> final_sold;
  std::size_t validations = 0;
  validation::ValidationMemo::Stats memo;
};

RunResult run(bool memo_on) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.with_replication = false;
  cfg.flags.validation_memo = memo_on;
  Cluster cluster(cfg);
  AdminConsole admin(cluster);
  scenarios::FlightBooking::define_classes(cluster.classes());
  admin.deploy_constraints(kDescriptor);

  DedisysNode& node = cluster.node(0);
  std::vector<ObjectId> flights;
  flights.reserve(kFlights);
  for (std::size_t i = 0; i < kFlights; ++i) {
    flights.push_back(
        scenarios::FlightBooking::create_flight(node, 100));
  }
  // One flight is overfilled behind the middleware's back so every sweep
  // has a definite violation to report (and cache).
  node.replication().local_replica(flights.front()).set(
      "soldTickets", Value{std::int64_t{200}});

  RunResult out;
  const SimTime start = cluster.sim().clock.now();
  for (std::size_t sweep = 0; sweep < kSweeps; ++sweep) {
    if (sweep % 4 == 3) {
      // A real sale: writes one entity, busting exactly its entry.
      const ObjectId target = flights[1 + sweep % (kFlights - 1)];
      scenarios::FlightBooking::sell(node, target, 1);
    }
    const std::vector<ObjectId> violating =
        node.ccmgr().revalidate_for_objects("TicketConstraint", flights);
    out.violations_per_sweep.push_back(violating.size());
  }
  out.elapsed = cluster.sim().clock.now() - start;
  out.revalidations_per_s =
      static_cast<double>(kFlights * kSweeps) * 1e6 /
      static_cast<double>(out.elapsed);
  for (ObjectId id : flights) {
    out.final_sold.push_back(
        scenarios::FlightBooking::sold(node, id));
  }
  out.validations = node.ccmgr().stats().validations;
  out.memo = node.ccmgr().memo_stats();
  return out;
}

int run_bench() {
  print_title("Validation memoization — admin revalidation sweeps");
  const RunResult off = run(false);
  const RunResult on = run(true);

  print_header({"mode", "revalidations/s", "sim time ms", "evaluations"});
  print_row("memo off", {off.revalidations_per_s,
                         static_cast<double>(off.elapsed) / 1000.0,
                         static_cast<double>(off.validations)});
  print_row("memo on", {on.revalidations_per_s,
                        static_cast<double>(on.elapsed) / 1000.0,
                        static_cast<double>(on.validations)});

  print_title("Memo cache statistics (memo on)");
  print_header({"hits", "misses", "stores", "invalidated"});
  print_row("counts", {static_cast<double>(on.memo.hits),
                       static_cast<double>(on.memo.misses),
                       static_cast<double>(on.memo.stores),
                       static_cast<double>(on.memo.invalidations)});

  // -- self-checking acceptance ---------------------------------------------
  if (off.violations_per_sweep != on.violations_per_sweep ||
      off.final_sold != on.final_sold) {
    std::fprintf(stderr,
                 "FAIL: memo-on outcomes differ from memo-off outcomes\n");
    return 1;
  }
  if (on.memo.hits == 0) {
    std::fprintf(stderr, "FAIL: memo-on run recorded no cache hits\n");
    return 1;
  }
  if (on.elapsed >= off.elapsed) {
    std::fprintf(stderr,
                 "FAIL: memo-on run is not faster (on=%lld us, off=%lld us)\n",
                 static_cast<long long>(on.elapsed),
                 static_cast<long long>(off.elapsed));
    return 1;
  }
  std::printf(
      "\nShape to hold: identical violating sets and sold counts in both\n"
      "modes; memo-on spends strictly less simulated time per sweep\n"
      "(speedup here: %.1fx).\n",
      static_cast<double>(off.elapsed) / static_cast<double>(on.elapsed));
  return 0;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  return dedisys::bench::run_bench();
}
