// Shared helpers for the benchmark binaries.
//
// Chapter-5 benchmarks report operations per *simulated* second (the
// discrete-event clock makes them deterministic and hardware-independent);
// Chapter-2 benchmarks report measured wall-clock ratios.  Each binary
// prints the rows of the paper table/figure it regenerates, alongside the
// paper's reported values where applicable.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/session.h"
#include "middleware/cluster.h"
#include "scenarios/evalapp.h"
#include "shard/request.h"
#include "util/rng.h"

namespace dedisys::bench {

// ---------------------------------------------------------------------------
// Open-loop workload description
// ---------------------------------------------------------------------------

/// Value-typed description of an open-loop client workload.  A spec (plus
/// its seed) fully determines the request stream — client identities,
/// priorities, write mix and target-shard skew — so the saturation and
/// wall-clock throughput benches can share one vocabulary and stay
/// reproducible.  `arrival_rate` is the total offered rate across all
/// clients; each client's schedule runs at `arrival_rate / clients`.
struct WorkloadSpec {
  std::size_t clients = 1;     ///< client-id space (open loop: ids drawn from it)
  std::size_t requests = 1;    ///< total requests across all clients
  double arrival_rate = 0;     ///< offered requests per second, all clients
  double write_fraction = 1.0; ///< share of requests that mutate state
  double high_fraction = 0.0;  ///< share submitted at PriorityClass::High
  double low_fraction = 0.0;   ///< share at Low (the remainder run Normal)
  double shard_skew = 0.0;     ///< extra probability mass on shard 0 (hot shard)
  std::uint64_t seed = 1;

  [[nodiscard]] std::size_t per_client() const {
    return requests / (clients == 0 ? 1 : clients);
  }
  [[nodiscard]] double per_client_rate() const {
    return clients == 0 ? arrival_rate
                        : arrival_rate / static_cast<double>(clients);
  }

  /// Draws a priority for the next request (High/Low shares, rest Normal).
  [[nodiscard]] shard::PriorityClass draw_priority(Rng& rng) const {
    const double u = rng.uniform01();
    if (u < high_fraction) return shard::PriorityClass::High;
    if (u < high_fraction + low_fraction) return shard::PriorityClass::Low;
    return shard::PriorityClass::Normal;
  }

  /// Draws a target shard: probability `shard_skew` pins shard 0 (the hot
  /// shard), the remaining mass spreads uniformly.
  [[nodiscard]] std::size_t draw_shard(Rng& rng,
                                       std::size_t shard_count) const {
    if (shard_count <= 1) return 0;
    if (rng.chance(shard_skew)) return 0;
    return rng.below(shard_count);
  }

  [[nodiscard]] bool draw_write(Rng& rng) const {
    return rng.chance(write_fraction);
  }

  [[nodiscard]] std::uint64_t draw_client(Rng& rng) const {
    return rng.below(clients == 0 ? 1 : clients);
  }
};

// ---------------------------------------------------------------------------
// Simulated-time throughput measurement
// ---------------------------------------------------------------------------

/// Runs `op` `count` times and returns operations per simulated second.
inline double ops_per_sim_second(Cluster& cluster, std::size_t count,
                                 const std::function<void(std::size_t)>& op) {
  const SimTime start = cluster.sim().clock.now();
  for (std::size_t i = 0; i < count; ++i) op(i);
  const SimTime elapsed = cluster.sim().clock.now() - start;
  if (elapsed <= 0) return 0;
  return static_cast<double>(count) * 1e6 / static_cast<double>(elapsed);
}

// ---------------------------------------------------------------------------
// The Section-5.1 DedisysTest workload
// ---------------------------------------------------------------------------

struct Workload {
  /// Ops/s creating `n` entities (one transaction each).
  static double create(Cluster& c, std::size_t node, std::size_t n,
                       std::vector<ObjectId>& out) {
    DedisysNode& nd = c.node(node);
    const SimTime start = c.sim().clock.now();
    for (std::size_t i = 0; i < n; ++i) {
      TxScope tx(nd.tx());
      out.push_back(nd.create(tx.id(), "TestEntity"));
      tx.commit();
    }
    return static_cast<double>(n) * 1e6 /
           static_cast<double>(c.sim().clock.now() - start);
  }

  /// Ops/s invoking `method` round-robin over `ids` (averaged over
  /// same-object and different-object access as in Section 5.1).
  static double invoke(Cluster& c, std::size_t node, std::size_t n,
                       const std::vector<ObjectId>& ids,
                       const std::string& method,
                       std::vector<Value> args = {},
                       NegotiationHandler* handler = nullptr) {
    DedisysNode& nd = c.node(node);
    const SimTime start = c.sim().clock.now();
    for (std::size_t i = 0; i < n; ++i) {
      const ObjectId target = ids[i % ids.size()];
      try {
        TxScope tx(nd.tx());
        if (handler != nullptr) {
          nd.ccmgr().register_negotiation_handler(
              tx.id(), std::shared_ptr<NegotiationHandler>(handler,
                                                           [](auto*) {}));
        }
        nd.invoke(tx.id(), target, method, args);
        tx.commit();
      } catch (const DedisysError&) {
        // violations/rejections still count as attempted operations
      }
    }
    return static_cast<double>(n) * 1e6 /
           static_cast<double>(c.sim().clock.now() - start);
  }

  /// Ops/s deleting the given entities.
  static double destroy(Cluster& c, std::size_t node,
                        const std::vector<ObjectId>& ids) {
    DedisysNode& nd = c.node(node);
    const SimTime start = c.sim().clock.now();
    for (ObjectId id : ids) {
      TxScope tx(nd.tx());
      nd.destroy(tx.id(), id);
      tx.commit();
    }
    return static_cast<double>(ids.size()) * 1e6 /
           static_cast<double>(c.sim().clock.now() - start);
  }
};

/// Builds a cluster with the evaluation application deployed.
inline std::unique_ptr<Cluster> make_eval_cluster(ClusterConfig cfg) {
  auto cluster = std::make_unique<Cluster>(cfg);
  scenarios::EvalApp::define_classes(cluster->classes());
  if (cfg.with_ccm) {
    scenarios::EvalApp::register_constraints(cluster->constraints());
  }
  return cluster;
}

}  // namespace dedisys::bench
