// Shared helpers for the benchmark binaries.
//
// Chapter-5 benchmarks report operations per *simulated* second (the
// discrete-event clock makes them deterministic and hardware-independent);
// Chapter-2 benchmarks report measured wall-clock ratios.  Each binary
// prints the rows of the paper table/figure it regenerates, alongside the
// paper's reported values where applicable.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/session.h"
#include "middleware/cluster.h"
#include "scenarios/evalapp.h"

namespace dedisys::bench {

// ---------------------------------------------------------------------------
// Simulated-time throughput measurement
// ---------------------------------------------------------------------------

/// Runs `op` `count` times and returns operations per simulated second.
inline double ops_per_sim_second(Cluster& cluster, std::size_t count,
                                 const std::function<void(std::size_t)>& op) {
  const SimTime start = cluster.clock().now();
  for (std::size_t i = 0; i < count; ++i) op(i);
  const SimTime elapsed = cluster.clock().now() - start;
  if (elapsed <= 0) return 0;
  return static_cast<double>(count) * 1e6 / static_cast<double>(elapsed);
}

// ---------------------------------------------------------------------------
// The Section-5.1 DedisysTest workload
// ---------------------------------------------------------------------------

struct Workload {
  /// Ops/s creating `n` entities (one transaction each).
  static double create(Cluster& c, std::size_t node, std::size_t n,
                       std::vector<ObjectId>& out) {
    DedisysNode& nd = c.node(node);
    const SimTime start = c.clock().now();
    for (std::size_t i = 0; i < n; ++i) {
      TxScope tx(nd.tx());
      out.push_back(nd.create(tx.id(), "TestEntity"));
      tx.commit();
    }
    return static_cast<double>(n) * 1e6 /
           static_cast<double>(c.clock().now() - start);
  }

  /// Ops/s invoking `method` round-robin over `ids` (averaged over
  /// same-object and different-object access as in Section 5.1).
  static double invoke(Cluster& c, std::size_t node, std::size_t n,
                       const std::vector<ObjectId>& ids,
                       const std::string& method,
                       std::vector<Value> args = {},
                       NegotiationHandler* handler = nullptr) {
    DedisysNode& nd = c.node(node);
    const SimTime start = c.clock().now();
    for (std::size_t i = 0; i < n; ++i) {
      const ObjectId target = ids[i % ids.size()];
      try {
        TxScope tx(nd.tx());
        if (handler != nullptr) {
          nd.ccmgr().register_negotiation_handler(
              tx.id(), std::shared_ptr<NegotiationHandler>(handler,
                                                           [](auto*) {}));
        }
        nd.invoke(tx.id(), target, method, args);
        tx.commit();
      } catch (const DedisysError&) {
        // violations/rejections still count as attempted operations
      }
    }
    return static_cast<double>(n) * 1e6 /
           static_cast<double>(c.clock().now() - start);
  }

  /// Ops/s deleting the given entities.
  static double destroy(Cluster& c, std::size_t node,
                        const std::vector<ObjectId>& ids) {
    DedisysNode& nd = c.node(node);
    const SimTime start = c.clock().now();
    for (ObjectId id : ids) {
      TxScope tx(nd.tx());
      nd.destroy(tx.id(), id);
      tx.commit();
    }
    return static_cast<double>(ids.size()) * 1e6 /
           static_cast<double>(c.clock().now() - start);
  }
};

/// Builds a cluster with the evaluation application deployed.
inline std::unique_ptr<Cluster> make_eval_cluster(ClusterConfig cfg) {
  auto cluster = std::make_unique<Cluster>(cfg);
  scenarios::EvalApp::define_classes(cluster->classes());
  if (cfg.with_ccm) {
    scenarios::EvalApp::register_constraints(cluster->constraints());
  }
  return cluster;
}

}  // namespace dedisys::bench
