// Shared bench-result report and the --json command-line session.
//
// Every benchmark binary constructs a bench::Session first; the print_*
// helpers of bench_common.h funnel each console table into the session's
// report, and `--json <path>` writes the accumulated report as a
// BENCH_*.json document on exit.  Kept free of middleware includes so the
// Chapter-2 wall-clock benches can use it without the cluster stack.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.h"

namespace dedisys::bench {

struct Report {
  struct Row {
    std::string label;
    obs::Json values = obs::Json::array();
  };
  struct Table {
    std::string title;
    std::vector<std::string> columns;
    std::vector<Row> rows;
  };

  std::string bench;
  std::string json_path;
  std::vector<Table> tables;
  obs::Json latencies = obs::Json::object();

  Table& current_table() {
    if (tables.empty()) tables.emplace_back();
    return tables.back();
  }

  [[nodiscard]] obs::Json to_json() const {
    obs::Json tables_json = obs::Json::array();
    for (const Table& t : tables) {
      obs::Json columns = obs::Json::array();
      for (const std::string& c : t.columns) columns.push_back(c);
      obs::Json rows = obs::Json::array();
      for (const Row& r : t.rows) {
        obs::Json row = obs::Json::object();
        row.set("label", r.label);
        row.set("values", r.values);
        rows.push_back(std::move(row));
      }
      obs::Json table = obs::Json::object();
      table.set("title", t.title);
      table.set("columns", std::move(columns));
      table.set("rows", std::move(rows));
      tables_json.push_back(std::move(table));
    }
    obs::Json out = obs::Json::object();
    out.set("bench", bench);
    out.set("tables", std::move(tables_json));
    out.set("latencies", latencies);
    return out;
  }
};

inline Report& report() {
  static Report r;
  return r;
}

/// RAII harness every bench main constructs first: parses `--json <path>`
/// and writes the accumulated report there on exit.
class Session {
 public:
  Session(int argc, char** argv) {
    std::string name = argc > 0 ? argv[0] : "bench";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    report().bench = name;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        report().json_path = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      }
    }
  }

  ~Session() {
    if (report().json_path.empty()) return;
    std::ofstream os(report().json_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", report().json_path.c_str());
      return;
    }
    os << report().to_json().dump(2) << '\n';
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Enables the cluster's trace recorder and latency registry; recording
  /// costs zero simulated time, so observed runs report identical rates.
  template <typename ClusterT>
  void observe(ClusterT& cluster, std::size_t trace_capacity = 4096) {
    cluster.obs().enable(trace_capacity);
  }

  /// Snapshots the cluster's latency summaries (p50/p95/p99 per operation
  /// kind) into the report under `label`.
  template <typename ClusterT>
  void capture(ClusterT& cluster, const std::string& label) {
    report().latencies.set(label, obs::to_json(cluster.obs().latencies()));
  }
};

// ---------------------------------------------------------------------------
// Report-only recording, for benches that render their own console layout
// ---------------------------------------------------------------------------

inline void report_table(const std::string& title,
                         const std::vector<std::string>& columns) {
  report().tables.emplace_back();
  report().tables.back().title = title;
  report().tables.back().columns = columns;
}

inline void report_row(const std::string& label,
                       const std::vector<double>& values) {
  Report::Row row;
  row.label = label;
  for (double v : values) row.values.push_back(v);
  report().current_table().rows.push_back(std::move(row));
}

// ---------------------------------------------------------------------------
// Table printing (console + the session's --json report)
// ---------------------------------------------------------------------------

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  report().tables.emplace_back();
  report().tables.back().title = title;
}

inline void print_header(const std::vector<std::string>& columns) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf(i == 0 ? "%-34s" : "%16s", columns[i].c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf(i == 0 ? "%-34s" : "%16s", i == 0 ? "----" : "----");
  }
  std::printf("\n");
  report().current_table().columns = columns;
}

inline void print_row(const std::string& label,
                      const std::vector<double>& values,
                      const char* fmt = "%16.1f") {
  std::printf("%-34s", label.c_str());
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
  Report::Row row;
  row.label = label;
  for (double v : values) row.values.push_back(v);
  report().current_table().rows.push_back(std::move(row));
}

inline void print_row_text(const std::string& label,
                           const std::vector<std::string>& values) {
  std::printf("%-34s", label.c_str());
  for (const auto& v : values) std::printf("%16s", v.c_str());
  std::printf("\n");
  Report::Row row;
  row.label = label;
  for (const auto& v : values) row.values.push_back(v);
  report().current_table().rows.push_back(std::move(row));
}

}  // namespace dedisys::bench
