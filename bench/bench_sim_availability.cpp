// Simulation study — availability under recurring network partitions
// (the [Se05] simulation studies referenced in Section 5.2: "our approach
// combined with the primary-per-partition protocol (P4) can be used to
// increase availability in the presence of network partitions").
//
// A long-running workload issues writes from random nodes while partitions
// come and go on a schedule.  Availability = fraction of operations that
// commit.  Shape to hold: with integrity/availability balancing (P4 +
// tradeable constraints) availability stays near 1 even while partitioned;
// the conventional primary-partition baseline loses every minority-side
// write; making the constraint non-tradeable loses ALL degraded writes
// that raise threats.
#include "bench/bench_common.h"
#include "scenarios/flight.h"
#include "util/rng.h"

namespace dedisys::bench {
namespace {

struct Result {
  double availability = 0;   // committed / attempted
  double degraded_share = 0; // fraction of ops attempted while degraded
  std::size_t conflicts = 0;
  std::size_t violations = 0;
};

Result run(dedisys::ReplicationProtocol protocol, bool tradeable,
           std::uint64_t seed) {
  using namespace dedisys;
  using scenarios::FlightBooking;
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = protocol;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(
      cluster.constraints(), false,
      tradeable ? SatisfactionDegree::PossiblySatisfied
                : SatisfactionDegree::Satisfied);
  if (!tradeable) {
    ConstraintRegistration reg;  // replace with a non-tradeable variant
    cluster.constraints().remove("TicketConstraint");
    auto strict = std::make_shared<scenarios::TicketConstraint>(
        "TicketConstraint", ConstraintType::HardInvariant,
        ConstraintPriority::NonTradeable);
    reg.constraint = std::move(strict);
    reg.context_class = "Flight";
    reg.affected_methods.push_back(AffectedMethod{
        "Flight", MethodSignature{"sellTickets", {"int"}},
        ContextPreparation{ContextPreparationKind::CalledObject, ""}});
    cluster.constraints().register_constraint(std::move(reg));
  }

  const ObjectId flight = FlightBooking::create_flight(cluster.node(0), 1u << 20);

  Rng rng(seed);
  std::size_t attempted = 0;
  std::size_t committed = 0;
  std::size_t degraded_attempts = 0;
  std::size_t conflicts = 0;
  std::size_t violations = 0;

  // Alternate healthy and partitioned phases; reconcile after each heal.
  for (int phase = 0; phase < 6; ++phase) {
    const bool partitioned = phase % 2 == 1;
    if (partitioned) cluster.inject(fault::split_indices({{0, 1}, {2, 3}}));
    for (int op = 0; op < 50; ++op) {
      DedisysNode& node = cluster.node(rng.below(cluster.size()));
      ++attempted;
      if (node.mode() == SystemMode::Degraded) ++degraded_attempts;
      try {
        FlightBooking::sell(node, flight, 1);
        ++committed;
      } catch (const DedisysError&) {
      }
    }
    if (partitioned) {
      cluster.inject(fault::Heal{});
      const auto report = cluster.reconcile();
      conflicts += report.replica.conflicts;
      violations += report.constraints.violations;
    }
  }

  Result out;
  out.availability = static_cast<double>(committed) / attempted;
  out.degraded_share = static_cast<double>(degraded_attempts) / attempted;
  out.conflicts = conflicts;
  out.violations = violations;
  return out;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  using dedisys::ReplicationProtocol;
  print_title("Simulation study — availability under recurring partitions");
  print_header({"configuration", "availability", "degr. share", "conflicts",
                "violations"});

  for (std::uint64_t seed : {21ULL, 22ULL}) {
    const Result balanced =
        run(ReplicationProtocol::PrimaryPartition, true, seed);
    const Result conventional =
        run(ReplicationProtocol::PrimaryBackup, true, seed);
    const Result strict =
        run(ReplicationProtocol::PrimaryPartition, false, seed);
    print_row("P4 + tradeable (seed " + std::to_string(seed) + ")",
              {balanced.availability, balanced.degraded_share,
               double(balanced.conflicts), double(balanced.violations)},
              "%16.2f");
    print_row("primary-backup (seed " + std::to_string(seed) + ")",
              {conventional.availability, conventional.degraded_share,
               double(conventional.conflicts), double(conventional.violations)},
              "%16.2f");
    print_row("P4 + non-tradeable (seed " + std::to_string(seed) + ")",
              {strict.availability, strict.degraded_share,
               double(strict.conflicts), double(strict.violations)},
              "%16.2f");
  }
  std::printf(
      "\nShape to hold: balancing keeps availability near 1.0 at the price\n"
      "of reconciliation work (conflicts); the conventional protocol loses\n"
      "minority-partition writes; non-tradeable constraints lose every\n"
      "degraded write that cannot be validated reliably.\n");
  return 0;
}
