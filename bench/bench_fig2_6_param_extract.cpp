// Figure 2.6 — Invocation interception plus parameter extraction:
// (R1+R2+R3)/R1.
//
// Shape to hold: the ordering flips relative to Fig. 2.5 because AspectJ
// must fetch the reflective Method via the costly getClass().getMethod()
// analogue, while the AOP framework and the proxy already carry it in
// their invocation representation (paper: 19.50 / 36.62 / 98.26).
#include <cstdio>

#include "bench/session.h"
#include "validation/harness.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::validation;
  std::printf(
      "\n=== Figure 2.6 — interception + parameter extraction (R1+R2+R3)/R1 ===\n");
  const double r1 = measure_approach(Approach::NoChecks);

  struct Entry {
    MechKind mech;
    const char* name;
    double paper;
  };
  const Entry entries[] = {
      {MechKind::Aop, "JBoss AOP", 19.50},
      {MechKind::Proxy, "Java-Proxy", 36.62},
      {MechKind::Aspect, "AspectJ", 98.26},
  };

  std::printf("%-14s%14s%12s\n", "mechanism", "measured", "paper");
  dedisys::bench::report_table(
      "Figure 2.6 — interception + parameter extraction",
      {"mechanism", "measured", "paper"});
  for (const Entry& e : entries) {
    const double f =
        measure_repo_staged(e.mech, true, RepoStage::Extract) / r1;
    std::printf("%-14s%13.1fx%11.2fx\n", e.name, f, e.paper);
    dedisys::bench::report_row(e.name, {f, e.paper});
  }
  std::printf(
      "\nShape to hold: JBoss AOP < Java proxy < AspectJ once parameter\n"
      "extraction is included (order flip vs Fig. 2.5).\n");
  return 0;
}
