// Section 5.5.2 — Partition-sensitive constraints.
//
// Flight booking with 80 seats, 40 sold before the partition.  Both
// partitions keep selling during degradation.  Shape to hold: with the
// plain ticket-constraint, the merged system is overbooked and needs
// reconciliation work; with the partition-sensitive constraint the
// weighted quotas prevent (nearly all) inconsistencies, at the price of a
// partition possibly running out of its quota (reduced availability).
#include "bench/bench_common.h"
#include "scenarios/flight.h"
#include "util/rng.h"

namespace dedisys::bench {
namespace {

struct Outcome {
  std::int64_t sold_during_degradation = 0;  ///< availability
  std::int64_t rejected_sales = 0;
  std::int64_t overbooked_after_merge = 0;   ///< inconsistency
  std::size_t reconciliation_violations = 0;
};

Outcome run(bool partition_sensitive, std::uint64_t seed) {
  using namespace dedisys;
  using scenarios::FlightBooking;
  ClusterConfig cfg;
  cfg.nodes = 4;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints(),
                                      partition_sensitive,
                                      SatisfactionDegree::PossiblySatisfied);

  DedisysNode& n0 = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 80);
  FlightBooking::sell(n0, flight, 40);
  cluster.inject(fault::split_indices({{0, 1}, {2, 3}}));

  Outcome out;
  Rng rng(seed);
  for (int i = 0; i < 60; ++i) {
    DedisysNode& node = cluster.node(rng.chance(0.5) ? 0 : 2);
    const std::int64_t count = rng.between(1, 3);
    try {
      FlightBooking::sell(node, flight, count);
      out.sold_during_degradation += count;
    } catch (const DedisysError&) {
      ++out.rejected_sales;
    }
  }

  cluster.inject(fault::Heal{});
  class AdditiveMerge final : public ReplicaConsistencyHandler {
   public:
    EntitySnapshot reconcile_replicas(
        ObjectId, const std::vector<EntitySnapshot>& c) override {
      std::int64_t total = 40;
      std::uint64_t maxv = 0;
      for (const auto& s : c) {
        total += as_int(s.attributes.at("soldTickets")) - 40;
        maxv = std::max(maxv, s.version);
      }
      EntitySnapshot outsnap = c.front();
      outsnap.attributes["soldTickets"] = Value{total};
      outsnap.version = maxv + 1;
      return outsnap;
    }
  } merge;
  const auto report = cluster.reconcile(&merge);
  out.reconciliation_violations = report.constraints.violations;
  const std::int64_t total_sold = FlightBooking::sold(n0, flight);
  out.overbooked_after_merge = std::max<std::int64_t>(0, total_sold - 80);
  return out;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  print_title("Section 5.5.2 — partition-sensitive ticket constraint");
  print_header({"configuration", "sold degr.", "rejected", "overbooked",
                "recon.viol."});

  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Outcome plain = run(false, seed);
    const Outcome sensitive = run(true, seed);
    print_row("plain constraint (seed " + std::to_string(seed) + ")",
              {double(plain.sold_during_degradation),
               double(plain.rejected_sales),
               double(plain.overbooked_after_merge),
               double(plain.reconciliation_violations)},
              "%16.0f");
    print_row("partition-sensitive (seed " + std::to_string(seed) + ")",
              {double(sensitive.sold_during_degradation),
               double(sensitive.rejected_sales),
               double(sensitive.overbooked_after_merge),
               double(sensitive.reconciliation_violations)},
              "%16.0f");
  }
  std::printf(
      "\nShape to hold: the partition-sensitive variant introduces no\n"
      "overbooking (paper: \"almost no inconsistencies\") while the plain\n"
      "constraint overbooks and must reconcile; the price is reduced\n"
      "availability (rejected sales) once a partition's quota is used up.\n");
  return 0;
}
