// Chaos soak driver: runs one seeded fault plan against a random workload
// and checks the dependability invariants (see scenarios/chaos.h).
//
// Usage:
//   bench_chaos_soak [--seed N] [--nodes N] [--objects N] [--ops N]
//                    [--events N] [--horizon-ms N] [--protocol pp|pb|av]
//                    [--shards N] [--gray] [--json <path>] [--timeline]
//
// Exits 0 when every invariant holds, 1 otherwise.  With --timeline the
// rendered trace goes to stdout — two runs with identical arguments must
// produce byte-identical output (check.sh --chaos diffs them).  With
// --gray the fault plan draws gray failures too (one-way cuts, flapping
// links, slow nodes, clock skew).  --json writes the full observability
// export (simulated-time metrics, so the file is deterministic and can be
// committed as a BENCH_chaos_soak.json baseline).
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "scenarios/chaos.h"

namespace {

std::uint64_t parse_u64(const char* text) {
  return std::strtoull(text, nullptr, 10);
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed N] [--nodes N] [--objects N] [--ops N] [--events N]"
               " [--horizon-ms N] [--protocol pp|pb|av] [--shards N] [--gray]"
               " [--json <path>] [--timeline]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using dedisys::ReplicationProtocol;
  dedisys::scenarios::ChaosOptions options;
  std::string json_path;
  bool print_timeline = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--seed") == 0) {
      options.seed = parse_u64(value());
    } else if (std::strcmp(arg, "--nodes") == 0) {
      options.nodes = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--objects") == 0) {
      options.objects = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--ops") == 0) {
      options.ops = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--events") == 0) {
      options.fault_events = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--horizon-ms") == 0) {
      options.horizon = dedisys::sim_ms(parse_u64(value()));
    } else if (std::strcmp(arg, "--protocol") == 0) {
      const std::string p = value();
      if (p == "pp") {
        options.protocol = ReplicationProtocol::PrimaryPartition;
      } else if (p == "pb") {
        options.protocol = ReplicationProtocol::PrimaryBackup;
      } else if (p == "av") {
        options.protocol = ReplicationProtocol::AdaptiveVoting;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--shards") == 0) {
      options.shards = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--gray") == 0) {
      options.gray = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = value();
    } else if (std::strcmp(arg, "--timeline") == 0) {
      print_timeline = true;
    } else {
      return usage(argv[0]);
    }
  }

  const dedisys::scenarios::ChaosResult result =
      dedisys::scenarios::run_chaos(options);

  if (print_timeline) std::cout << result.timeline;
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "cannot write " << json_path << '\n';
      return 2;
    }
    os << result.metrics_json << '\n';
  }

  std::cerr << "chaos seed=" << options.seed
            << " committed=" << result.committed
            << " aborted=" << result.aborted
            << " skipped=" << result.skipped_node_down
            << " faults=" << result.faults_applied
            << " reconciles=" << result.reconciles
            << " conflicts=" << result.conflicts
            << " reevaluated=" << result.threats_reevaluated << '\n';
  if (!result.invariants_ok()) {
    std::cerr << "INVARIANT VIOLATION:"
              << " lost_threats=" << result.lost_threats
              << " threats_remaining=" << result.threats_remaining
              << " primary_violations=" << result.primary_violations
              << " divergent_objects=" << result.divergent_objects
              << " model_mismatches=" << result.model_mismatches << '\n';
    return 1;
  }
  std::cerr << "all invariants hold\n";
  return 0;
}
