// Wall-clock overhead of causal span tracing.
//
// Spans cost zero *simulated* time by construction (SpanGuard never calls
// clock.advance), so the interesting number is the real-time price per
// operation: id minting, ring-buffer writes and label construction.  The
// same replicated workload runs with tracing off and with ring capacities
// 4k and 64k; the simulated clock must land on the identical stamp in all
// three configurations, which this bench asserts before reporting.
#include <chrono>
#include <cstdlib>

#include "bench/bench_common.h"

namespace dedisys::bench {
namespace {

struct Sample {
  double wall_ns_per_op = 0;
  double events_per_op = 0;
  std::uint64_t dropped = 0;
  SimTime sim_time = 0;
};

Sample measure(std::size_t capacity, std::size_t ops) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  auto cluster = make_eval_cluster(cfg);
  if (capacity > 0) cluster->obs().enable(capacity);

  DedisysNode& node = cluster->node(0);
  const std::vector<ObjectId> ids = scenarios::EvalApp::create_entities(node, 16);
  const Value payload{std::string{"x"}};
  for (std::size_t i = 0; i < 64; ++i) {  // warm-up
    scenarios::EvalApp::run_op(node, ids[i % ids.size()], "setValue", {payload});
  }

  const std::uint64_t recorded_before = cluster->obs().trace().recorded();
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    scenarios::EvalApp::run_op(node, ids[i % ids.size()], "setValue", {payload});
  }
  const auto wall_end = std::chrono::steady_clock::now();

  Sample s;
  s.wall_ns_per_op =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_start)
                              .count()) /
      static_cast<double>(ops);
  s.events_per_op =
      static_cast<double>(cluster->obs().trace().recorded() - recorded_before) /
      static_cast<double>(ops);
  s.dropped = cluster->obs().trace().dropped();
  s.sim_time = cluster->sim().clock.now();
  return s;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  using namespace dedisys::bench;
  Session session(argc, argv);

  constexpr std::size_t kOps = 4000;
  const Sample off = measure(0, kOps);
  const Sample small = measure(4096, kOps);
  const Sample large = measure(65536, kOps);

  if (off.sim_time != small.sim_time || off.sim_time != large.sim_time) {
    std::fprintf(stderr,
                 "FAIL: tracing changed simulated time (off=%lld 4k=%lld "
                 "64k=%lld us)\n",
                 static_cast<long long>(off.sim_time),
                 static_cast<long long>(small.sim_time),
                 static_cast<long long>(large.sim_time));
    return 1;
  }

  std::printf("trace overhead, %zu replicated setValue ops (sim time %lld us "
              "in every configuration)\n",
              kOps, static_cast<long long>(off.sim_time));
  std::printf("%-14s %14s %14s %10s\n", "ring", "wall ns/op", "events/op",
              "dropped");
  report_table("trace_overhead",
               {"wall_ns_per_op", "events_per_op", "dropped", "sim_time_us"});
  const auto row = [&](const char* label, const Sample& s) {
    std::printf("%-14s %14.0f %14.2f %10llu\n", label, s.wall_ns_per_op,
                s.events_per_op, static_cast<unsigned long long>(s.dropped));
    report_row(label, {s.wall_ns_per_op, s.events_per_op,
                       static_cast<double>(s.dropped),
                       static_cast<double>(s.sim_time)});
  };
  row("off", off);
  row("4096", small);
  row("65536", large);
  return 0;
}
