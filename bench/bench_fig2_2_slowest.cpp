// Figure 2.2 — Slowest constraint-validation approaches (wall-clock).
//
// Shape to hold: the naive (per-invocation linear search) repository
// approaches are several times slower than the optimized ones; JML-style
// generated assertion machinery lands in the same band; tool-generated
// interpreted OCL validation is catastrophically slower than everything
// else (paper: ~406x handcrafted).
#include <cstdio>

#include "bench/session.h"
#include "validation/harness.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::validation;
  std::printf("\n=== Figure 2.2 — slowest approaches (overhead vs handcrafted) ===\n");
  const double base = measure_approach(Approach::Handcrafted);

  struct Entry {
    Approach approach;
    double paper;
  };
  const Entry entries[] = {
      {Approach::ProxyRepo, 48.03}, {Approach::JmlStyle, 61.37},
      {Approach::AspectRepo, 70.71}, {Approach::AopRepo, 103.17},
      {Approach::DresdenOcl, 405.71},
  };

  std::printf("%-24s%14s%12s%12s\n", "approach", "ns/run", "measured",
              "paper");
  dedisys::bench::report_table("Figure 2.2 — slowest approaches",
                               {"approach", "ns/run", "measured", "paper"});
  for (const Entry& e : entries) {
    const double t = measure_approach(e.approach);
    std::printf("%-24s%14.0f%11.2fx%11.2fx\n", to_string(e.approach).c_str(),
                t, t / base, e.paper);
    dedisys::bench::report_row(to_string(e.approach),
                               {t, t / base, e.paper});
  }
  std::printf(
      "\nKnown deviation: in the paper JBoss-AOP-naive was the slowest\n"
      "interceptor (attributed to JVM byte-code modification artifacts);\n"
      "without a JVM the three naive variants land close together here.\n");
  return 0;
}
