// Gray-failure property harness driver.
//
// Runs the randomized invariant suite of scenarios/invariants.h: N seeded
// random gray fault plans (one-way cuts, flapping links, slow nodes,
// clock skew), each checked for the dependability invariants plus
// determinism and memo equivalence; violating plans are shrunk to a
// minimal reproduction and printed in the corpus text format.
//
// Usage:
//   bench_gray_chaos [--plans N] [--seed N] [--nodes N] [--ops N]
//                    [--events N] [--horizon-ms N] [--timeline]
//                    [--selftest] [--corpus DIR]
//
// Modes:
//   default     run the property suite; exit 1 on any surviving violation
//   --selftest  shrinker self-checks: a synthetic predicate must minimize
//               to exactly the culprit action, and the known legacy-views
//               split-brain plan must shrink to <= 3 ops
//   --corpus D  replay every *.plan file in D through the checker
//   --timeline  print the trace timeline of one gray run (determinism
//               diffing in check.sh --gray)
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "scenarios/invariants.h"

namespace {

using dedisys::FaultPlan;
using dedisys::NodeId;
using dedisys::RandomPlanOptions;
namespace fault = dedisys::fault;
namespace scenarios = dedisys::scenarios;

std::uint64_t parse_u64(const char* text) {
  return std::strtoull(text, nullptr, 10);
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--plans N] [--seed N] [--nodes N] [--ops N] [--events N]"
               " [--horizon-ms N] [--timeline] [--selftest] [--corpus DIR]\n";
  return 2;
}

void print_failures(const scenarios::PropertySuiteResult& result) {
  for (const auto& failure : result.failures) {
    std::cerr << "PROPERTY VIOLATION seed=" << failure.seed << ": "
              << failure.violation << "\n"
              << "  original plan: " << failure.plan.size() << " ops, shrunk: "
              << failure.shrunk.size() << " ops\n"
              << dedisys::plan_to_text(failure.shrunk);
  }
}

/// Shrinker mechanics without chaos runs: the predicate is "the plan still
/// contains the crash of node 1".  ddmin must strip everything else.
int selftest_synthetic() {
  RandomPlanOptions plan_options;
  for (std::size_t n = 0; n < 3; ++n) plan_options.nodes.push_back(NodeId{n});
  plan_options.events = 14;
  FaultPlan noisy = dedisys::random_gray_plan(77, plan_options);
  noisy.add(dedisys::sim_ms(50), fault::Crash{NodeId{1}});
  noisy.sort();

  const auto has_crash_of_1 = [](const FaultPlan& plan) {
    for (const auto& action : plan.actions) {
      const auto* crash = std::get_if<fault::Crash>(&action.op);
      if (crash != nullptr && crash->node == NodeId{1}) return true;
    }
    return false;
  };
  const scenarios::ShrinkResult shrunk =
      scenarios::shrink_plan(noisy, has_crash_of_1, 500);
  if (shrunk.plan.size() != 1 || !has_crash_of_1(shrunk.plan)) {
    std::cerr << "selftest: synthetic shrink kept " << shrunk.plan.size()
              << " ops (want exactly the crash)\n"
              << dedisys::plan_to_text(shrunk.plan);
    return 1;
  }
  std::cerr << "selftest: synthetic shrink ok (" << shrunk.runs << " runs, "
            << shrunk.removed << " ops removed)\n";
  return 0;
}

/// End-to-end shrink of a real violation: with legacy unidirectional
/// views, a one-way cut 1>0 makes node 1 drop node 0 from its view and
/// elect itself primary while nodes 0 and 2 stick with the designated
/// primary — split brain inside one strongly-connected component.  Buried
/// in a noisy plan, the shrinker must reduce it to <= 3 ops.
int selftest_known_violation(const scenarios::ChaosOptions& base) {
  scenarios::ChaosOptions chaos = base;
  chaos.flags.legacy_unidirectional_views = true;

  RandomPlanOptions plan_options;
  for (std::size_t n = 0; n < chaos.nodes; ++n) {
    plan_options.nodes.push_back(NodeId{n});
  }
  plan_options.horizon = chaos.horizon;
  plan_options.events = 6;
  FaultPlan plan = dedisys::random_gray_plan(4242, plan_options);
  plan.add(dedisys::sim_us(10),
           fault::AsymPartition{{{NodeId{1}, NodeId{0}}}});
  plan.sort();

  const auto splits_brain = [&](const FaultPlan& candidate) {
    return scenarios::check_plan(candidate, chaos).result.primary_violations >
           0;
  };
  if (!splits_brain(plan)) {
    std::cerr << "selftest: seeded legacy-views plan does not split brain\n";
    return 1;
  }
  const scenarios::ShrinkResult shrunk =
      scenarios::shrink_plan(plan, splits_brain, 120);
  if (shrunk.plan.size() > 3) {
    std::cerr << "selftest: known violation shrunk to " << shrunk.plan.size()
              << " ops (want <= 3)\n"
              << dedisys::plan_to_text(shrunk.plan);
    return 1;
  }
  std::cerr << "selftest: known split-brain violation shrunk to "
            << shrunk.plan.size() << " op(s) in " << shrunk.runs << " runs\n"
            << dedisys::plan_to_text(shrunk.plan);

  // The fix: with bidirectional views the same fault — followed by repair,
  // since the shrinker drops the closing heal — holds every invariant.
  scenarios::ChaosOptions fixed = base;
  FaultPlan closed = shrunk.plan;
  closed.add(fixed.horizon + 1, fault::Heal{});
  closed.sort();
  const scenarios::PlanVerdict verdict = scenarios::check_plan(closed, fixed);
  if (!verdict.ok()) {
    std::cerr << "selftest: fixed views still violate: " << verdict.violation
              << "\n";
    return 1;
  }
  std::cerr << "selftest: bidirectional views pass the shrunk plan\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  scenarios::PropertySuiteOptions options;
  options.chaos.ops = 40;
  options.chaos.fault_events = 10;
  options.chaos.horizon = dedisys::sim_ms(250);
  bool selftest = false;
  bool print_timeline = false;
  std::string corpus_dir;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(usage(argv[0]));
      return argv[++i];
    };
    if (std::strcmp(arg, "--plans") == 0) {
      options.plans = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.first_seed = parse_u64(value());
    } else if (std::strcmp(arg, "--nodes") == 0) {
      options.chaos.nodes = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--ops") == 0) {
      options.chaos.ops = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--events") == 0) {
      options.chaos.fault_events = static_cast<std::size_t>(parse_u64(value()));
    } else if (std::strcmp(arg, "--horizon-ms") == 0) {
      options.chaos.horizon = dedisys::sim_ms(parse_u64(value()));
    } else if (std::strcmp(arg, "--timeline") == 0) {
      print_timeline = true;
    } else if (std::strcmp(arg, "--selftest") == 0) {
      selftest = true;
    } else if (std::strcmp(arg, "--corpus") == 0) {
      corpus_dir = value();
    } else {
      return usage(argv[0]);
    }
  }

  if (selftest) {
    const int synthetic = selftest_synthetic();
    if (synthetic != 0) return synthetic;
    return selftest_known_violation(options.chaos);
  }

  if (print_timeline) {
    scenarios::ChaosOptions chaos = options.chaos;
    chaos.seed = options.first_seed;
    chaos.gray = true;
    std::cout << scenarios::run_chaos(chaos).timeline;
    return 0;
  }

  if (!corpus_dir.empty()) {
    const scenarios::PropertySuiteResult result =
        scenarios::run_corpus(corpus_dir, options.chaos);
    std::cerr << "corpus: " << result.plans_checked << " plan(s) checked, "
              << result.failures.size() << " violation(s)\n";
    print_failures(result);
    return result.ok() ? 0 : 1;
  }

  const scenarios::PropertySuiteResult result =
      scenarios::run_property_suite(options);
  std::cerr << "property suite: " << result.plans_checked
            << " gray plan(s) checked (seeds " << options.first_seed << ".."
            << options.first_seed + options.plans - 1 << "), "
            << result.failures.size() << " violation(s)\n";
  print_failures(result);
  return result.ok() ? 0 : 1;
}
