// Figure 2.5 — Interception overhead: (R1+R2)/R1.
//
// The intercepted invocations are immediately forwarded to the called
// method.  Shape to hold: statically woven AspectJ advice is by far the
// cheapest mechanism, the AOP framework's reified invocation objects come
// next, and the fully reflective proxy (boxing + string-keyed handler
// dispatch) is the most expensive (paper: 2.38 / 9.25 / 28.13).
#include <cstdio>

#include "bench/session.h"
#include "validation/harness.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::validation;
  std::printf("\n=== Figure 2.5 — interception overhead (R1+R2)/R1 ===\n");
  const double r1 = measure_approach(Approach::NoChecks);

  struct Entry {
    MechKind mech;
    const char* name;
    double paper;
  };
  const Entry entries[] = {
      {MechKind::Aspect, "AspectJ", 2.38},
      {MechKind::Aop, "JBoss AOP", 9.25},
      {MechKind::Proxy, "Java-Proxy", 28.13},
  };

  std::printf("%-14s%14s%12s\n", "mechanism", "measured", "paper");
  dedisys::bench::report_table("Figure 2.5 — interception overhead",
                               {"mechanism", "measured", "paper"});
  for (const Entry& e : entries) {
    const double f =
        measure_repo_staged(e.mech, true, RepoStage::InterceptOnly) / r1;
    std::printf("%-14s%13.1fx%11.2fx\n", e.name, f, e.paper);
    dedisys::bench::report_row(e.name, {f, e.paper});
  }
  std::printf("\nShape to hold: AspectJ < JBoss AOP < Java proxy.\n");
  return 0;
}
