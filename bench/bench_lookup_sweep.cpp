// Section 2.3.2 — Constraint lookup sweep (google-benchmark).
//
// The paper evaluates cached repository lookups over combinations of 25/50/
// 100 classes and 10/25/50 methods per class and finds 0.25-0.52 us per
// lookup, independent of the number of entries.  Shape to hold: cached
// lookup time is flat with respect to repository size; the naive search
// grows linearly.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "validation/constraints_set.h"

namespace dedisys::validation {
namespace {

/// Synthetic repository: `classes` x `methods` registrations with one
/// invariant each.
struct SyntheticRepo {
  SyntheticRepo(int classes, int methods, bool cached) {
    constraint = std::make_unique<SyntheticConstraint>();
    repo.set_caching(cached);
    class_names.reserve(static_cast<std::size_t>(classes));
    method_keys.reserve(static_cast<std::size_t>(methods));
    for (int c = 0; c < classes; ++c) {
      class_names.push_back("Class" + std::to_string(c));
    }
    for (int m = 0; m < methods; ++m) {
      method_keys.push_back("method" + std::to_string(m) + "()");
    }
    for (const auto& cls : class_names) {
      for (const auto& mk : method_keys) {
        repo.add(constraint.get(), cls, mk);
      }
    }
  }

  class SyntheticConstraint final : public StudyConstraint {
   public:
    SyntheticConstraint()
        : StudyConstraint("synthetic", StudyConstraintType::Invariant) {}
    bool validate(const StudyContext&) const override { return true; }
  };

  std::unique_ptr<SyntheticConstraint> constraint;
  StudyRepository repo;
  std::vector<std::string> class_names;
  std::vector<std::string> method_keys;
};

void BM_CachedLookup(benchmark::State& state) {
  SyntheticRepo synth(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), /*cached=*/true);
  // Fully initialize the cache (paper assumption: "repository is already
  // fully initialized, e.g. after an initializing run").
  for (const auto& cls : synth.class_names) {
    for (const auto& mk : synth.method_keys) {
      benchmark::DoNotOptimize(
          synth.repo.lookup(cls, mk, StudyConstraintType::Invariant));
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& cls = synth.class_names[i % synth.class_names.size()];
    const auto& mk = synth.method_keys[i % synth.method_keys.size()];
    benchmark::DoNotOptimize(
        synth.repo.lookup(cls, mk, StudyConstraintType::Invariant));
    ++i;
  }
  state.SetLabel(std::to_string(state.range(0)) + " classes x " +
                 std::to_string(state.range(1)) + " methods");
}

void BM_NaiveLookup(benchmark::State& state) {
  SyntheticRepo synth(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)), /*cached=*/false);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& cls = synth.class_names[i % synth.class_names.size()];
    const auto& mk = synth.method_keys[i % synth.method_keys.size()];
    benchmark::DoNotOptimize(
        synth.repo.lookup(cls, mk, StudyConstraintType::Invariant));
    ++i;
  }
}

BENCHMARK(BM_CachedLookup)
    ->Args({25, 10})
    ->Args({25, 25})
    ->Args({25, 50})
    ->Args({50, 10})
    ->Args({50, 25})
    ->Args({50, 50})
    ->Args({100, 10})
    ->Args({100, 25})
    ->Args({100, 50});

BENCHMARK(BM_NaiveLookup)->Args({25, 10})->Args({50, 25})->Args({100, 50});

}  // namespace
}  // namespace dedisys::validation

BENCHMARK_MAIN();
