// Figure 2.4 — Search overhead: R1+R2+R3+R4 vs R1.
//
// The repository pipeline runs up to (and including) the constraint search
// but without validating (R5 excluded), once with the optimized (cached)
// repository and once with the per-invocation linear search.  Shape to
// hold: the optimized repository cuts the search overhead by a large
// factor for every interception mechanism (paper: 13.6x-48.2x).
#include <cstdio>

#include "bench/session.h"
#include "validation/harness.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::validation;
  std::printf("\n=== Figure 2.4 — search overhead (R1+R2+R3+R4)/R1 ===\n");
  const double r1 = measure_approach(Approach::NoChecks);

  struct Entry {
    MechKind mech;
    const char* name;
    double paper_opt;
    double paper_naive;
  };
  const Entry entries[] = {
      {MechKind::Proxy, "Java-Proxy", 65.38, 1412.62},
      {MechKind::Aop, "JBoss AOP", 70.38, 3389.62},
      {MechKind::Aspect, "AspectJ", 163.38, 2224.50},
  };

  std::printf("%-14s%14s%14s%12s%14s%14s\n", "mechanism", "opt vs R1",
              "naive vs R1", "improvement", "paper opt", "paper naive");
  dedisys::bench::report_table("Figure 2.4 — search overhead",
                               {"mechanism", "opt vs R1", "naive vs R1",
                                "improvement", "paper opt", "paper naive"});
  for (const Entry& e : entries) {
    const double opt =
        measure_repo_staged(e.mech, true, RepoStage::Search) / r1;
    const double naive =
        measure_repo_staged(e.mech, false, RepoStage::Search) / r1;
    std::printf("%-14s%13.1fx%13.1fx%11.1fx%13.1fx%13.1fx\n", e.name, opt,
                naive, naive / opt, e.paper_opt, e.paper_naive);
    dedisys::bench::report_row(
        e.name, {opt, naive, naive / opt, e.paper_opt, e.paper_naive});
  }
  // Formula (2.2): lookup time = (total with lookups - total without) /
  // number of lookups.  Paper: 0.18-0.43 us per cached lookup depending on
  // the interception mechanism.
  std::printf("\nper-lookup time, formula (2.2), cached repository:\n");
  StudyApp app = StudyApp::make();
  for (const Entry& e : entries) {
    const double with =
        measure_repo_staged(e.mech, true, RepoStage::Search);
    const double without =
        measure_repo_staged(e.mech, true, RepoStage::Extract);
    app.reset();
    const CheckCounters counters =
        run_repo_staged(e.mech, true, RepoStage::Search, app);
    const double per_lookup =
        counters.searches > 0
            ? (with - without) / static_cast<double>(counters.searches)
            : 0;
    std::printf("  %-12s %8.3f us  (paper: 0.18-0.43 us)\n", e.name,
                per_lookup / 1000.0);
  }
  std::printf(
      "\nShape to hold: naive search is several times the optimized search\n"
      "for every mechanism (paper improvement factors: 13.6-48.2).\n");
  return 0;
}
