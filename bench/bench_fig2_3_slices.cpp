// Figure 2.3 — Runtime slices of the repository-based approaches.
//
// Decomposes the total runtime of each interception mechanism into the
// paper's five slices: R1 application, R2 interception, R3 parameter
// extraction, R4 constraint search (optimized repository), R5 constraint
// checks — measured by differencing the staged pipeline runs.
#include <cstdio>

#include "bench/session.h"
#include "validation/harness.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::validation;
  std::printf("\n=== Figure 2.3 — runtime slices per mechanism (ns/run, opt repo) ===\n");

  const double r1 = measure_approach(Approach::NoChecks);
  struct Entry {
    MechKind mech;
    const char* name;
  };
  const Entry entries[] = {
      {MechKind::Aspect, "AspectJ"},
      {MechKind::Aop, "JBoss AOP"},
      {MechKind::Proxy, "Java-Proxy"},
  };

  std::printf("%-12s%12s%12s%12s%12s%12s%12s\n", "mechanism", "R1", "R2",
              "R3", "R4", "R5", "total");
  dedisys::bench::report_table(
      "Figure 2.3 — runtime slices per mechanism (ns/run)",
      {"mechanism", "R1", "R2", "R3", "R4", "R5", "total"});
  for (const Entry& e : entries) {
    const double r12 =
        measure_repo_staged(e.mech, true, RepoStage::InterceptOnly);
    const double r123 = measure_repo_staged(e.mech, true, RepoStage::Extract);
    const double r1234 = measure_repo_staged(e.mech, true, RepoStage::Search);
    const double total = measure_repo_staged(e.mech, true, RepoStage::Check);
    std::printf("%-12s%12.0f%12.0f%12.0f%12.0f%12.0f%12.0f\n", e.name, r1,
                r12 - r1, r123 - r12, r1234 - r123, total - r1234, total);
    dedisys::bench::report_row(e.name, {r1, r12 - r1, r123 - r12,
                                        r1234 - r123, total - r1234, total});
  }
  std::printf(
      "\nShape to hold: R2 is largest for the proxy (reflective dispatch)\n"
      "and smallest for AspectJ; R3 dominates AspectJ (reflective Method\n"
      "lookup).  R4 — the price of runtime flexibility — uses the optimized\n"
      "repository here; its naive variant dwarfs every other slice\n"
      "(Fig. 2.4).  R5 is the same explicit-constraint machinery for all.\n");
  return 0;
}
