// Section 5.5.3 — Asynchronous constraints.
//
// Degraded-mode operations per second for the same threat-raising
// constraint in three flavours: hard (validated per operation, dynamic
// negotiation), soft with identical-once storage (validated at commit,
// static negotiation), asynchronous (not validated at all in degraded
// mode, only recorded).  Paper: async reaches up to 2x the soft
// identical-once rate.
#include "bench/bench_common.h"

namespace dedisys::bench {
namespace {

double run(const std::string& method, bool dynamic_negotiation) {
  using namespace dedisys;
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.threat_policy = ThreatHistoryPolicy::IdenticalOnce;
  auto cluster = make_eval_cluster(cfg);

  constexpr std::size_t kObjects = 100;
  std::vector<ObjectId> ids;
  (void)Workload::create(*cluster, 0, kObjects, ids);
  cluster->inject(fault::split_indices({{0, 1}, {2}}));

  scenarios::AcceptAllNegotiation accept_all;
  // One warm-up pass persists the threat identities; the measured passes
  // show the steady-state degraded rate.
  (void)Workload::invoke(*cluster, 0, kObjects, ids, method, {},
                         dynamic_negotiation ? &accept_all : nullptr);
  return Workload::invoke(*cluster, 0, 3 * kObjects, ids, method, {},
                          dynamic_negotiation ? &accept_all : nullptr);
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  print_title("Section 5.5.3 — asynchronous constraints (degraded ops/sim-s)");

  const double hard = run("emptyThreat", true);
  const double soft = run("emptySoftThreat", false);
  const double async = run("emptyAsyncThreat", false);

  print_header({"constraint flavour", "ops/s", "vs soft"});
  print_row("hard + dynamic negotiation", {hard, hard / soft}, "%16.2f");
  print_row("soft, identical-once", {soft, 1.0}, "%16.2f");
  print_row("asynchronous", {async, async / soft}, "%16.2f");

  std::printf(
      "\nShape to hold: async > soft (paper: up to 2x) because degraded-mode\n"
      "validation and negotiation are skipped entirely.\n");
  return 0;
}
