// Ablation — replication protocols (primary-backup / P4 / adaptive voting).
//
// Compares the three protocols on: healthy write throughput, degraded
// write availability in majority and minority partitions, threats produced
// and read behaviour.  Shape to hold: primary-backup blocks the minority
// entirely (conventional availability); P4 serves writes everywhere at the
// price of consistency threats in every partition; adaptive voting also
// serves writes everywhere but pays an extra quorum round per update.
#include "bench/bench_common.h"
#include "scenarios/flight.h"

namespace dedisys::bench {
namespace {

struct Result {
  double healthy_writes = 0;     // ops/sim-s
  double majority_accept = 0;    // fraction of accepted writes
  double minority_accept = 0;
  std::size_t threats = 0;
};

Result run(dedisys::ReplicationProtocol protocol) {
  using namespace dedisys;
  using scenarios::FlightBooking;
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.protocol = protocol;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints(), false,
                                      SatisfactionDegree::Uncheckable);

  DedisysNode& n0 = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 100000);

  Result r;
  constexpr std::size_t kWrites = 200;
  const SimTime start = cluster.sim().clock.now();
  for (std::size_t i = 0; i < kWrites; ++i) {
    FlightBooking::sell(n0, flight, 1);
  }
  r.healthy_writes = static_cast<double>(kWrites) * 1e6 /
                     static_cast<double>(cluster.sim().clock.now() - start);

  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  std::size_t maj_ok = 0;
  std::size_t min_ok = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    try {
      FlightBooking::sell(cluster.node(0), flight, 1);
      ++maj_ok;
    } catch (const DedisysError&) {
    }
    try {
      FlightBooking::sell(cluster.node(2), flight, 1);
      ++min_ok;
    } catch (const DedisysError&) {
    }
  }
  r.majority_accept = static_cast<double>(maj_ok) / 50;
  r.minority_accept = static_cast<double>(min_ok) / 50;
  r.threats = cluster.threats().identity_count();
  return r;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  using dedisys::ReplicationProtocol;
  print_title("Ablation — replication protocols");
  print_header({"protocol", "healthy wr/s", "maj accept", "min accept",
                "threats"});
  for (ReplicationProtocol p :
       {ReplicationProtocol::PrimaryBackup,
        ReplicationProtocol::PrimaryPartition,
        ReplicationProtocol::AdaptiveVoting}) {
    const Result r = run(p);
    print_row(to_string(p),
              {r.healthy_writes, r.majority_accept, r.minority_accept,
               static_cast<double>(r.threats)},
              "%16.2f");
  }
  std::printf(
      "\nShape to hold: PB blocks minority writes (accept 0); P4 and AV\n"
      "serve every partition but record consistency threats; AV's quorum\n"
      "round makes its healthy writes slightly slower than P4's.\n");
  return 0;
}
