// Read-set pruning benchmark (PR 3), extended with the interference-aware
// reconciliation scheduler (PR 8).
//
// A "Wide" entity class carries several independent integer attributes,
// each guarded by its own OCL hard invariant that is registered as
// affected by EVERY setter (the conservative registration an application
// writes when it does not want to reason about write-sets itself).
// Exhaustive validation therefore evaluates all invariants on every
// setter call; the static analyzer's read-sets let CCMgr skip all but the
// one invariant that actually reads the written attribute.
//
// After the setter workload, a reconciliation batch of seeded threats is
// driven through each cluster; the `scheduled` column counts threats
// re-evaluated under interference-cluster ordering (zero unless the
// scheduler is on).  Scheduling is outcome-preserving — the column shows
// activity, the other columns must not move because of it.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "bench/bench_common.h"
#include "constraints/ocl_constraint.h"
#include "constraints/threats.h"

namespace dedisys {
namespace {

constexpr int kFields = 8;
constexpr std::size_t kEntities = 16;
constexpr std::size_t kOps = 4000;

std::unique_ptr<Cluster> make_wide_cluster(bool pruning, bool scheduler) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  auto cluster = std::make_unique<Cluster>(cfg);

  ClassDescriptor& wide = cluster->classes().define("Wide");
  for (int k = 0; k < kFields; ++k) {
    wide.define_property("f" + std::to_string(k), Value{std::int64_t{0}},
                         "int");
  }

  std::vector<AffectedMethod> setters;
  setters.reserve(kFields);
  for (int k = 0; k < kFields; ++k) {
    setters.push_back(AffectedMethod{
        "Wide", MethodSignature{"setF" + std::to_string(k), {"int"}},
        ContextPreparation{}});
  }
  for (int k = 0; k < kFields; ++k) {
    ConstraintRegistration reg;
    reg.constraint = std::make_shared<OclConstraint>(
        "inv" + std::to_string(k), ConstraintType::HardInvariant,
        ConstraintPriority::Tradeable,
        "self.f" + std::to_string(k) + " >= 0");
    reg.context_class = "Wide";
    reg.affected_methods = setters;
    cluster->constraints().register_constraint(std::move(reg));
  }
  analysis::analyze_repository(cluster->constraints(), &cluster->classes());

  for (std::size_t n = 0; n < cfg.nodes; ++n) {
    cluster->node(n).ccmgr().set_pruning(pruning);
    cluster->node(n).ccmgr().set_scheduling(scheduler);
  }
  return cluster;
}

double run_setter_workload(Cluster& cluster, std::vector<ObjectId>& ids) {
  DedisysNode& node = cluster.node(0);
  ids.reserve(kEntities);
  for (std::size_t i = 0; i < kEntities; ++i) {
    TxScope tx(node.tx());
    ids.push_back(node.create(tx.id(), "Wide"));
    tx.commit();
  }
  const SimTime start = cluster.sim().clock.now();
  for (std::size_t i = 0; i < kOps; ++i) {
    TxScope tx(node.tx());
    node.invoke(tx.id(), ids[i % ids.size()],
                "setF" + std::to_string(i % kFields),
                {Value{static_cast<std::int64_t>(i)}});
    tx.commit();
  }
  const SimTime elapsed = cluster.sim().clock.now() - start;
  if (elapsed <= 0) return 0;
  return static_cast<double>(kOps) * 1e6 / static_cast<double>(elapsed);
}

/// Seeds one threat per invariant per entity and reconciles the batch.
void run_reconcile_batch(Cluster& cluster, const std::vector<ObjectId>& ids) {
  for (const ObjectId id : ids) {
    for (int k = 0; k < kFields; ++k) {
      ConsistencyThreat t;
      t.constraint_name = "inv" + std::to_string(k);
      t.context_object = id;
      t.degree = SatisfactionDegree::Uncheckable;
      cluster.threats().store(t);
    }
  }
  cluster.node(0).ccmgr().reconcile(nullptr);
}

struct Row {
  double rate = 0;
  std::size_t validations = 0;
  std::size_t skipped = 0;
  std::size_t scheduled = 0;
};

Row run_configuration(bool pruning, bool scheduler) {
  auto cluster = make_wide_cluster(pruning, scheduler);
  std::vector<ObjectId> ids;
  Row row;
  row.rate = run_setter_workload(*cluster, ids);
  run_reconcile_batch(*cluster, ids);
  const auto& stats = cluster->node(0).ccmgr().stats();
  row.validations = stats.validations;
  row.skipped = stats.evaluations_skipped;
  row.scheduled = stats.reconcile_scheduled;
  return row;
}

}  // namespace
}  // namespace dedisys

int main(int argc, char** argv) {
  using namespace dedisys;
  bench::Session session(argc, argv);

  const Row off = run_configuration(false, false);
  const Row on = run_configuration(true, false);
  const Row sched = run_configuration(true, true);

  bench::print_title(
      "Read-set pruning + reconciliation scheduling: " +
      std::to_string(kFields) + " invariants registered on every setter of"
      " a " + std::to_string(kFields) + "-attribute entity");
  bench::print_header({"configuration", "setter ops/s(sim)", "validations",
                       "evals skipped", "scheduled"});
  bench::print_row("pruning off (exhaustive)",
                   {off.rate, static_cast<double>(off.validations),
                    static_cast<double>(off.skipped),
                    static_cast<double>(off.scheduled)});
  bench::print_row("pruning on (read-set)",
                   {on.rate, static_cast<double>(on.validations),
                    static_cast<double>(on.skipped),
                    static_cast<double>(on.scheduled)});
  bench::print_row("pruning + scheduler",
                   {sched.rate, static_cast<double>(sched.validations),
                    static_cast<double>(sched.skipped),
                    static_cast<double>(sched.scheduled)});
  if (off.rate > 0) {
    std::printf("\nthroughput ratio on/off: %.2fx, evaluations avoided: %zu"
                " of %zu, scheduled threats: %zu\n",
                on.rate / off.rate, on.skipped, off.validations,
                sched.scheduled);
  }
  return 0;
}
