// Read-set pruning benchmark (PR 3).
//
// A "Wide" entity class carries several independent integer attributes,
// each guarded by its own OCL hard invariant that is registered as
// affected by EVERY setter (the conservative registration an application
// writes when it does not want to reason about write-sets itself).
// Exhaustive validation therefore evaluates all invariants on every
// setter call; the static analyzer's read-sets let CCMgr skip all but the
// one invariant that actually reads the written attribute.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "bench/bench_common.h"
#include "constraints/ocl_constraint.h"

namespace dedisys {
namespace {

constexpr int kFields = 8;
constexpr std::size_t kEntities = 16;
constexpr std::size_t kOps = 4000;

std::unique_ptr<Cluster> make_wide_cluster(bool pruning) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  auto cluster = std::make_unique<Cluster>(cfg);

  ClassDescriptor& wide = cluster->classes().define("Wide");
  for (int k = 0; k < kFields; ++k) {
    wide.define_property("f" + std::to_string(k), Value{std::int64_t{0}},
                         "int");
  }

  std::vector<AffectedMethod> setters;
  setters.reserve(kFields);
  for (int k = 0; k < kFields; ++k) {
    setters.push_back(AffectedMethod{
        "Wide", MethodSignature{"setF" + std::to_string(k), {"int"}},
        ContextPreparation{}});
  }
  for (int k = 0; k < kFields; ++k) {
    ConstraintRegistration reg;
    reg.constraint = std::make_shared<OclConstraint>(
        "inv" + std::to_string(k), ConstraintType::HardInvariant,
        ConstraintPriority::Tradeable,
        "self.f" + std::to_string(k) + " >= 0");
    reg.context_class = "Wide";
    reg.affected_methods = setters;
    cluster->constraints().register_constraint(std::move(reg));
  }
  analysis::analyze_repository(cluster->constraints(), &cluster->classes());

  if (!pruning) {
    for (std::size_t n = 0; n < cfg.nodes; ++n) {
      cluster->node(n).ccmgr().set_pruning(false);
    }
  }
  return cluster;
}

double run_setter_workload(Cluster& cluster) {
  DedisysNode& node = cluster.node(0);
  std::vector<ObjectId> ids;
  ids.reserve(kEntities);
  for (std::size_t i = 0; i < kEntities; ++i) {
    TxScope tx(node.tx());
    ids.push_back(node.create(tx.id(), "Wide"));
    tx.commit();
  }
  const SimTime start = cluster.clock().now();
  for (std::size_t i = 0; i < kOps; ++i) {
    TxScope tx(node.tx());
    node.invoke(tx.id(), ids[i % ids.size()],
                "setF" + std::to_string(i % kFields),
                {Value{static_cast<std::int64_t>(i)}});
    tx.commit();
  }
  const SimTime elapsed = cluster.clock().now() - start;
  if (elapsed <= 0) return 0;
  return static_cast<double>(kOps) * 1e6 / static_cast<double>(elapsed);
}

}  // namespace
}  // namespace dedisys

int main(int argc, char** argv) {
  using namespace dedisys;
  bench::Session session(argc, argv);

  auto exhaustive = make_wide_cluster(false);
  auto pruned = make_wide_cluster(true);
  const double rate_off = run_setter_workload(*exhaustive);
  const double rate_on = run_setter_workload(*pruned);

  const auto& stats_off = exhaustive->node(0).ccmgr().stats();
  const auto& stats_on = pruned->node(0).ccmgr().stats();

  bench::print_title(
      "Read-set pruning: " + std::to_string(kFields) +
      " invariants registered on every setter of a " +
      std::to_string(kFields) + "-attribute entity");
  bench::print_header({"configuration", "setter ops/s(sim)", "validations",
                       "evals skipped"});
  bench::print_row("pruning off (exhaustive)",
                   {rate_off, static_cast<double>(stats_off.validations),
                    static_cast<double>(stats_off.evaluations_skipped)});
  bench::print_row("pruning on (read-set)",
                   {rate_on, static_cast<double>(stats_on.validations),
                    static_cast<double>(stats_on.evaluations_skipped)});
  if (rate_off > 0) {
    std::printf("\nthroughput ratio on/off: %.2fx, evaluations avoided: %zu"
                " of %zu\n",
                rate_on / rate_off, stats_on.evaluations_skipped,
                stats_off.validations);
  }
  return 0;
}
