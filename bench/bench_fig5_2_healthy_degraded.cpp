// Figure 5.2 — "No DeDiSys" vs DeDiSys with the SAME number of nodes in
// healthy and degraded mode.
//
// Shape to hold (paper): replication slashes create/setter/delete rates;
// reads stay close to baseline; degraded mode is slightly slower than
// healthy for writes (history capture); accepted threats are the most
// expensive operations, with distinct threats (bad case) far slower than
// identical threats stored once (good case: ~74 ops/s vs ~3 ops/s in the
// paper).
#include "bench/fig5_workload.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  using dedisys::ClusterConfig;
  constexpr std::size_t kN = 400;

  print_title("Figure 5.2 — No DeDiSys vs DeDiSys, same node count (ops/sim-s)");
  print_header(full_rate_columns());

  {  // Standard JBoss AS: no CCM, no replication, single node.
    ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.with_ccm = false;
    cfg.with_replication = false;
    auto cluster = make_eval_cluster(cfg);
    session.observe(*cluster);
    print_full_rates("No DeDiSys (single node)",
                     measure_full(*cluster, 0, kN, false), false);
    session.capture(*cluster, "no_dedisys");
    // Deterministic simulation: every node performs identically, so the
    // three-node average equals the single-node rate.
    print_full_rates("No DeDiSys (avg of 3 nodes)",
                     measure_full(*cluster, 0, kN, false), false);
  }

  {  // DeDiSys healthy with 3 replicated nodes.
    ClusterConfig cfg;
    cfg.nodes = 3;
    auto cluster = make_eval_cluster(cfg);
    session.observe(*cluster);
    print_full_rates("DeDiSys healthy (3 nodes)",
                     measure_full(*cluster, 0, kN, false), false);
    session.capture(*cluster, "healthy");
  }

  {  // DeDiSys degraded with 3 nodes still together (4th node cut off).
    ClusterConfig cfg;
    cfg.nodes = 4;
    auto cluster = make_eval_cluster(cfg);
    session.observe(*cluster);
    cluster->inject(dedisys::fault::split_indices({{0, 1, 2}, {3}}));
    print_full_rates("DeDiSys degraded (3 in partition)",
                     measure_full(*cluster, 0, kN, true), true);
    session.capture(*cluster, "degraded");
  }

  std::printf(
      "\nPaper reference points: baseline getter ~250 ops/s, accepted\n"
      "threats good case ~74 ops/s, bad case ~3 ops/s; degraded writes\n"
      "slightly below healthy writes due to replica history capture.\n");
  return 0;
}
