// Validates a BENCH_*.json result file written by bench::Session --json.
//
// Parses the file with the same obs::Json code that produced it and checks
// the document shape: a "bench" name, a "tables" array of
// {title, columns, rows:[{label, values}]} and a "latencies" object whose
// summaries carry count/p50_us/p95_us/p99_us.  With --require-latencies the
// file must contain at least one latency summary (used by scripts/check.sh
// to assert that percentile export actually happened).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "util/errors.h"

namespace {

using dedisys::obs::Json;

int fail(const std::string& path, const std::string& reason) {
  std::fprintf(stderr, "%s: %s\n", path.c_str(), reason.c_str());
  return 1;
}

bool is_number(const Json& j) {
  return j.type() == Json::Type::Int || j.type() == Json::Type::Double;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool require_latencies = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-latencies") == 0) {
      require_latencies = true;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: json_validate [--require-latencies] <file>\n");
    return 2;
  }

  std::ifstream is(path);
  if (!is) return fail(path, "cannot open");
  std::ostringstream buf;
  buf << is.rdbuf();

  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const dedisys::ConfigError& e) {
    return fail(path, std::string("parse error: ") + e.what());
  }

  if (!doc.contains("bench") ||
      doc.at("bench").type() != Json::Type::String) {
    return fail(path, "missing string field \"bench\"");
  }
  if (!doc.contains("tables") ||
      doc.at("tables").type() != Json::Type::Array) {
    return fail(path, "missing array field \"tables\"");
  }
  for (const Json& table : doc.at("tables").items()) {
    if (!table.contains("title") || !table.contains("columns") ||
        !table.contains("rows")) {
      return fail(path, "table missing title/columns/rows");
    }
    for (const Json& row : table.at("rows").items()) {
      if (!row.contains("label") || !row.contains("values")) {
        return fail(path, "row missing label/values");
      }
    }
  }

  std::size_t summaries = 0;
  if (doc.contains("latencies")) {
    if (doc.at("latencies").type() != Json::Type::Object) {
      return fail(path, "\"latencies\" is not an object");
    }
    for (const auto& [label, registry] : doc.at("latencies").members()) {
      if (registry.type() != Json::Type::Object) {
        return fail(path, "latency block \"" + label + "\" is not an object");
      }
      for (const auto& [key, summary] : registry.members()) {
        for (const char* field : {"count", "p50_us", "p95_us", "p99_us"}) {
          if (!summary.contains(field) || !is_number(summary.at(field))) {
            return fail(path, "latency \"" + label + "/" + key +
                                  "\" missing numeric " + field);
          }
        }
        ++summaries;
      }
    }
  }
  if (require_latencies && summaries == 0) {
    return fail(path, "no latency summaries present");
  }

  std::printf("%s: ok (bench=%s tables=%zu latency summaries=%zu)\n",
              path.c_str(), doc.at("bench").as_string().c_str(),
              doc.at("tables").size(), summaries);
  return 0;
}
