// Validates a BENCH_*.json result file written by bench::Session --json.
//
// Parses the file with the same obs::Json code that produced it and checks
// the document shape: a "bench" name, a "tables" array of
// {title, columns, rows:[{label, values}]} and a "latencies" object whose
// summaries carry count/p50_us/p95_us/p99_us.  With --require-latencies the
// file must contain at least one latency summary (used by scripts/check.sh
// to assert that percentile export actually happened).
//
// With --metrics the file is instead an observability export
// (AdminConsole::metrics_json() / the /metrics servlet): the trace block
// must carry capacity/size/recorded/dropped/events, the "spans" block the
// analyzer digest (traces/traced_events/orphan_events/top with per-phase
// attribution), and "critical_path" an array of hops.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "util/errors.h"

namespace {

using dedisys::obs::Json;

int fail(const std::string& path, const std::string& reason) {
  std::fprintf(stderr, "%s: %s\n", path.c_str(), reason.c_str());
  return 1;
}

bool is_number(const Json& j) {
  return j.type() == Json::Type::Int || j.type() == Json::Type::Double;
}

/// Shape check for the observability export document (--metrics).
int validate_metrics(const std::string& path, const Json& doc) {
  for (const char* block : {"metrics", "latencies", "trace", "spans"}) {
    if (!doc.contains(block) || doc.at(block).type() != Json::Type::Object) {
      return fail(path, std::string("missing object block \"") + block + '"');
    }
  }
  const Json& trace = doc.at("trace");
  for (const char* field : {"capacity", "size", "recorded", "dropped"}) {
    if (!trace.contains(field) || !is_number(trace.at(field))) {
      return fail(path, std::string("trace block missing numeric ") + field);
    }
  }
  if (!trace.contains("events") ||
      trace.at("events").type() != Json::Type::Array) {
    return fail(path, "trace block missing events array");
  }
  const Json& spans = doc.at("spans");
  for (const char* field : {"traces", "traced_events", "orphan_events"}) {
    if (!spans.contains(field) || !is_number(spans.at(field))) {
      return fail(path, std::string("spans block missing numeric ") + field);
    }
  }
  if (!spans.contains("top") || spans.at("top").type() != Json::Type::Array) {
    return fail(path, "spans block missing top array");
  }
  for (const Json& entry : spans.at("top").items()) {
    for (const char* field : {"trace", "duration_us", "spans", "events"}) {
      if (!entry.contains(field) || !is_number(entry.at(field))) {
        return fail(path, std::string("spans top entry missing ") + field);
      }
    }
    if (!entry.contains("phases") ||
        entry.at("phases").type() != Json::Type::Object) {
      return fail(path, "spans top entry missing phases object");
    }
  }
  if (!doc.contains("critical_path") ||
      doc.at("critical_path").type() != Json::Type::Array) {
    return fail(path, "missing array block \"critical_path\"");
  }
  for (const Json& hop : doc.at("critical_path").items()) {
    for (const char* field : {"span", "start_us", "end_us", "self_us"}) {
      if (!hop.contains(field) || !is_number(hop.at(field))) {
        return fail(path, std::string("critical_path hop missing ") + field);
      }
    }
  }
  // Consistency: the top list is bounded by the trace count, and every
  // traced event the analyzer saw is in the exported ring.
  if (spans.at("top").size() > 0 && spans.at("traces").as_int() == 0) {
    return fail(path, "spans top non-empty but traces == 0");
  }
  std::printf("%s: ok (metrics export, traces=%lld events=%zu hops=%zu)\n",
              path.c_str(),
              static_cast<long long>(spans.at("traces").as_int()),
              trace.at("events").size(), doc.at("critical_path").size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool require_latencies = false;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-latencies") == 0) {
      require_latencies = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: json_validate [--require-latencies|--metrics] "
                 "<file>\n");
    return 2;
  }

  std::ifstream is(path);
  if (!is) return fail(path, "cannot open");
  std::ostringstream buf;
  buf << is.rdbuf();

  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const dedisys::ConfigError& e) {
    return fail(path, std::string("parse error: ") + e.what());
  }

  if (metrics) return validate_metrics(path, doc);

  if (!doc.contains("bench") ||
      doc.at("bench").type() != Json::Type::String) {
    return fail(path, "missing string field \"bench\"");
  }
  if (!doc.contains("tables") ||
      doc.at("tables").type() != Json::Type::Array) {
    return fail(path, "missing array field \"tables\"");
  }
  for (const Json& table : doc.at("tables").items()) {
    if (!table.contains("title") || !table.contains("columns") ||
        !table.contains("rows")) {
      return fail(path, "table missing title/columns/rows");
    }
    for (const Json& row : table.at("rows").items()) {
      if (!row.contains("label") || !row.contains("values")) {
        return fail(path, "row missing label/values");
      }
    }
  }

  std::size_t summaries = 0;
  if (doc.contains("latencies")) {
    if (doc.at("latencies").type() != Json::Type::Object) {
      return fail(path, "\"latencies\" is not an object");
    }
    for (const auto& [label, registry] : doc.at("latencies").members()) {
      if (registry.type() != Json::Type::Object) {
        return fail(path, "latency block \"" + label + "\" is not an object");
      }
      for (const auto& [key, summary] : registry.members()) {
        for (const char* field : {"count", "p50_us", "p95_us", "p99_us"}) {
          if (!summary.contains(field) || !is_number(summary.at(field))) {
            return fail(path, "latency \"" + label + "/" + key +
                                  "\" missing numeric " + field);
          }
        }
        ++summaries;
      }
    }
  }
  if (require_latencies && summaries == 0) {
    return fail(path, "no latency summaries present");
  }

  std::printf("%s: ok (bench=%s tables=%zu latency summaries=%zu)\n",
              path.c_str(), doc.at("bench").as_string().c_str(),
              doc.at("tables").size(), summaries);
  return 0;
}
