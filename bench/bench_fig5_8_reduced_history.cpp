// Figure 5.8 — Improvements through reduced consistency threat history
// (Section 5.5.1).
//
// Five iterations of 200 degraded-mode operations on 200 objects, each
// producing a threat.  Under "identical threats only once" the first
// iteration persists the threats and the following iterations only pay a
// duplicate-detecting read; the full-history policy persists (and
// replicates) every occurrence.  Paper: ~4 ops/s (full) vs ~15 ops/s
// (identical-once) from iteration 2 on.
#include "bench/bench_common.h"

namespace dedisys::bench {
namespace {

std::vector<double> run(dedisys::ThreatHistoryPolicy policy) {
  using namespace dedisys;
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.threat_policy = policy;
  auto cluster = make_eval_cluster(cfg);

  constexpr std::size_t kObjects = 200;
  std::vector<ObjectId> ids;
  (void)Workload::create(*cluster, 0, kObjects, ids);
  cluster->inject(fault::split_indices({{0, 1}, {2}}));

  scenarios::AcceptAllNegotiation accept_all;
  std::vector<double> per_iteration;
  for (int iter = 0; iter < 5; ++iter) {
    per_iteration.push_back(Workload::invoke(*cluster, 0, kObjects, ids,
                                             "emptyThreat", {}, &accept_all));
  }
  return per_iteration;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  print_title("Figure 5.8 — identical-threat improvement (ops/sim-s)");

  const auto full = run(dedisys::ThreatHistoryPolicy::FullHistory);
  const auto once = run(dedisys::ThreatHistoryPolicy::IdenticalOnce);

  print_header({"iteration", "full history", "identical once", "speedup"});
  for (std::size_t i = 0; i < full.size(); ++i) {
    print_row("Iteration " + std::to_string(i + 1),
              {full[i], once[i], once[i] / full[i]}, "%16.2f");
  }
  std::printf(
      "\nShape to hold: from iteration 2 on, identical-once clearly beats\n"
      "full history (paper: ~15 vs ~4 ops/s).\n");
  return 0;
}
