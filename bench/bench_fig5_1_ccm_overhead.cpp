// Figure 5.1 — Overhead of explicit constraint consistency management.
//
// Single node, no replication: the same operation mix with and without the
// CCMgr service.  The paper reports a drop to about 87–99% of baseline
// throughput ("almost negligible").
#include "bench/bench_common.h"
#include "middleware/admin.h"
#include "scenarios/flight.h"

namespace dedisys::bench {
namespace {

struct Rates {
  double create, setter, getter, empty, del;
};

Rates measure(bool with_ccm) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.with_replication = false;
  cfg.with_ccm = with_ccm;
  auto cluster = make_eval_cluster(cfg);

  constexpr std::size_t kN = 1000;
  Rates r{};
  std::vector<ObjectId> ids;
  r.create = Workload::create(*cluster, 0, kN, ids);
  // Average of same-object and different-object access (Section 5.1).
  const Value payload{std::string{"x"}};
  const std::vector<ObjectId> one{ids.front()};
  r.setter = (Workload::invoke(*cluster, 0, kN, one, "setValue", {payload}) +
              Workload::invoke(*cluster, 0, kN, ids, "setValue", {payload})) /
             2;
  r.getter = (Workload::invoke(*cluster, 0, kN, one, "getValue") +
              Workload::invoke(*cluster, 0, kN, ids, "getValue")) /
             2;
  r.empty = (Workload::invoke(*cluster, 0, kN, one, "emptyPlain") +
             Workload::invoke(*cluster, 0, kN, ids, "emptyPlain")) /
            2;
  r.del = Workload::destroy(*cluster, 0, ids);
  return r;
}

// Supplementary: per-invocation validation cost with the version-stamped
// memo on vs off.  A fleet of unchanged flights is revalidated repeatedly
// (the admin / reconciliation shape); the memo skips every re-evaluation
// whose read-set fingerprint is unchanged.
double measure_memo_revalidation(bool memo_on) {
  static constexpr const char* kTicketXml = R"(<constraints>
  <constraint name="TicketConstraint" type="HARD" priority="RELAXABLE"
              minSatisfactionDegree="POSSIBLY_SATISFIED">
    <ocl>self.soldTickets &lt;= self.seats</ocl>
    <context-class>Flight</context-class>
    <affected-methods>
      <affected-method>
        <objectMethod name="sellTickets">
          <objectClass>Flight</objectClass>
          <arguments><argument>int</argument></arguments>
        </objectMethod>
      </affected-method>
    </affected-methods>
  </constraint>
</constraints>)";

  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.with_replication = false;
  cfg.flags.validation_memo = memo_on;
  Cluster cluster(cfg);
  AdminConsole admin(cluster);
  scenarios::FlightBooking::define_classes(cluster.classes());
  admin.deploy_constraints(kTicketXml);

  DedisysNode& node = cluster.node(0);
  std::vector<ObjectId> flights;
  for (std::size_t i = 0; i < 50; ++i) {
    flights.push_back(scenarios::FlightBooking::create_flight(node, 100));
  }
  const SimTime start = cluster.sim().clock.now();
  constexpr std::size_t kSweeps = 20;
  for (std::size_t sweep = 0; sweep < kSweeps; ++sweep) {
    node.ccmgr().revalidate_for_objects("TicketConstraint", flights);
  }
  const SimTime elapsed = cluster.sim().clock.now() - start;
  if (elapsed <= 0) return 0;
  return static_cast<double>(kSweeps * flights.size()) * 1e6 /
         static_cast<double>(elapsed);
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  print_title("Figure 5.1 — overhead of explicit constraint consistency management");
  const Rates with = measure(true);
  const Rates without = measure(false);

  print_header({"operation", "with CCM", "without CCM", "ratio %",
                "paper ratio %"});
  const auto row = [](const char* name, double w, double wo, double paper) {
    print_row(name, {w, wo, 100.0 * w / wo, paper});
  };
  row("Create", with.create, without.create, 87);
  row("Setter (avg.)", with.setter, without.setter, 93);
  row("Getter (avg.)", with.getter, without.getter, 95);
  row("Empty (avg.)", with.empty, without.empty, 95);
  row("Delete", with.del, without.del, 99);
  std::printf(
      "\nShape to hold: CCM costs only a few percent (paper: 87-99%% of\n"
      "baseline, \"almost negligible\"); all rates in ops per simulated "
      "second.\n");

  print_title("Supplementary — revalidation with validation memo");
  const double memo_off = measure_memo_revalidation(false);
  const double memo_on = measure_memo_revalidation(true);
  print_header({"mode", "revalidations/s"});
  print_row("memo off", {memo_off});
  print_row("memo on", {memo_on});
  std::printf(
      "\nShape to hold: memo-on revalidation of unchanged objects is\n"
      "cheaper per invocation than memo-off (here %.1fx).\n",
      memo_on / memo_off);
  return 0;
}
