// Figure 5.4 — Replication effects on different operations (1–4 nodes).
//
// Shape to hold (paper): update rates (create/setter/delete) drop sharply
// when the first backup is added and slightly further per additional node;
// local read rates stay roughly constant per node so aggregate read
// capacity grows with the cluster; the "multicast + tx handling" case
// bounds achievable update throughput.
#include "bench/bench_common.h"

namespace dedisys::bench {
namespace {

/// Paper's theoretical ceiling: transaction + ping/pong multicast rounds.
double multicast_tx_ceiling(Cluster& cluster, std::size_t n) {
  DedisysNode& node = cluster.node(0);
  const auto members = cluster.sim().network.nodes();
  const SimTime start = cluster.sim().clock.now();
  for (std::size_t i = 0; i < n; ++i) {
    TxScope tx(node.tx());
    cluster.gc().multicast(node.id(), members, [](dedisys::NodeId) {});
    tx.commit();
  }
  return static_cast<double>(n) * 1e6 /
         static_cast<double>(cluster.sim().clock.now() - start);
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  using dedisys::ClusterConfig;
  using dedisys::ObjectId;
  using dedisys::Value;
  constexpr std::size_t kN = 400;

  print_title("Figure 5.4 — replication effects on operations (ops/sim-s)");
  print_header({"configuration", "Create", "Setter", "Getter", "Empty",
                "Delete", "AggReads", "Mcast+Tx"});

  {
    ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.with_ccm = false;
    cfg.with_replication = false;
    auto cluster = make_eval_cluster(cfg);
    std::vector<ObjectId> ids;
    const double create = Workload::create(*cluster, 0, kN, ids);
    const Value payload{std::string{"x"}};
    const double setter =
        Workload::invoke(*cluster, 0, kN, ids, "setValue", {payload});
    const double getter = Workload::invoke(*cluster, 0, kN, ids, "getValue");
    const double empty = Workload::invoke(*cluster, 0, kN, ids, "emptyPlain");
    const double del = Workload::destroy(*cluster, 0, ids);
    print_row("No DeDiSys", {create, setter, getter, empty, del, getter, 0});
  }

  for (std::size_t nodes = 1; nodes <= 4; ++nodes) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    auto cluster = make_eval_cluster(cfg);
    std::vector<ObjectId> ids;
    const double create = Workload::create(*cluster, 0, kN, ids);
    const Value payload{std::string{"x"}};
    const double setter =
        Workload::invoke(*cluster, 0, kN, ids, "setValue", {payload});
    const double getter = Workload::invoke(*cluster, 0, kN, ids, "getValue");
    const double empty = Workload::invoke(*cluster, 0, kN, ids, "emptyPlain");
    const double del = Workload::destroy(*cluster, 0, ids);
    // Reads are purely local; every node can serve them concurrently, so
    // aggregate read capacity is nodes x per-node rate.
    const double agg_reads = static_cast<double>(nodes) * getter;
    const double ceiling = multicast_tx_ceiling(*cluster, kN);
    print_row("DeDiSys " + std::to_string(nodes) + " node(s)",
              {create, setter, getter, empty, del, agg_reads, ceiling});
  }

  std::printf(
      "\nPaper reference: 1-node DeDiSys create/setter/delete drop to\n"
      "43%%/57%%/71%% of baseline; adding the first backup roughly halves\n"
      "update rates again; reads reach ~227%% of baseline at 4 nodes.\n");
  return 0;
}
