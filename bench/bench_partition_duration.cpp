// Partition-duration sweep — "the effort required for reconciliation ...
// is most probably only worth its costs in the case of longer lasting
// partitions" (Section 5.2).
//
// For increasing degraded-period lengths, compares the availability gain
// of the balancing approach (extra operations committed vs. the blocking
// primary-backup baseline) against the reconciliation bill.  Shape to
// hold: the reconciliation cost per gained operation FALLS as partitions
// last longer (identical threats amortize; the fixed reconciliation
// machinery is paid once), so longer partitions make the approach
// worthwhile.
#include "bench/bench_common.h"

namespace dedisys::bench {
namespace {

struct Sweep {
  std::size_t degraded_ops;
  std::size_t gained_ops = 0;        // committed ops PB would have lost
  double reconciliation_ms = 0;      // simulated milliseconds
  double cost_per_gained_op_ms = 0;
};

Sweep run(std::size_t degraded_ops) {
  using namespace dedisys;
  ClusterConfig cfg;
  cfg.nodes = 3;
  auto cluster = make_eval_cluster(cfg);
  constexpr std::size_t kObjects = 50;
  std::vector<ObjectId> ids;
  (void)Workload::create(*cluster, 0, kObjects, ids);

  cluster->inject(fault::split_indices({{0, 1}, {2}}));
  scenarios::AcceptAllNegotiation accept_all;
  Sweep out;
  out.degraded_ops = degraded_ops;
  DedisysNode& minority = cluster->node(2);
  for (std::size_t i = 0; i < degraded_ops; ++i) {
    // Operations in the minority partition: primary-backup would block
    // every one of them; the balancing approach commits them as threats.
    const ObjectId target = ids[i % ids.size()];
    try {
      TxScope tx(minority.tx());
      minority.ccmgr().register_negotiation_handler(
          tx.id(),
          std::shared_ptr<NegotiationHandler>(&accept_all, [](auto*) {}));
      minority.invoke(tx.id(), target, "emptyThreat");
      tx.commit();
      ++out.gained_ops;
    } catch (const DedisysError&) {
    }
  }

  cluster->inject(fault::Heal{});
  const SimTime t0 = cluster->sim().clock.now();
  (void)cluster->reconcile();
  out.reconciliation_ms =
      static_cast<double>(cluster->sim().clock.now() - t0) / 1000.0;
  out.cost_per_gained_op_ms =
      out.gained_ops > 0 ? out.reconciliation_ms / out.gained_ops : 0;
  return out;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  print_title("Partition-duration sweep — when reconciliation pays off");
  print_header({"degraded ops", "gained ops", "reconcile ms",
                "ms / gained op"});
  for (std::size_t ops : {10u, 50u, 200u, 800u}) {
    const Sweep s = run(ops);
    print_row(std::to_string(s.degraded_ops),
              {double(s.gained_ops), s.reconciliation_ms,
               s.cost_per_gained_op_ms},
              "%16.2f");
  }
  std::printf(
      "\nShape to hold: the per-operation reconciliation cost decreases as\n"
      "the degraded period grows (identical threats amortize), matching the\n"
      "paper's conclusion that the approach pays off for longer-lasting\n"
      "partitions.\n");
  return 0;
}
