// Conclusion sweep — when does the DeDiSys approach pay off?
//
// The dissertation's abstract states the middleware "is most worth its
// costs in systems where (i) the read-to-write ratio is high, (ii) the
// number of replicated nodes in the system is small, and/or (iii)
// write-performance is not the limiting factor."  This bench sweeps
// read-share x cluster size, measures per-operation costs through the real
// middleware, and composes them into aggregate service capacity:
// replicated reads are served locally on every node in parallel, while
// writes serialize through the (propagating) primary.
#include "bench/bench_common.h"

namespace dedisys::bench {
namespace {

struct OpCosts {
  double read_us = 0;
  double write_us = 0;
};

/// Measures per-op simulated costs (microseconds) on a cluster.
OpCosts measure_costs(std::size_t nodes, bool with_dedisys) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.with_replication = with_dedisys;
  cfg.with_ccm = with_dedisys;
  auto cluster = make_eval_cluster(cfg);
  std::vector<ObjectId> ids;
  (void)Workload::create(*cluster, 0, 200, ids);

  OpCosts costs;
  const double read_rate =
      Workload::invoke(*cluster, 0, 400, ids, "getValue");
  const double write_rate = Workload::invoke(*cluster, 0, 400, ids,
                                             "setValue",
                                             {Value{std::string{"x"}}});
  costs.read_us = 1e6 / read_rate;
  costs.write_us = 1e6 / write_rate;
  return costs;
}

/// Aggregate capacity (ops/s) for a workload with read share `r`:
/// reads scale across `nodes` local replicas; writes bottleneck on the
/// primary's write path.
double capacity(const OpCosts& c, double r, std::size_t nodes) {
  const double read_capacity =
      static_cast<double>(nodes) * 1e6 / c.read_us;          // parallel local
  const double write_capacity = 1e6 / c.write_us;            // primary-bound
  // A workload with shares (r, 1-r) saturates whichever resource first.
  return std::min(read_capacity / r, write_capacity / (1.0 - r + 1e-12));
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  print_title(
      "Conclusion sweep — aggregate capacity: DeDiSys vs single-node "
      "baseline");

  const OpCosts baseline = measure_costs(1, /*with_dedisys=*/false);
  std::printf("baseline per-op cost: read %.0f us, write %.0f us\n",
              baseline.read_us, baseline.write_us);

  print_header({"read share \\ nodes", "2 nodes", "3 nodes", "4 nodes",
                "5 nodes"});
  for (double r : {0.50, 0.80, 0.95, 0.99}) {
    std::vector<double> ratios;
    for (std::size_t nodes : {2u, 3u, 4u, 5u}) {
      const OpCosts dedisys = measure_costs(nodes, /*with_dedisys=*/true);
      const double base_cap = capacity(baseline, r, 1);
      const double dedi_cap = capacity(dedisys, r, nodes);
      ratios.push_back(dedi_cap / base_cap);
    }
    char label[64];
    std::snprintf(label, sizeof label, "%.0f%% reads (capacity ratio)",
                  r * 100);
    print_row(label, ratios, "%16.2f");
  }

  std::printf(
      "\nShape to hold (abstract): ratios > 1 only where the read share is\n"
      "high; adding nodes helps read-heavy workloads but never write-heavy\n"
      "ones (writes serialize through synchronous propagation).\n");
  return 0;
}
