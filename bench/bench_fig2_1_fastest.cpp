// Figure 2.1 — Fastest constraint-validation approaches (wall-clock).
//
// Overhead factors relative to handcrafted constraints.  Shape to hold:
// inline aspects cost about the same as handcrafted checks; the
// optimized-repository interceptor approaches are roughly an order of
// magnitude above; within them JBoss-AOP-style interception is cheapest
// and AspectJ-style (costly reflective parameter extraction) dearest.
#include <cstdio>

#include "bench/session.h"
#include "validation/harness.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::validation;
  std::printf("\n=== Figure 2.1 — fastest approaches (overhead vs handcrafted) ===\n");
  const double base = measure_approach(Approach::Handcrafted);

  struct Entry {
    Approach approach;
    double paper;
  };
  const Entry entries[] = {
      {Approach::Handcrafted, 1.00},
      {Approach::InPlaceGenerated, 0.0},   // §2.1.2, not measured in paper
      {Approach::WrapperGenerated, 0.0},   // §2.1.2, not measured in paper
      {Approach::AspectInline, 1.06},
      {Approach::AopRepoOpt, 7.99},
      {Approach::ProxyRepoOpt, 9.54},
      {Approach::AspectRepoOpt, 10.86},
  };

  std::printf("%-24s%14s%12s%12s\n", "approach", "ns/run", "measured",
              "paper");
  dedisys::bench::report_table("Figure 2.1 — fastest approaches",
                               {"approach", "ns/run", "measured", "paper"});
  for (const Entry& e : entries) {
    // The baseline row reuses the baseline measurement (ratio exactly 1).
    const double t = e.approach == Approach::Handcrafted
                         ? base
                         : measure_approach(e.approach);
    if (e.paper > 0) {
      std::printf("%-24s%14.0f%11.2fx%11.2fx\n",
                  to_string(e.approach).c_str(), t, t / base, e.paper);
    } else {
      std::printf("%-24s%14.0f%11.2fx%12s\n", to_string(e.approach).c_str(),
                  t, t / base, "-");
    }
    dedisys::bench::report_row(to_string(e.approach),
                               {t, t / base, e.paper});
  }
  std::printf(
      "\nNote: absolute factors differ from the paper because the plain-C++\n"
      "baseline is far faster than JIT-compiled Java; the ordering and the\n"
      "qualitative gaps are the reproduced result (see EXPERIMENTS.md).\n");
  return 0;
}
