// Wall-clock throughput/latency of the middleware on the threaded runtime
// backend — the repo's first real-hardware number (everything else in
// bench/ reports simulated time).
//
// The load is described by a bench::WorkloadSpec (the same vocabulary the
// sharded saturation bench uses): each client thread walks a precomputed
// schedule of arrival timestamps at the offered per-client rate and
// measures every operation from its SCHEDULED arrival to completion, so
// queueing delay from a saturated kernel lock is charged to the operations
// it actually delays (no coordinated omission).  Clients drive disjoint
// flights through distinct nodes; per-thread histograms are merged after
// the run.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/session.h"
#include "middleware/cluster.h"
#include "obs/histogram.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;
using Clock = std::chrono::steady_clock;

struct LoadPoint {
  double offered_ops_s = 0;   ///< total scheduled arrival rate
  double achieved_ops_s = 0;  ///< completions / wall time
  obs::LatencySummary latency;
};

LoadPoint run_load(const bench::WorkloadSpec& spec) {
  ClusterConfig cfg;
  cfg.nodes = spec.clients;
  cfg.backend = RuntimeBackend::Threaded;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());

  const std::size_t per_client = spec.per_client();
  std::vector<ObjectId> flights;
  for (std::size_t c = 0; c < spec.clients; ++c) {
    flights.push_back(FlightBooking::create_flight(
        cluster.node(0), static_cast<std::int64_t>(per_client) + 1));
  }

  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / spec.per_client_rate()));
  std::vector<obs::LatencyHistogram> histograms(spec.clients);
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < spec.clients; ++c) {
    clients.emplace_back([&, c] {
      DedisysNode& node = cluster.node(c);
      const ObjectId flight = flights[c];
      for (std::size_t i = 0; i < per_client; ++i) {
        const Clock::time_point scheduled =
            start + (static_cast<std::int64_t>(i) + 1) * interval;
        std::this_thread::sleep_until(scheduled);  // no-op once behind
        FlightBooking::sell(node, flight, 1);
        histograms[c].record(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - scheduled)
                .count());
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  obs::LatencyHistogram merged;
  for (const auto& h : histograms) merged.merge(h);

  LoadPoint out;
  out.offered_ops_s = spec.arrival_rate;
  out.achieved_ops_s =
      static_cast<double>(spec.clients * per_client) / wall_s;
  out.latency = obs::summarize(merged);
  return out;
}

int run_bench() {
  bench::print_title(
      "Wall-clock sell() throughput — threaded backend, open-loop");
  bench::print_header({"offered ops/s", "achieved ops/s", "p50 us", "p95 us",
                       "p99 us", "max us"});
  bench::WorkloadSpec spec;
  spec.clients = 3;
  spec.requests = 3 * 400;
  for (const double rate : {200.0, 500.0, 1000.0, 2000.0}) {
    spec.arrival_rate = rate * static_cast<double>(spec.clients);
    const LoadPoint p = run_load(spec);
    bench::print_row(std::to_string(static_cast<int>(p.offered_ops_s)),
                     {p.offered_ops_s, p.achieved_ops_s, p.latency.p50,
                      p.latency.p95, p.latency.p99,
                      static_cast<double>(p.latency.max)});
  }
  return 0;
}

}  // namespace
}  // namespace dedisys

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  return dedisys::run_bench();
}
