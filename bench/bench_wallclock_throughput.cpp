// Wall-clock throughput/latency of the middleware on the threaded runtime
// backend — the repo's first real-hardware number (everything else in
// bench/ reports simulated time).
//
// Open-loop load: each client thread walks a precomputed schedule of
// arrival timestamps at the offered rate and measures every operation
// from its SCHEDULED arrival to completion, so queueing delay from a
// saturated kernel lock is charged to the operations it actually delays
// (no coordinated omission).  Clients drive disjoint flights through
// distinct nodes; per-thread histograms are merged after the run.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/session.h"
#include "middleware/cluster.h"
#include "obs/histogram.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kClients = 3;
constexpr std::size_t kOpsPerClient = 400;

struct LoadPoint {
  double offered_ops_s = 0;   ///< total scheduled arrival rate
  double achieved_ops_s = 0;  ///< completions / wall time
  obs::LatencySummary latency;
};

LoadPoint run_load(double per_client_ops_s) {
  ClusterConfig cfg;
  cfg.nodes = kClients;
  cfg.backend = RuntimeBackend::Threaded;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());

  std::vector<ObjectId> flights;
  for (std::size_t c = 0; c < kClients; ++c) {
    flights.push_back(FlightBooking::create_flight(
        cluster.node(0), static_cast<std::int64_t>(kOpsPerClient) + 1));
  }

  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / per_client_ops_s));
  std::vector<obs::LatencyHistogram> histograms(kClients);
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      DedisysNode& node = cluster.node(c);
      const ObjectId flight = flights[c];
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const Clock::time_point scheduled =
            start + (static_cast<std::int64_t>(i) + 1) * interval;
        std::this_thread::sleep_until(scheduled);  // no-op once behind
        FlightBooking::sell(node, flight, 1);
        histograms[c].record(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - scheduled)
                .count());
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  obs::LatencyHistogram merged;
  for (const auto& h : histograms) merged.merge(h);

  LoadPoint out;
  out.offered_ops_s = per_client_ops_s * static_cast<double>(kClients);
  out.achieved_ops_s =
      static_cast<double>(kClients * kOpsPerClient) / wall_s;
  out.latency = obs::summarize(merged);
  return out;
}

int run_bench() {
  bench::print_title(
      "Wall-clock sell() throughput — threaded backend, open-loop");
  bench::print_header({"offered ops/s", "achieved ops/s", "p50 us", "p95 us",
                       "p99 us", "max us"});
  for (const double rate : {200.0, 500.0, 1000.0, 2000.0}) {
    const LoadPoint p = run_load(rate);
    bench::print_row(std::to_string(static_cast<int>(p.offered_ops_s)),
                     {p.offered_ops_s, p.achieved_ops_s, p.latency.p50,
                      p.latency.p95, p.latency.p99,
                      static_cast<double>(p.latency.max)});
  }
  return 0;
}

}  // namespace
}  // namespace dedisys

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  return dedisys::run_bench();
}
