// Saturation/shedding curve of the sharded front door.
//
// An open-loop workload — arrivals scheduled at a fixed offered rate,
// never waiting for service — drives Requests from a large simulated
// client population (default one million client ids) against a sharded
// cluster.  The server pumps admission batches between arrivals; once the
// offered rate exceeds the measured service capacity the queues fill, the
// required admission fee escalates quadratically (rippled TxQ style) and
// the overload turns into explicit, attributed shedding instead of
// unbounded queueing delay.  Each sweep point reports achieved rate,
// shed counts by reason and the queueing-delay percentiles.
//
// Everything runs in simulated time, so the emitted table (and the --json
// report committed as BENCH_shard_saturation.json) is deterministic.
//
// Usage:
//   bench_shard_saturation [--nodes N] [--shards N] [--clients N]
//                          [--ops N] [--objects N] [--seed N] [--smoke]
//                          [--json <path>]
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/session.h"
#include "middleware/cluster.h"
#include "obs/histogram.h"
#include "shard/request.h"

namespace dedisys {
namespace {

struct SweepOptions {
  std::size_t nodes = 8;
  std::size_t shards = 4;
  std::size_t objects_per_shard = 4;
  bench::WorkloadSpec spec;  ///< clients / requests-per-point / mixes
};

struct SweepPoint {
  double multiplier = 0;      ///< offered rate as a fraction of capacity
  double offered_ops_s = 0;   ///< scheduled arrival rate (simulated)
  double achieved_ops_s = 0;  ///< applied / elapsed simulated time
  std::size_t submitted = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t shed_fee = 0;
  std::size_t shed_queue_full = 0;
  std::size_t evicted = 0;
  std::size_t forwarded = 0;
  obs::LatencySummary queueing;  ///< submit -> apply completion, us
};

std::unique_ptr<Cluster> make_sharded_cluster(const SweepOptions& opt) {
  ClusterConfig cfg;
  cfg.nodes = opt.nodes;
  cfg.shards = opt.shards;
  auto cluster = bench::make_eval_cluster(cfg);
  return cluster;
}

/// Creates `per_shard` entities on every shard through the front door and
/// returns them grouped by owning shard.
std::vector<std::vector<ObjectId>> populate(Cluster& cluster,
                                            std::size_t per_shard) {
  const std::size_t shard_count = cluster.shards().shard_count();
  std::vector<std::vector<ObjectId>> by_shard(shard_count);
  shard::ShardId current = 0;
  cluster.front_door().set_outcome_sink(
      [&by_shard, &current](const shard::Outcome& o) {
        if (o.committed) by_shard[current].push_back(o.created);
      });
  std::uint64_t key = 0;
  for (shard::ShardId s = 0; s < shard_count; ++s) {
    current = s;
    for (std::size_t i = 0; i < per_shard; ++i) {
      while (cluster.shards().shard_of_key(key) != s) ++key;
      shard::Request req;
      req.op = shard::RequestOp::Create;
      req.class_name = "TestEntity";
      req.client = key++;
      cluster.submit(std::move(req));
      cluster.front_door().drain();  // apply now, while `current` is right
    }
  }
  cluster.front_door().set_outcome_sink(nullptr);
  return by_shard;
}

shard::Request next_request(
    const SweepOptions& opt, Rng& rng,
    const std::vector<std::vector<ObjectId>>& objects) {
  const bench::WorkloadSpec& spec = opt.spec;
  const std::size_t shard = spec.draw_shard(rng, objects.size());
  shard::Request req;
  req.op = shard::RequestOp::Invoke;
  req.target = objects[shard][rng.below(objects[shard].size())];
  if (spec.draw_write(rng)) {
    req.method = "setValue";
    req.args = {Value{"w" + std::to_string(rng.below(1000))}};
  } else {
    req.method = "getValue";
  }
  req.priority = spec.draw_priority(rng);
  // Clients bid 1..8x the base fee; under escalation the low bids shed
  // first, so the fee distribution shapes the shedding curve.
  req.fee = 10 * (1 + rng.below(8));
  req.client = spec.draw_client(rng);
  return req;
}

/// Closed-loop service-capacity probe: keeps every shard's queue shallow
/// (submit, pump every batch) and measures applied ops per simulated
/// second.  The sweep offers multiples of this rate.
double measure_capacity(const SweepOptions& opt) {
  auto cluster = make_sharded_cluster(opt);
  const auto objects = populate(*cluster, opt.objects_per_shard);
  Rng rng(opt.spec.seed ^ 0xCA11B8A7E5ULL);
  const std::size_t probe_ops = 512;
  const SimTime start = cluster->runtime().now();
  std::size_t applied = 0;
  for (std::size_t i = 0; i < probe_ops; ++i) {
    shard::Request req = next_request(opt, rng, objects);
    req.fee = 1000;  // never fee-shed the probe
    cluster->submit(std::move(req));
    if (i % cluster->front_door().policy().batch_size == 0) {
      applied += cluster->pump();
    }
  }
  applied += cluster->front_door().drain();
  const SimTime elapsed = cluster->runtime().now() - start;
  if (elapsed <= 0 || applied == 0) return 1000.0;
  return static_cast<double>(applied) * 1e6 / static_cast<double>(elapsed);
}

SweepPoint run_point(const SweepOptions& opt, double multiplier,
                     double capacity_ops_s) {
  auto cluster = make_sharded_cluster(opt);
  const auto objects = populate(*cluster, opt.objects_per_shard);
  shard::FrontDoor& door = cluster->front_door();
  SimClock& clock = cluster->sim().clock;

  obs::LatencyHistogram queueing;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  door.set_outcome_sink([&](const shard::Outcome& o) {
    if (o.shed != shard::ShedReason::None) return;  // eviction outcomes
    queueing.record(o.completed_at - o.submitted_at);
    if (o.committed) {
      ++committed;
    } else {
      ++aborted;
    }
  });

  const double offered = multiplier * capacity_ops_s;
  const double gap_us = 1e6 / offered;
  Rng rng(opt.spec.seed ^ (0x5EEDULL * static_cast<std::uint64_t>(
                                           multiplier * 1000.0)));
  const SimTime phase_start = clock.now();
  for (std::size_t i = 0; i < opt.spec.requests; ++i) {
    // Open loop: the arrival happens at its scheduled time regardless of
    // how far behind the server is.  Between arrivals the server pumps.
    const SimTime arrival =
        phase_start + static_cast<SimTime>(static_cast<double>(i) * gap_us);
    while (clock.now() < arrival) {
      if (door.pump() == 0) {
        clock.advance_to(arrival);  // idle: nothing queued anywhere
      }
    }
    cluster->submit(next_request(opt, rng, objects));
  }
  door.drain();
  const SimTime elapsed = clock.now() - phase_start;
  door.set_outcome_sink(nullptr);

  const shard::FrontDoor::ShardStats totals = door.totals();
  SweepPoint p;
  p.multiplier = multiplier;
  p.offered_ops_s = offered;
  p.achieved_ops_s =
      elapsed > 0 ? static_cast<double>(totals.applied) * 1e6 /
                        static_cast<double>(elapsed)
                  : 0;
  p.submitted = totals.submitted;
  p.committed = committed;
  p.aborted = aborted;
  p.shed_fee = totals.shed_fee;
  p.shed_queue_full = totals.shed_queue_full + totals.evicted;
  p.evicted = totals.evicted;
  p.forwarded = totals.forwarded;
  p.queueing = obs::summarize(queueing);
  return p;
}

int run_bench(const SweepOptions& opt,
              const std::vector<double>& multipliers) {
  const double capacity = measure_capacity(opt);
  bench::print_title(
      "Front-door saturation — " + std::to_string(opt.shards) + " shards, " +
      std::to_string(opt.nodes) + " nodes, " +
      std::to_string(opt.spec.clients) + " clients, " +
      std::to_string(opt.spec.requests) + " req/point (capacity " +
      std::to_string(static_cast<int>(capacity)) + " ops/sim-s)");
  bench::print_header({"offered/capacity", "offered/s", "achieved/s",
                       "committed", "shed fee", "shed full", "fwd",
                       "q p50 us", "q p95 us", "q p99 us"});

  bool saw_shedding = false;
  bool low_rate_clean = false;
  for (const double m : multipliers) {
    const SweepPoint p = run_point(opt, m, capacity);
    bench::print_row(std::to_string(m),
                     {p.offered_ops_s, p.achieved_ops_s,
                      static_cast<double>(p.committed),
                      static_cast<double>(p.shed_fee),
                      static_cast<double>(p.shed_queue_full),
                      static_cast<double>(p.forwarded), p.queueing.p50,
                      p.queueing.p95, p.queueing.p99});
    if (p.shed_fee + p.shed_queue_full > 0) saw_shedding = true;
    if (m <= 0.5 &&
        p.shed_fee + p.shed_queue_full < p.submitted / 100) {
      low_rate_clean = true;
    }
  }
  // The curve is only meaningful if underload admits (nearly) everything
  // and overload sheds; a flat all-admit or all-shed sweep means the
  // capacity probe or the admission policy broke.
  if (!saw_shedding || !low_rate_clean) {
    std::fprintf(stderr,
                 "saturation sweep degenerate: shedding=%d low_rate_ok=%d\n",
                 saw_shedding ? 1 : 0, low_rate_clean ? 1 : 0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dedisys

int main(int argc, char** argv) {
  dedisys::bench::Session session(1, argv);  // own flags; session does --json
  dedisys::SweepOptions opt;
  opt.spec.clients = 1'000'000;
  opt.spec.requests = 150'000;
  opt.spec.write_fraction = 0.6;
  opt.spec.high_fraction = 0.1;
  opt.spec.low_fraction = 0.3;
  opt.spec.shard_skew = 0.25;
  std::vector<double> multipliers = {0.25, 0.5, 0.8, 1.0, 1.5, 2.5};

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--nodes N] [--shards N] [--clients N] "
                     "[--ops N] [--objects N] [--seed N] [--smoke] "
                     "[--json <path>]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--nodes") == 0) {
      opt.nodes = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--shards") == 0) {
      opt.shards = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--clients") == 0) {
      opt.spec.clients = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--ops") == 0) {
      opt.spec.requests = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--objects") == 0) {
      opt.objects_per_shard = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.spec.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(arg, "--smoke") == 0) {
      opt.spec.clients = 10'000;
      opt.spec.requests = 3'000;
      multipliers = {0.5, 2.5};
    } else if (std::strcmp(arg, "--json") == 0) {
      dedisys::bench::report().json_path = value();
    } else {
      (void)value;  // fallthrough: unknown flag
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }
  return dedisys::run_bench(opt, multipliers);
}
