// Figure 5.3 — No DeDiSys vs DeDiSys with three nodes (healthy) and two
// nodes (degraded).
//
// Shape to hold (paper): with one node fewer in the partition, degraded
// WRITE operations can become FASTER than healthy mode (fewer backups to
// propagate to outweighs the history-capture overhead), while read
// capacity shrinks with the partition.
#include "bench/fig5_workload.h"

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  using dedisys::ClusterConfig;
  constexpr std::size_t kN = 400;

  print_title(
      "Figure 5.3 — DeDiSys healthy (3 nodes) vs degraded (2 in partition)");
  print_header(full_rate_columns());

  {
    ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.with_ccm = false;
    cfg.with_replication = false;
    auto cluster = make_eval_cluster(cfg);
    const FullRates r = measure_full(*cluster, 0, kN, false);
    print_full_rates("No DeDiSys (single node)", r, false);
    print_full_rates("No DeDiSys (avg of 3 nodes)", r, false);
  }

  FullRates healthy;
  {
    ClusterConfig cfg;
    cfg.nodes = 3;
    auto cluster = make_eval_cluster(cfg);
    healthy = measure_full(*cluster, 0, kN, false);
    print_full_rates("DeDiSys healthy (3 nodes)", healthy, false);
  }

  FullRates degraded;
  {
    ClusterConfig cfg;
    cfg.nodes = 3;
    auto cluster = make_eval_cluster(cfg);
    cluster->inject(dedisys::fault::split_indices({{0, 1}, {2}}));
    degraded = measure_full(*cluster, 0, kN, true);
    print_full_rates("DeDiSys degraded (2 in partition)", degraded, true);
  }

  std::printf(
      "\nCrossover check: degraded setter %.1f vs healthy setter %.1f "
      "ops/s -> %s (paper: degraded can be faster with one node fewer)\n",
      degraded.setter, healthy.setter,
      degraded.setter > healthy.setter ? "degraded faster ✓"
                                       : "degraded slower ✗");
  return 0;
}
