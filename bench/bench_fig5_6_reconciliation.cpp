// Figure 5.6 — Time required for propagation of missed updates and
// re-evaluation of consistency threats.
//
// Setup as in the paper: degraded-mode operations produce 200 threat
// identities; under the full-history policy, five identical occurrences
// each are persisted (1000 rows).  Shape to hold: reconciliation time
// grows with the stored threat history; replica reconciliation scales
// worse with identical threats than constraint reconciliation (identical
// threats are re-evaluated only once, but every row must be propagated).
#include "bench/bench_common.h"

namespace dedisys::bench {
namespace {

struct Times {
  double replica_minutes = 0;
  double constraint_minutes = 0;
};

Times run(dedisys::ThreatHistoryPolicy policy) {
  using namespace dedisys;
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.threat_policy = policy;
  auto cluster = make_eval_cluster(cfg);

  constexpr std::size_t kObjects = 200;
  constexpr std::size_t kIterations = 5;
  std::vector<ObjectId> ids;
  (void)Workload::create(*cluster, 0, kObjects, ids);

  cluster->inject(fault::split_indices({{0, 1}, {2}}));
  scenarios::AcceptAllNegotiation accept_all;
  const Value payload{std::string{"degraded-write"}};
  for (std::size_t iter = 0; iter < kIterations; ++iter) {
    (void)Workload::invoke(*cluster, 0, kObjects, ids, "setPayload",
                           {payload}, &accept_all);
  }

  cluster->inject(fault::Heal{});
  const auto report = cluster->reconcile();
  Times t;
  t.replica_minutes = static_cast<double>(report.replica_time) / 60e6;
  t.constraint_minutes = static_cast<double>(report.constraint_time) / 60e6;
  return t;
}

}  // namespace
}  // namespace dedisys::bench

int main(int argc, char** argv) {
  dedisys::bench::Session session(argc, argv);
  using namespace dedisys::bench;
  print_title("Figure 5.6 — reconciliation time (simulated minutes)");

  const Times once = run(dedisys::ThreatHistoryPolicy::IdenticalOnce);
  const Times full = run(dedisys::ThreatHistoryPolicy::FullHistory);

  print_header({"phase", "identical once", "full history", "paper once",
                "paper full"});
  print_row("Replica reconciliation",
            {once.replica_minutes, full.replica_minutes, 3.0, 11.0}, "%16.2f");
  print_row("Constraint reconciliation",
            {once.constraint_minutes, full.constraint_minutes, 2.0, 4.0},
            "%16.2f");

  std::printf(
      "\nShape checks: full history slower in both phases: replica %s, "
      "constraint %s;\nreplica phase grows faster with history than the "
      "constraint phase: %s\n",
      full.replica_minutes > once.replica_minutes ? "✓" : "✗",
      full.constraint_minutes >= once.constraint_minutes ? "✓" : "✗",
      (full.replica_minutes / once.replica_minutes) >
              (full.constraint_minutes /
               std::max(once.constraint_minutes, 1e-9))
          ? "✓"
          : "✗");
  return 0;
}
