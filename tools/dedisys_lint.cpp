// dedisys_lint: static analysis of XML constraint descriptors for CI.
//
// Loads each descriptor, runs the registration-time analyzer over every
// constraint and prints its diagnostics.  Exits 1 when any error-severity
// diagnostic (unknown attribute, guaranteed division by zero, statically
// false constraint, ...) is found, 2 on usage/parse failures, 0 when
// clean.  Class metadata for attribute checks comes from the optional
// --classes side file:
//
//   dedisys_lint --classes examples/descriptors/classes.xml
//       examples/descriptors/good_flight.xml
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "constraints/config.h"
#include "objects/class_descriptor.h"
#include "util/errors.h"

namespace {

using dedisys::ClassRegistry;
using dedisys::ConstraintFactory;
using dedisys::ConstraintRegistration;
using dedisys::ConstraintRepository;
using dedisys::FunctionConstraint;
using dedisys::XmlNode;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--classes <classes.xml>] <descriptor.xml>...\n",
               prog);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw dedisys::ConfigError("cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Implementation-class constraints (<class>Impl</class>) cannot be
/// analyzed structurally; register a stub creator per named class so the
/// descriptor still loads and yields an opaque report.
void register_stub_creators(const XmlNode& node, ConstraintFactory& factory,
                            std::set<std::string>& seen) {
  if (node.tag == "class" && !node.text.empty() &&
      seen.insert(node.text).second) {
    factory.register_class(
        node.text, [](const std::string& name, dedisys::ConstraintType type,
                      dedisys::ConstraintPriority prio) {
          return std::make_shared<FunctionConstraint>(
              name, type, prio,
              [](dedisys::ConstraintValidationContext&) { return true; });
        });
  }
  for (const XmlNode& child : node.children) {
    register_stub_creators(child, factory, seen);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string classes_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--classes" && i + 1 < argc) {
      classes_path = argv[++i];
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  ClassRegistry classes;
  bool have_classes = false;
  if (!classes_path.empty()) {
    try {
      dedisys::analysis::load_classes_xml(read_file(classes_path), classes);
      have_classes = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", classes_path.c_str(), e.what());
      return 2;
    }
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t constraints = 0;
  for (const std::string& file : files) {
    try {
      const std::string text = read_file(file);
      ConstraintFactory factory;
      std::set<std::string> seen_impls;
      register_stub_creators(dedisys::parse_xml(text), factory, seen_impls);
      ConstraintRepository repository;
      dedisys::load_constraints(text, factory, repository);
      dedisys::analysis::analyze_repository(
          repository, have_classes ? &classes : nullptr);
      for (const ConstraintRegistration& reg : repository.registrations()) {
        ++constraints;
        const auto& report = *reg.analysis;
        for (const dedisys::analysis::Diagnostic& d : report.diagnostics) {
          if (d.severity == dedisys::analysis::Diagnostic::Severity::Error) {
            ++errors;
          } else {
            ++warnings;
          }
          std::printf("%s: %s: %s: %s\n", file.c_str(),
                      reg.constraint->name().c_str(),
                      to_string(d.severity), d.message.c_str());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: error: %s\n", file.c_str(), e.what());
      return 2;
    }
  }
  std::printf("dedisys_lint: %zu constraint(s), %zu error(s), %zu warning(s)\n",
              constraints, errors, warnings);
  return errors == 0 ? 0 : 1;
}
