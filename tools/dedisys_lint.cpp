// dedisys_lint: static analysis of XML constraint descriptors for CI.
//
// Loads each descriptor, runs the registration-time analyzer over every
// constraint and prints its diagnostics.  With --conflicts the
// whole-configuration pass also runs per descriptor: conflicting
// invariant pairs (disjoint satisfaction sets) are reported as errors
// and subsumed pairs as warnings.  --interference prints the read-set
// interference edges and cluster summary; --dot emits the interference
// graph as Graphviz instead of the regular report.
//
// Exit status: 0 clean, 1 when any error-severity diagnostic was found
// (or any warning under --werror), 2 on usage errors or when any input
// failed to parse.  Parse failures do not abort the run — the remaining
// files are still linted, then the run exits 2.
//
// Class metadata for attribute checks comes from the optional --classes
// side file:
//
//   dedisys_lint --classes examples/descriptors/classes.xml
//       --werror --conflicts examples/descriptors/good_flight.xml
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/abstract_interp.h"
#include "analysis/analyzer.h"
#include "constraints/config.h"
#include "objects/class_descriptor.h"
#include "util/errors.h"

namespace {

using dedisys::ClassRegistry;
using dedisys::ConstraintFactory;
using dedisys::ConstraintRegistration;
using dedisys::ConstraintRepository;
using dedisys::FunctionConstraint;
using dedisys::XmlNode;
using dedisys::analysis::ConfigAnalysis;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--classes <classes.xml>] [--werror] [--conflicts]"
               " [--interference] [--dot] <descriptor.xml>...\n",
               prog);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw dedisys::ConfigError("cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Implementation-class constraints (<class>Impl</class>) cannot be
/// analyzed structurally; register a stub creator per named class so the
/// descriptor still loads and yields an opaque report.
void register_stub_creators(const XmlNode& node, ConstraintFactory& factory,
                            std::set<std::string>& seen) {
  if (node.tag == "class" && !node.text.empty() &&
      seen.insert(node.text).second) {
    factory.register_class(
        node.text, [](const std::string& name, dedisys::ConstraintType type,
                      dedisys::ConstraintPriority prio) {
          return std::make_shared<FunctionConstraint>(
              name, type, prio,
              [](dedisys::ConstraintValidationContext&) { return true; });
        });
  }
  for (const XmlNode& child : node.children) {
    register_stub_creators(child, factory, seen);
  }
}

void print_dot(const std::string& file, const ConfigAnalysis& cfg) {
  std::printf("// %s\ngraph interference {\n", file.c_str());
  for (const auto& [name, cluster] : cfg.cluster_of) {
    std::printf("  \"%s\" [cluster=\"%s\"];\n", name.c_str(),
                cluster.c_str());
  }
  for (const auto& edge : cfg.interference) {
    std::printf("  \"%s\" -- \"%s\";\n", edge.first.c_str(),
                edge.second.c_str());
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string classes_path;
  std::vector<std::string> files;
  bool werror = false;
  bool conflicts = false;
  bool interference = false;
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--classes" && i + 1 < argc) {
      classes_path = argv[++i];
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--conflicts") {
      conflicts = true;
    } else if (arg == "--interference") {
      interference = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(argv[0]);

  ClassRegistry classes;
  bool have_classes = false;
  if (!classes_path.empty()) {
    try {
      dedisys::analysis::load_classes_xml(read_file(classes_path), classes);
      have_classes = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", classes_path.c_str(), e.what());
      return 2;
    }
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t constraints = 0;
  bool parse_failed = false;
  // --dot emits only the graph (pipeable into `dot -Tsvg`); diagnostics
  // still count toward the exit status.
  auto report_line = [&](const char* fmt, const std::string& file,
                         const std::string& a, const char* severity,
                         const std::string& detail) {
    if (!dot) std::printf(fmt, file.c_str(), a.c_str(), severity,
                          detail.c_str());
  };
  for (const std::string& file : files) {
    try {
      const std::string text = read_file(file);
      ConstraintFactory factory;
      std::set<std::string> seen_impls;
      register_stub_creators(dedisys::parse_xml(text), factory, seen_impls);
      ConstraintRepository repository;
      dedisys::load_constraints(text, factory, repository);
      dedisys::analysis::analyze_repository(
          repository, have_classes ? &classes : nullptr);
      for (const ConstraintRegistration& reg : repository.registrations()) {
        ++constraints;
        const auto& report = *reg.analysis;
        for (const dedisys::analysis::Diagnostic& d : report.diagnostics) {
          if (d.severity == dedisys::analysis::Diagnostic::Severity::Error) {
            ++errors;
          } else {
            ++warnings;
          }
          report_line("%s: %s: %s: %s\n", file, reg.constraint->name(),
                      to_string(d.severity), d.message);
        }
      }
      if (conflicts || interference || dot) {
        const ConfigAnalysis* cfg = repository.config_analysis();
        if (cfg != nullptr) {
          if (conflicts) {
            for (const auto& c : cfg->conflicts) {
              ++errors;
              report_line("%s: %s: %s: %s\n", file, c.first, "error",
                          "conflicts with '" + c.second +
                              "' — disjoint satisfaction sets on attribute "
                              "'" + c.attribute + "'");
            }
            for (const auto& s : cfg->subsumptions) {
              ++warnings;
              report_line("%s: %s: %s: %s\n", file, s.stronger, "warning",
                          "subsumes '" + s.weaker +
                              "' — the weaker constraint is redundant");
            }
          }
          if (interference && !dot) {
            for (const auto& e : cfg->interference) {
              std::printf("%s: interference: %s -- %s\n", file.c_str(),
                          e.first.c_str(), e.second.c_str());
            }
            std::printf("%s: interference: %zu constraint(s), %zu edge(s), "
                        "%zu cluster(s)\n",
                        file.c_str(), cfg->cluster_of.size(),
                        cfg->interference.size(), cfg->clusters);
          }
          if (dot) print_dot(file, *cfg);
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: error: %s\n", file.c_str(), e.what());
      parse_failed = true;
    }
  }
  if (!dot) {
    std::printf(
        "dedisys_lint: %zu constraint(s), %zu error(s), %zu warning(s)\n",
        constraints, errors, warnings);
  }
  if (parse_failed) return 2;
  if (errors != 0) return 1;
  if (werror && warnings != 0) return 1;
  return 0;
}
