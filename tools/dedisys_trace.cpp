// Offline trace analysis CLI.
//
// Consumes the JSON observability export (AdminConsole::metrics_json(),
// the /metrics servlet, or a bare trace block) and runs the span analyzer
// and the trace-driven invariant checker of obs/analyze.h over it —
// entirely offline, with no access to the cluster that produced it.
//
// Usage:
//   dedisys_trace --tree FILE        pretty-print the span trees
//   dedisys_trace --top K FILE       top-K slowest traces with per-phase
//                                    attribution and critical path
//   dedisys_trace --check FILE       trace-driven invariant checker
//   dedisys_trace --diff A B         line-diff two timeline files
//   dedisys_trace --cross-check N    N seeded gray chaos soaks; the trace
//                                    checker must agree with the harness's
//                                    state-based ground truth on every one
//   dedisys_trace --corpus DIR       the same cross-check over every
//                                    *.plan regression seed in DIR
//   dedisys_trace --export FILE      run one seeded gray chaos soak and
//                                    write its metrics export to FILE
//                                    (input for the file-based modes)
//   dedisys_trace --selftest         synthetic analyzer/checker pins plus
//                                    the legacy split-brain end-to-end pin
//
// Exit status: 0 clean, 1 violation/mismatch/diff, 2 usage or I/O error.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analyze.h"
#include "obs/export.h"
#include "scenarios/invariants.h"

namespace {

using dedisys::FaultPlan;
using dedisys::NodeId;
using dedisys::ObjectId;
using dedisys::RandomPlanOptions;
using dedisys::SimTime;
using dedisys::TxId;
namespace fault = dedisys::fault;
namespace obs = dedisys::obs;
namespace scenarios = dedisys::scenarios;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " MODE\n"
      << "  --tree FILE       pretty-print span trees from an export\n"
      << "  --top K FILE      top-K slowest traces (phases, critical path)\n"
      << "  --check FILE      trace-driven invariant checker\n"
      << "  --diff A B        line-diff two timeline files\n"
      << "  --cross-check N   checker vs chaos ground truth on N seeds\n"
      << "  --corpus DIR      the same over every *.plan file in DIR\n"
      << "  --export FILE     write one gray soak's metrics export to FILE\n"
      << "  --selftest        analyzer/checker self-checks\n"
      << "options: --seed N   first seed for --cross-check / --export\n";
  return 2;
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << '\n';
    *ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *ok = true;
  return buffer.str();
}

/// Events plus the drop count of the ring that produced them (0 for bare
/// event arrays).
struct LoadedTrace {
  std::vector<obs::TraceEvent> events;
  std::size_t dropped = 0;
};

LoadedTrace load_trace(const obs::Json& doc) {
  LoadedTrace out;
  out.events = obs::events_from_json(doc);
  const obs::Json* block = &doc;
  if (doc.is_object() && doc.contains("trace")) block = &doc.at("trace");
  if (block->is_object() && block->contains("dropped")) {
    out.dropped = static_cast<std::size_t>(block->at("dropped").as_int());
  }
  return out;
}

LoadedTrace load_trace_file(const std::string& path, bool* ok) {
  const std::string text = read_file(path, ok);
  if (!*ok) return {};
  try {
    return load_trace(obs::Json::parse(text));
  } catch (const std::exception& e) {
    std::cerr << path << ": " << e.what() << '\n';
    *ok = false;
    return {};
  }
}

// ---------------------------------------------------------------------------
// --tree
// ---------------------------------------------------------------------------

void print_span(const obs::SpanTree& tree, const obs::Span& span, int depth) {
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "["
            << span.start << " .. " << span.end << " us] " << span.label;
  if (span.node.valid()) std::cout << "  node " << span.node.value();
  if (span.tx.valid()) std::cout << "  tx " << span.tx.value();
  if (span.events > 0) std::cout << "  (" << span.events << " events)";
  if (!span.saw_start || !span.saw_end) std::cout << "  [truncated]";
  std::cout << '\n';
  for (std::uint64_t child : span.children) {
    if (const obs::Span* c = tree.find(child)) print_span(tree, *c, depth + 1);
  }
}

int run_tree(const LoadedTrace& trace) {
  const obs::TraceAnalysis analysis = obs::analyze(trace.events);
  if (trace.dropped > 0) {
    std::cout << "WARNING: " << trace.dropped
              << " events were dropped by the ring; trees may be truncated\n";
  }
  for (const obs::SpanTree& tree : analysis.trees) {
    std::cout << "trace " << tree.trace_id << '\n';
    for (std::uint64_t root : tree.roots) {
      if (const obs::Span* s = tree.find(root)) print_span(tree, *s, 1);
    }
  }
  std::cout << analysis.trees.size() << " trace(s), " << analysis.traced_events
            << " traced event(s), " << analysis.orphan_events
            << " outside any span\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --top
// ---------------------------------------------------------------------------

int run_top(const LoadedTrace& trace, std::size_t k) {
  const obs::TraceAnalysis analysis = obs::analyze(trace.events);
  const auto slowest = obs::slowest_traces(analysis, k);
  for (const obs::TraceSummary* t : slowest) {
    std::cout << "trace " << t->trace_id << "  " << t->root_label << "  "
              << t->duration_us << " us  (" << t->spans << " spans, "
              << t->events << " events)\n";
    for (const auto& [phase, us] : t->phase_self_us) {
      if (us > 0) std::cout << "  phase " << phase << ": " << us << " us\n";
    }
    std::cout << "  critical path:\n";
    for (const obs::CriticalHop& hop : t->critical_path) {
      std::cout << "    " << hop.label << "  [" << hop.start << " .. "
                << hop.end << " us]  self " << hop.self_us << " us\n";
    }
  }
  if (slowest.empty()) std::cout << "no traces recorded\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --check
// ---------------------------------------------------------------------------

int print_check(const obs::TraceCheckResult& result) {
  std::cout << "trace checker: " << result.threats_tracked
            << " threat identities tracked, " << result.reconciles
            << " reconcile window(s), " << result.view_checks
            << " view-agreement check(s)"
            << (result.complete ? "" : " [incomplete: ring dropped events]")
            << '\n';
  for (const obs::TraceCheckFinding& f : result.violations) {
    std::cout << "VIOLATION [" << f.invariant << "] " << f.detail << '\n';
  }
  if (result.ok()) std::cout << "no violations derived from the trace\n";
  return result.ok() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --diff
// ---------------------------------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

int run_diff(const std::string& path_a, const std::string& path_b) {
  bool ok = true;
  const std::vector<std::string> a = split_lines(read_file(path_a, &ok));
  if (!ok) return 2;
  const std::vector<std::string> b = split_lines(read_file(path_b, &ok));
  if (!ok) return 2;
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  std::size_t differing = 0;
  constexpr std::size_t kShow = 5;
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] == b[i]) continue;
    if (differing < kShow) {
      std::cout << "line " << (i + 1) << ":\n  - " << a[i] << "\n  + " << b[i]
                << '\n';
    }
    ++differing;
  }
  differing += (a.size() > common ? a.size() - common : 0) +
               (b.size() > common ? b.size() - common : 0);
  if (a.size() != b.size()) {
    std::cout << path_a << ": " << a.size() << " lines, " << path_b << ": "
              << b.size() << " lines\n";
  }
  if (differing == 0) {
    std::cout << "timelines identical (" << a.size() << " lines)\n";
    return 0;
  }
  std::cout << differing << " differing line(s)\n";
  return 1;
}

// ---------------------------------------------------------------------------
// Cross-validation: trace checker vs chaos-harness ground truth
// ---------------------------------------------------------------------------

/// Runs one chaos soak and compares the trace checker's verdict with the
/// harness's state-based one, on the two invariants the checker re-derives
/// (lost threats, one primary per partition).  Returns true on agreement.
bool cross_check_one(const scenarios::ChaosOptions& options,
                     const std::string& what) {
  const scenarios::ChaosResult result = scenarios::run_chaos(options);
  LoadedTrace trace;
  try {
    trace = load_trace(obs::Json::parse(result.metrics_json));
  } catch (const std::exception& e) {
    std::cerr << what << ": export unparseable: " << e.what() << '\n';
    return false;
  }
  const obs::TraceCheckResult check =
      obs::check_events(trace.events, trace.dropped);
  const bool ground_ok =
      result.lost_threats == 0 && result.primary_violations == 0;
  if (ground_ok && !check.ok()) {
    std::cerr << what << ": harness clean but trace checker found "
              << check.violations.size() << " violation(s):\n";
    for (const obs::TraceCheckFinding& f : check.violations) {
      std::cerr << "  [" << f.invariant << "] " << f.detail << '\n';
    }
    return false;
  }
  if (!ground_ok && check.ok() && check.complete) {
    std::cerr << what << ": harness found lost_threats="
              << result.lost_threats
              << " primary_violations=" << result.primary_violations
              << " but the trace checker derived nothing\n";
    return false;
  }
  return true;
}

int run_cross_check(std::uint64_t first_seed, std::size_t seeds) {
  std::size_t failures = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    scenarios::ChaosOptions options;
    options.seed = first_seed + i;
    options.gray = true;
    if (!cross_check_one(options, "seed " + std::to_string(options.seed))) {
      ++failures;
    }
  }
  std::cout << "cross-check: " << seeds << " seed(s), " << failures
            << " disagreement(s)\n";
  return failures == 0 ? 0 : 1;
}

int run_corpus_cross_check(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".plan") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::size_t failures = 0;
  for (const fs::path& file : files) {
    bool ok = true;
    const std::string text = read_file(file.string(), &ok);
    if (!ok) return 2;
    scenarios::ChaosOptions options;
    options.plan = dedisys::plan_from_text(text);
    options.seed = options.plan->seed;
    if (!cross_check_one(options, file.filename().string())) ++failures;
  }
  std::cout << "corpus cross-check: " << files.size() << " plan(s), "
            << failures << " disagreement(s)\n";
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --export
// ---------------------------------------------------------------------------

int run_export(const std::string& path, std::uint64_t seed) {
  scenarios::ChaosOptions options;
  options.seed = seed;
  options.gray = true;
  const scenarios::ChaosResult result = scenarios::run_chaos(options);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 2;
  }
  out << result.metrics_json << '\n';
  std::cout << "wrote metrics export of gray seed " << seed << " to " << path
            << " (committed=" << result.committed
            << " faults=" << result.faults_applied << ")\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --selftest
// ---------------------------------------------------------------------------

obs::TraceEvent make_event(SimTime at, obs::TraceEventKind kind,
                           std::uint64_t trace_id, std::uint64_t span_id,
                           std::uint64_t parent) {
  obs::TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.trace_id = trace_id;
  e.span_id = span_id;
  e.parent_span = parent;
  return e;
}

int selftest_analyzer() {
  std::vector<obs::TraceEvent> events;
  // trace 1: Account::deposit { validation, 2pc }, plus one orphan event.
  obs::TraceEvent root =
      make_event(0, obs::TraceEventKind::SpanStart, 1, 1, 0);
  root.label = "Account::deposit";
  root.node = NodeId{0};
  events.push_back(root);
  obs::TraceEvent validation =
      make_event(10, obs::TraceEventKind::SpanStart, 1, 2, 1);
  validation.label = "validation";
  events.push_back(validation);
  obs::TraceEvent inner =
      make_event(20, obs::TraceEventKind::Validation, 1, 2, 1);
  inner.label = "balance-nonnegative";
  events.push_back(inner);
  events.push_back(make_event(30, obs::TraceEventKind::SpanEnd, 1, 2, 1));
  obs::TraceEvent tpc = make_event(40, obs::TraceEventKind::SpanStart, 1, 3, 1);
  tpc.label = "2pc";
  events.push_back(tpc);
  events.push_back(make_event(90, obs::TraceEventKind::SpanEnd, 1, 3, 1));
  events.push_back(make_event(100, obs::TraceEventKind::SpanEnd, 1, 1, 0));
  events.push_back(make_event(110, obs::TraceEventKind::TxCommit, 0, 0, 0));

  const obs::TraceAnalysis analysis = obs::analyze(events);
  if (analysis.trees.size() != 1 || analysis.traces.size() != 1) {
    std::cerr << "selftest: expected one trace, got " << analysis.trees.size()
              << '\n';
    return 1;
  }
  const obs::TraceSummary& t = analysis.traces.front();
  if (t.duration_us != 100 || t.spans != 3 || t.root_label != "Account::deposit") {
    std::cerr << "selftest: bad summary: duration " << t.duration_us
              << " spans " << t.spans << " root " << t.root_label << '\n';
    return 1;
  }
  const auto phase = [&](const char* name) {
    auto it = t.phase_self_us.find(name);
    return it == t.phase_self_us.end() ? dedisys::SimDuration{0} : it->second;
  };
  if (phase("validation") != 20 || phase("2pc") != 50 ||
      phase("interception") != 30) {
    std::cerr << "selftest: bad phase attribution: validation "
              << phase("validation") << " 2pc " << phase("2pc")
              << " interception " << phase("interception") << '\n';
    return 1;
  }
  if (t.critical_path.size() != 2 || t.critical_path.back().label != "2pc" ||
      t.critical_path.front().self_us != 50) {
    std::cerr << "selftest: bad critical path\n";
    return 1;
  }
  if (analysis.orphan_events == 0) {
    std::cerr << "selftest: untraced TxCommit should count as orphan\n";
    return 1;
  }
  std::cerr << "selftest: analyzer ok\n";
  return 0;
}

int selftest_checker() {
  using K = obs::TraceEventKind;
  const auto threat = [](SimTime at, K kind, const char* name,
                         std::uint64_t object, std::uint64_t tx) {
    obs::TraceEvent e;
    e.at = at;
    e.kind = kind;
    e.label = name;
    if (object != 0) e.object = ObjectId{object};
    if (tx != 0) e.tx = TxId{tx};
    return e;
  };
  const auto bare = [](SimTime at, K kind) {
    obs::TraceEvent e;
    e.at = at;
    e.kind = kind;
    return e;
  };

  // Lost threat: accepted, committed, then a reconcile window that never
  // re-evaluates it.
  std::vector<obs::TraceEvent> lost{
      threat(10, K::ThreatAccepted, "C", 7, 5),
      threat(20, K::TxCommit, "2pc", 0, 5),
      bare(30, K::ReconcileStart),
      bare(40, K::ReconcileEnd),
  };
  if (obs::check_events(lost).ok()) {
    std::cerr << "selftest: checker missed a lost threat\n";
    return 1;
  }

  // Re-evaluated: the same stream with a threat.reconciled inside the
  // window passes.
  std::vector<obs::TraceEvent> reconciled = lost;
  obs::TraceEvent seen = threat(35, K::ThreatReconciled, "C", 7, 0);
  seen.detail = "satisfied";
  reconciled.insert(reconciled.begin() + 3, seen);
  if (!obs::check_events(reconciled).ok()) {
    std::cerr << "selftest: checker flagged a re-evaluated threat\n";
    return 1;
  }

  // Aborted staging: the accepting transaction rolled back, so the threat
  // was never stored.
  std::vector<obs::TraceEvent> aborted{
      threat(10, K::ThreatAccepted, "C", 7, 5),
      threat(20, K::TxAbort, "2pc", 0, 5),
      bare(30, K::ReconcileStart),
      bare(40, K::ReconcileEnd),
  };
  if (!obs::check_events(aborted).ok()) {
    std::cerr << "selftest: checker flagged an aborted staging\n";
    return 1;
  }

  // Resolved by a satisfied business operation before the merge.
  std::vector<obs::TraceEvent> resolved{
      threat(10, K::ThreatAccepted, "C", 7, 5),
      threat(20, K::TxCommit, "2pc", 0, 5),
      threat(25, K::ThreatResolved, "C", 7, 6),
      bare(30, K::ReconcileStart),
      bare(40, K::ReconcileEnd),
  };
  if (!obs::check_events(resolved).ok()) {
    std::cerr << "selftest: checker flagged a resolved threat\n";
    return 1;
  }

  // Split brain: nodes 0 and 1 mutually in view but with different member
  // sets (the legacy one-way-cut signature).
  const auto view = [](SimTime at, std::uint64_t node, const char* members) {
    obs::TraceEvent e;
    e.at = at;
    e.kind = K::ViewChange;
    e.node = NodeId{node};
    e.label = "view 2";
    e.detail = std::string("members=") + members + " complete=false";
    return e;
  };
  std::vector<obs::TraceEvent> split{view(10, 0, "{0,1,2}"),
                                     view(11, 1, "{0,1}")};
  const obs::TraceCheckResult split_check = obs::check_events(split);
  if (split_check.ok() ||
      split_check.violations.front().invariant != "one-primary-per-partition") {
    std::cerr << "selftest: checker missed mutual-view disagreement\n";
    return 1;
  }
  std::vector<obs::TraceEvent> agreeing{view(10, 0, "{0,1,2}"),
                                        view(11, 1, "{0,1,2}"),
                                        view(12, 2, "{0,1,2}")};
  if (!obs::check_events(agreeing).ok()) {
    std::cerr << "selftest: checker flagged agreeing views\n";
    return 1;
  }
  std::cerr << "selftest: checker ok\n";
  return 0;
}

/// End-to-end pin: the legacy unidirectional-views split brain (a one-way
/// cut 1>0) must be caught by the trace checker from the exported events
/// alone, in agreement with the harness; the same plan with fixed views
/// must pass both.
int selftest_split_brain() {
  scenarios::ChaosOptions chaos;
  chaos.flags.legacy_unidirectional_views = true;

  RandomPlanOptions plan_options;
  for (std::size_t n = 0; n < chaos.nodes; ++n) {
    plan_options.nodes.push_back(NodeId{n});
  }
  plan_options.horizon = chaos.horizon;
  plan_options.events = 6;
  FaultPlan plan = dedisys::random_gray_plan(4242, plan_options);
  plan.add(dedisys::sim_us(10),
           fault::AsymPartition{{{NodeId{1}, NodeId{0}}}});
  plan.sort();
  chaos.plan = plan;

  const scenarios::ChaosResult result = scenarios::run_chaos(chaos);
  if (result.primary_violations == 0) {
    std::cerr << "selftest: legacy-views plan did not split brain\n";
    return 1;
  }
  const LoadedTrace trace = load_trace(obs::Json::parse(result.metrics_json));
  const obs::TraceCheckResult check =
      obs::check_events(trace.events, trace.dropped);
  const bool derived = std::any_of(
      check.violations.begin(), check.violations.end(),
      [](const obs::TraceCheckFinding& f) {
        return f.invariant == "one-primary-per-partition";
      });
  if (!derived) {
    std::cerr << "selftest: trace checker missed the legacy split brain\n";
    return 1;
  }

  chaos.flags.legacy_unidirectional_views = false;
  if (!cross_check_one(chaos, "fixed-views plan")) {
    std::cerr << "selftest: fixed-views disagreement\n";
    return 1;
  }
  std::cerr << "selftest: split-brain pin ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* mode = argv[1];
  const auto arg = [&](int index) -> const char* {
    return index < argc ? argv[index] : nullptr;
  };

  if (std::strcmp(mode, "--selftest") == 0) {
    const int analyzer = selftest_analyzer();
    if (analyzer != 0) return analyzer;
    const int checker = selftest_checker();
    if (checker != 0) return checker;
    return selftest_split_brain();
  }
  if (std::strcmp(mode, "--tree") == 0 && arg(2) != nullptr) {
    bool ok = true;
    const LoadedTrace trace = load_trace_file(arg(2), &ok);
    return ok ? run_tree(trace) : 2;
  }
  if (std::strcmp(mode, "--top") == 0 && arg(3) != nullptr) {
    bool ok = true;
    const LoadedTrace trace = load_trace_file(arg(3), &ok);
    if (!ok) return 2;
    return run_top(trace, std::strtoull(arg(2), nullptr, 10));
  }
  if (std::strcmp(mode, "--check") == 0 && arg(2) != nullptr) {
    bool ok = true;
    const LoadedTrace trace = load_trace_file(arg(2), &ok);
    if (!ok) return 2;
    return print_check(obs::check_events(trace.events, trace.dropped));
  }
  if (std::strcmp(mode, "--diff") == 0 && arg(3) != nullptr) {
    return run_diff(arg(2), arg(3));
  }
  if (std::strcmp(mode, "--cross-check") == 0 && arg(2) != nullptr) {
    std::uint64_t first_seed = 1;
    if (arg(4) != nullptr && std::strcmp(arg(3), "--seed") == 0) {
      first_seed = std::strtoull(arg(4), nullptr, 10);
    }
    return run_cross_check(first_seed, std::strtoull(arg(2), nullptr, 10));
  }
  if (std::strcmp(mode, "--corpus") == 0 && arg(2) != nullptr) {
    return run_corpus_cross_check(arg(2));
  }
  if (std::strcmp(mode, "--export") == 0 && arg(2) != nullptr) {
    std::uint64_t seed = 1;
    if (arg(4) != nullptr && std::strcmp(arg(3), "--seed") == 0) {
      seed = std::strtoull(arg(4), nullptr, 10);
    }
    return run_export(arg(2), seed);
  }
  return usage(argv[0]);
}
