// Alarm tracking system (ATS) example — the industry scenario of
// Section 1.4 / Fig. 1.5.
//
// Administrative operators manage Alarms; technical operators fill in
// RepairReports; ComponentKindReferenceConsistency ties them together.
// The two operator groups work at different sites.  When the sites
// partition, both must keep making progress: the technical operator's
// update validates as *possibly violated* against the stale Alarm copy,
// which the ATS deliberately accepts (the technician knows the repaired
// component better than the stale alarm record, Section 3.1).
#include <cstdio>

#include "constraints/config.h"
#include "middleware/cluster.h"
#include "scenarios/ats.h"

using namespace dedisys;
using scenarios::AlarmTracking;

namespace {

class OperatorNotifier final : public ConstraintReconciliationHandler {
 public:
  bool reconcile(const ConsistencyThreat& threat,
                 ConstraintValidationContext&) override {
    std::printf(
        "  [ATS] constraint %s violated after reconciliation — sending\n"
        "        e-mail to the responsible operator (deferred clean-up)\n",
        threat.constraint_name.c_str());
    return false;  // deferred: a human resolves it later
  }
};

}  // namespace

int main() {
  std::printf("=== Alarm tracking system (ATS) example ===\n\n");

  ClusterConfig cfg;
  cfg.nodes = 2;  // administrative site (node 0), technical site (node 1)
  Cluster cluster(cfg);
  AlarmTracking::define_classes(cluster.classes());

  // Constraints are deployed from the XML descriptor, exactly like the
  // EJB deployment flow of Section 4.2.2 (Listing 4.1).
  ConstraintFactory factory;
  factory.register_class(
      "ComponentKindReferenceConstraint",
      [](const std::string& name, ConstraintType type, ConstraintPriority p) {
        auto c = std::make_shared<scenarios::ComponentKindReferenceConstraint>(
            name, type, p);
        c->set_min_satisfaction_degree(SatisfactionDegree::PossiblyViolated);
        return c;
      });
  const std::size_t loaded = load_constraints(
      AlarmTracking::constraint_descriptor_xml(), factory,
      cluster.constraints());
  std::printf("deployed %zu constraint(s) from the XML descriptor\n", loaded);

  DedisysNode& admin_site = cluster.node(0);
  DedisysNode& tech_site = cluster.node(1);

  // An alarm of kind "Signal" with its linked repair report.
  const auto pair = AlarmTracking::create_linked(admin_site, "Signal");
  std::printf("created Alarm(kind=Signal) + linked RepairReport\n");

  // Healthy mode: a mismatched repair is rejected outright.
  try {
    TxScope tx(tech_site.tx());
    tech_site.invoke(tx.id(), pair.report, "setAffectedComponent",
                     {Value{std::string{"Power Supply"}}});
    tx.commit();
  } catch (const ConstraintViolation& e) {
    std::printf("healthy mode: mismatched repair rejected (%s)\n", e.what());
  }

  // The sites partition; the technical operator keeps working.
  cluster.inject(fault::split_indices({{0}, {1}}));
  std::printf("\nsites partitioned; technical site mode: %s\n",
              to_string(tech_site.mode()).c_str());
  {
    TxScope tx(tech_site.tx());
    tech_site.invoke(tx.id(), pair.report, "setAffectedComponent",
                     {Value{std::string{"Power Supply"}}});
    tx.commit();
    std::printf(
        "degraded mode: 'Power Supply' repair recorded although the stale\n"
        "alarm copy says kind=Signal — accepted as a possibly-violated "
        "threat\n");
  }
  // Meanwhile the administrative operator updates the alarm description
  // in the other partition.
  {
    TxScope tx(admin_site.tx());
    admin_site.invoke(tx.id(), pair.alarm, "setDescription",
                      {Value{std::string{"signal outage, sector 7"}}});
    tx.commit();
  }
  std::printf("stored threats: %zu\n", cluster.threats().identity_count());

  // Repair the link and reconcile: the mismatch is a real violation now.
  cluster.inject(fault::Heal{});
  OperatorNotifier notifier;
  const auto report = cluster.reconcile(nullptr, &notifier);
  std::printf(
      "\nreconciliation: %zu threat(s) re-evaluated, %zu violation(s), "
      "%zu deferred to the operator\n",
      report.constraints.reevaluated, report.constraints.violations,
      report.constraints.deferred);

  // The operator eventually fixes the report; the satisfied business
  // operation removes the deferred threat (Section 4.4).
  {
    TxScope tx(tech_site.tx());
    tech_site.invoke(tx.id(), pair.report, "setAffectedComponent",
                     {Value{std::string{"Signal Cable"}}});
    tx.commit();
  }
  std::printf("operator corrected the report; remaining threats: %zu\n",
              cluster.threats().identity_count());
  return 0;
}
