// Administrator tour — the Fig. 4.1 administration/deployment/runtime-
// configuration role in action: deploy OCL constraints from a descriptor,
// watch degradation damage, relax and re-tighten constraints at runtime,
// export the deployment and snapshot durable threat state.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "dedisys.h"

using namespace dedisys;

int main() {
  std::printf("=== Administrator tour (Fig. 4.1) ===\n\n");

  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  AdminConsole admin(cluster);

  // Deploy the application model + an OCL constraint descriptor.
  ClassDescriptor& account = cluster.classes().define("Account");
  account.define_property("balance", Value{std::int64_t{0}}, "int");
  account.define_property("limit", Value{std::int64_t{1000}}, "int");
  const std::size_t n = admin.deploy_constraints(R"(<constraints>
    <constraint name="WithinLimit" type="HARD" priority="RELAXABLE"
                minSatisfactionDegree="POSSIBLY_SATISFIED">
      <ocl>self.balance &lt;= self.limit</ocl>
      <context-class>Account</context-class>
      <affected-methods>
        <affected-method>
          <objectMethod name="setBalance">
            <objectClass>Account</objectClass>
            <arguments><argument>int</argument></arguments>
          </objectMethod>
        </affected-method>
      </affected-methods>
    </constraint>
  </constraints>)");
  std::printf("deployed %zu constraint(s) from the OCL descriptor\n", n);

  DedisysNode& node = cluster.node(0);
  ObjectId acct;
  {
    TxScope tx(node.tx());
    acct = node.create(tx.id(), "Account");
    node.invoke(tx.id(), acct, "setBalance", {Value{std::int64_t{900}}});
    tx.commit();
  }

  // Degradation: a partition lets a threat through.
  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  {
    TxScope tx(node.tx());
    node.invoke(tx.id(), acct, "setBalance", {Value{std::int64_t{950}}});
    tx.commit();
  }
  std::printf("\nduring the partition, the middleware recorded:\n");
  admin.print_threats(std::cout);

  // The administrator snapshots the durable cluster state...
  const ClusterSnapshot backup = admin.take_snapshot();
  std::printf("cluster snapshot taken (%zu node stores, %zu threat bytes)\n",
              backup.node_states.size(), backup.threat_state.size());

  // ...heals and reconciles...
  cluster.inject(fault::Heal{});
  (void)cluster.reconcile();
  std::printf("after reconciliation: %zu stored threat(s)\n",
              admin.list_threats().size());

  // ...then relaxes the constraint for a bulk import (Section 6.2's
  // "turning constraints off when importing large amounts of data").
  admin.disable_constraint("WithinLimit");
  {
    TxScope tx(node.tx());
    node.invoke(tx.id(), acct, "setBalance", {Value{std::int64_t{5000}}});
    tx.commit();
  }
  std::printf("\nconstraint disabled; bulk update to 5000 accepted\n");

  // Re-enabling re-validates every context object (Section 3.3).
  const auto violating = admin.enable_constraint("WithinLimit");
  std::printf("constraint re-enabled; re-validation flags %zu object(s) "
              "for clean-up\n",
              violating.size());
  {
    TxScope tx(node.tx());
    node.invoke(tx.id(), acct, "setBalance", {Value{std::int64_t{1000}}});
    tx.commit();
  }
  std::printf("operator fixed the account; re-validation now flags %zu\n",
              node.ccmgr()
                  .revalidate_for_objects("WithinLimit",
                                          cluster.objects_of("Account"))
                  .size());

  // Export the live deployment for redeployment elsewhere.
  const std::string exported = admin.export_constraints();
  std::printf("\nexported deployment descriptor (%zu bytes):\n%s",
              exported.size(), exported.c_str());

  std::printf("\n%s", render_metrics(admin.metrics()).c_str());
  return 0;
}
