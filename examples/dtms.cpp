// DTMS example — the distributed telecommunication management system that
// motivated the dissertation (Section 1.4).
//
// Voice-channel endpoints are bound to their sites (no cross-site
// replicas).  When the inter-site link fails, the peer endpoint of a
// channel is completely unreachable: constraint validation is IMPOSSIBLE
// (NCC -> uncheckable), yet the site operator keeps working.  After repair,
// reconciliation detects the real mismatch and the management application
// re-synchronizes the channel.
#include <cstdio>

#include "middleware/cluster.h"
#include "scenarios/dtms.h"

using namespace dedisys;
using scenarios::Dtms;

namespace {

class ChannelResync final : public ConstraintReconciliationHandler {
 public:
  explicit ChannelResync(DedisysNode& node) : node_(&node) {}

  bool reconcile(const ConsistencyThreat& threat,
                 ConstraintValidationContext& ctx) override {
    // Re-synchronize the channel: the (retuned) context endpoint wins.
    const Entity& endpoint = ctx.read(threat.context_object);
    const Value freq = endpoint.get("frequency");
    const ObjectId peer = as_object(endpoint.get("peer"));
    std::printf("  [DTMS] re-syncing channel: peer endpoint -> frequency %s\n",
                to_string(freq).c_str());
    TxScope tx(node_->tx());
    node_->invoke(tx.id(), peer, "setFrequency", {freq});
    tx.commit();
    return true;
  }

 private:
  DedisysNode* node_;
};

}  // namespace

int main() {
  std::printf("=== DTMS example: site-bound objects & uncheckable threats ===\n\n");

  ClusterConfig cfg;
  cfg.nodes = 2;  // two DTMS sites
  Cluster cluster(cfg);
  Dtms::define_classes(cluster.classes());
  Dtms::register_constraints(cluster.constraints());

  DedisysNode& site_a = cluster.node(0);
  DedisysNode& site_b = cluster.node(1);

  const Dtms::Channel channel = Dtms::create_channel(cluster, 0, 1, 118100);
  std::printf("channel created: both endpoints tuned to %lld kHz\n",
              static_cast<long long>(Dtms::frequency(site_a,
                                                     channel.endpoint_a)));

  // Healthy mode: retune updates BOTH endpoints through a nested,
  // intercepted invocation; the constraint holds afterwards.
  {
    TxScope tx(site_a.tx());
    site_a.invoke(tx.id(), channel.endpoint_a, "retune",
                  {Value{std::int64_t{121500}}});
    tx.commit();
  }
  std::printf("healthy retune: A=%lld, B=%lld\n",
              static_cast<long long>(Dtms::frequency(site_a,
                                                     channel.endpoint_a)),
              static_cast<long long>(Dtms::frequency(site_b,
                                                     channel.endpoint_b)));

  // The inter-site link fails.
  cluster.inject(fault::split_indices({{0}, {1}}));
  std::printf("\ninter-site link failed; site A mode: %s\n",
              to_string(site_a.mode()).c_str());

  // A cross-site retune cannot reach the peer at all.
  try {
    TxScope tx(site_a.tx());
    site_a.invoke(tx.id(), channel.endpoint_a, "retune",
                  {Value{std::int64_t{122800}}});
    tx.commit();
  } catch (const ObjectUnreachable& e) {
    std::printf("cross-site retune fails: %s\n", e.what());
  }

  // The site operator adjusts the local endpoint anyway: the constraint is
  // UNCHECKABLE (peer has no replica here) — accepted as a threat.
  {
    TxScope tx(site_a.tx());
    site_a.invoke(tx.id(), channel.endpoint_a, "setFrequency",
                  {Value{std::int64_t{122800}}});
    tx.commit();
  }
  std::printf("local adjustment accepted with uncheckable threat; stored "
              "threats: %zu\n",
              cluster.threats().identity_count());

  // Link repaired: reconciliation finds the real mismatch and the
  // management application re-synchronizes the channel.
  cluster.inject(fault::Heal{});
  ChannelResync resync(site_a);
  const auto report = cluster.reconcile(nullptr, &resync);
  std::printf(
      "\nreconciliation: %zu violation(s), %zu resolved immediately\n",
      report.constraints.violations, report.constraints.resolved_immediately);
  std::printf("final: A=%lld, B=%lld — channel consistent again\n",
              static_cast<long long>(Dtms::frequency(site_a,
                                                     channel.endpoint_a)),
              static_cast<long long>(Dtms::frequency(site_b,
                                                     channel.endpoint_b)));
  return 0;
}
