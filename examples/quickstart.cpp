// Quickstart — the flight-booking walkthrough of Section 1.3.
//
// Builds a 3-node DeDiSys cluster, deploys the Flight class with its
// explicit runtime ticket-constraint, books seats, injects a network
// partition, keeps booking in both partitions (accepting consistency
// threats), heals the partition and reconciles: the replica consistency
// handler merges the divergent counts, the constraint reconciliation
// handler rebooks the surplus passengers.
#include <cstdio>

#include "middleware/cluster.h"
#include "scenarios/flight.h"

using namespace dedisys;
using scenarios::FlightBooking;

namespace {

/// Merges divergent soldTickets counts additively (each partition's delta
/// relative to the healthy count is applied).
class AdditiveMerge final : public ReplicaConsistencyHandler {
 public:
  explicit AdditiveMerge(std::int64_t healthy_sold) : healthy_(healthy_sold) {}

  EntitySnapshot reconcile_replicas(
      ObjectId id, const std::vector<EntitySnapshot>& candidates) override {
    std::int64_t total = healthy_;
    std::uint64_t max_version = 0;
    for (const EntitySnapshot& c : candidates) {
      total += as_int(c.attributes.at("soldTickets")) - healthy_;
      max_version = std::max(max_version, c.version);
    }
    std::printf("  [replica handler] merging %zu divergent replicas of %s "
                "-> %lld sold\n",
                candidates.size(), to_string(id).c_str(),
                static_cast<long long>(total));
    EntitySnapshot merged = candidates.front();
    merged.attributes["soldTickets"] = Value{total};
    merged.version = max_version + 1;
    return merged;
  }

 private:
  std::int64_t healthy_;
};

/// Rebooks passengers beyond capacity to other flights (Section 1.3:
/// "five tickets will be cancelled or rebooked to another flight").
class Rebooker final : public ConstraintReconciliationHandler {
 public:
  explicit Rebooker(DedisysNode& node) : node_(&node) {}

  bool reconcile(const ConsistencyThreat& threat,
                 ConstraintValidationContext&) override {
    TxScope tx(node_->tx());
    const ObjectId flight = threat.context_object;
    const std::int64_t sold =
        as_int(node_->invoke(tx.id(), flight, "getSoldTickets"));
    const std::int64_t seats =
        as_int(node_->invoke(tx.id(), flight, "getSeats"));
    if (sold > seats) {
      std::printf("  [reconciliation handler] flight overbooked %lld/%lld: "
                  "rebooking %lld passengers\n",
                  static_cast<long long>(sold), static_cast<long long>(seats),
                  static_cast<long long>(sold - seats));
      node_->invoke(tx.id(), flight, "cancelTickets", {Value{sold - seats}});
    }
    tx.commit();
    return true;  // resolved immediately
  }

 private:
  DedisysNode* node_;
};

}  // namespace

int main() {
  std::printf("=== DeDiSys quickstart: the Section 1.3 flight booking ===\n\n");

  // 1. Bring up a 3-node cluster with the P4 replication protocol.
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints());
  std::printf("cluster up: %zu nodes, protocol %s\n", cluster.size(),
              to_string(cfg.protocol).c_str());

  // 2. Healthy mode: create a flight with 80 seats and book 70.
  DedisysNode& node_a = cluster.node(0);
  DedisysNode& node_c = cluster.node(2);
  const ObjectId flight = FlightBooking::create_flight(node_a, 80);
  FlightBooking::sell(node_a, flight, 70);
  std::printf("healthy mode: sold %lld/80 tickets (replicated to all nodes)\n",
              static_cast<long long>(FlightBooking::sold(node_c, flight)));

  // 3. The ticket-constraint guards every booking.
  try {
    FlightBooking::sell(node_a, flight, 20);
  } catch (const ConstraintViolation& e) {
    std::printf("overbooking attempt rejected: %s\n", e.what());
  }

  // 4. A link failure splits the cluster: {A,B} vs {C}.
  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  std::printf("\nnetwork partition injected; node 0 mode: %s\n",
              to_string(node_a.mode()).c_str());

  // 5. Both partitions keep selling — constraint validation is only a
  //    limited check on possibly stale replicas, so each sale raises a
  //    consistency threat that static negotiation accepts.
  FlightBooking::sell(node_a, flight, 7);   // partition A: 77 <= 80
  FlightBooking::sell(node_c, flight, 8);   // partition B: 78 <= 80
  std::printf("degraded mode: partition A sees %lld sold, partition B sees "
              "%lld sold\n",
              static_cast<long long>(FlightBooking::sold(node_a, flight)),
              static_cast<long long>(FlightBooking::sold(node_c, flight)));
  std::printf("stored consistency threats: %zu\n",
              cluster.threats().identity_count());

  // 6. The link is repaired; reconciliation merges 70+7+8 = 85 > 80 and
  //    the application cleans up the overbooking.
  cluster.inject(fault::Heal{});
  std::printf("\npartition healed; node 0 mode: %s — reconciling...\n",
              to_string(node_a.mode()).c_str());
  AdditiveMerge merge(70);
  Rebooker rebooker(node_a);
  const Cluster::ReconciliationReport report =
      cluster.reconcile(&merge, &rebooker);

  std::printf(
      "\nreconciliation report: %zu replica conflict(s), %zu threat(s) "
      "re-evaluated, %zu violation(s) resolved immediately\n",
      report.replica.conflicts, report.constraints.reevaluated,
      report.constraints.resolved_immediately);
  std::printf("final state: %lld/80 tickets sold, %zu threats left, mode %s\n",
              static_cast<long long>(FlightBooking::sold(node_a, flight)),
              cluster.threats().identity_count(),
              to_string(node_a.mode()).c_str());
  return 0;
}
