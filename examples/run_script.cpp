// Script runner CLI — replays a DedisysTest script file (see scripts/)
// against a fresh cluster and prints per-command throughput.
//
// Usage: run_script <script-file> [nodes]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "middleware/metrics.h"
#include "scenarios/evalapp.h"
#include "scenarios/script.h"

int main(int argc, char** argv) {
  using namespace dedisys;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <script-file> [nodes]\n", argv[0]);
    return 2;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream text;
  text << file.rdbuf();

  ClusterConfig cfg;
  cfg.nodes = argc > 2 ? std::stoul(argv[2]) : 3;
  Cluster cluster(cfg);
  scenarios::EvalApp::define_classes(cluster.classes());
  scenarios::EvalApp::register_constraints(cluster.constraints());

  scenarios::ScriptRunner runner(cluster);
  try {
    const scenarios::ScriptReport report = runner.run(text.str());
    std::printf("%-40s %10s %14s\n", "command", "ops", "ops/sim-s");
    for (const auto& cmd : report.commands) {
      std::printf("%-40s %10zu %14.1f\n", cmd.command.c_str(), cmd.ops,
                  cmd.ops_per_second());
    }
    std::printf("\ncommitted: %zu, aborted: %zu\n", report.committed_ops,
                report.aborted_ops);
    std::printf("\n%s", render_metrics(collect_metrics(cluster)).c_str());
  } catch (const DedisysError& e) {
    std::fprintf(stderr, "script failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
