// Web callback example — negotiation over strict HTTP request/response
// (Section 4.5, Fig. 4.8).
//
// A browser cannot receive callbacks, yet threat negotiation is a
// synchronous middleware -> application callback.  The servlet parks the
// business thread, ships the negotiation question to the browser as the
// HTTP *response* of the business request, receives the decision as a new
// request and returns the business result on that request's response.
#include <cstdio>

#include "middleware/cluster.h"
#include "scenarios/flight.h"
#include "web/bridge.h"

using namespace dedisys;
using scenarios::FlightBooking;
using web::HttpRequest;
using web::HttpResponse;
using web::WebBusinessServlet;

namespace {

void show(const char* who, const std::string& what) {
  std::printf("%-10s %s\n", who, what.c_str());
}

}  // namespace

int main() {
  std::printf("=== Web negotiation callback example (Section 4.5) ===\n\n");

  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  // No static acceptance: every degraded-mode threat must be decided by
  // the human in front of the browser.
  FlightBooking::register_constraints(cluster.constraints(), false,
                                      SatisfactionDegree::Satisfied);

  DedisysNode& node = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(node, 80);
  FlightBooking::sell(node, flight, 78);
  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  std::printf("flight 78/80 booked; cluster partitioned (degraded mode)\n\n");

  std::shared_ptr<web::WebNegotiationBridge> bridge;
  WebBusinessServlet servlet([&] {
    TxScope tx(node.tx());
    node.ccmgr().register_negotiation_handler(tx.id(), bridge);
    node.invoke(tx.id(), flight, "sellTickets", {Value{std::int64_t{1}}});
    tx.commit();
    return "booked 1 ticket";
  });
  bridge = servlet.bridge();

  // -- first booking: the user accepts the threat --------------------------
  show("browser:", "POST /business  (book one ticket)");
  HttpResponse r = servlet.handle(HttpRequest{"/business", {}});
  show("server:", "response kind=" + r.kind + " constraint=" +
                      r.fields.at("constraint") + " degree=" +
                      r.fields.at("degree"));
  show("browser:", "user accepts -> POST /negotiation-result?accept=true");
  r = servlet.handle(HttpRequest{"/negotiation-result", {{"accept", "true"}}});
  show("server:", "response kind=" + r.kind + " result=\"" +
                      r.fields.at("result") + "\"");
  std::printf("   tickets now: %lld/80\n\n",
              static_cast<long long>(FlightBooking::sold(node, flight)));

  // -- second booking: the user rejects ------------------------------------
  show("browser:", "POST /business  (book one ticket)");
  r = servlet.handle(HttpRequest{"/business", {}});
  show("server:", "response kind=" + r.kind +
                      " (threat must be decided again)");
  show("browser:", "user rejects -> POST /negotiation-result?accept=false");
  r = servlet.handle(HttpRequest{"/negotiation-result", {{"accept", "false"}}});
  show("server:", "response status=" + std::to_string(r.status) + " kind=" +
                      r.kind + " (transaction rolled back)");
  std::printf("   tickets now: %lld/80\n\n",
              static_cast<long long>(FlightBooking::sold(node, flight)));

  std::printf("stored threats after the accepted booking: %zu\n",
              cluster.threats().identity_count());
  return 0;
}
