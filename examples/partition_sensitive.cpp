// Partition-sensitive constraints example (Section 5.5.2).
//
// Tickets are a partitionable resource: during a partition, each side may
// only sell its weight-proportional share of the remaining seats.  With
// that rule, write access continues in every partition and (as long as
// tickets are only sold, not cancelled) NO inconsistency is introduced at
// all — reconciliation finds nothing to clean up.
#include <cstdio>

#include "middleware/cluster.h"
#include "scenarios/flight.h"

using namespace dedisys;
using scenarios::FlightBooking;

namespace {

class AdditiveMerge final : public ReplicaConsistencyHandler {
 public:
  explicit AdditiveMerge(std::int64_t healthy) : healthy_(healthy) {}
  EntitySnapshot reconcile_replicas(
      ObjectId, const std::vector<EntitySnapshot>& c) override {
    std::int64_t total = healthy_;
    std::uint64_t maxv = 0;
    for (const auto& s : c) {
      total += as_int(s.attributes.at("soldTickets")) - healthy_;
      maxv = std::max(maxv, s.version);
    }
    EntitySnapshot out = c.front();
    out.attributes["soldTickets"] = Value{total};
    out.version = maxv + 1;
    return out;
  }

 private:
  std::int64_t healthy_;
};

}  // namespace

int main() {
  std::printf("=== Partition-sensitive ticket constraint (Section 5.5.2) ===\n\n");

  ClusterConfig cfg;
  cfg.nodes = 4;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints(),
                                      /*partition_sensitive=*/true,
                                      SatisfactionDegree::PossiblySatisfied);
  // Node 0 is the big booking office: weight 2 (others weight 1).
  cluster.weights().set(NodeId{0}, 2.0);

  DedisysNode& office_a = cluster.node(0);
  DedisysNode& office_b = cluster.node(2);
  const ObjectId flight = FlightBooking::create_flight(office_a, 100);
  FlightBooking::sell(office_a, flight, 50);
  std::printf("healthy: 50/100 sold, 50 remaining\n");

  // Partition: {0,1} holds weight 3/5, {2,3} holds 2/5.
  cluster.inject(fault::split_indices({{0, 1}, {2, 3}}));
  std::printf("partition: office A quota = 50*3/5 = 30, office B quota = "
              "50*2/5 = 20\n\n");

  auto sell_report = [&](DedisysNode& node, const char* name,
                         std::int64_t count) {
    try {
      FlightBooking::sell(node, flight, count);
      std::printf("%s sells %lld -> accepted (local total %lld)\n", name,
                  static_cast<long long>(count),
                  static_cast<long long>(FlightBooking::sold(node, flight)));
    } catch (const ConsistencyThreatRejected&) {
      std::printf("%s sells %lld -> REJECTED (quota exhausted)\n", name,
                  static_cast<long long>(count));
    }
  };

  sell_report(office_a, "office A", 25);
  sell_report(office_a, "office A", 5);   // exactly at quota (30)
  sell_report(office_a, "office A", 1);   // beyond quota -> rejected
  sell_report(office_b, "office B", 20);  // exactly at quota
  sell_report(office_b, "office B", 1);   // beyond quota -> rejected

  cluster.inject(fault::Heal{});
  AdditiveMerge merge(50);
  const auto report = cluster.reconcile(&merge);
  const std::int64_t total = FlightBooking::sold(office_a, flight);
  std::printf(
      "\nafter reconciliation: %lld/100 sold, %zu constraint violation(s) "
      "to clean up\n",
      static_cast<long long>(total), report.constraints.violations);
  std::printf("=> weighted quotas preserved integrity without blocking "
              "either partition\n");
  return 0;
}
