// Parallel reconciliation and business operations (Section 3.3): ops on
// still-threatened objects may proceed, block, or be treated as degraded.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;

class PolicyTest : public ::testing::TestWithParam<ReconciliationBusinessPolicy> {
 protected:
  PolicyTest() : cluster_(make_config(GetParam())) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(
        cluster_.constraints(), false, SatisfactionDegree::PossiblySatisfied);
    threatened_ = FlightBooking::create_flight(cluster_.node(0), 1000);
    untouched_ = FlightBooking::create_flight(cluster_.node(0), 1000);
    cluster_.inject(fault::split_indices({{0, 1}, {2}}));
    FlightBooking::sell(cluster_.node(0), threatened_, 5);  // stores a threat
    cluster_.inject(fault::Heal{});  // mode: Reconciling, reconciliation not yet run
  }

  static ClusterConfig make_config(ReconciliationBusinessPolicy policy) {
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.reconciliation_policy = policy;
    return cfg;
  }

  Cluster cluster_;
  ObjectId threatened_;
  ObjectId untouched_;
};

TEST_P(PolicyTest, UnthreatenedObjectsContinueInHealthyMode) {
  ASSERT_EQ(cluster_.node(0).mode(), SystemMode::Reconciling);
  EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(0), untouched_, 1));
  // No new threats from the unthreatened object under any policy.
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
}

TEST_P(PolicyTest, PolicyGovernsThreatenedObjects) {
  switch (GetParam()) {
    case ReconciliationBusinessPolicy::Proceed: {
      // The fully-checkable satisfied validation cleans the stored threat.
      EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(0), threatened_, 1));
      EXPECT_EQ(cluster_.threats().identity_count(), 0u);
      break;
    }
    case ReconciliationBusinessPolicy::BlockThreatened: {
      EXPECT_THROW(FlightBooking::sell(cluster_.node(0), threatened_, 1),
                   ReconciliationBlocked);
      EXPECT_EQ(cluster_.threats().identity_count(), 1u);
      break;
    }
    case ReconciliationBusinessPolicy::TreatAsDegraded: {
      // The op succeeds but is validated with degraded semantics: the
      // threat stays (a new identical occurrence was negotiated).
      EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(0), threatened_, 1));
      EXPECT_EQ(cluster_.threats().identity_count(), 1u);
      break;
    }
  }
}

TEST_P(PolicyTest, AfterReconciliationEverythingIsNormalAgain) {
  (void)cluster_.reconcile();
  EXPECT_EQ(cluster_.node(0).mode(), SystemMode::Healthy);
  EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(0), threatened_, 1));
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyTest,
    ::testing::Values(ReconciliationBusinessPolicy::Proceed,
                      ReconciliationBusinessPolicy::BlockThreatened,
                      ReconciliationBusinessPolicy::TreatAsDegraded),
    [](const ::testing::TestParamInfo<ReconciliationBusinessPolicy>& info) {
      switch (info.param) {
        case ReconciliationBusinessPolicy::Proceed: return "Proceed";
        case ReconciliationBusinessPolicy::BlockThreatened: return "Block";
        case ReconciliationBusinessPolicy::TreatAsDegraded:
          return "TreatAsDegraded";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace dedisys
