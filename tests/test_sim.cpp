#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/network.h"

namespace dedisys {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(clock_, CostModel{}) {
    for (std::uint64_t i = 0; i < 4; ++i) net_.add_node(NodeId{i});
  }

  SimClock clock_;
  SimNetwork net_;
};

TEST_F(NetworkTest, InitiallyFullyConnected) {
  EXPECT_TRUE(net_.fully_connected());
  for (NodeId a : net_.nodes()) {
    for (NodeId b : net_.nodes()) {
      EXPECT_TRUE(net_.reachable(a, b));
    }
  }
}

TEST_F(NetworkTest, PartitionSplitsReachability) {
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}}}});
  EXPECT_FALSE(net_.fully_connected());
  EXPECT_TRUE(net_.reachable(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(net_.reachable(NodeId{2}, NodeId{3}));
  EXPECT_FALSE(net_.reachable(NodeId{0}, NodeId{2}));
  EXPECT_FALSE(net_.reachable(NodeId{1}, NodeId{3}));
}

TEST_F(NetworkTest, HealRestoresFullConnectivity) {
  net_.apply(fault::Partition{{{NodeId{0}}, {NodeId{1}, NodeId{2}, NodeId{3}}}});
  net_.apply(fault::Heal{});
  EXPECT_TRUE(net_.fully_connected());
}

TEST_F(NetworkTest, CrashedNodeUnreachableUntilRecovery) {
  net_.apply(fault::Crash{NodeId{2}});
  EXPECT_FALSE(net_.is_alive(NodeId{2}));
  EXPECT_FALSE(net_.reachable(NodeId{0}, NodeId{2}));
  EXPECT_FALSE(net_.reachable(NodeId{2}, NodeId{2}));
  EXPECT_FALSE(net_.fully_connected());
  net_.apply(fault::Restart{NodeId{2}});
  EXPECT_TRUE(net_.reachable(NodeId{0}, NodeId{2}));
  EXPECT_TRUE(net_.fully_connected());
}

TEST_F(NetworkTest, ReachableSetReflectsPartition) {
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{3}}, {NodeId{1}, NodeId{2}}}});
  const auto set = net_.reachable_set(NodeId{0});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(net_.reachable(NodeId{0}, NodeId{3}));
}

TEST_F(NetworkTest, RpcChargesLatencyOnlyWhenReachable) {
  const SimTime before = clock_.now();
  EXPECT_TRUE(net_.charge_rpc(NodeId{0}, NodeId{1}));
  EXPECT_EQ(clock_.now() - before, CostModel{}.rpc_latency);

  net_.apply(fault::Partition{{{NodeId{0}}, {NodeId{1}, NodeId{2}, NodeId{3}}}});
  const SimTime mid = clock_.now();
  EXPECT_FALSE(net_.charge_rpc(NodeId{0}, NodeId{1}));  // message lost
  EXPECT_EQ(clock_.now(), mid);
}

TEST_F(NetworkTest, LocalRpcIsFree) {
  const SimTime before = clock_.now();
  EXPECT_TRUE(net_.charge_rpc(NodeId{0}, NodeId{0}));
  EXPECT_EQ(clock_.now(), before);
}

TEST_F(NetworkTest, MulticastReachesOnlyPartitionMembers) {
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}}}});
  const auto reached =
      net_.charge_multicast(NodeId{0}, {NodeId{0}, NodeId{1}, NodeId{2},
                                        NodeId{3}});
  EXPECT_EQ(reached, 1u);  // only node 1
}

TEST_F(NetworkTest, MulticastCostScalesWithReceivers) {
  const CostModel cost;
  SimTime t0 = clock_.now();
  net_.charge_multicast(NodeId{0}, net_.nodes());
  const SimDuration three = clock_.now() - t0;
  EXPECT_EQ(three, cost.multicast_base + 3 * cost.multicast_per_receiver);
}

TEST_F(NetworkTest, TopologyListenersNotified) {
  struct Counter : TopologyListener {
    int calls = 0;
    void on_topology_changed() override { ++calls; }
  } counter;
  net_.subscribe(&counter);
  net_.apply(fault::Partition{{{NodeId{0}}, {NodeId{1}, NodeId{2}, NodeId{3}}}});
  net_.apply(fault::Heal{});
  net_.apply(fault::Crash{NodeId{1}});
  EXPECT_EQ(counter.calls, 3);
  net_.unsubscribe(&counter);
  net_.apply(fault::Restart{NodeId{1}});
  EXPECT_EQ(counter.calls, 3);
}

TEST(EventQueue, RunsInTimestampOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.schedule_at(300, [&] { order.push_back(3); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(200, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 300);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  SimClock clock;
  EventQueue q(clock);
  int ran = 0;
  q.schedule_at(100, [&] { ++ran; });
  q.schedule_at(200, [&] { ++ran; });
  q.run_until(150);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(clock.now(), 150);
  q.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  SimClock clock;
  EventQueue q(clock);
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(10, recurse);
  };
  q.schedule_in(10, recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(clock.now(), 50);
}

TEST(EventQueue, ScheduleInClampsNegativeDelay) {
  SimClock clock;
  clock.advance(100);
  EventQueue q(clock);
  bool ran = false;
  q.schedule_in(-50, [&] { ran = true; });
  q.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.now(), 100);
}

}  // namespace
}  // namespace dedisys
