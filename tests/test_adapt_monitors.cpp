// ADAPT component monitors (Section 4.3): client-side read redirection
// and server-side lifecycle/invocation callbacks.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;

class RecordingMonitor final : public ServerComponentMonitor {
 public:
  void on_created(ObjectId, const std::string& class_name) override {
    events.push_back("created:" + class_name);
  }
  void before_invocation(const Invocation& inv) override {
    events.push_back("before:" + inv.method.name);
  }
  void after_invocation(const Invocation& inv) override {
    events.push_back("after:" + inv.method.name);
  }
  void on_deleted(ObjectId) override { events.push_back("deleted"); }

  std::vector<std::string> events;
};

class AdaptFixture : public ::testing::Test {
 protected:
  AdaptFixture() : cluster_(make_config()) {
    FlightBooking::define_classes(cluster_.classes());
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  Cluster cluster_;
};

TEST_F(AdaptFixture, ServerMonitorSeesLifecycleAndInvocations) {
  auto monitor = std::make_shared<RecordingMonitor>();
  cluster_.node(0).add_server_monitor(monitor);

  DedisysNode& n = cluster_.node(0);
  const ObjectId f = FlightBooking::create_flight(n, 50);
  FlightBooking::sell(n, f, 1);
  {
    TxScope tx(n.tx());
    n.destroy(tx.id(), f);
    tx.commit();
  }

  ASSERT_GE(monitor->events.size(), 6u);
  EXPECT_EQ(monitor->events.front(), "created:Flight");
  EXPECT_EQ(monitor->events.back(), "deleted");
  EXPECT_NE(std::find(monitor->events.begin(), monitor->events.end(),
                      "before:sellTickets"),
            monitor->events.end());
  EXPECT_NE(std::find(monitor->events.begin(), monitor->events.end(),
                      "after:sellTickets"),
            monitor->events.end());
}

TEST_F(AdaptFixture, ReadBalancerSpreadsGettersAcrossReplicas) {
  // Count invocation arrivals per node via server monitors.
  std::vector<std::shared_ptr<RecordingMonitor>> monitors;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    monitors.push_back(std::make_shared<RecordingMonitor>());
    cluster_.node(i).add_server_monitor(monitors.back());
  }
  auto balancer = std::make_shared<RoundRobinReadBalancer>();
  cluster_.node(0).set_client_monitor(balancer);

  DedisysNode& n = cluster_.node(0);
  const ObjectId f = FlightBooking::create_flight(n, 50);
  for (int i = 0; i < 9; ++i) {
    TxScope tx(n.tx());
    n.invoke(tx.id(), f, "getSeats");
    tx.commit();
  }

  // Every node served reads (round robin over the three replicas).
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    const auto& ev = monitors[i]->events;
    EXPECT_EQ(std::count(ev.begin(), ev.end(), "before:getSeats"), 3)
        << "node " << i;
  }
  EXPECT_EQ(balancer->dispatched(), 9u);
}

TEST_F(AdaptFixture, WritesAreNeverRedirectedAwayFromThePrimary) {
  auto balancer = std::make_shared<RoundRobinReadBalancer>();
  cluster_.node(1).set_client_monitor(balancer);
  DedisysNode& n1 = cluster_.node(1);
  const ObjectId f = FlightBooking::create_flight(cluster_.node(0), 50);

  auto monitor0 = std::make_shared<RecordingMonitor>();
  cluster_.node(0).add_server_monitor(monitor0);
  {
    TxScope tx(n1.tx());
    n1.invoke(tx.id(), f, "sellTickets", {Value{std::int64_t{2}}});
    tx.commit();
  }
  // The write executed on the designated primary (node 0).
  EXPECT_NE(std::find(monitor0->events.begin(), monitor0->events.end(),
                      "before:sellTickets"),
            monitor0->events.end());
  EXPECT_EQ(as_int(cluster_.node(2)
                       .replication()
                       .local_replica(f)
                       .get("soldTickets")),
            2);
}

TEST_F(AdaptFixture, RedirectionRespectsPartitions) {
  auto balancer = std::make_shared<RoundRobinReadBalancer>();
  cluster_.node(0).set_client_monitor(balancer);
  DedisysNode& n = cluster_.node(0);
  const ObjectId f = FlightBooking::create_flight(n, 50);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  // Reads keep working, balanced only over reachable replicas {0,1}.
  for (int i = 0; i < 6; ++i) {
    TxScope tx(n.tx());
    EXPECT_NO_THROW(n.invoke(tx.id(), f, "getSeats"));
    tx.commit();
  }
}

}  // namespace
}  // namespace dedisys
