// The umbrella header exposes the complete public API in one include.
#include "dedisys.h"

#include <gtest/gtest.h>

namespace dedisys {
namespace {

TEST(Umbrella, PublicApiAccessibleThroughSingleInclude) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  cluster.classes().define("Thing").define_property(
      "x", Value{std::int64_t{0}}, "int");

  auto constraint = std::make_shared<OclConstraint>(
      "XNonNegative", ConstraintType::HardInvariant,
      ConstraintPriority::Tradeable, "self.x >= 0");
  ConstraintRegistration reg;
  reg.constraint = std::move(constraint);
  reg.context_class = "Thing";
  reg.affected_methods.push_back(AffectedMethod{
      "Thing", MethodSignature{"setX", {"int"}},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  cluster.constraints().register_constraint(std::move(reg));

  DedisysNode& node = cluster.node(0);
  ObjectId id;
  {
    TxScope tx(node.tx());
    id = node.create(tx.id(), "Thing");
    node.invoke(tx.id(), id, "setX", {Value{std::int64_t{5}}});
    tx.commit();
  }
  {
    // A violation marks the transaction rollback-only; it cannot commit.
    TxScope tx(node.tx());
    EXPECT_THROW(node.invoke(tx.id(), id, "setX", {Value{std::int64_t{-1}}}),
                 ConstraintViolation);
    EXPECT_THROW(tx.commit(), TxAborted);
  }

  const ClusterMetrics metrics = collect_metrics(cluster);
  EXPECT_EQ(metrics.live_objects, 1u);
}

}  // namespace
}  // namespace dedisys
