// Persistent-connection push callbacks (Section 6.4) — the XMLBlaster-style
// alternative to the request/response negotiation bridge.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/flight.h"
#include "web/push_channel.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;
using web::HttpRequest;
using web::HttpResponse;
using web::PushBusinessServlet;
using web::PushChunk;

class PushChannelFixture : public ::testing::Test {
 protected:
  PushChannelFixture() : cluster_(make_config()) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(cluster_.constraints(), false,
                                        SatisfactionDegree::Satisfied);
    flight_ = FlightBooking::create_flight(cluster_.node(0), 80);
    FlightBooking::sell(cluster_.node(0), flight_, 70);
    cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  std::unique_ptr<PushBusinessServlet> make_servlet() {
    auto servlet = std::make_unique<PushBusinessServlet>([this] {
      DedisysNode& n = cluster_.node(0);
      TxScope tx(n.tx());
      n.ccmgr().register_negotiation_handler(tx.id(), bridge_);
      n.invoke(tx.id(), flight_, "sellTickets", {Value{std::int64_t{1}}});
      tx.commit();
      return "sold";
    });
    bridge_ = servlet->bridge();
    return servlet;
  }

  /// Browser-side: poll /result until it stops being 202-pending.
  static HttpResponse await_result(PushBusinessServlet& servlet) {
    while (true) {
      const HttpResponse r = servlet.handle(HttpRequest{"/result", {}});
      if (r.status != 202) return r;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  Cluster cluster_;
  ObjectId flight_;
  std::shared_ptr<web::PushNegotiationBridge> bridge_;
};

TEST_F(PushChannelFixture, NegotiationArrivesAsPushedChunk) {
  auto servlet = make_servlet();
  const HttpResponse r = servlet->handle(HttpRequest{"/business", {}});
  EXPECT_EQ(r.status, 202);  // immediate acknowledgement

  // The callback is a genuine server push over the held connection.
  const auto chunk = servlet->channel().poll();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->kind, "negotiation-request");
  EXPECT_EQ(chunk->fields.at("constraint"), "TicketConstraint");
  EXPECT_EQ(chunk->fields.at("degree"), "possibly_satisfied");

  EXPECT_EQ(servlet->handle(HttpRequest{"/decision", {{"accept", "true"}}})
                .kind,
            "decision-recorded");
  const HttpResponse result = await_result(*servlet);
  EXPECT_EQ(result.kind, "business-result");
  EXPECT_EQ(result.fields.at("result"), "sold");
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 71);
}

TEST_F(PushChannelFixture, RejectionAbortsBusinessOperation) {
  auto servlet = make_servlet();
  (void)servlet->handle(HttpRequest{"/business", {}});
  ASSERT_TRUE(servlet->channel().poll().has_value());
  (void)servlet->handle(HttpRequest{"/decision", {{"accept", "false"}}});
  const HttpResponse result = await_result(*servlet);
  EXPECT_EQ(result.status, 500);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 70);
}

TEST_F(PushChannelFixture, TimeoutRejectsWhenBrowserNeverDecides) {
  auto servlet = make_servlet();
  servlet->set_negotiation_timeout(std::chrono::milliseconds(30));
  (void)servlet->handle(HttpRequest{"/business", {}});
  ASSERT_TRUE(servlet->channel().poll().has_value());
  const HttpResponse result = await_result(*servlet);
  EXPECT_EQ(result.status, 500);  // auto-rejected threat aborted the tx
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 70);
}

TEST_F(PushChannelFixture, ErrorsOnProtocolMisuse) {
  auto servlet = make_servlet();
  EXPECT_EQ(servlet->handle(HttpRequest{"/decision", {{"accept", "true"}}})
                .status,
            409);
  EXPECT_EQ(servlet->handle(HttpRequest{"/nope", {}}).status, 404);
  // /result without a business op: the last (nonexistent) op is "done".
  (void)servlet->handle(HttpRequest{"/business", {}});
  EXPECT_EQ(servlet->handle(HttpRequest{"/business", {}}).status, 409);
  // clean up: answer the pending negotiation
  ASSERT_TRUE(servlet->channel().poll().has_value());
  (void)servlet->handle(HttpRequest{"/decision", {{"accept", "true"}}});
  (void)await_result(*servlet);
}

TEST(PushChannelUnit, PollTimesOutWhenNothingPushed) {
  web::PushChannel channel;
  EXPECT_FALSE(channel.poll(std::chrono::milliseconds(20)).has_value());
  channel.push(PushChunk{"x", {}});
  channel.push(PushChunk{"y", {}});
  EXPECT_EQ(channel.pending(), 2u);
  EXPECT_EQ(channel.poll()->kind, "x");  // FIFO
  EXPECT_EQ(channel.poll()->kind, "y");
}

}  // namespace
}  // namespace dedisys
