// Chapter-2 study correctness: every approach checks the same constraints,
// detects the same violations, and the qualitative performance ordering of
// the paper holds.
#include <gtest/gtest.h>

#include "validation/harness.h"

// The PerformanceShape tests assert wall-clock cost orderings; sanitizer
// instrumentation (redzones, shadow memory) distorts the per-mechanism
// ratios enough to flip close orderings, so they are skipped under
// ASan/TSan builds (DEDISYS_SANITIZE).
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DEDISYS_TIMING_TESTS_UNRELIABLE 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DEDISYS_TIMING_TESTS_UNRELIABLE 1
#endif
#ifdef DEDISYS_TIMING_TESTS_UNRELIABLE
#define DEDISYS_SKIP_UNDER_SANITIZERS() \
  GTEST_SKIP() << "wall-clock shape assertions are skipped under sanitizers"
#else
#define DEDISYS_SKIP_UNDER_SANITIZERS() (void)0
#endif

namespace dedisys::validation {
namespace {

constexpr Approach kChecking[] = {
    Approach::Handcrafted,      Approach::InPlaceGenerated,
    Approach::WrapperGenerated, Approach::AspectInline,
    Approach::JmlStyle,         Approach::DresdenOcl,
    Approach::AspectRepo,       Approach::AspectRepoOpt,
    Approach::AopRepo,          Approach::AopRepoOpt,
    Approach::ProxyRepo,        Approach::ProxyRepoOpt,
};

class ApproachParity : public ::testing::TestWithParam<Approach> {};

TEST_P(ApproachParity, SameCheckCountsAsHandcrafted) {
  StudyApp app = StudyApp::make();
  const CheckCounters reference = run_scenario(Approach::Handcrafted, app, 3);
  app.reset();
  const CheckCounters c = run_scenario(GetParam(), app, 3);
  EXPECT_EQ(c.preconditions, reference.preconditions);
  EXPECT_EQ(c.postconditions, reference.postconditions);
  EXPECT_EQ(c.invariants, reference.invariants);
  EXPECT_EQ(c.violations, 0u);  // the scenario violates nothing
}

TEST_P(ApproachParity, DetectsAllInjectedViolations) {
  StudyApp app = StudyApp::make();
  EXPECT_EQ(run_violation_scenario(GetParam(), app), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllChecking, ApproachParity,
                         ::testing::ValuesIn(kChecking),
                         [](const ::testing::TestParamInfo<Approach>& info) {
                           std::string n = to_string(info.param);
                           for (char& ch : n) {
                             if (ch == '-' || ch == ' ') ch = '_';
                           }
                           return n;
                         });

TEST(ApproachBehaviour, NoChecksDetectsNothing) {
  StudyApp app = StudyApp::make();
  EXPECT_EQ(run_violation_scenario(Approach::NoChecks, app), 0u);
}

TEST(ApproachBehaviour, ScenarioLeavesInvariantsIntact) {
  StudyApp app = StudyApp::make();
  (void)run_scenario(Approach::Handcrafted, app, 5);
  for (const Employee& e : app.employees) {
    EXPECT_EQ(e.workload, 0);
    EXPECT_EQ(e.projects, 0);
  }
  for (const Project& p : app.projects) {
    EXPECT_EQ(p.spent, 0);
    EXPECT_EQ(p.members, 0);
  }
}

TEST(ApproachBehaviour, RepoApproachesSearchFourTimesPerInterception) {
  StudyApp app = StudyApp::make();
  const CheckCounters c = run_scenario(Approach::ProxyRepo, app, 3);
  EXPECT_EQ(c.searches, 4 * c.interceptions);
}

TEST(ApproachBehaviour, StagedPipelineCountsAreMonotone) {
  StudyApp app = StudyApp::make();
  const CheckCounters intercept =
      run_repo_staged(MechKind::Aop, true, RepoStage::InterceptOnly, app, 2);
  app.reset();
  const CheckCounters search =
      run_repo_staged(MechKind::Aop, true, RepoStage::Search, app, 2);
  app.reset();
  const CheckCounters check =
      run_repo_staged(MechKind::Aop, true, RepoStage::Check, app, 2);
  EXPECT_EQ(intercept.total_checks(), 0u);
  EXPECT_EQ(intercept.searches, 0u);
  EXPECT_EQ(search.total_checks(), 0u);  // searched but not validated
  EXPECT_GT(search.searches, 0u);
  EXPECT_GT(check.total_checks(), 0u);
  EXPECT_EQ(check.interceptions, intercept.interceptions);
}

// ---------------------------------------------------------------------------
// Qualitative performance shape (generous margins; these assert orderings,
// not absolute numbers — see EXPERIMENTS.md for the measured factors).
// ---------------------------------------------------------------------------

TEST(PerformanceShape, InlineAspectsCostAboutTheSameAsHandcrafted) {
  DEDISYS_SKIP_UNDER_SANITIZERS();
  const double hand = measure_approach(Approach::Handcrafted, 5, 9);
  const double aspect = measure_approach(Approach::AspectInline, 5, 9);
  EXPECT_LT(aspect, 2.0 * hand);
  EXPECT_GT(aspect, 0.5 * hand);
}

TEST(PerformanceShape, OptimizedRepositoryBeatsNaiveRepository) {
  DEDISYS_SKIP_UNDER_SANITIZERS();
  const double opt = measure_approach(Approach::ProxyRepoOpt, 5, 9);
  const double naive = measure_approach(Approach::ProxyRepo, 5, 9);
  EXPECT_LT(2.0 * opt, naive);
}

TEST(PerformanceShape, InterpretedOclIsTheSlowestApproach) {
  DEDISYS_SKIP_UNDER_SANITIZERS();
  const double ocl = measure_approach(Approach::DresdenOcl, 5, 9);
  for (Approach a : {Approach::Handcrafted, Approach::JmlStyle,
                     Approach::AopRepo, Approach::ProxyRepo}) {
    EXPECT_GT(ocl, measure_approach(a, 5, 9)) << to_string(a);
  }
}

TEST(PerformanceShape, InterceptionCostOrderingMatchesFig25) {
  DEDISYS_SKIP_UNDER_SANITIZERS();
  // aspect < aop < proxy for pure interception (Fig. 2.5).
  const double aspect =
      measure_repo_staged(MechKind::Aspect, true, RepoStage::InterceptOnly, 5, 9);
  const double aop =
      measure_repo_staged(MechKind::Aop, true, RepoStage::InterceptOnly, 5, 9);
  const double proxy =
      measure_repo_staged(MechKind::Proxy, true, RepoStage::InterceptOnly, 5, 9);
  EXPECT_LT(aspect, aop);
  EXPECT_LT(aop, proxy);
}

TEST(PerformanceShape, ExtractionFlipsTheOrderingMatchesFig26) {
  DEDISYS_SKIP_UNDER_SANITIZERS();
  // aop < proxy < aspect once parameter extraction is included (Fig. 2.6).
  const double aspect =
      measure_repo_staged(MechKind::Aspect, true, RepoStage::Extract, 5, 9);
  const double aop =
      measure_repo_staged(MechKind::Aop, true, RepoStage::Extract, 5, 9);
  const double proxy =
      measure_repo_staged(MechKind::Proxy, true, RepoStage::Extract, 5, 9);
  EXPECT_LT(aop, proxy);
  EXPECT_LT(proxy, aspect);
}

// ---------------------------------------------------------------------------
// OCL mini-interpreter
// ---------------------------------------------------------------------------

class OclEval : public ::testing::Test {
 protected:
  OclEval() {
    employee_.workload = 10;
    employee_.max_workload = 40;
    employee_.projects = 2;
    self_ = ObjectRefl{&employee_class(), &employee_};
  }

  bool eval(const std::string& src, std::vector<Boxed> args = {}) {
    return ocl_check(parse_ocl(src), self_, args);
  }

  Employee employee_;
  ObjectRefl self_{};
};

TEST_F(OclEval, Comparisons) {
  EXPECT_TRUE(eval("self.workload <= self.max_workload"));
  EXPECT_TRUE(eval("self.workload >= 10"));
  EXPECT_FALSE(eval("self.workload > 10"));
  EXPECT_TRUE(eval("self.projects = 2"));
  EXPECT_TRUE(eval("self.projects <> 3"));
}

TEST_F(OclEval, ArithmeticAndPrecedence) {
  EXPECT_TRUE(eval("self.workload + 5 * 2 = 20"));
  EXPECT_TRUE(eval("(self.workload + 5) * 2 = 30"));
  EXPECT_TRUE(eval("self.workload - 4 / 2 = 8"));
}

TEST_F(OclEval, BooleanConnectives) {
  EXPECT_TRUE(eval("self.workload >= 0 and self.projects >= 0"));
  EXPECT_FALSE(eval("self.workload > 99 and self.projects >= 0"));
  EXPECT_TRUE(eval("self.workload > 99 or self.projects >= 0"));
  EXPECT_TRUE(eval("not self.workload > 99"));
  EXPECT_TRUE(eval("not (self.workload > 99 and self.projects = 2)"));
}

TEST_F(OclEval, BooleanLiteralsAndImplies) {
  EXPECT_TRUE(eval("true"));
  EXPECT_FALSE(eval("false"));
  EXPECT_TRUE(eval("false implies self.workload > 99"));
  EXPECT_TRUE(eval("self.workload = 10 implies self.projects = 2"));
  EXPECT_FALSE(eval("self.workload = 10 implies self.projects = 3"));
  // implies binds loosest: (a and b) implies c
  EXPECT_TRUE(eval("self.workload = 10 and self.projects = 2 implies true"));
}

TEST_F(OclEval, StringLiteralsAndComparison) {
  employee_.name = "alice";
  EXPECT_TRUE(eval("self.name = \"alice\""));
  EXPECT_FALSE(eval("self.name = \"bob\""));
  EXPECT_TRUE(eval("self.name <> 'bob'"));
  EXPECT_TRUE(eval("self.name = 'alice' implies self.workload >= 0"));
  EXPECT_THROW((void)parse_ocl("self.name = \"unterminated"), ConfigError);
}

TEST_F(OclEval, ArgumentsAccessible) {
  EXPECT_TRUE(eval("arg0 > 0 and arg0 <= 24", {Boxed{3.0}}));
  EXPECT_FALSE(eval("arg0 > 0", {Boxed{-1.0}}));
  EXPECT_TRUE(eval("self.workload >= arg0", {Boxed{10.0}}));
}

TEST_F(OclEval, ParseErrors) {
  EXPECT_THROW((void)parse_ocl(""), ConfigError);
  EXPECT_THROW((void)parse_ocl("self."), ConfigError);
  EXPECT_THROW((void)parse_ocl("(1 > 0"), ConfigError);
  EXPECT_THROW((void)parse_ocl("1 > 0 trailing"), ConfigError);
}

TEST_F(OclEval, UnknownAttributeFailsAtEvaluation) {
  EXPECT_THROW((void)eval("self.nonexistent > 0"), DedisysError);
}

TEST(ReflectionLayer, GetMethodFindsBySignature) {
  const ClassInfo& cls = employee_class();
  const MethodInfo* m = cls.get_method("addWork", {"double"});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->key, "addWork(double)");
  EXPECT_EQ(cls.get_method("addWork", {}), nullptr);
  EXPECT_EQ(cls.get_method("nope", {}), nullptr);
}

TEST(ReflectionLayer, BoxedAttributeAccess) {
  Project p;
  p.spent = 12.5;
  ObjectRefl refl{&project_class(), &p};
  EXPECT_EQ(boxed_num(refl.get("spent")), 12.5);
  EXPECT_THROW((void)refl.get("nope"), DedisysError);
  EXPECT_THROW(boxed_num(Boxed{std::string{"str"}}), DedisysError);
}

TEST(StudyRepositoryTest, CachedLookupSurvivesManyEntries) {
  // Paper Section 2.3.2: cached lookup time does not depend on the number
  // of registrations.
  StudyRepository repo;
  StudyConstraintSet::instance().populate(repo);
  repo.set_caching(true);
  const auto& a =
      repo.lookup("Employee", "addWork(double)", StudyConstraintType::Invariant);
  EXPECT_EQ(a.size(), 5u);
  const auto& pre = repo.lookup("Employee", "addWork(double)",
                                StudyConstraintType::Precondition);
  EXPECT_EQ(pre.size(), 1u);
  // Unknown combinations return empty, not errors.
  EXPECT_TRUE(repo.lookup("Employee", "nope()",
                          StudyConstraintType::Invariant)
                  .empty());
}

}  // namespace
}  // namespace dedisys::validation
