// Negotiation and threat-lifecycle details: freshness criteria (Fig. 4.3),
// application data and reconciliation instructions attached during
// negotiation, replica-conflict notifications (Section 3.3) and postponed
// threats while partitions remain.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/ats.h"
#include "scenarios/evalapp.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::EvalApp;
using scenarios::FlightBooking;

// ---------------------------------------------------------------------------
// Freshness criteria (estimated latest version vs actual version)
// ---------------------------------------------------------------------------

class FreshnessTest : public ::testing::Test {
 protected:
  FreshnessTest() : cluster_(make_config()) {
    scenarios::AlarmTracking::define_classes(cluster_.classes());
    scenarios::AlarmTracking::register_constraints(
        cluster_.constraints(), SatisfactionDegree::PossiblyViolated);
    // Accept threats only while the stale Alarm copy missed at most 2
    // expected updates (maxAge = 2 versions, Fig. 4.3 freshness criteria).
    cluster_.constraints()
        .find("ComponentKindReferenceConsistency")
        .set_freshness("Alarm", 2);
    pair_ = scenarios::AlarmTracking::create_linked(cluster_.node(0),
                                                    "Signal");
    // Alarms are normally updated about every simulated second.
    for (std::size_t i = 0; i < cluster_.size(); ++i) {
      cluster_.node(i)
          .replication()
          .local_replica(pair_.alarm)
          .set_expected_update_period(sim_sec(1));
    }
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 2;
    return cfg;
  }

  /// The technical operator records a mismatched repair: validated against
  /// the (possibly stale) Alarm copy, this is a possibly-violated threat.
  void record_mismatched_repair() {
    DedisysNode& tech = cluster_.node(1);
    TxScope tx(tech.tx());
    tech.invoke(tx.id(), pair_.report, "setAffectedComponent",
                {Value{std::string{"Power Supply"}}});
    tx.commit();
  }

  Cluster cluster_;
  scenarios::AlarmTracking::Pair pair_;
};

TEST_F(FreshnessTest, FreshEnoughStaleCopyIsAccepted) {
  cluster_.inject(fault::split_indices({{0}, {1}}));
  // Immediately after the split the Alarm copy missed ~0 expected updates.
  EXPECT_NO_THROW(record_mismatched_repair());
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
}

TEST_F(FreshnessTest, TooStaleCopyIsRejected) {
  cluster_.inject(fault::split_indices({{0}, {1}}));
  // Five expected update periods elapse without updates reaching this
  // partition: the estimated latest version exceeds the actual by 5 > 2.
  cluster_.sim().clock.advance(sim_sec(5));
  EXPECT_THROW(record_mismatched_repair(), ConsistencyThreatRejected);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(FreshnessTest, FreshnessIgnoredForClassesWithoutCriterion) {
  // A criterion keyed by an unrelated class must not restrict Flights.
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster other(cfg);
  FlightBooking::define_classes(other.classes());
  FlightBooking::register_constraints(other.constraints(), false,
                                      SatisfactionDegree::PossiblySatisfied);
  other.constraints().find("TicketConstraint").set_freshness("SomethingElse",
                                                             0);
  const ObjectId f = FlightBooking::create_flight(other.node(0), 100);
  other.node(0).replication().local_replica(f).set_expected_update_period(
      sim_sec(1));
  other.inject(fault::split_indices({{0, 1}, {2}}));
  other.sim().clock.advance(sim_sec(60));
  EXPECT_NO_THROW(FlightBooking::sell(other.node(0), f, 1));
}

// ---------------------------------------------------------------------------
// Negotiation outcome payloads
// ---------------------------------------------------------------------------

TEST(NegotiationPayload, ApplicationDataAndInstructionsArePersisted) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  const auto ids = EvalApp::create_entities(cluster.node(0), 1);
  cluster.inject(fault::split_indices({{0, 1}, {2}}));

  class Annotating final : public NegotiationHandler {
   public:
    NegotiationOutcome negotiate(const ConsistencyThreat&,
                                 ConstraintValidationContext&) override {
      NegotiationOutcome out;
      out.accepted = true;
      out.application_data = "booking-ref=XY123";
      out.instructions.allow_rollback = true;
      out.instructions.notify_on_replica_conflict = true;
      return out;
    }
  };
  EXPECT_TRUE(EvalApp::run_op_negotiated(cluster.node(0), ids[0],
                                         "emptyThreat",
                                         std::make_shared<Annotating>()));

  const auto stored = cluster.threats().load_all();
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_EQ(stored[0].threat.application_data, "booking-ref=XY123");
  EXPECT_TRUE(stored[0].threat.instructions.allow_rollback);
  EXPECT_TRUE(stored[0].threat.instructions.notify_on_replica_conflict);
  EXPECT_EQ(stored[0].threat.degree, SatisfactionDegree::PossiblySatisfied);
  ASSERT_FALSE(stored[0].threat.affected_objects.empty());
  EXPECT_EQ(stored[0].threat.affected_objects[0], ids[0]);
}

// ---------------------------------------------------------------------------
// Replica-conflict notification for satisfied threats (Section 3.3)
// ---------------------------------------------------------------------------

TEST(ConflictNotification, HandlerInformedWhenSatisfiedThreatHadConflict) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints(), false,
                                      SatisfactionDegree::PossiblySatisfied);
  const ObjectId flight = FlightBooking::create_flight(cluster.node(0), 1000);
  cluster.inject(fault::split_indices({{0, 1}, {2}}));

  class Annotating final : public NegotiationHandler {
   public:
    NegotiationOutcome negotiate(const ConsistencyThreat&,
                                 ConstraintValidationContext&) override {
      NegotiationOutcome out;
      out.accepted = true;
      out.instructions.notify_on_replica_conflict = true;
      return out;
    }
  };
  // Conflicting writes in both partitions, both far below capacity: the
  // constraint is satisfied after the merge, but the conflict existed.
  {
    TxScope tx(cluster.node(0).tx());
    cluster.node(0).ccmgr().register_negotiation_handler(
        tx.id(), std::make_shared<Annotating>());
    cluster.node(0).invoke(tx.id(), flight, "sellTickets",
                           {Value{std::int64_t{1}}});
    tx.commit();
  }
  FlightBooking::sell(cluster.node(2), flight, 2);
  cluster.inject(fault::Heal{});

  class Recorder final : public ConstraintReconciliationHandler {
   public:
    bool reconcile(const ConsistencyThreat&,
                   ConstraintValidationContext&) override {
      return true;
    }
    void on_replica_conflict_resolved(const ConsistencyThreat&) override {
      ++notifications;
    }
    int notifications = 0;
  } recorder;

  const auto report = cluster.reconcile(nullptr, &recorder);
  EXPECT_EQ(report.replica.conflicts, 1u);
  EXPECT_EQ(report.constraints.removed_satisfied, 1u);
  EXPECT_EQ(report.constraints.conflict_notifications, 1u);
  EXPECT_EQ(recorder.notifications, 1);
}

// ---------------------------------------------------------------------------
// Postponed threats while further partitions remain (Section 3.3)
// ---------------------------------------------------------------------------

TEST(PostponedThreats, ReEvaluationWaitsForRemainingPartitions) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints(), false,
                                      SatisfactionDegree::PossiblySatisfied);
  const ObjectId flight = FlightBooking::create_flight(cluster.node(0), 100);

  cluster.inject(fault::split_indices({{0}, {1}, {2}}));
  FlightBooking::sell(cluster.node(0), flight, 1);
  EXPECT_EQ(cluster.threats().identity_count(), 1u);

  // Partial merge: {0,1} reunify, {2} still unreachable — re-evaluation of
  // the threat must be postponed (still only an LCC).
  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  const auto stats = cluster.node(0).ccmgr().reconcile(nullptr);
  EXPECT_EQ(stats.postponed, 1u);
  EXPECT_EQ(cluster.threats().identity_count(), 1u);

  // Full heal: now the threat resolves.
  cluster.inject(fault::Heal{});
  const auto report = cluster.reconcile();
  EXPECT_EQ(report.constraints.removed_satisfied, 1u);
  EXPECT_EQ(cluster.threats().identity_count(), 0u);
}

// ---------------------------------------------------------------------------
// Negotiation priority: dynamic > static (paper's ordering)
// ---------------------------------------------------------------------------

TEST(NegotiationPriority, DynamicHandlerOverridesStaticAcceptance) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  // Static rule would ACCEPT everything...
  cluster.constraints().find("TouchHard").set_min_satisfaction_degree(
      SatisfactionDegree::Uncheckable);
  const auto ids = EvalApp::create_entities(cluster.node(0), 1);
  cluster.inject(fault::split_indices({{0, 1}, {2}}));

  class RejectAll final : public NegotiationHandler {
   public:
    NegotiationOutcome negotiate(const ConsistencyThreat&,
                                 ConstraintValidationContext&) override {
      return NegotiationOutcome{};
    }
  };
  // ...but the registered dynamic handler rejects, and it takes priority.
  EXPECT_FALSE(EvalApp::run_op_negotiated(cluster.node(0), ids[0],
                                          "emptyThreat",
                                          std::make_shared<RejectAll>()));
  // Without a handler, the static rule applies again.
  EXPECT_TRUE(EvalApp::run_op(cluster.node(0), ids[0], "emptyThreat"));
}

}  // namespace
}  // namespace dedisys
