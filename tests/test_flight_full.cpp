// The full Fig. 1.3 object model: Flight/Person/Ticket entities with the
// ticket-constraint counting actual Ticket objects through a query, plus
// the administration console (Fig. 4.1).
#include <gtest/gtest.h>

#include <sstream>

#include "middleware/admin.h"
#include "scenarios/flight_full.h"

namespace dedisys {
namespace {

using scenarios::FlightBookingFull;

class FlightFullTest : public ::testing::Test {
 protected:
  FlightFullTest() : cluster_(make_config()) {
    FlightBookingFull::define_classes(cluster_.classes());
    FlightBookingFull::register_constraints(cluster_.constraints());
    flight_ = FlightBookingFull::create_flight(cluster_.node(0), 3);
    for (int i = 0; i < 8; ++i) {
      persons_.push_back(FlightBookingFull::create_person(
          cluster_.node(0), "passenger-" + std::to_string(i)));
    }
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  Cluster cluster_;
  ObjectId flight_;
  std::vector<ObjectId> persons_;
};

TEST_F(FlightFullTest, BookingCreatesLinkedTicketObjects) {
  const ObjectId t =
      FlightBookingFull::book(cluster_.node(0), flight_, persons_[0]);
  const auto tickets =
      FlightBookingFull::tickets_of(cluster_, cluster_.node(0), flight_);
  ASSERT_EQ(tickets.size(), 1u);
  EXPECT_EQ(tickets[0], t);
  const Entity& ticket = cluster_.node(1).replication().local_replica(t);
  EXPECT_EQ(as_object(ticket.get("person")), persons_[0]);
  EXPECT_EQ(as_object(ticket.get("flight")), flight_);
}

TEST_F(FlightFullTest, OverbookingAbortsAndDestroysTheTicket) {
  for (int i = 0; i < 3; ++i) {
    FlightBookingFull::book(cluster_.node(0), flight_, persons_[i]);
  }
  EXPECT_THROW(
      FlightBookingFull::book(cluster_.node(0), flight_, persons_[3]),
      ConstraintViolation);
  // The rolled-back booking left no ticket object behind.
  EXPECT_EQ(FlightBookingFull::tickets_of(cluster_, cluster_.node(0), flight_)
                .size(),
            3u);
  EXPECT_EQ(cluster_.objects_of("Ticket").size(), 3u);
}

TEST_F(FlightFullTest, CancellationFreesTheSeat) {
  std::vector<ObjectId> tickets;
  for (int i = 0; i < 3; ++i) {
    tickets.push_back(
        FlightBookingFull::book(cluster_.node(0), flight_, persons_[i]));
  }
  FlightBookingFull::cancel(cluster_.node(0), tickets[1]);
  EXPECT_NO_THROW(
      FlightBookingFull::book(cluster_.node(0), flight_, persons_[3]));
}

TEST_F(FlightFullTest, ShrinkingTheFlightBelowSoldTicketsIsRejected) {
  FlightBookingFull::book(cluster_.node(0), flight_, persons_[0]);
  FlightBookingFull::book(cluster_.node(0), flight_, persons_[1]);
  TxScope tx(cluster_.node(0).tx());
  EXPECT_THROW(cluster_.node(0).invoke(tx.id(), flight_, "setSeats",
                                       {Value{std::int64_t{1}}}),
               ConstraintViolation);
}

TEST_F(FlightFullTest, PartitionedBookingOverbooksAndReconciles) {
  FlightBookingFull::book(cluster_.node(0), flight_, persons_[0]);
  FlightBookingFull::book(cluster_.node(0), flight_, persons_[1]);

  // Tickets created in the other partition are completely unreachable, so
  // the query-based count degrades to UNCHECKABLE there — the
  // high-availability deployment accepts even those threats (Section 3.1).
  cluster_.constraints().find("TicketConstraint").set_min_satisfaction_degree(
      SatisfactionDegree::Uncheckable);

  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  // One more booking per partition; globally 4 > 3.
  EXPECT_NO_THROW(
      FlightBookingFull::book(cluster_.node(0), flight_, persons_[2]));
  EXPECT_NO_THROW(
      FlightBookingFull::book(cluster_.node(2), flight_, persons_[3]));
  EXPECT_GE(cluster_.threats().identity_count(), 1u);

  cluster_.inject(fault::Heal{});
  class Rebook final : public ConstraintReconciliationHandler {
   public:
    Rebook(Cluster& c, ObjectId flight) : cluster_(&c), flight_(flight) {}
    bool reconcile(const ConsistencyThreat&,
                   ConstraintValidationContext&) override {
      // Cancel surplus tickets until the flight fits again.
      DedisysNode& n = cluster_->node(0);
      auto tickets = FlightBookingFull::tickets_of(*cluster_, n, flight_);
      const auto seats = static_cast<std::size_t>(as_int(
          n.replication().local_replica(flight_).get("seats")));
      while (tickets.size() > seats) {
        FlightBookingFull::cancel(n, tickets.back());
        tickets.pop_back();
        ++cancelled;
      }
      return true;
    }
    Cluster* cluster_;
    ObjectId flight_;
    int cancelled = 0;
  } rebook(cluster_, flight_);

  const auto report = cluster_.reconcile(nullptr, &rebook);
  EXPECT_EQ(report.constraints.violations, 1u);
  EXPECT_EQ(rebook.cancelled, 1);
  EXPECT_EQ(FlightBookingFull::tickets_of(cluster_, cluster_.node(0), flight_)
                .size(),
            3u);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

// ---------------------------------------------------------------------------
// Administration console (Fig. 4.1)
// ---------------------------------------------------------------------------

TEST_F(FlightFullTest, AdminListsThreatsAndExportsConstraints) {
  AdminConsole admin(cluster_);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBookingFull::book(cluster_.node(0), flight_, persons_[0]);

  const auto threats = admin.list_threats();
  ASSERT_EQ(threats.size(), 1u);
  EXPECT_EQ(threats[0].constraint, "TicketConstraint");
  EXPECT_EQ(threats[0].degree, SatisfactionDegree::PossiblySatisfied);

  std::ostringstream os;
  admin.print_threats(os);
  EXPECT_NE(os.str().find("TicketConstraint"), std::string::npos);

  // Export contains the deployed registration (class-based constraints
  // serialize their metadata).
  const std::string xml = admin.export_constraints();
  EXPECT_NE(xml.find("name=\"TicketConstraint\""), std::string::npos);
  EXPECT_NE(xml.find("setFlight"), std::string::npos);
}

TEST_F(FlightFullTest, AdminDisableEnableWithRevalidation) {
  AdminConsole admin(cluster_);
  admin.disable_constraint("TicketConstraint");
  for (int i = 0; i < 5; ++i) {
    FlightBookingFull::book(cluster_.node(0), flight_, persons_[i]);  // 5 > 3
  }
  const auto violating = admin.enable_constraint("TicketConstraint");
  ASSERT_EQ(violating.size(), 1u);
  EXPECT_EQ(violating[0], flight_);
}

TEST_F(FlightFullTest, AdminThreatStateSurvivesRestart) {
  AdminConsole admin(cluster_);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBookingFull::book(cluster_.node(0), flight_, persons_[0]);
  ASSERT_EQ(cluster_.threats().identity_count(), 1u);

  const ClusterSnapshot saved = admin.take_snapshot();

  // Simulated operator error: wipe and restore.
  cluster_.threats().remove(admin.list_threats()[0].identity);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
  admin.restore(saved);
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
  EXPECT_EQ(admin.list_threats()[0].constraint, "TicketConstraint");
}

}  // namespace
}  // namespace dedisys
