// Property-based sweeps over randomized workloads: replica convergence,
// reconciliation convergence, threat-store invariants.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "runtime/sim_runtime.h"
#include "scenarios/ats.h"
#include "scenarios/flight.h"
#include "util/rng.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;

struct SweepParams {
  std::uint64_t seed;
  std::size_t nodes;
  ReplicationProtocol protocol;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParams>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.nodes) + "_" +
         (info.param.protocol == ReplicationProtocol::PrimaryBackup ? "PB"
          : info.param.protocol == ReplicationProtocol::PrimaryPartition
              ? "P4"
              : "AV");
}

class RandomWorkload : public ::testing::TestWithParam<SweepParams> {
 protected:
  RandomWorkload()
      : cluster_(make_config(GetParam())), rng_(GetParam().seed) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(cluster_.constraints(), false,
                                        SatisfactionDegree::Uncheckable);
  }

  static ClusterConfig make_config(const SweepParams& p) {
    ClusterConfig cfg;
    cfg.nodes = p.nodes;
    cfg.protocol = p.protocol;
    return cfg;
  }

  /// All replicas of every object hold identical state.
  void expect_replicas_converged() {
    for (ObjectId id : cluster_.directory()->all_objects()) {
      std::optional<AttributeMap> reference;
      for (std::size_t i = 0; i < cluster_.size(); ++i) {
        ReplicationManager& repl = cluster_.node(i).replication();
        if (!repl.has_local_replica(id)) continue;
        const AttributeMap& attrs = repl.local_replica(id).attributes();
        if (!reference) {
          reference = attrs;
        } else {
          EXPECT_EQ(attrs, *reference) << "replica divergence on object "
                                       << to_string(id) << " node " << i;
        }
      }
    }
  }

  Cluster cluster_;
  Rng rng_;
};

TEST_P(RandomWorkload, HealthyModeKeepsReplicasConvergedAndConsistent) {
  std::vector<ObjectId> flights;
  for (int i = 0; i < 4; ++i) {
    const auto creator = rng_.below(cluster_.size());
    flights.push_back(
        FlightBooking::create_flight(cluster_.node(creator), 100));
  }
  int committed = 0;
  for (int op = 0; op < 120; ++op) {
    DedisysNode& node = cluster_.node(rng_.below(cluster_.size()));
    const ObjectId flight = flights[rng_.below(flights.size())];
    const std::int64_t count = rng_.between(1, 5);
    try {
      if (rng_.chance(0.8)) {
        FlightBooking::sell(node, flight, count);
      } else {
        TxScope tx(node.tx());
        node.invoke(tx.id(), flight, "cancelTickets", {Value{count}});
        tx.commit();
      }
      ++committed;
    } catch (const DedisysError&) {
      // violations abort cleanly; replicas must still converge
    }
  }
  EXPECT_GT(committed, 0);
  expect_replicas_converged();
  // The ticket invariant holds on every replica after every commit.
  for (ObjectId f : flights) {
    EXPECT_LE(as_int(cluster_.node(0).replication().local_replica(f).get(
                  "soldTickets")),
              100);
  }
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_P(RandomWorkload, DegradedThenReconcileConverges) {
  std::vector<ObjectId> flights;
  for (int i = 0; i < 3; ++i) {
    flights.push_back(FlightBooking::create_flight(cluster_.node(0), 1000));
  }
  // Random split into two partitions (both non-empty).
  std::vector<std::size_t> a;
  std::vector<std::size_t> b;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    (rng_.chance(0.5) ? a : b).push_back(i);
  }
  if (a.empty()) a.push_back(b.back()), b.pop_back();
  if (b.empty()) b.push_back(a.back()), a.pop_back();
  cluster_.inject(fault::split_indices({a, b}));

  for (int op = 0; op < 60; ++op) {
    DedisysNode& node = cluster_.node(rng_.below(cluster_.size()));
    const ObjectId flight = flights[rng_.below(flights.size())];
    try {
      FlightBooking::sell(node, flight, rng_.between(1, 3));
    } catch (const DedisysError&) {
      // primary-backup blocks minority writes; that is fine
    }
  }

  cluster_.inject(fault::Heal{});
  (void)cluster_.reconcile();
  expect_replicas_converged();
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_EQ(cluster_.node(i).mode(), SystemMode::Healthy);
    EXPECT_TRUE(cluster_.node(i).replication().degraded_updates().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomWorkload,
    ::testing::Values(
        SweepParams{1, 2, ReplicationProtocol::PrimaryPartition},
        SweepParams{2, 3, ReplicationProtocol::PrimaryPartition},
        SweepParams{3, 4, ReplicationProtocol::PrimaryPartition},
        SweepParams{4, 3, ReplicationProtocol::PrimaryBackup},
        SweepParams{5, 4, ReplicationProtocol::PrimaryBackup},
        SweepParams{6, 3, ReplicationProtocol::AdaptiveVoting},
        SweepParams{7, 5, ReplicationProtocol::PrimaryPartition},
        SweepParams{8, 5, ReplicationProtocol::AdaptiveVoting}),
    sweep_name);

// ---------------------------------------------------------------------------
// ATS random workload: inter-object constraints under partitions
// ---------------------------------------------------------------------------

class AtsRandomWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtsRandomWorkload, SystemConvergesAndEndsConstraintConsistent) {
  using scenarios::AlarmTracking;
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  AlarmTracking::define_classes(cluster.classes());
  AlarmTracking::register_constraints(cluster.constraints());
  Rng rng(GetParam());

  std::vector<AlarmTracking::Pair> pairs;
  const char* kinds[] = {"Signal", "Power", "Radio"};
  for (int i = 0; i < 4; ++i) {
    pairs.push_back(AlarmTracking::create_linked(
        cluster.node(rng.below(cluster.size())), kinds[rng.below(3)]));
  }

  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  for (int op = 0; op < 50; ++op) {
    DedisysNode& node = cluster.node(rng.below(cluster.size()));
    const auto& pair = pairs[rng.below(pairs.size())];
    const std::string kind = kinds[rng.below(3)];
    try {
      TxScope tx(node.tx());
      if (rng.chance(0.5)) {
        node.invoke(tx.id(), pair.report, "setAffectedComponent",
                    {Value{kind + std::string{" Controller"}}});
      } else {
        node.invoke(tx.id(), pair.alarm, "setAlarmKind", {Value{kind}});
      }
      tx.commit();
    } catch (const DedisysError&) {
      // healthy-mode violations / rejected threats abort cleanly
    }
  }

  cluster.inject(fault::Heal{});
  class FixIt final : public ConstraintReconciliationHandler {
   public:
    explicit FixIt(DedisysNode& n) : node_(&n) {}
    bool reconcile(const ConsistencyThreat& threat,
                   ConstraintValidationContext& ctx) override {
      // Align the component with the (merged) alarm kind.
      const Entity& report = ctx.read(threat.context_object);
      const ObjectId alarm = as_object(report.get("alarm"));
      const Entity& alarm_entity = ctx.read(alarm);
      TxScope tx(node_->tx());
      node_->invoke(tx.id(), threat.context_object, "setAffectedComponent",
                    {Value{as_string(alarm_entity.get("alarmKind")) +
                           " Controller"}});
      tx.commit();
      return true;
    }

   private:
    DedisysNode* node_;
  } fixer(cluster.node(0));

  (void)cluster.reconcile(nullptr, &fixer);

  // Convergence + full constraint consistency afterwards.
  EXPECT_EQ(cluster.threats().identity_count(), 0u);
  for (const auto& pair : pairs) {
    const Entity& report =
        cluster.node(0).replication().local_replica(pair.report);
    const Entity& alarm =
        cluster.node(0).replication().local_replica(pair.alarm);
    const std::string& component = as_string(report.get("affectedComponent"));
    const std::string& kind = as_string(alarm.get("alarmKind"));
    if (!component.empty()) {
      EXPECT_EQ(component.rfind(kind, 0), 0u)
          << "component '" << component << "' vs kind '" << kind << "'";
    }
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      EXPECT_EQ(cluster.node(i)
                    .replication()
                    .local_replica(pair.report)
                    .attributes(),
                report.attributes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtsRandomWorkload,
                         ::testing::Values(31, 32, 33, 34, 35));

// ---------------------------------------------------------------------------
// Threat-store invariants under random interleavings
// ---------------------------------------------------------------------------

class ThreatStoreProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreatStoreProperty, CountsConsistentUnderRandomOps) {
  SimClock clock;
  CostModel cost;
  SimRuntime rt(clock, cost);
  RecordStore db(rt);
  ThreatStore store(db);
  store.set_policy(GetParam() % 2 == 0 ? ThreatHistoryPolicy::IdenticalOnce
                                       : ThreatHistoryPolicy::FullHistory);
  Rng rng(GetParam());

  std::map<std::string, std::size_t> model;  // identity -> occurrences
  for (int i = 0; i < 200; ++i) {
    ConsistencyThreat t;
    t.constraint_name = "C" + std::to_string(rng.below(4));
    t.context_object = ObjectId{rng.below(3)};
    t.degree = SatisfactionDegree::PossiblySatisfied;
    if (rng.chance(0.75)) {
      const bool was_new = store.store(t);
      EXPECT_EQ(was_new, model.count(t.identity()) == 0);
      ++model[t.identity()];
    } else {
      store.remove(t.identity());
      model.erase(t.identity());
    }
    // Invariants after every step.
    EXPECT_EQ(store.identity_count(), model.size());
    std::size_t occurrences = 0;
    for (const auto& [k, v] : model) occurrences += v;
    EXPECT_EQ(store.total_occurrences(), occurrences);
  }
  // load_all matches the model exactly.
  const auto all = store.load_all();
  EXPECT_EQ(all.size(), model.size());
  for (const auto& st : all) {
    ASSERT_TRUE(model.count(st.threat.identity()) == 1);
    EXPECT_EQ(st.occurrences, model[st.threat.identity()]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreatStoreProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace dedisys
