// Sharded front door: routing pins, replica confinement, forwarding,
// admission control (fee escalation, priority ordering, eviction),
// cross-shard 2PC and the shed-counter observability surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "middleware/admin.h"
#include "middleware/cluster.h"
#include "middleware/obs_export.h"
#include "scenarios/chaos.h"
#include "scenarios/evalapp.h"
#include "shard/front_door.h"
#include "shard/request.h"
#include "shard/shard_map.h"

namespace dedisys {
namespace {

using scenarios::EvalApp;

// ---------------------------------------------------------------------------
// ShardMap
// ---------------------------------------------------------------------------

// The avalanche mix is part of the persisted-routing contract: these pins
// must never change (committed bench baselines and recorded assignments
// depend on every platform computing the same shard for the same key).
TEST(ShardMap, HashPinsAreStableForever) {
  EXPECT_EQ(shard::ShardMap::mix(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(shard::ShardMap::mix(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(shard::ShardMap::mix(2), 0x975835de1c9756ceULL);
  EXPECT_EQ(shard::ShardMap::mix(42), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(shard::ShardMap::mix(0xdeadbeefULL), 0x4adfb90f68c9eb9bULL);

  std::vector<NodeId> nodes;
  for (std::uint64_t i = 0; i < 8; ++i) nodes.push_back(NodeId{i});
  const shard::ShardMap map(nodes, 4);
  EXPECT_EQ(map.shard_of_key(0), 3u);
  EXPECT_EQ(map.shard_of_key(1), 1u);
  EXPECT_EQ(map.shard_of_key(2), 2u);
  EXPECT_EQ(map.shard_of_key(42), 1u);
  EXPECT_EQ(map.shard_of_key(123456789), 1u);
}

TEST(ShardMap, ContiguousSlicingAndNodeOwnership) {
  std::vector<NodeId> nodes;
  for (std::uint64_t i = 0; i < 5; ++i) nodes.push_back(NodeId{i});
  const shard::ShardMap map(nodes, 2);
  ASSERT_EQ(map.shard_count(), 2u);
  // 5 nodes over 2 shards: sizes differ by at most one.
  EXPECT_EQ(map.nodes_of(0).size() + map.nodes_of(1).size(), 5u);
  EXPECT_LE(map.nodes_of(0).size(), 3u);
  EXPECT_EQ(map.home_of(0), map.nodes_of(0).front());
  EXPECT_TRUE(map.owns(0, map.nodes_of(0).front()));
  EXPECT_FALSE(map.owns(1, map.nodes_of(0).front()));
  EXPECT_EQ(map.shard_of_node(map.nodes_of(1).front()), 1u);
  EXPECT_THROW(shard::ShardMap({NodeId{0}}, 2), ConfigError);
}

TEST(ShardMap, ExplicitAssignmentOverridesHashUntilForgotten) {
  std::vector<NodeId> nodes{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}};
  shard::ShardMap map(nodes, 2);
  const ObjectId id{7};
  const shard::ShardId hashed = map.shard_of(id);
  const shard::ShardId other = 1 - hashed;
  map.assign(id, other);
  EXPECT_EQ(map.shard_of(id), other);
  EXPECT_EQ(map.assigned_count(), 1u);
  map.forget(id);
  EXPECT_EQ(map.shard_of(id), hashed);
  EXPECT_EQ(map.assigned_count(), 0u);
}

// ---------------------------------------------------------------------------
// Front door
// ---------------------------------------------------------------------------

std::uint64_t key_for_shard(const shard::ShardMap& map, shard::ShardId s) {
  std::uint64_t key = 0;
  while (map.shard_of_key(key) != s) ++key;
  return key;
}

/// Creates one TestEntity on `s` through the front door.
ObjectId create_on_shard(Cluster& cluster, shard::ShardId s) {
  ObjectId created;
  cluster.front_door().set_outcome_sink([&created](const shard::Outcome& o) {
    if (o.committed) created = o.created;
  });
  shard::Request req;
  req.op = shard::RequestOp::Create;
  req.class_name = "TestEntity";
  req.client = key_for_shard(cluster.shards(), s);
  const shard::Submission sub = cluster.submit(std::move(req));
  EXPECT_TRUE(sub.admitted());
  EXPECT_EQ(sub.shard, s);
  cluster.front_door().drain();
  cluster.front_door().set_outcome_sink(nullptr);
  return created;
}

Cluster make_sharded(std::size_t nodes, std::size_t shards,
                     shard::ShardPolicy policy = {}) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.shards = shards;
  cfg.shard_policy = policy;
  return Cluster(cfg);
}

TEST(FrontDoor, CreateConfinesReplicasToTheOwningShard) {
  Cluster cluster = make_sharded(4, 2);
  EvalApp::define_classes(cluster.classes());

  const ObjectId on1 = create_on_shard(cluster, 1);
  EXPECT_EQ(cluster.shards().shard_of(on1), 1u);
  // Shard 1 owns nodes {2, 3}: only they hold replicas.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const bool holds = cluster.node(i).replication().has_local_replica(on1);
    const bool member = cluster.shards().owns(1, cluster.node(i).id());
    EXPECT_EQ(holds, member) << "node " << i;
  }
  EXPECT_EQ(cluster.front_door().stats(1).committed, 1u);
}

TEST(FrontDoor, MisroutedRequestIsForwardedNotRejected) {
  Cluster cluster = make_sharded(4, 2);
  EvalApp::define_classes(cluster.classes());
  const ObjectId on0 = create_on_shard(cluster, 0);

  shard::Request req;
  req.op = shard::RequestOp::Invoke;
  req.target = on0;
  req.method = "setValue";
  req.args = {Value{std::string{"fwd"}}};
  req.via = NodeId{3};  // a shard-1 node: one charged hop to shard 0's home
  const shard::Submission sub = cluster.submit(std::move(req));
  EXPECT_TRUE(sub.admitted());
  EXPECT_TRUE(sub.forwarded);
  EXPECT_EQ(cluster.front_door().drain(), 1u);
  EXPECT_EQ(cluster.front_door().stats(0).forwarded, 1u);
  EXPECT_EQ(cluster.front_door().stats(0).committed, 2u);  // create + invoke

  // Addressed to a replica of the owning group: no forward.
  shard::Request direct;
  direct.op = shard::RequestOp::Invoke;
  direct.target = on0;
  direct.method = "getValue";
  direct.via = cluster.shards().home_of(0);
  const shard::Submission sub2 = cluster.submit(std::move(direct));
  EXPECT_TRUE(sub2.admitted());
  EXPECT_FALSE(sub2.forwarded);
  cluster.front_door().drain();
  EXPECT_EQ(cluster.front_door().stats(0).forwarded, 1u);
}

TEST(FrontDoor, UnknownTargetsAndClassesShedAsBadRequest) {
  Cluster cluster = make_sharded(4, 2);
  EvalApp::define_classes(cluster.classes());

  shard::Request bad_class;
  bad_class.op = shard::RequestOp::Create;
  bad_class.class_name = "NoSuchClass";
  const shard::Submission s1 = cluster.submit(std::move(bad_class));
  EXPECT_FALSE(s1.admitted());
  EXPECT_EQ(s1.reason, shard::ShedReason::BadRequest);

  shard::Request bad_target;
  bad_target.op = shard::RequestOp::Invoke;
  bad_target.target = ObjectId{99999};
  bad_target.method = "getValue";
  const shard::Submission s2 = cluster.submit(std::move(bad_target));
  EXPECT_FALSE(s2.admitted());
  EXPECT_EQ(s2.reason, shard::ShedReason::BadRequest);
  EXPECT_EQ(cluster.front_door().totals().shed_bad_request, 2u);
}

TEST(FrontDoor, FeeEscalatesQuadraticallyPastThresholdDepth) {
  shard::ShardPolicy policy;
  policy.queue_capacity = 8;
  policy.escalation_threshold = 0.5;  // threshold depth 4
  policy.base_fee = 10;
  Cluster cluster = make_sharded(2, 1, policy);
  EvalApp::define_classes(cluster.classes());
  const ObjectId target = create_on_shard(cluster, 0);

  auto invoke_req = [&](std::uint64_t fee) {
    shard::Request req;
    req.op = shard::RequestOp::Invoke;
    req.target = target;
    req.method = "getValue";
    req.fee = fee;
    return req;
  };

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.front_door().required_fee(0), 10u);
    EXPECT_TRUE(cluster.submit(invoke_req(0)).admitted());
  }
  // Depth 4 = threshold: required fee jumps to base * 5^2 / 4^2.
  EXPECT_EQ(cluster.front_door().required_fee(0), 15u);
  const shard::Submission shed = cluster.submit(invoke_req(0));
  EXPECT_FALSE(shed.admitted());
  EXPECT_EQ(shed.reason, shard::ShedReason::FeeBelowRequired);
  EXPECT_EQ(shed.required_fee, 15u);
  // An escalated bid clears the same gate.
  EXPECT_TRUE(cluster.submit(invoke_req(15)).admitted());
  EXPECT_EQ(cluster.front_door().stats(0).shed_fee, 1u);
  EXPECT_EQ(cluster.front_door().drain(), 5u);
}

TEST(FrontDoor, AppliesInPriorityThenFeeThenFifoOrder) {
  shard::ShardPolicy policy;
  policy.queue_capacity = 16;
  policy.batch_size = 16;
  Cluster cluster = make_sharded(2, 1, policy);
  EvalApp::define_classes(cluster.classes());
  const ObjectId target = create_on_shard(cluster, 0);

  auto submit = [&](shard::PriorityClass prio, std::uint64_t fee) {
    shard::Request req;
    req.op = shard::RequestOp::Invoke;
    req.target = target;
    req.method = "getValue";
    req.priority = prio;
    req.fee = fee;
    const shard::Submission sub = cluster.submit(std::move(req));
    EXPECT_TRUE(sub.admitted());
    return sub.ticket;
  };

  const std::uint64_t low = submit(shard::PriorityClass::Low, 100);
  const std::uint64_t normal_cheap = submit(shard::PriorityClass::Normal, 50);
  const std::uint64_t normal_rich = submit(shard::PriorityClass::Normal, 100);
  const std::uint64_t high = submit(shard::PriorityClass::High, 10);
  const std::uint64_t normal_tie = submit(shard::PriorityClass::Normal, 50);

  std::vector<std::uint64_t> order;
  cluster.front_door().set_outcome_sink(
      [&order](const shard::Outcome& o) { order.push_back(o.ticket); });
  cluster.front_door().drain();
  const std::vector<std::uint64_t> expected{high, normal_rich, normal_cheap,
                                            normal_tie, low};
  EXPECT_EQ(order, expected);
}

TEST(FrontDoor, FullQueueEvictsCheapestForHigherRankedArrivals) {
  shard::ShardPolicy policy;
  policy.queue_capacity = 2;
  policy.escalation_threshold = 0.5;  // threshold depth 1
  policy.base_fee = 10;
  Cluster cluster = make_sharded(2, 1, policy);
  EvalApp::define_classes(cluster.classes());
  const ObjectId target = create_on_shard(cluster, 0);

  auto req = [&](shard::PriorityClass prio, std::uint64_t fee) {
    shard::Request r;
    r.op = shard::RequestOp::Invoke;
    r.target = target;
    r.method = "getValue";
    r.priority = prio;
    r.fee = fee;
    return r;
  };

  const shard::Submission a =
      cluster.submit(req(shard::PriorityClass::Normal, 0));
  ASSERT_TRUE(a.admitted());
  // Depth 1 >= threshold: required fee is base * 4.
  const shard::Submission b =
      cluster.submit(req(shard::PriorityClass::Normal, 40));
  ASSERT_TRUE(b.admitted());

  // Queue full; a High arrival outranks the base-fee entry and displaces
  // it — the displaced ticket surfaces as a QueueFull outcome.
  std::vector<shard::Outcome> outcomes;
  cluster.front_door().set_outcome_sink(
      [&outcomes](const shard::Outcome& o) { outcomes.push_back(o); });
  const shard::Submission c =
      cluster.submit(req(shard::PriorityClass::High, 100));
  EXPECT_TRUE(c.admitted());
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].ticket, a.ticket);
  EXPECT_EQ(outcomes[0].shed, shard::ShedReason::QueueFull);
  EXPECT_EQ(cluster.front_door().stats(0).evicted, 1u);

  // A Low arrival does not outrank the cheapest queued entry: the
  // newcomer itself is shed.
  const shard::Submission d =
      cluster.submit(req(shard::PriorityClass::Low, 500));
  EXPECT_FALSE(d.admitted());
  EXPECT_EQ(d.reason, shard::ShedReason::QueueFull);
  cluster.front_door().set_outcome_sink(nullptr);
  cluster.front_door().drain();
}

TEST(FrontDoor, DownedShardShedsAsUnavailableAtApply) {
  Cluster cluster = make_sharded(4, 2);
  EvalApp::define_classes(cluster.classes());
  const ObjectId on1 = create_on_shard(cluster, 1);

  cluster.inject(fault::Crash{NodeId{2}});
  cluster.inject(fault::Crash{NodeId{3}});

  shard::Request req;
  req.op = shard::RequestOp::Invoke;
  req.target = on1;
  req.method = "getValue";
  const shard::Submission sub = cluster.submit(std::move(req));
  ASSERT_TRUE(sub.admitted());  // admission happens before liveness

  shard::Outcome last;
  cluster.front_door().set_outcome_sink(
      [&last](const shard::Outcome& o) { last = o; });
  cluster.front_door().drain();
  EXPECT_FALSE(last.committed);
  EXPECT_EQ(last.shed, shard::ShedReason::ShardUnavailable);
  EXPECT_GE(cluster.front_door().stats(1).shed_unavailable, 1u);

  // Shard 0 is untouched and keeps serving.
  const std::size_t restarted = cluster.inject(fault::Restart{NodeId{2}});
  EXPECT_EQ(restarted, 1u);
}

TEST(FrontDoor, CrossShardTransactionCommitsAndAbortsAtomically) {
  Cluster cluster = make_sharded(4, 2);
  EvalApp::define_classes(cluster.classes());
  const ObjectId on0 = create_on_shard(cluster, 0);
  const ObjectId on1 = create_on_shard(cluster, 1);

  auto set_in_tx = [&](TxId tx, ObjectId target, const std::string& v) {
    shard::Request req;
    req.op = shard::RequestOp::Invoke;
    req.target = target;
    req.method = "setValue";
    req.args = {Value{v}};
    req.tx = tx;
    EXPECT_TRUE(cluster.submit(std::move(req)).admitted());
  };
  auto read_value = [&](shard::ShardId s, ObjectId target) {
    DedisysNode* member = cluster.node_by_id(cluster.shards().home_of(s));
    TxScope tx(member->tx());
    const Value v = member->invoke(tx.id(), target, "getValue", {});
    tx.commit();
    return as_string(v);
  };

  {
    // One transaction spanning both shards rides the cluster-wide 2PC:
    // the front door applies, the caller commits.
    TxScope tx(cluster.node(0).tx());
    set_in_tx(tx.id(), on0, "both");
    set_in_tx(tx.id(), on1, "both");
    cluster.front_door().drain();
    tx.commit();
  }
  EXPECT_EQ(read_value(0, on0), "both");
  EXPECT_EQ(read_value(1, on1), "both");

  {
    // Abandoning the scope aborts both legs: neither shard keeps the write.
    TxScope tx(cluster.node(0).tx());
    set_in_tx(tx.id(), on0, "ghost");
    set_in_tx(tx.id(), on1, "ghost");
    cluster.front_door().drain();
  }
  EXPECT_EQ(read_value(0, on0), "both");
  EXPECT_EQ(read_value(1, on1), "both");
}

// ---------------------------------------------------------------------------
// Observability surface
// ---------------------------------------------------------------------------

TEST(FrontDoor, ShedCountersSurfaceInMetricsJsonAndPrometheus) {
  shard::ShardPolicy policy;
  policy.queue_capacity = 2;
  policy.base_fee = 10;
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.shards = 2;
  cfg.shard_policy = policy;
  cfg.flags.observability = true;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  const ObjectId target = create_on_shard(cluster, 0);

  // Two admits fill the queue; the base-fee follow-up fee-sheds.
  for (int i = 0; i < 2; ++i) {
    shard::Request req;
    req.op = shard::RequestOp::Invoke;
    req.target = target;
    req.method = "getValue";
    req.fee = 100;
    ASSERT_TRUE(cluster.submit(std::move(req)).admitted());
  }
  shard::Request cheap;
  cheap.op = shard::RequestOp::Invoke;
  cheap.target = target;
  cheap.method = "getValue";
  EXPECT_EQ(cluster.submit(std::move(cheap)).reason,
            shard::ShedReason::FeeBelowRequired);

  AdminConsole admin(cluster);
  const obs::Json doc = obs::Json::parse(admin.metrics_json());
  const obs::Json& sharding = doc.at("sharding");
  EXPECT_EQ(sharding.at("count").as_int(), 2);
  const obs::Json& shard0 = sharding.at("shards").at(0);
  EXPECT_EQ(shard0.at("queue_depth").as_int(), 2);
  EXPECT_EQ(shard0.at("shed").at("fee_below_required").as_int(), 1);
  EXPECT_EQ(shard0.at("primary").as_int(),
            static_cast<std::int64_t>(cluster.shards().home_of(0).value()));

  const std::string prom = obs::render_prometheus(cluster);
  EXPECT_NE(prom.find("dedisys_shard_queue_depth{shard=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("dedisys_shard_shed_total{shard=\"0\","
                      "reason=\"fee_below_required\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("dedisys_shard_primary{shard=\"1\"}"),
            std::string::npos);
  cluster.front_door().drain();
}

// The shed itself must leave a trace event (load shedding is an explicit,
// observable decision, not a silent drop).
TEST(FrontDoor, SheddingEmitsAdmissionTraceEvents) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.shards = 1;
  cfg.flags.observability = true;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());

  shard::Request bad;
  bad.op = shard::RequestOp::Create;
  bad.class_name = "NoSuchClass";
  EXPECT_FALSE(cluster.submit(std::move(bad)).admitted());

  bool saw_shed = false;
  for (const obs::TraceEvent& e : cluster.obs().trace().events()) {
    if (e.kind == obs::TraceEventKind::AdmissionShed) saw_shed = true;
  }
  EXPECT_TRUE(saw_shed);
}

// ---------------------------------------------------------------------------
// Chaos under sharding
// ---------------------------------------------------------------------------

TEST(ShardChaos, InvariantsHoldAcrossShardCuttingFaultPlans) {
  scenarios::ChaosOptions options;
  options.seed = 11;
  options.nodes = 4;
  options.shards = 2;
  options.objects = 4;
  options.ops = 40;
  options.fault_events = 6;
  const scenarios::ChaosResult result = scenarios::run_chaos(options);
  EXPECT_TRUE(result.invariants_ok())
      << "lost=" << result.lost_threats
      << " remaining=" << result.threats_remaining
      << " primary=" << result.primary_violations
      << " divergent=" << result.divergent_objects
      << " model=" << result.model_mismatches;
  EXPECT_GT(result.committed, 0u);
}

TEST(ShardChaos, ShardedRunsStayDeterministic) {
  scenarios::ChaosOptions options;
  options.seed = 23;
  options.nodes = 4;
  options.shards = 2;
  options.objects = 4;
  options.ops = 30;
  options.fault_events = 5;
  const scenarios::ChaosResult a = scenarios::run_chaos(options);
  const scenarios::ChaosResult b = scenarios::run_chaos(options);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

}  // namespace
}  // namespace dedisys
