// Gray failures end to end: asymmetric one-way cuts, flapping links,
// slow-but-alive nodes and clock skew — op semantics at the network
// layer, the GMS split-brain regression the bidirectional-view fix pins,
// retry/backoff interplay in the GCS, and the property harness (random
// plans, shrinking, corpus replay).
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "gcs/group_comm.h"
#include "runtime/sim_runtime.h"
#include "scenarios/chaos.h"
#include "scenarios/invariants.h"
#include "sim/fault_engine.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "util/errors.h"

#ifndef GRAY_CORPUS_DIR
#define GRAY_CORPUS_DIR "tests/gray_corpus"
#endif

namespace dedisys {
namespace {

using scenarios::ChaosOptions;
using scenarios::ChaosResult;
using scenarios::check_plan;
using scenarios::run_chaos;
using scenarios::shrink_plan;

class GrayNetworkTest : public ::testing::Test {
 protected:
  GrayNetworkTest() : net_(clock_, cost_) {
    for (std::size_t i = 0; i < 3; ++i) net_.add_node(NodeId{i});
  }

  SimClock clock_;
  CostModel cost_;
  SimNetwork net_;
};

// -- op semantics -----------------------------------------------------------

TEST_F(GrayNetworkTest, AsymCutRoutesAroundAndStaysMutual) {
  net_.apply(fault::AsymPartition{{{NodeId{1}, NodeId{0}}}});
  EXPECT_FALSE(net_.link_open(NodeId{1}, NodeId{0}));
  EXPECT_TRUE(net_.link_open(NodeId{0}, NodeId{1}));
  // Delivery 1 -> 0 relays via 2: reachable, two hops, double rpc cost.
  EXPECT_TRUE(net_.reachable(NodeId{1}, NodeId{0}));
  EXPECT_EQ(net_.hops(NodeId{1}, NodeId{0}), 2u);
  EXPECT_EQ(net_.rpc_cost(NodeId{1}, NodeId{0}), 2 * cost_.rpc_latency);
  EXPECT_EQ(net_.rpc_cost(NodeId{0}, NodeId{1}), cost_.rpc_latency);
  // All three nodes remain one strongly-connected component.
  EXPECT_EQ(net_.mutually_reachable_set(NodeId{1}).size(), 3u);
  // The naive direct view drops node 0 — the legacy split-brain seed.
  const std::vector<NodeId> direct = net_.direct_reachable_set(NodeId{1});
  EXPECT_EQ(direct.size(), 2u);
  EXPECT_FALSE(net_.fully_connected());

  net_.apply(fault::HealLinks{});
  EXPECT_TRUE(net_.fully_connected());
  EXPECT_EQ(net_.rpc_cost(NodeId{1}, NodeId{0}), cost_.rpc_latency);
}

TEST_F(GrayNetworkTest, FullOneWayIsolationSplitsMutualSets) {
  // Node 1 can hear everyone but send to no one.
  net_.apply(fault::AsymPartition{
      {{NodeId{1}, NodeId{0}}, {NodeId{1}, NodeId{2}}}});
  EXPECT_FALSE(net_.reachable(NodeId{1}, NodeId{0}));
  EXPECT_TRUE(net_.reachable(NodeId{0}, NodeId{1}));
  const std::vector<NodeId> own = net_.mutually_reachable_set(NodeId{1});
  ASSERT_EQ(own.size(), 1u);
  EXPECT_EQ(own[0], NodeId{1});
  EXPECT_EQ(net_.mutually_reachable_set(NodeId{0}).size(), 2u);
  // Selective repair of one direction re-opens routing both ways.
  net_.apply(fault::HealLinks{{{NodeId{1}, NodeId{2}}}});
  EXPECT_TRUE(net_.reachable(NodeId{1}, NodeId{0}));
  EXPECT_EQ(net_.mutually_reachable_set(NodeId{0}).size(), 3u);
}

TEST_F(GrayNetworkTest, SlowNodeScalesMessageLegsOnly) {
  EXPECT_EQ(net_.rpc_cost(NodeId{0}, NodeId{1}), cost_.rpc_latency);
  net_.apply(fault::SlowNode{NodeId{1}, 3.0});
  EXPECT_TRUE(net_.slow_active());
  EXPECT_DOUBLE_EQ(net_.slow_factor(NodeId{1}), 3.0);
  // Every leg touching node 1 is slower; legs between others are not.
  EXPECT_EQ(net_.rpc_cost(NodeId{0}, NodeId{1}), 3 * cost_.rpc_latency);
  EXPECT_EQ(net_.rpc_cost(NodeId{1}, NodeId{2}), 3 * cost_.rpc_latency);
  EXPECT_EQ(net_.rpc_cost(NodeId{0}, NodeId{2}), cost_.rpc_latency);
  // The node stays alive and in full membership — laggy, not dead.
  EXPECT_TRUE(net_.is_alive(NodeId{1}));
  EXPECT_TRUE(net_.fully_connected());
  net_.apply(fault::SlowNode{NodeId{1}, 1.0});
  EXPECT_FALSE(net_.slow_active());
  EXPECT_EQ(net_.rpc_cost(NodeId{0}, NodeId{1}), cost_.rpc_latency);
}

TEST_F(GrayNetworkTest, ClockSkewShiftsLocalNowOnly) {
  clock_.advance(sim_ms(10));
  net_.apply(fault::ClockSkew{NodeId{2}, sim_ms(3)});
  net_.apply(fault::ClockSkew{NodeId{1}, -sim_ms(2)});
  EXPECT_EQ(net_.local_now(NodeId{0}), sim_ms(10));
  EXPECT_EQ(net_.local_now(NodeId{1}), sim_ms(8));
  EXPECT_EQ(net_.local_now(NodeId{2}), sim_ms(13));
  // Skew never touches the shared schedule or membership.
  EXPECT_EQ(clock_.now(), sim_ms(10));
  EXPECT_TRUE(net_.fully_connected());
  net_.apply(fault::ClockSkew{NodeId{2}, 0});
  EXPECT_EQ(net_.local_now(NodeId{2}), sim_ms(10));
}

TEST_F(GrayNetworkTest, TopologySnapshotRestoresCutLinks) {
  const Topology before =
      net_.apply(fault::AsymPartition{{{NodeId{0}, NodeId{2}}}});
  EXPECT_FALSE(net_.link_open(NodeId{0}, NodeId{2}));
  net_.apply(before);
  EXPECT_TRUE(net_.fully_connected());
}

TEST(GrayEngineTest, FlapExpandsToTogglesAndEndsUp) {
  SimClock clock;
  CostModel cost;
  SimNetwork net(clock, cost);
  for (std::size_t i = 0; i < 3; ++i) net.add_node(NodeId{i});

  FaultPlan plan;
  plan.seed = 11;
  fault::Flap flap;
  flap.a = NodeId{0};
  flap.b = NodeId{1};
  flap.period = sim_ms(10);
  flap.duration = sim_ms(60);
  plan.add(sim_ms(5), flap);

  FaultEngine engine(net, plan);
  engine.advance_to(sim_ms(5));
  // Down phase cuts both directions immediately.
  EXPECT_FALSE(net.link_open(NodeId{0}, NodeId{1}));
  EXPECT_FALSE(net.link_open(NodeId{1}, NodeId{0}));
  // Toggles were scheduled into the pending plan.
  EXPECT_GT(engine.stats().flap_toggles, 0u);
  while (!engine.done()) engine.advance_to(engine.next_at());
  // The flap closes with the link (and the whole network) up.
  EXPECT_TRUE(net.fully_connected());
  EXPECT_EQ(engine.stats().flaps, 1u);
}

TEST(GrayEngineTest, SameSeedSameToggleSchedule) {
  auto schedule = [](std::uint64_t seed) {
    SimClock clock;
    CostModel cost;
    SimNetwork net(clock, cost);
    for (std::size_t i = 0; i < 3; ++i) net.add_node(NodeId{i});
    FaultPlan plan;
    plan.seed = seed;
    fault::Flap flap;
    flap.a = NodeId{1};
    flap.b = NodeId{2};
    flap.period = sim_ms(8);
    flap.duration = sim_ms(80);
    plan.add(sim_ms(3), flap);
    FaultEngine engine(net, plan);
    std::vector<SimTime> fired;
    while (!engine.done()) {
      fired.push_back(engine.next_at());
      engine.advance_to(engine.next_at());
    }
    return fired;
  };
  EXPECT_EQ(schedule(5), schedule(5));
  EXPECT_NE(schedule(5), schedule(6));  // jitter derives from the seed
}

// -- plan serialization ------------------------------------------------------

TEST(GrayPlanText, RoundTripsEveryOpKind) {
  FaultPlan plan;
  plan.seed = 99;
  plan.add(10, fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}}}});
  plan.add(20, fault::Crash{NodeId{2}});
  plan.add(30, fault::Restart{NodeId{2}});
  LinkFaults faults;
  faults.drop = 0.125;
  faults.delay_prob = 0.5;
  faults.delay = 700;
  plan.add(40, fault::SetLinkFaults{faults});
  plan.add(45, fault::SetLinkFaultsOn{NodeId{0}, NodeId{1}, faults});
  plan.add(50, fault::AsymPartition{{{NodeId{1}, NodeId{0}}}});
  plan.add(60, fault::HealLinks{{{NodeId{1}, NodeId{0}}}});
  plan.add(70, fault::Flap{NodeId{0}, NodeId{2}, sim_ms(6), sim_ms(30)});
  plan.add(80, fault::SlowNode{NodeId{1}, 2.75});
  plan.add(90, fault::ClockSkew{NodeId{2}, -sim_ms(3)});
  plan.add(100, fault::Heal{});
  plan.add(110, fault::HealLinks{});

  const std::string text = plan_to_text(plan);
  const FaultPlan parsed = plan_from_text(text);
  EXPECT_EQ(parsed.seed, plan.seed);
  ASSERT_EQ(parsed.actions.size(), plan.actions.size());
  // Exact round trip: serializing again yields the identical text.
  EXPECT_EQ(plan_to_text(parsed), text);
}

TEST(GrayPlanText, RandomGrayPlanRoundTrips) {
  RandomPlanOptions options;
  for (std::size_t n = 0; n < 4; ++n) options.nodes.push_back(NodeId{n});
  options.events = 16;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const FaultPlan plan = random_gray_plan(seed, options);
    const std::string text = plan_to_text(plan);
    EXPECT_EQ(plan_to_text(plan_from_text(text)), text) << "seed " << seed;
  }
}

TEST(GrayPlanText, MalformedInputThrows) {
  EXPECT_THROW(plan_from_text("at 10 heal\n"), ConfigError);  // missing seed
  EXPECT_THROW(plan_from_text("seed 1\nat 10 bogus\n"), ConfigError);
  EXPECT_THROW(plan_from_text("seed 1\nat 10 asym\n"), ConfigError);
  EXPECT_THROW(plan_from_text("seed 1\nat 10 asym 1-0\n"), ConfigError);
  EXPECT_THROW(plan_from_text("seed 1\nat 10 flap 0 1 5000\n"), ConfigError);
  EXPECT_THROW(plan_from_text("seed 1\nwat 10 heal\n"), ConfigError);
  EXPECT_NO_THROW(plan_from_text("seed 1\n# comment\n\nat 10 heal\n"));
}

// -- the GMS split-brain regression -----------------------------------------

ChaosOptions small_chaos() {
  ChaosOptions options;
  options.nodes = 3;
  options.objects = 3;
  options.ops = 30;
  options.fault_events = 8;
  options.horizon = sim_ms(200);
  return options;
}

FaultPlan one_way_cut_plan(bool with_heal) {
  FaultPlan plan;
  plan.seed = 4242;
  plan.add(sim_us(10), fault::AsymPartition{{{NodeId{1}, NodeId{0}}}});
  if (with_heal) plan.add(sim_ms(200) + 1, fault::Heal{});
  return plan;
}

TEST(GraySplitBrain, LegacyUnidirectionalViewsElectTwoPrimaries) {
  ChaosOptions options = small_chaos();
  options.flags.legacy_unidirectional_views = true;
  options.plan = one_way_cut_plan(/*with_heal=*/true);
  const ChaosResult result = run_chaos(options);
  // Node 1 drops the designated primary's node from its view and elects
  // itself, while nodes 0 and 2 keep the designated primary: two primaries
  // inside one strongly-connected component.
  EXPECT_GT(result.primary_violations, 0u);
}

TEST(GraySplitBrain, BidirectionalViewsKeepOnePrimary) {
  ChaosOptions options = small_chaos();
  options.plan = one_way_cut_plan(/*with_heal=*/true);
  const ChaosResult result = run_chaos(options);
  EXPECT_EQ(result.primary_violations, 0u);
  EXPECT_TRUE(result.invariants_ok());
}

// -- retry/backoff interplay -------------------------------------------------

class GrayGcsTest : public ::testing::Test {
 protected:
  GrayGcsTest() : net_(clock_, cost_), gc_(rt_) {
    for (std::size_t i = 0; i < 3; ++i) net_.add_node(NodeId{i});
    net_.seed_faults(21);
  }

  SimClock clock_;
  CostModel cost_;
  SimNetwork net_;
  SimRuntime rt_{clock_, net_};
  GroupCommunication gc_;
};

TEST_F(GrayGcsTest, DedupNeverDropsFirstDelivery) {
  LinkFaults faults;
  faults.duplicate = 1.0;  // every message delivered twice
  net_.apply(fault::SetLinkFaults{faults});
  std::size_t deliveries = 0;
  const std::size_t delivered = gc_.multicast(
      NodeId{0}, net_.nodes(), [&](NodeId) { ++deliveries; });
  // Both receivers got the payload exactly once; the duplicates were
  // suppressed without ever suppressing a first delivery.
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(deliveries, 2u);
  EXPECT_EQ(gc_.stats().duplicates_suppressed, 2u);
}

TEST_F(GrayGcsTest, RetryExhaustionReportsTheGap) {
  LinkFaults faults;
  faults.drop = 1.0;  // nothing gets through
  net_.apply(fault::SetLinkFaultsOn{NodeId{0}, NodeId{1}, faults});
  bool delivered = false;
  EXPECT_FALSE(gc_.send(NodeId{0}, NodeId{1}, [&] { delivered = true; }));
  EXPECT_FALSE(delivered);
  EXPECT_EQ(gc_.stats().gave_up, 1u);
  EXPECT_EQ(gc_.stats().retries, gc_.retry_policy().max_attempts - 1);
}

TEST_F(GrayGcsTest, RetryLegsHonorSlowNodesAndRelays) {
  net_.apply(fault::SlowNode{NodeId{1}, 2.0});
  LinkFaults faults;
  faults.drop = 0.5;
  net_.apply(fault::SetLinkFaultsOn{NodeId{0}, NodeId{1}, faults});
  const SimTime before = clock_.now();
  gc_.send(NodeId{0}, NodeId{1}, [] {});
  // Every charged leg towards the slow node costs at least the doubled
  // point-to-point latency (the exact count depends on the seeded drops).
  EXPECT_GE(clock_.now() - before, 2 * cost_.rpc_latency);
}

TEST(GrayFlapRetry, ExhaustedRetriesMarkReconciliationAndStayDeterministic) {
  // A flapping link plus heavy loss around the designated primary: some
  // propagations exhaust their retries mid-flap, and the chaos harness
  // must mark those gaps and converge after the final heal — on every run
  // of the same seed, with a byte-identical timeline.  The extra 1<->2 cut
  // means every flap-down dwell fully isolates node 1 (its only remaining
  // path runs over the flapping link), so degraded mode is entered and the
  // final heal must trigger a reconciliation.
  ChaosOptions options = small_chaos();
  FaultPlan plan;
  plan.seed = 31;
  LinkFaults lossy;
  lossy.drop = 0.6;
  plan.add(sim_us(5), fault::SetLinkFaults{lossy});
  plan.add(sim_ms(10), fault::Flap{NodeId{0}, NodeId{1}, sim_ms(6), sim_ms(80)});
  plan.add(sim_ms(20), fault::AsymPartition{{{NodeId{1}, NodeId{2}},
                                             {NodeId{2}, NodeId{1}}}});
  plan.add(sim_ms(120), fault::HealLinks{{{NodeId{1}, NodeId{2}},
                                          {NodeId{2}, NodeId{1}}}});
  plan.add(sim_ms(200) + 1, fault::Heal{});
  plan.add(sim_ms(200) + 2, fault::SetLinkFaults{});
  options.plan = plan;

  const ChaosResult first = run_chaos(options);
  EXPECT_TRUE(first.invariants_ok())
      << "divergent=" << first.divergent_objects
      << " threats=" << first.threats_remaining;
  EXPECT_GE(first.reconciles, 1u);

  const ChaosResult second = run_chaos(options);
  EXPECT_EQ(first.timeline, second.timeline);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

// -- property harness --------------------------------------------------------

TEST(GrayProperties, RandomGrayPlansHoldAllProperties) {
  scenarios::PropertySuiteOptions options;
  options.plans = 4;  // check.sh --gray runs the >= 20 plan sweep
  options.chaos = small_chaos();
  const scenarios::PropertySuiteResult result =
      scenarios::run_property_suite(options);
  EXPECT_EQ(result.plans_checked, 4u);
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "seed " << failure.seed << ": " << failure.violation
                  << "\n" << plan_to_text(failure.shrunk);
  }
}

TEST(GrayProperties, ShrinkerReducesToTheCulpritOp) {
  RandomPlanOptions plan_options;
  for (std::size_t n = 0; n < 3; ++n) plan_options.nodes.push_back(NodeId{n});
  plan_options.events = 12;
  FaultPlan noisy = random_gray_plan(13, plan_options);
  noisy.add(sim_ms(40), fault::Crash{NodeId{2}});
  noisy.sort();
  const std::size_t original = noisy.actions.size();

  const auto has_crash = [](const FaultPlan& plan) {
    for (const auto& action : plan.actions) {
      const auto* crash = std::get_if<fault::Crash>(&action.op);
      if (crash != nullptr && crash->node == NodeId{2}) return true;
    }
    return false;
  };
  const scenarios::ShrinkResult shrunk = shrink_plan(noisy, has_crash, 500);
  EXPECT_EQ(shrunk.plan.actions.size(), 1u);
  EXPECT_TRUE(has_crash(shrunk.plan));
  EXPECT_EQ(shrunk.removed, original - 1);
}

TEST(GrayProperties, ShrinkerMinimizesRealSplitBrainToThreeOpsOrFewer) {
  // Same workload and noisy base plan as `bench_gray_chaos --selftest`:
  // whether a given random prefix masks the one-way cut (e.g. by crashing
  // the designated primary) depends on the exact schedule, so the pinned
  // configuration is the one known to split the legacy views.
  ChaosOptions legacy;
  legacy.ops = 40;
  legacy.fault_events = 10;
  legacy.horizon = sim_ms(250);
  legacy.flags.legacy_unidirectional_views = true;
  RandomPlanOptions plan_options;
  for (std::size_t n = 0; n < 3; ++n) plan_options.nodes.push_back(NodeId{n});
  plan_options.horizon = legacy.horizon;
  plan_options.events = 6;
  FaultPlan plan = random_gray_plan(4242, plan_options);
  plan.add(sim_us(10), fault::AsymPartition{{{NodeId{1}, NodeId{0}}}});
  plan.sort();

  const auto splits_brain = [&](const FaultPlan& candidate) {
    return check_plan(candidate, legacy).result.primary_violations > 0;
  };
  ASSERT_TRUE(splits_brain(plan));
  const scenarios::ShrinkResult shrunk = shrink_plan(plan, splits_brain, 80);
  EXPECT_LE(shrunk.plan.actions.size(), 3u)
      << plan_to_text(shrunk.plan);
  EXPECT_TRUE(splits_brain(shrunk.plan));
}

TEST(GrayProperties, CommittedCorpusStillPasses) {
  const scenarios::PropertySuiteResult result =
      scenarios::run_corpus(GRAY_CORPUS_DIR, small_chaos());
  EXPECT_GE(result.plans_checked, 3u)
      << "corpus missing at " << GRAY_CORPUS_DIR;
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << failure.violation;
  }
}

// -- gray invariants under single-op plans -----------------------------------

TEST(GrayInvariants, SlowNodeRunConvergesAndIsDeterministic) {
  ChaosOptions options = small_chaos();
  FaultPlan plan;
  plan.seed = 8;
  plan.add(sim_ms(5), fault::SlowNode{NodeId{1}, 3.5});
  plan.add(sim_ms(150), fault::SlowNode{NodeId{1}, 1.0});
  options.plan = plan;
  const ChaosResult result = run_chaos(options);
  EXPECT_TRUE(result.invariants_ok());
  EXPECT_EQ(run_chaos(options).timeline, result.timeline);
}

TEST(GrayInvariants, ClockSkewNeverBlocksConvergence) {
  // Reconciliation is version-based, so even a large skew on the primary's
  // stamps must not produce divergence or model mismatches.
  ChaosOptions options = small_chaos();
  FaultPlan plan;
  plan.seed = 9;
  plan.add(sim_ms(1), fault::ClockSkew{NodeId{0}, sim_ms(5)});
  plan.add(sim_ms(2), fault::ClockSkew{NodeId{2}, -sim_ms(5)});
  plan.add(sim_ms(180), fault::ClockSkew{NodeId{0}, 0});
  plan.add(sim_ms(180), fault::ClockSkew{NodeId{2}, 0});
  options.plan = plan;
  const ChaosResult result = run_chaos(options);
  EXPECT_TRUE(result.invariants_ok());
  EXPECT_EQ(run_chaos(options).timeline, result.timeline);
}

}  // namespace
}  // namespace dedisys
