// Web negotiation bridge (Section 4.5): request/response matching of
// negotiation callbacks, decisions, timeouts.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/flight.h"
#include "web/bridge.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;
using web::HttpRequest;
using web::HttpResponse;
using web::WebBusinessServlet;

/// A servlet selling tickets through a degraded cluster: every sale raises
/// a consistency threat that must be negotiated via the browser.
struct WebFlightFixture : ::testing::Test {
  WebFlightFixture() : cluster_(make_config()) {
    FlightBooking::define_classes(cluster_.classes());
    // No static acceptance: the threat decision must come from the Web user.
    FlightBooking::register_constraints(cluster_.constraints(), false,
                                        SatisfactionDegree::Satisfied);
    flight_ = FlightBooking::create_flight(cluster_.node(0), 80);
    FlightBooking::sell(cluster_.node(0), flight_, 70);
    cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  std::unique_ptr<WebBusinessServlet> make_servlet() {
    auto servlet = std::make_unique<WebBusinessServlet>([this] {
      DedisysNode& n = cluster_.node(0);
      TxScope tx(n.tx());
      n.ccmgr().register_negotiation_handler(tx.id(), servlet_bridge_);
      n.invoke(tx.id(), flight_, "sellTickets", {Value{std::int64_t{1}}});
      tx.commit();
      return "ticket sold";
    });
    servlet_bridge_ = servlet->bridge();
    return servlet;
  }

  Cluster cluster_;
  ObjectId flight_;
  std::shared_ptr<web::WebNegotiationBridge> servlet_bridge_;
};

TEST_F(WebFlightFixture, NegotiationTravelsOverResponsesAndAcceptCommits) {
  auto servlet = make_servlet();

  // 1. Business request returns the negotiation request, not the result.
  const HttpResponse r1 = servlet->handle(HttpRequest{"/business", {}});
  ASSERT_EQ(r1.kind, "negotiation-request");
  EXPECT_EQ(r1.fields.at("constraint"), "TicketConstraint");
  EXPECT_EQ(r1.fields.at("degree"), "possibly_satisfied");

  // 2. The decision arrives as a NEW request; the business result rides on
  //    its response (Fig. 4.8).
  const HttpResponse r2 =
      servlet->handle(HttpRequest{"/negotiation-result", {{"accept", "true"}}});
  ASSERT_EQ(r2.kind, "business-result");
  EXPECT_EQ(r2.fields.at("result"), "ticket sold");

  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 71);
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
}

TEST_F(WebFlightFixture, RejectDecisionAbortsBusinessOperation) {
  auto servlet = make_servlet();
  const HttpResponse r1 = servlet->handle(HttpRequest{"/business", {}});
  ASSERT_EQ(r1.kind, "negotiation-request");
  const HttpResponse r2 = servlet->handle(
      HttpRequest{"/negotiation-result", {{"accept", "false"}}});
  EXPECT_EQ(r2.status, 500);
  EXPECT_EQ(r2.kind, "error");
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 70);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(WebFlightFixture, TimeoutAutoRejectsThreat) {
  auto servlet = make_servlet();
  servlet->set_negotiation_timeout(std::chrono::milliseconds(50));
  const HttpResponse r1 = servlet->handle(HttpRequest{"/business", {}});
  ASSERT_EQ(r1.kind, "negotiation-request");
  // The user walks away; the worker times out and the operation aborts.
  while (servlet->business_in_progress()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 70);
  // A late decision finds no pending negotiation.
  const HttpResponse r2 = servlet->handle(
      HttpRequest{"/negotiation-result", {{"accept", "true"}}});
  EXPECT_EQ(r2.status, 409);
}

TEST_F(WebFlightFixture, SequentialBusinessRequestsWork) {
  auto servlet = make_servlet();
  for (int i = 0; i < 3; ++i) {
    const HttpResponse r1 = servlet->handle(HttpRequest{"/business", {}});
    ASSERT_EQ(r1.kind, "negotiation-request") << "iteration " << i;
    const HttpResponse r2 = servlet->handle(
        HttpRequest{"/negotiation-result", {{"accept", "true"}}});
    ASSERT_EQ(r2.kind, "business-result") << "iteration " << i;
  }
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 73);
}

TEST_F(WebFlightFixture, HealthyModeNeedsNoNegotiationRoundTrip) {
  cluster_.inject(fault::Heal{});
  (void)cluster_.reconcile();
  auto servlet = make_servlet();
  const HttpResponse r = servlet->handle(HttpRequest{"/business", {}});
  EXPECT_EQ(r.kind, "business-result");
  EXPECT_EQ(r.fields.at("result"), "ticket sold");
}

TEST_F(WebFlightFixture, UnknownPathYields404) {
  auto servlet = make_servlet();
  const HttpResponse r = servlet->handle(HttpRequest{"/nope", {}});
  EXPECT_EQ(r.status, 404);
}

TEST_F(WebFlightFixture, DecisionWithoutPendingNegotiationIsConflict) {
  auto servlet = make_servlet();
  const HttpResponse r = servlet->handle(
      HttpRequest{"/negotiation-result", {{"accept", "true"}}});
  EXPECT_EQ(r.status, 409);
}

TEST(WebBridge, WithoutServletThreatsAreRejected) {
  web::WebNegotiationBridge bridge;
  ConsistencyThreat threat;
  // A context is required by the signature but unused on this path.
  struct NullAccessor final : ObjectAccessor {
    const Entity& read(ObjectId) override {
      throw ObjectUnreachable("null accessor");
    }
    Value invoke(ObjectId, const MethodSignature&,
                 std::vector<Value>) override {
      throw ObjectUnreachable("null accessor");
    }
  } accessor;
  ConstraintValidationContext ctx(accessor, NodeId{0}, TxId{});
  EXPECT_FALSE(bridge.negotiate(threat, ctx).accepted);
}

}  // namespace
}  // namespace dedisys
