// Application scenarios: ATS (Fig. 1.5), constraint descriptor loading,
// partition-sensitive constraints (Section 5.5.2).
#include <gtest/gtest.h>

#include "constraints/config.h"
#include "middleware/cluster.h"
#include "scenarios/ats.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::AlarmTracking;
using scenarios::FlightBooking;

class AtsCluster : public ::testing::Test {
 protected:
  AtsCluster() : cluster_(make_config()) {
    AlarmTracking::define_classes(cluster_.classes());
    AlarmTracking::register_constraints(cluster_.constraints());
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 2;
    return cfg;
  }

  Cluster cluster_;
};

TEST_F(AtsCluster, ConsistentRepairAccepted) {
  DedisysNode& n = cluster_.node(0);
  const auto pair = AlarmTracking::create_linked(n, "Signal");
  TxScope tx(n.tx());
  n.invoke(tx.id(), pair.report, "setAffectedComponent",
           {Value{std::string{"Signal Controller"}}});
  EXPECT_NO_THROW(tx.commit());
}

TEST_F(AtsCluster, MismatchedRepairViolatesInHealthyMode) {
  DedisysNode& n = cluster_.node(0);
  const auto pair = AlarmTracking::create_linked(n, "Signal");
  TxScope tx(n.tx());
  EXPECT_THROW(n.invoke(tx.id(), pair.report, "setAffectedComponent",
                        {Value{std::string{"Power Supply"}}}),
               ConstraintViolation);
}

TEST_F(AtsCluster, AlarmKindChangeTriggersConstraintViaReferenceGetter) {
  // The constraint's context object is the RepairReport, reached from the
  // Alarm through getRepairReport (Listing 4.1).
  DedisysNode& n = cluster_.node(0);
  const auto pair = AlarmTracking::create_linked(n, "Signal");
  {
    TxScope tx(n.tx());
    n.invoke(tx.id(), pair.report, "setAffectedComponent",
             {Value{std::string{"Signal Cable"}}});
    tx.commit();
  }
  TxScope tx(n.tx());
  EXPECT_THROW(n.invoke(tx.id(), pair.alarm, "setAlarmKind",
                        {Value{std::string{"Power"}}}),
               ConstraintViolation);
}

TEST_F(AtsCluster, PossiblyViolatedThreatAcceptedInDegradedMode) {
  // Section 3.1: for the ATS it is reasonable to accept possibly-violated
  // threats — the technical operator knows the repaired component better
  // than the stale Alarm copy.
  DedisysNode& n0 = cluster_.node(0);
  const auto pair = AlarmTracking::create_linked(n0, "Signal");
  cluster_.inject(fault::split_indices({{0}, {1}}));
  DedisysNode& tech = cluster_.node(0);
  TxScope tx(tech.tx());
  // "Power Supply" does not match the (possibly stale) alarm kind: the
  // validation yields possibly_violated, which the configured minimum
  // degree accepts.
  EXPECT_NO_THROW(tech.invoke(tx.id(), pair.report, "setAffectedComponent",
                              {Value{std::string{"Power Supply"}}}));
  tx.commit();
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
}

TEST_F(AtsCluster, ReconciliationDetectsActualViolationAfterMerge) {
  DedisysNode& n0 = cluster_.node(0);
  const auto pair = AlarmTracking::create_linked(n0, "Signal");
  cluster_.inject(fault::split_indices({{0}, {1}}));
  {
    TxScope tx(n0.tx());
    n0.invoke(tx.id(), pair.report, "setAffectedComponent",
              {Value{std::string{"Power Supply"}}});
    tx.commit();
  }
  cluster_.inject(fault::Heal{});

  class Recorder final : public ConstraintReconciliationHandler {
   public:
    bool reconcile(const ConsistencyThreat& threat,
                   ConstraintValidationContext&) override {
      names.push_back(threat.constraint_name);
      return false;  // deferred (e-mail to the operator)
    }
    std::vector<std::string> names;
  } recorder;

  const auto report = cluster_.reconcile(nullptr, &recorder);
  EXPECT_EQ(report.constraints.violations, 1u);
  EXPECT_EQ(report.constraints.deferred, 1u);
  ASSERT_EQ(recorder.names.size(), 1u);
  EXPECT_EQ(recorder.names[0], "ComponentKindReferenceConsistency");
  // Deferred: the threat stays stored until the application cleans up.
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);

  // The operator fixes the report via a business operation; the satisfied
  // full check removes the threat (Section 4.4).
  TxScope tx(n0.tx());
  n0.invoke(tx.id(), pair.report, "setAffectedComponent",
            {Value{std::string{"Signal Cable"}}});
  tx.commit();
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(AtsCluster, DescriptorXmlLoadsEquivalentConstraint) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster fresh(cfg);
  AlarmTracking::define_classes(fresh.classes());

  ConstraintFactory factory;
  factory.register_class(
      "ComponentKindReferenceConstraint",
      [](const std::string& name, ConstraintType type, ConstraintPriority p) {
        return std::make_shared<scenarios::ComponentKindReferenceConstraint>(
            name, type, p);
      });
  EXPECT_EQ(load_constraints(AlarmTracking::constraint_descriptor_xml(),
                             factory, fresh.constraints()),
            1u);

  // The loaded constraint enforces the same rule.
  DedisysNode& n = fresh.node(0);
  const auto pair = AlarmTracking::create_linked(n, "Signal");
  TxScope tx(n.tx());
  EXPECT_THROW(n.invoke(tx.id(), pair.report, "setAffectedComponent",
                        {Value{std::string{"Power Supply"}}}),
               ConstraintViolation);
}

// ---------------------------------------------------------------------------
// Partition-sensitive ticket constraint (Section 5.5.2)
// ---------------------------------------------------------------------------

class PartitionSensitive : public ::testing::Test {
 protected:
  PartitionSensitive() : cluster_(make_config()) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(cluster_.constraints(),
                                        /*partition_sensitive=*/true,
                                        SatisfactionDegree::PossiblySatisfied);
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 4;
    return cfg;
  }

  Cluster cluster_;
};

TEST_F(PartitionSensitive, TicketsApportionedByPartitionWeight) {
  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 80);
  FlightBooking::sell(n0, flight, 40);  // healthy: 40 sold, 40 remaining

  cluster_.inject(fault::split_indices({{0, 1}, {2, 3}}));  // 50% weight each -> 20 tickets each

  // Partition A may sell its 20-ticket quota but not more.
  EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(0), flight, 20));
  EXPECT_THROW(FlightBooking::sell(cluster_.node(0), flight, 1),
               ConsistencyThreatRejected);
  // Partition B independently sells its quota.
  EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(2), flight, 20));
  EXPECT_THROW(FlightBooking::sell(cluster_.node(2), flight, 5),
               ConsistencyThreatRejected);
}

TEST_F(PartitionSensitive, NoOverbookingAfterReconciliation) {
  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 80);
  FlightBooking::sell(n0, flight, 40);
  cluster_.inject(fault::split_indices({{0, 1}, {2, 3}}));
  FlightBooking::sell(cluster_.node(0), flight, 20);
  FlightBooking::sell(cluster_.node(2), flight, 20);
  cluster_.inject(fault::Heal{});

  class AdditiveMerge final : public ReplicaConsistencyHandler {
   public:
    EntitySnapshot reconcile_replicas(
        ObjectId, const std::vector<EntitySnapshot>& c) override {
      std::int64_t total = 40;
      std::uint64_t maxv = 0;
      for (const auto& s : c) {
        total += as_int(s.attributes.at("soldTickets")) - 40;
        maxv = std::max(maxv, s.version);
      }
      EntitySnapshot out = c.front();
      out.attributes["soldTickets"] = Value{total};
      out.version = maxv + 1;
      return out;
    }
  } merge;

  const auto report = cluster_.reconcile(&merge);
  // The weighted quotas prevented overbooking entirely: the merged total
  // (40+20+20=80) satisfies the constraint, no violation to clean up.
  EXPECT_EQ(report.constraints.violations, 0u);
  EXPECT_EQ(FlightBooking::sold(n0, flight), 80);
}

TEST_F(PartitionSensitive, UnevenWeightsGiveUnevenQuotas) {
  cluster_.weights().set(NodeId{0}, 3.0);  // total weight 3+1+1+1 = 6
  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 60);
  // 60 remaining tickets; partition {0} holds weight 3/6 -> quota 30.
  cluster_.inject(fault::split_indices({{0}, {1, 2, 3}}));
  EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(0), flight, 30));
  EXPECT_THROW(FlightBooking::sell(cluster_.node(0), flight, 1),
               ConsistencyThreatRejected);
  // The other partition gets the complementary quota (30).
  EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(1), flight, 30));
}

}  // namespace
}  // namespace dedisys
