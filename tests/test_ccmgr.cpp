// Constraint consistency manager behaviour (Section 4.2.3) exercised
// through the full middleware stack.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/evalapp.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::AcceptAllNegotiation;
using scenarios::EvalApp;
using scenarios::FlightBooking;

class CcmgrTest : public ::testing::Test {
 protected:
  CcmgrTest() : cluster_(make_config()) {
    EvalApp::define_classes(cluster_.classes());
    EvalApp::register_constraints(cluster_.constraints());
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  Cluster cluster_;
};

TEST_F(CcmgrTest, SatisfiedHardConstraintAllowsCommit) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  EXPECT_TRUE(EvalApp::run_op(n, ids[0], "emptySatisfied"));
  EXPECT_EQ(n.ccmgr().stats().violations, 0u);
  EXPECT_GE(n.ccmgr().stats().validations, 1u);
}

TEST_F(CcmgrTest, ViolatedHardConstraintAbortsTransaction) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  EXPECT_FALSE(EvalApp::run_op(n, ids[0], "emptyViolated"));
  EXPECT_EQ(n.ccmgr().stats().violations, 1u);
}

TEST_F(CcmgrTest, HealthyModeNeverCreatesThreats) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(EvalApp::run_op(n, ids[0], "emptyThreat"));
  }
  EXPECT_EQ(n.ccmgr().stats().threats_detected, 0u);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(CcmgrTest, DegradedModeDetectsThreatsViaStaleness) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  // Static negotiation: TouchHard has no min degree, app default is
  // Satisfied -> threat rejected.
  EXPECT_FALSE(EvalApp::run_op(n, ids[0], "emptyThreat"));
  EXPECT_EQ(n.ccmgr().stats().threats_detected, 1u);
  EXPECT_EQ(n.ccmgr().stats().threats_rejected, 1u);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(CcmgrTest, DynamicNegotiationHandlerTakesPriority) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  // Dynamic handler accepts what static negotiation would reject.
  EXPECT_TRUE(EvalApp::run_op_negotiated(
      n, ids[0], "emptyThreat", std::make_shared<AcceptAllNegotiation>()));
  EXPECT_EQ(n.ccmgr().stats().threats_accepted, 1u);
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
}

TEST_F(CcmgrTest, RejectingHandlerAbortsTransaction) {
  class RejectAll final : public NegotiationHandler {
   public:
    NegotiationOutcome negotiate(const ConsistencyThreat&,
                                 ConstraintValidationContext&) override {
      return NegotiationOutcome{};  // accepted = false
    }
  };
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_FALSE(EvalApp::run_op_negotiated(n, ids[0], "emptyThreat",
                                          std::make_shared<RejectAll>()));
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(CcmgrTest, ThreatsOfAbortedTransactionsAreNotPersisted) {
  class AcceptThenFail final : public NegotiationHandler {
   public:
    NegotiationOutcome negotiate(const ConsistencyThreat&,
                                 ConstraintValidationContext&) override {
      NegotiationOutcome out;
      out.accepted = true;
      return out;
    }
  };
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  {
    TxScope tx(n.tx());
    n.ccmgr().register_negotiation_handler(
        tx.id(), std::make_shared<AcceptThenFail>());
    n.invoke(tx.id(), ids[0], "emptyThreat");
    tx.rollback();  // business decides to abort
  }
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(CcmgrTest, SoftConstraintValidatedAtCommitNotPerOperation) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  const std::size_t before = n.ccmgr().stats().validations;
  {
    TxScope tx(n.tx());
    // Three calls, but the soft constraint is checked once at prepare.
    n.invoke(tx.id(), ids[0], "emptySoftThreat");
    n.invoke(tx.id(), ids[0], "emptySoftThreat");
    n.invoke(tx.id(), ids[0], "emptySoftThreat");
    EXPECT_EQ(n.ccmgr().stats().validations, before);
    tx.commit();
  }
  EXPECT_EQ(n.ccmgr().stats().validations, before + 1);
}

TEST_F(CcmgrTest, AsyncConstraintSkipsValidationInDegradedMode) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  const std::size_t validations_before = n.ccmgr().stats().validations;
  EXPECT_TRUE(EvalApp::run_op(n, ids[0], "emptyAsyncThreat"));
  // No validation, no negotiation — but a threat was recorded.
  EXPECT_EQ(n.ccmgr().stats().validations, validations_before);
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
}

TEST_F(CcmgrTest, AsyncConstraintBehavesLikeSoftWhenHealthy) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  const std::size_t before = n.ccmgr().stats().validations;
  EXPECT_TRUE(EvalApp::run_op(n, ids[0], "emptyAsyncThreat"));
  EXPECT_EQ(n.ccmgr().stats().validations, before + 1);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(CcmgrTest, StaticNegotiationRespectsConfiguredMinimumDegree) {
  cluster_.constraints().find("TouchHard").set_min_satisfaction_degree(
      SatisfactionDegree::PossiblySatisfied);
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_TRUE(EvalApp::run_op(n, ids[0], "emptyThreat"));
  EXPECT_EQ(n.ccmgr().stats().threats_accepted, 1u);
}

TEST_F(CcmgrTest, ApplicationWideDefaultDegreeActsAsFallback) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.default_min_degree = SatisfactionDegree::Uncheckable;  // accept all
  Cluster permissive(cfg);
  EvalApp::define_classes(permissive.classes());
  EvalApp::register_constraints(permissive.constraints());
  DedisysNode& n = permissive.node(0);
  const auto ids = EvalApp::create_entities(n, 1);
  permissive.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_TRUE(EvalApp::run_op(n, ids[0], "emptyThreat"));
  EXPECT_EQ(permissive.threats().identity_count(), 1u);
}

TEST_F(CcmgrTest, SatisfyingBusinessOperationRemovesStoredThreat) {
  // Use the flight scenario: store a threat during degradation, then fully
  // satisfy the constraint after healing via a business operation.
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cl(cfg);
  FlightBooking::define_classes(cl.classes());
  FlightBooking::register_constraints(cl.constraints());
  DedisysNode& n = cl.node(0);
  const ObjectId flight = FlightBooking::create_flight(n, 100);
  cl.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(n, flight, 5);
  EXPECT_EQ(cl.threats().identity_count(), 1u);
  cl.inject(fault::Heal{});
  // A fully-checkable satisfied validation triggered by business activity
  // cleans the stored threat (Section 4.4) without running reconciliation.
  FlightBooking::sell(n, flight, 1);
  EXPECT_EQ(cl.threats().identity_count(), 0u);
}

TEST_F(CcmgrTest, ThreatenedObjectsReportsAffectedObjects) {
  DedisysNode& n = cluster_.node(0);
  const auto ids = EvalApp::create_entities(n, 2);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_TRUE(EvalApp::run_op_negotiated(
      n, ids[0], "emptyThreat", std::make_shared<AcceptAllNegotiation>()));
  const auto threatened = n.ccmgr().threatened_objects();
  EXPECT_EQ(threatened.count(ids[0]), 1u);
  EXPECT_EQ(threatened.count(ids[1]), 0u);
}

TEST_F(CcmgrTest, NccProducesUncheckableAndCanBeAccepted) {
  // Restrict the object's replicas to node 2 only, then cut node 2 off:
  // validation becomes impossible (NCC -> uncheckable).
  DedisysNode& n2 = cluster_.node(2);
  TxScope tx(n2.tx());
  const ObjectId id = n2.replication().create(
      "TestEntity", tx.id(), std::vector<NodeId>{NodeId{2}});
  tx.commit();

  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  DedisysNode& n0 = cluster_.node(0);
  cluster_.constraints().find("TouchHard").set_min_satisfaction_degree(
      SatisfactionDegree::Uncheckable);
  // Invoking on an unreachable object fails at routing already:
  EXPECT_FALSE(EvalApp::run_op(n0, id, "emptyThreat"));
}

}  // namespace
}  // namespace dedisys
