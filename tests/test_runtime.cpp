// The pluggable execution runtime (docs/runtime.md): backend-equivalence
// of a fault-free workload, the FeatureFlags fan-out through the cluster
// layers, and the threaded backend's concurrency behavior (mailbox rounds,
// nested serve, timers, kernel-lock smoke under concurrent clients).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "middleware/cluster.h"
#include "objects/entity.h"
#include "runtime/threaded_runtime.h"
#include "scenarios/evalapp.h"
#include "scenarios/flight.h"
#include "util/rng.h"

namespace dedisys {
namespace {

using scenarios::EvalApp;
using scenarios::FlightBooking;

// ---------------------------------------------------------------------------
// Sim vs threaded backend equivalence
// ---------------------------------------------------------------------------

/// Everything a fault-free workload is allowed to observe: transaction
/// outcomes, constraint verdicts, the threat store and the final entity
/// state on every replica.  Timings may differ between backends; none of
/// this may.
struct WorkloadOutcome {
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t validations = 0;
  std::size_t violations = 0;
  std::size_t threat_identities = 0;
  /// "<object>@<node>" -> "v<version>:<value>" for every local replica.
  std::map<std::string, std::string> replicas;

  bool operator==(const WorkloadOutcome&) const = default;
};

WorkloadOutcome run_workload(RuntimeBackend backend) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.backend = backend;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  const std::vector<ObjectId> ids =
      EvalApp::create_entities(cluster.node(0), 4);

  WorkloadOutcome out;
  Rng rng(0xB0075EED);  // same seed on both backends -> same op sequence
  for (int i = 0; i < 60; ++i) {
    DedisysNode& invoker = cluster.node(rng.below(cfg.nodes));
    const ObjectId target = ids[rng.below(ids.size())];
    bool ok;
    switch (rng.below(4)) {
      case 0:
        ok = EvalApp::run_op(invoker, target, "setValue",
                             {Value{"v" + std::to_string(i)}});
        break;
      case 1:
        ok = EvalApp::run_op(invoker, target, "emptySatisfied");
        break;
      case 2:
        ok = EvalApp::run_op(invoker, target, "emptyViolated");
        break;
      default:
        ok = EvalApp::run_op(invoker, target, "emptyThreat");
        break;
    }
    ++(ok ? out.committed : out.aborted);
  }

  for (std::size_t n = 0; n < cfg.nodes; ++n) {
    DedisysNode& node = cluster.node(n);
    out.validations += node.ccmgr().stats().validations;
    out.violations += node.ccmgr().stats().violations;
    for (ObjectId id : ids) {
      if (!node.replication().has_local_replica(id)) continue;
      const Entity& e = node.replication().local_replica(id);
      out.replicas[to_string(id) + "@" + std::to_string(n)] =
          "v" + std::to_string(e.version()) + ":" + as_string(e.get("value"));
    }
  }
  out.threat_identities = cluster.threats().identity_count();
  return out;
}

TEST(RuntimeEquivalence, FaultFreeWorkloadMatchesAcrossBackends) {
  const WorkloadOutcome sim = run_workload(RuntimeBackend::Sim);
  const WorkloadOutcome threaded = run_workload(RuntimeBackend::Threaded);

  // The workload must have exercised something on both sides.
  EXPECT_GT(sim.committed, 0u);
  EXPECT_GT(sim.aborted, 0u);  // emptyViolated ops abort
  EXPECT_FALSE(sim.replicas.empty());

  EXPECT_EQ(sim.committed, threaded.committed);
  EXPECT_EQ(sim.aborted, threaded.aborted);
  EXPECT_EQ(sim.validations, threaded.validations);
  EXPECT_EQ(sim.violations, threaded.violations);
  EXPECT_EQ(sim.threat_identities, threaded.threat_identities);
  EXPECT_EQ(sim.replicas, threaded.replicas);
}

TEST(RuntimeEquivalence, SimBackendIsDeterministic) {
  const WorkloadOutcome a = run_workload(RuntimeBackend::Sim);
  const WorkloadOutcome b = run_workload(RuntimeBackend::Sim);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// FeatureFlags fan-out
// ---------------------------------------------------------------------------

TEST(FeatureFlags, PropagateFromClusterConfigToEveryLayer) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.flags.observability = true;
  cfg.flags.trace_capacity = 128;
  cfg.flags.validation_memo = true;
  Cluster cluster(cfg);

  EXPECT_TRUE(cluster.obs().enabled());
  EXPECT_EQ(cluster.obs().trace().capacity(), 128u);
  EXPECT_TRUE(cluster.node(0).ccmgr().validation_memo());
  EXPECT_TRUE(cluster.node(1).ccmgr().validation_memo());
}

TEST(FeatureFlags, ObservabilityIsForcedOffOnTheThreadedBackend) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.backend = RuntimeBackend::Threaded;
  cfg.flags.observability = true;  // ignored: the span stack is 1-threaded
  Cluster cluster(cfg);
  EXPECT_FALSE(cluster.obs().enabled());
}

// ---------------------------------------------------------------------------
// ThreadedRuntime unit behavior
// ---------------------------------------------------------------------------

std::vector<NodeId> two_nodes() { return {NodeId{0}, NodeId{1}}; }

TEST(ThreadedRuntimeUnit, RunOnExecutesOnTheTargetWorkerThread) {
  ThreadedRuntime rt(two_nodes(), CostModel{});
  std::thread::id main_id = std::this_thread::get_id();
  std::thread::id ran_on{};
  rt.run_on(NodeId{0}, [&] { ran_on = std::this_thread::get_id(); });
  EXPECT_NE(ran_on, std::thread::id{});
  EXPECT_NE(ran_on, main_id);
}

TEST(ThreadedRuntimeUnit, NestedCrossNodeCallbackDoesNotDeadlock) {
  // node0 -> node1 -> back to node0: the worker blocked in run_on must
  // keep serving its own mailbox (nested serve) or this hangs forever.
  ThreadedRuntime rt(two_nodes(), CostModel{});
  std::atomic<bool> reached{false};
  rt.run_on(NodeId{0}, [&] {
    rt.run_on(NodeId{1}, [&] {
      rt.run_on(NodeId{0}, [&] { reached = true; });
    });
  });
  EXPECT_TRUE(reached.load());
}

TEST(ThreadedRuntimeUnit, RunOnPropagatesExceptions) {
  ThreadedRuntime rt(two_nodes(), CostModel{});
  EXPECT_THROW(
      rt.run_on(NodeId{1}, [] { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(ThreadedRuntimeUnit, TimersFireInDeadlineOrderAndDrainWaits) {
  ThreadedRuntime rt(two_nodes(), CostModel{});
  std::mutex mu;
  std::vector<int> order;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(v);
  };
  rt.defer_in(sim_ms(20), [&] { push(3); });
  rt.defer_in(sim_ms(10), [&] { push(2); });
  rt.defer_in(0, [&] { push(1); });
  rt.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadedRuntimeUnit, NowAdvancesWithWallClock) {
  ThreadedRuntime rt(two_nodes(), CostModel{});
  const SimTime t0 = rt.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(rt.now(), t0);
  EXPECT_GE(t0, 0);
}

// ---------------------------------------------------------------------------
// Concurrent clients against a threaded cluster (kernel-lock smoke)
// ---------------------------------------------------------------------------

TEST(ThreadedCluster, ConcurrentClientsOnDisjointObjectsAllCommit) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.backend = RuntimeBackend::Threaded;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());

  std::vector<ObjectId> flights;
  for (int i = 0; i < 3; ++i) {
    flights.push_back(FlightBooking::create_flight(cluster.node(0), 1000));
  }

  constexpr int kSellsPerClient = 25;
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kSellsPerClient; ++i) {
        FlightBooking::sell(cluster.node(static_cast<std::size_t>(c)),
                            flights[static_cast<std::size_t>(c)], 1);
      }
    });
  }
  for (auto& t : clients) t.join();

  for (const ObjectId flight : flights) {
    EXPECT_EQ(FlightBooking::sold(cluster.node(0), flight), kSellsPerClient);
  }
}

}  // namespace
}  // namespace dedisys
