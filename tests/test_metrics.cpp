// Cluster metrics snapshots and multi-threat Web negotiation sequences.
#include <gtest/gtest.h>

#include "middleware/admin.h"
#include "middleware/metrics.h"
#include "middleware/obs_export.h"
#include "scenarios/evalapp.h"
#include "scenarios/flight.h"
#include "web/bridge.h"

namespace dedisys {
namespace {

using scenarios::AcceptAllNegotiation;
using scenarios::EvalApp;
using scenarios::FlightBooking;

TEST(Metrics, SnapshotAggregatesServiceCounters) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());

  const auto ids = EvalApp::create_entities(cluster.node(0), 5);
  for (int i = 0; i < 4; ++i) {
    EvalApp::run_op(cluster.node(0), ids[0], "emptySatisfied");
  }
  {
    TxScope tx(cluster.node(0).tx());
    cluster.node(0).invoke(tx.id(), ids[0], "setValue",
                           {Value{std::string{"x"}}});
    tx.commit();
  }

  const ClusterMetrics m = collect_metrics(cluster);
  EXPECT_EQ(m.live_objects, 5u);
  EXPECT_EQ(m.nodes.size(), 3u);
  EXPECT_EQ(m.stored_threat_identities, 0u);
  EXPECT_GT(m.sim_time, 0);
  // Node 0 (primary) validated the satisfied constraint four times.
  EXPECT_GE(m.nodes[0].validations, 4u);
  // One propagated update, applied by both backups.
  EXPECT_EQ(m.nodes[0].updates_propagated, 1u);
  EXPECT_EQ(m.nodes[1].backups_applied, 1u);
  EXPECT_EQ(m.nodes[2].backups_applied, 1u);
  EXPECT_EQ(m.total(&NodeMetrics::backups_applied), 2u);
  EXPECT_GT(m.total(&NodeMetrics::db_writes), 0u);
}

TEST(Metrics, DegradedModeVisibleInSnapshot) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  const auto ids = EvalApp::create_entities(cluster.node(0), 1);
  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  EvalApp::run_op_negotiated(cluster.node(0), ids[0], "emptyThreat",
                             std::make_shared<AcceptAllNegotiation>());

  const ClusterMetrics m = collect_metrics(cluster);
  EXPECT_EQ(m.nodes[0].mode, SystemMode::Degraded);
  EXPECT_EQ(m.stored_threat_identities, 1u);
  EXPECT_EQ(m.total(&NodeMetrics::threats_accepted), 1u);

  const std::string text = render_metrics(m);
  EXPECT_NE(text.find("threats: 1"), std::string::npos);
  EXPECT_NE(text.find("degraded"), std::string::npos);
}

TEST(Metrics, JsonExportMatchesSnapshot) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.flags.observability = true;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  const auto ids = EvalApp::create_entities(cluster.node(0), 2);
  cluster.inject(fault::split_indices({{0, 1}, {2}}));
  EvalApp::run_op_negotiated(cluster.node(0), ids[0], "emptyThreat",
                             std::make_shared<AcceptAllNegotiation>());

  const ClusterMetrics m = collect_metrics(cluster);
  AdminConsole admin(cluster);
  const obs::Json doc = obs::Json::parse(admin.metrics_json());
  const obs::Json& metrics = doc.at("metrics");
  EXPECT_EQ(static_cast<std::size_t>(metrics.at("sim_time_us").as_int()),
            static_cast<std::size_t>(m.sim_time));
  EXPECT_EQ(static_cast<std::size_t>(metrics.at("live_objects").as_int()),
            m.live_objects);
  EXPECT_EQ(
      static_cast<std::size_t>(metrics.at("stored_threat_identities").as_int()),
      m.stored_threat_identities);
  ASSERT_EQ(metrics.at("nodes").size(), m.nodes.size());
  for (std::size_t i = 0; i < m.nodes.size(); ++i) {
    const obs::Json& node = metrics.at("nodes").at(i);
    EXPECT_EQ(node.at("mode").as_string(), to_string(m.nodes[i].mode));
    EXPECT_EQ(static_cast<std::size_t>(node.at("validations").as_int()),
              m.nodes[i].validations);
    EXPECT_EQ(static_cast<std::size_t>(node.at("threats_accepted").as_int()),
              m.nodes[i].threats_accepted);
  }
  // The degraded-mode threat left its lifecycle in the exported trace.
  bool saw_accept = false;
  for (const obs::Json& e : doc.at("trace").at("events").items()) {
    if (e.at("kind").as_string() == "threat.accepted") saw_accept = true;
  }
  EXPECT_TRUE(saw_accept);
}

TEST(WebMultiThreat, TwoNegotiationRoundTripsInOneBusinessRequest) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints(), false,
                                      SatisfactionDegree::Satisfied);
  DedisysNode& node = cluster.node(0);
  const ObjectId f1 = FlightBooking::create_flight(node, 80);
  const ObjectId f2 = FlightBooking::create_flight(node, 80);
  cluster.inject(fault::split_indices({{0, 1}, {2}}));

  std::shared_ptr<web::WebNegotiationBridge> bridge;
  web::WebBusinessServlet servlet([&] {
    TxScope tx(node.tx());
    node.ccmgr().register_negotiation_handler(tx.id(), bridge);
    node.invoke(tx.id(), f1, "sellTickets", {Value{std::int64_t{1}}});
    node.invoke(tx.id(), f2, "sellTickets", {Value{std::int64_t{1}}});
    tx.commit();
    return "two bookings";
  });
  bridge = servlet.bridge();

  // First response carries the first threat; the decision response
  // carries the SECOND threat; only the final decision returns the result.
  web::HttpResponse r = servlet.handle(web::HttpRequest{"/business", {}});
  ASSERT_EQ(r.kind, "negotiation-request");
  r = servlet.handle(
      web::HttpRequest{"/negotiation-result", {{"accept", "true"}}});
  ASSERT_EQ(r.kind, "negotiation-request");
  r = servlet.handle(
      web::HttpRequest{"/negotiation-result", {{"accept", "true"}}});
  ASSERT_EQ(r.kind, "business-result");
  EXPECT_EQ(r.fields.at("result"), "two bookings");
  EXPECT_EQ(cluster.threats().identity_count(), 2u);
}

}  // namespace
}  // namespace dedisys
