#include <gtest/gtest.h>

#include <unordered_set>

#include "util/errors.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_clock.h"
#include "util/strings.h"

namespace dedisys {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(to_string(id), "<invalid>");
}

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
  EXPECT_LT(NodeId{3}, NodeId{4});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, ObjectId>);
  static_assert(!std::is_same_v<TxId, ThreatId>);
}

TEST(StrongId, HashableInUnorderedContainers) {
  std::unordered_set<ObjectId> set;
  set.insert(ObjectId{1});
  set.insert(ObjectId{2});
  set.insert(ObjectId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(sim_ms(5));
  EXPECT_EQ(clock.now(), 5000);
  clock.advance(-100);  // ignored
  EXPECT_EQ(clock.now(), 5000);
  clock.advance_to(4000);  // never backwards
  EXPECT_EQ(clock.now(), 5000);
  clock.advance_to(sim_sec(1));
  EXPECT_EQ(clock.now(), 1000000);
}

TEST(SimClock, UnitHelpers) {
  EXPECT_EQ(sim_us(7), 7);
  EXPECT_EQ(sim_ms(7), 7000);
  EXPECT_EQ(sim_sec(7), 7000000);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ","), "a,b,c");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Errors, HierarchyAndMessages) {
  ConstraintViolation cv("TicketConstraint");
  EXPECT_EQ(cv.constraint_name(), "TicketConstraint");
  EXPECT_NE(std::string(cv.what()).find("TicketConstraint"),
            std::string::npos);
  const DedisysError& base = cv;
  EXPECT_NE(std::string(base.what()).find("violated"), std::string::npos);

  ConsistencyThreatRejected rejected("C1");
  EXPECT_EQ(rejected.constraint_name(), "C1");
  EXPECT_THROW(throw ObjectUnreachable("x"), DedisysError);
  EXPECT_THROW(throw TxAborted("x"), DedisysError);
  EXPECT_THROW(throw ConfigError("x"), DedisysError);
}

}  // namespace
}  // namespace dedisys
