// Version-stamped validation memoization (docs/validation_memo.md):
// cache hits skip re-evaluation, every write path (local setter,
// replication apply, rollback restore, degraded-era writes surfacing at
// reconciliation) busts exactly the affected entries, and memo-on runs
// are observably equivalent to memo-off runs.  Also covers the
// constraint-repository query-cache counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "middleware/admin.h"
#include "middleware/cluster.h"
#include "middleware/metrics.h"
#include "objects/entity.h"
#include "scenarios/chaos.h"
#include "scenarios/flight.h"
#include "validation/memo.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;

// OCL form of the ticket-constraint: analyzable (read-set {soldTickets,
// seats}, no arguments) and therefore memo-eligible.
constexpr const char* kTicketDescriptor = R"(<constraints>
  <constraint name="TicketConstraint" type="HARD" priority="RELAXABLE"
              minSatisfactionDegree="POSSIBLY_SATISFIED">
    <ocl>self.soldTickets &lt;= self.seats</ocl>
    <context-class>Flight</context-class>
    <affected-methods>
      <affected-method>
        <objectMethod name="sellTickets">
          <objectClass>Flight</objectClass>
          <arguments><argument>int</argument></arguments>
        </objectMethod>
      </affected-method>
      <affected-method>
        <objectMethod name="cancelTickets">
          <objectClass>Flight</objectClass>
          <arguments><argument>int</argument></arguments>
        </objectMethod>
      </affected-method>
    </affected-methods>
  </constraint>
</constraints>)";

// Cross-object variant: the context flight is reached through a ticket's
// reference.  The analyzer classifies it CrossObject (not intra-object),
// so degraded-mode bookings yield possibly-satisfied threats — while the
// read-set is still just the context entity, keeping it memo-eligible.
constexpr const char* kRefDescriptor = R"(<constraints>
  <constraint name="RefTicketConstraint" type="HARD" priority="RELAXABLE"
              minSatisfactionDegree="POSSIBLY_SATISFIED">
    <ocl>self.soldTickets &lt;= self.seats</ocl>
    <context-class>Flight</context-class>
    <affected-methods>
      <affected-method>
        <context-preparation>
          <preparation-class>ReferenceIsContextObject</preparation-class>
          <params><param name="getter" value="getFlight"/></params>
        </context-preparation>
        <objectMethod name="setFlight">
          <objectClass>Ticket</objectClass>
          <arguments><argument>object</argument></arguments>
        </objectMethod>
      </affected-method>
    </affected-methods>
  </constraint>
</constraints>)";

class MemoTestBase : public ::testing::Test {
 protected:
  explicit MemoTestBase(std::size_t nodes)
      : cluster_(make_config(nodes)), admin_(cluster_) {
    FlightBooking::define_classes(cluster_.classes());
    admin_.deploy_constraints(kTicketDescriptor);
    flight_ = FlightBooking::create_flight(cluster_.node(0), 100);
  }

  static ClusterConfig make_config(std::size_t nodes) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.flags.validation_memo = true;
    cfg.flags.observability = true;
    return cfg;
  }

  Cluster cluster_;
  AdminConsole admin_;
  ObjectId flight_;
};

class MemoTest : public MemoTestBase {
 protected:
  MemoTest() : MemoTestBase(1) {}
};

class MemoClusterTest : public MemoTestBase {
 protected:
  MemoClusterTest() : MemoTestBase(3) {
    cluster_.classes().define("Ticket").define_property("flight", Value{},
                                                        "object");
    admin_.deploy_constraints(kRefDescriptor);
  }

  /// Books a ticket on `flight_`: the setFlight link triggers the
  /// cross-object RefTicketConstraint against the referenced flight.
  ObjectId book(DedisysNode& node) {
    TxScope tx(node.tx());
    const ObjectId ticket = node.create(tx.id(), "Ticket");
    node.invoke(tx.id(), ticket, "setFlight", {Value{flight_}});
    tx.commit();
    return ticket;
  }
};

TEST_F(MemoTest, HitSkipsReEvaluation) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);  // evaluates + stores
  auto& ccm = cluster_.node(0).ccmgr();
  EXPECT_GE(ccm.memo_stats().stores, 1u);
  const std::size_t validations = ccm.stats().validations;
  const std::size_t hits = ccm.memo_stats().hits;
  const auto violating =
      ccm.revalidate_for_objects("TicketConstraint", {flight_});
  EXPECT_TRUE(violating.empty());
  EXPECT_EQ(ccm.stats().validations, validations);  // no re-evaluation
  EXPECT_EQ(ccm.memo_stats().hits, hits + 1);
}

TEST_F(MemoTest, LocalWriteInvalidatesTheEntry) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  auto& ccm = cluster_.node(0).ccmgr();
  const std::size_t invalidations = ccm.memo_stats().invalidations;
  // The next sell writes the entity before its invariant validates: the
  // cached fingerprint no longer matches (MissStale) and is replaced.
  FlightBooking::sell(cluster_.node(0), flight_, 5);
  EXPECT_EQ(ccm.memo_stats().invalidations, invalidations + 1);
  const std::size_t hits = ccm.memo_stats().hits;
  (void)ccm.revalidate_for_objects("TicketConstraint", {flight_});
  EXPECT_EQ(ccm.memo_stats().hits, hits + 1);  // re-warmed by the store
}

TEST_F(MemoTest, UnrelatedEntityWriteKeepsTheEntry) {
  const ObjectId other = FlightBooking::create_flight(cluster_.node(0), 50);
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  auto& ccm = cluster_.node(0).ccmgr();
  const std::size_t invalidations = ccm.memo_stats().invalidations;
  FlightBooking::sell(cluster_.node(0), other, 5);
  const std::size_t hits = ccm.memo_stats().hits;
  (void)ccm.revalidate_for_objects("TicketConstraint", {flight_});
  EXPECT_EQ(ccm.memo_stats().hits, hits + 1);
  EXPECT_EQ(ccm.memo_stats().invalidations, invalidations);
}

TEST_F(MemoTest, RollbackRestoreInvalidatesDespiteIdenticalState) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  DedisysNode& n = cluster_.node(0);
  auto& ccm = n.ccmgr();
  const std::size_t invalidations = ccm.memo_stats().invalidations;
  {
    TxScope tx(n.tx());
    n.invoke(tx.id(), flight_, "sellTickets", {Value{std::int64_t{5}}});
    tx.rollback();  // Entity::restore() back to the pre-tx state
  }
  EXPECT_EQ(FlightBooking::sold(n, flight_), 10);
  // The attribute values equal the cached state again, but the write
  // stamp moved (write + undo restore): reusing the entry would be
  // unsound in general, so it must read as stale, never as a hit.
  const std::size_t hits = ccm.memo_stats().hits;
  (void)ccm.revalidate_for_objects("TicketConstraint", {flight_});
  EXPECT_EQ(ccm.memo_stats().hits, hits);
  EXPECT_GE(ccm.memo_stats().invalidations, invalidations + 1);
}

TEST_F(MemoTest, TogglingMemoOffClearsAndBypasses) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  auto& ccm = cluster_.node(0).ccmgr();
  EXPECT_TRUE(ccm.validation_memo());
  ccm.set_validation_memo(false);
  const std::size_t hits = ccm.memo_stats().hits;
  const std::size_t validations = ccm.stats().validations;
  (void)ccm.revalidate_for_objects("TicketConstraint", {flight_});
  EXPECT_EQ(ccm.memo_stats().hits, hits);
  EXPECT_EQ(ccm.stats().validations, validations + 1);
}

TEST_F(MemoTest, DestroyDropsEntriesOfTheObject) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  DedisysNode& n = cluster_.node(0);
  EXPECT_GE(n.ccmgr().memo_stats().stores, 1u);
  {
    TxScope tx(n.tx());
    n.destroy(tx.id(), flight_);
    tx.commit();
  }
  EXPECT_GE(n.ccmgr().memo_stats().evictions, 1u);
}

TEST_F(MemoTest, TraceRecordsHitsAndInvalidations) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  auto& ccm = cluster_.node(0).ccmgr();
  (void)ccm.revalidate_for_objects("TicketConstraint", {flight_});  // hit
  FlightBooking::sell(cluster_.node(0), flight_, 5);  // stale miss
  const auto& trace = cluster_.obs().trace();
  EXPECT_GE(trace.events_of(obs::TraceEventKind::ValidationMemoHit).size(),
            1u);
  EXPECT_GE(
      trace.events_of(obs::TraceEventKind::ValidationMemoInvalidate).size(),
      1u);
}

TEST_F(MemoTest, MetricsExposeMemoAndLookupCacheCounters) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  (void)cluster_.node(0).ccmgr().revalidate_for_objects("TicketConstraint",
                                                        {flight_});
  const ClusterMetrics m = collect_metrics(cluster_);
  EXPECT_GE(m.total(&NodeMetrics::memo_hits), 1u);
  EXPECT_GE(m.total(&NodeMetrics::memo_stores), 1u);
  EXPECT_GE(m.lookup_searches, 1u);
  EXPECT_EQ(m.lookup_searches, m.lookup_cache_hits + m.lookup_cache_misses);
  const std::string json = admin_.metrics_json();
  EXPECT_NE(json.find("\"memo\""), std::string::npos);
  EXPECT_NE(json.find("\"lookup_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"memo_hits\""), std::string::npos);
}

TEST_F(MemoClusterTest, ReplicatedWriteInvalidatesBackupEntries) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  auto& backup = cluster_.node(1).ccmgr();
  // Warm the backup node's cache against its local replica.
  EXPECT_TRUE(
      backup.revalidate_for_objects("TicketConstraint", {flight_}).empty());
  EXPECT_GE(backup.memo_stats().stores, 1u);
  const std::size_t hits = backup.memo_stats().hits;
  const std::size_t invalidations = backup.memo_stats().invalidations;
  // A write through the primary propagates to the backup replica, whose
  // write stamp advances — the backup's cached entry must not survive.
  FlightBooking::sell(cluster_.node(0), flight_, 5);
  (void)backup.revalidate_for_objects("TicketConstraint", {flight_});
  EXPECT_EQ(backup.memo_stats().hits, hits);
  EXPECT_EQ(backup.memo_stats().invalidations, invalidations + 1);
}

TEST_F(MemoClusterTest, DegradedValidationsBypassTheMemo) {
  FlightBooking::sell(cluster_.node(0), flight_, 10);
  auto& ccm = cluster_.node(0).ccmgr();
  const auto before = ccm.memo_stats();  // copy
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  // LCC semantics: degrees depend on partition state, so degraded-mode
  // validations neither consult nor fill the cache.
  FlightBooking::sell(cluster_.node(0), flight_, 5);
  EXPECT_EQ(ccm.memo_stats().hits, before.hits);
  EXPECT_EQ(ccm.memo_stats().misses, before.misses);
  EXPECT_EQ(ccm.memo_stats().stores, before.stores);
}

TEST_F(MemoClusterTest, ReconcileBatchesViaWarmMemoEntries) {
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  // The referenced flight is possibly stale (its node-2 replica is out of
  // view), so the booking commits with an accepted threat.
  book(cluster_.node(0));
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
  cluster_.inject(fault::Heal{});
  auto& ccm = cluster_.node(0).ccmgr();
  // Healthy again: this revalidation evaluates once and warms the cache.
  EXPECT_TRUE(
      ccm.revalidate_for_objects("RefTicketConstraint", {flight_}).empty());
  // Constraint reconciliation re-evaluates the stored threat through the
  // same (constraint, fingerprint) key and takes the cached outcome.
  const auto report = ccm.reconcile(nullptr);
  EXPECT_EQ(report.reevaluated, 1u);
  EXPECT_EQ(report.removed_satisfied, 1u);
  EXPECT_EQ(report.batched, 1u);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(MemoClusterTest, DegradedWritesSurfaceAsStaleAtReconciliation) {
  book(cluster_.node(0));  // healthy: warms (RefTicketConstraint, flight)
  auto& ccm = cluster_.node(0).ccmgr();
  EXPECT_GE(ccm.memo_stats().stores, 1u);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 5);  // flight stamp moves
  book(cluster_.node(0));  // degraded booking: stored threat
  cluster_.inject(fault::Heal{});
  const std::size_t invalidations = ccm.memo_stats().invalidations;
  const auto report = cluster_.reconcile();
  EXPECT_EQ(report.constraints.removed_satisfied, 1u);
  // The pre-partition entry was fingerprinted before the degraded-era
  // sell; reconciliation's re-evaluation must see it as stale, not reuse
  // the cached outcome.
  EXPECT_GE(ccm.memo_stats().invalidations, invalidations + 1);
}

TEST(MemoChaosEquivalence, SeededRunsIdenticalWithMemoOnAndOff) {
  for (std::uint64_t seed : {1u, 7u}) {
    scenarios::ChaosOptions off;
    off.seed = seed;
    off.ops = 40;
    off.fault_events = 8;
    off.horizon = sim_ms(250);
    scenarios::ChaosOptions on = off;
    on.flags.validation_memo = true;
    const scenarios::ChaosResult a = scenarios::run_chaos(off);
    const scenarios::ChaosResult b = scenarios::run_chaos(on);
    EXPECT_TRUE(a.invariants_ok()) << "seed " << seed;
    EXPECT_TRUE(b.invariants_ok()) << "seed " << seed;
    EXPECT_EQ(a.committed, b.committed) << "seed " << seed;
    EXPECT_EQ(a.aborted, b.aborted) << "seed " << seed;
    EXPECT_EQ(a.timeline, b.timeline) << "seed " << seed;
    EXPECT_EQ(a.metrics_json, b.metrics_json) << "seed " << seed;
  }
}

TEST(ValidationMemoUnit, LookupStoreAndTargetedInvalidation) {
  validation::ValidationMemo memo;
  const ObjectId obj{7};
  auto looked = memo.lookup("C", obj, 1);
  EXPECT_EQ(looked.outcome, validation::ValidationMemo::Outcome::MissCold);
  memo.store("C", obj, 1, SatisfactionDegree::Violated);
  looked = memo.lookup("C", obj, 1);
  EXPECT_EQ(looked.outcome, validation::ValidationMemo::Outcome::Hit);
  EXPECT_EQ(looked.degree, SatisfactionDegree::Violated);
  looked = memo.lookup("C", obj, 2);
  EXPECT_EQ(looked.outcome, validation::ValidationMemo::Outcome::MissStale);
  EXPECT_EQ(memo.invalidate_object(obj), 1u);
  EXPECT_EQ(memo.size(), 0u);

  memo.store("C", obj, 2, SatisfactionDegree::Satisfied);
  memo.store("D", obj, 2, SatisfactionDegree::Satisfied);
  memo.store("C", ObjectId{17}, 2, SatisfactionDegree::Satisfied);
  EXPECT_EQ(memo.invalidate_constraint("C"), 2u);
  EXPECT_EQ(memo.size(), 1u);
  // Object 7 must not suffix-match object 17's key.
  EXPECT_EQ(memo.invalidate_object(ObjectId{7}), 1u);
  EXPECT_EQ(memo.invalidate_object(ObjectId{7}), 0u);
}

TEST(EntityWriteStamp, SetAndRestoreAlwaysAdvance) {
  ClassRegistry classes;
  ClassDescriptor& cls = classes.define("Stamped");
  cls.define_property("v", Value{std::int64_t{0}}, "int");
  Entity entity(ObjectId{1}, cls);
  const std::uint64_t initial = entity.write_stamp();
  const EntitySnapshot snap = entity.snapshot();
  entity.set("v", Value{std::int64_t{1}});
  const std::uint64_t after_set = entity.write_stamp();
  EXPECT_GT(after_set, initial);
  entity.restore(snap);  // back to the original attribute values...
  EXPECT_GT(entity.write_stamp(), after_set);  // ...yet the stamp advances
  EXPECT_EQ(entity.version(), snap.version);
}

TEST(RepositoryCaching, SetCachingIsIdempotentAndCountersTrack) {
  ConstraintRepository repo;
  ConstraintRegistration reg;
  reg.constraint = std::make_shared<FunctionConstraint>(
      "C", ConstraintType::HardInvariant, ConstraintPriority::Tradeable,
      [](ConstraintValidationContext&) { return true; });
  reg.affected_methods.push_back(AffectedMethod{
      "A", MethodSignature{"m", {}},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  repo.register_constraint(std::move(reg));

  (void)repo.lookup("A", {"m", {}}, ConstraintType::HardInvariant);  // miss
  (void)repo.lookup("A", {"m", {}}, ConstraintType::HardInvariant);  // hit
  EXPECT_EQ(repo.cache_miss_count(), 1u);
  EXPECT_EQ(repo.cache_hit_count(), 1u);

  repo.set_caching(true);  // idempotent: the warm cache survives
  (void)repo.lookup("A", {"m", {}}, ConstraintType::HardInvariant);
  EXPECT_EQ(repo.cache_hit_count(), 2u);
  EXPECT_EQ(repo.cache_miss_count(), 1u);

  repo.set_caching(false);  // a real transition still drops the cache
  (void)repo.lookup("A", {"m", {}}, ConstraintType::HardInvariant);
  EXPECT_EQ(repo.cache_hit_count(), 2u);  // naive path: counters untouched
  EXPECT_EQ(repo.cache_miss_count(), 1u);

  repo.set_caching(true);
  (void)repo.lookup("A", {"m", {}}, ConstraintType::HardInvariant);
  EXPECT_EQ(repo.cache_miss_count(), 2u);  // the cache had been invalidated
  EXPECT_EQ(repo.search_count(), 5u);
}

}  // namespace
}  // namespace dedisys
