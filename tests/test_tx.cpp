#include <gtest/gtest.h>

#include "runtime/sim_runtime.h"
#include "tx/tx_manager.h"

namespace dedisys {
namespace {

class RecordingResource final : public TransactionalResource {
 public:
  explicit RecordingResource(std::string name, Vote vote = Vote::Commit)
      : name_(std::move(name)), vote_(vote) {}

  [[nodiscard]] std::string name() const override { return name_; }
  Vote prepare(TxId) override {
    events.push_back(name_ + ".prepare");
    return vote_;
  }
  void commit(TxId) override { events.push_back(name_ + ".commit"); }
  void rollback(TxId) override { events.push_back(name_ + ".rollback"); }

  std::vector<std::string> events;

 private:
  std::string name_;
  Vote vote_;
};

class TxTest : public ::testing::Test {
 protected:
  TxTest() : tm_(rt_) {}

  SimClock clock_;
  CostModel cost_;
  SimRuntime rt_{clock_, cost_};
  TransactionManager tm_;
};

TEST_F(TxTest, CommitRunsTwoPhases) {
  RecordingResource r("r");
  const TxId tx = tm_.begin();
  tm_.enlist(tx, &r);
  tm_.commit(tx);
  EXPECT_EQ(r.events, (std::vector<std::string>{"r.prepare", "r.commit"}));
  EXPECT_EQ(tm_.get(tx).status(), TxStatus::Committed);
}

TEST_F(TxTest, ResourceVetoAbortsAndRollsBack) {
  RecordingResource good("good");
  RecordingResource bad("bad", Vote::Rollback);
  const TxId tx = tm_.begin();
  tm_.enlist(tx, &good);
  tm_.enlist(tx, &bad);
  EXPECT_THROW(tm_.commit(tx), TxAborted);
  EXPECT_EQ(tm_.get(tx).status(), TxStatus::RolledBack);
  // No resource may see commit after a veto.
  EXPECT_EQ(good.events,
            (std::vector<std::string>{"good.prepare", "good.rollback"}));
  EXPECT_EQ(bad.events,
            (std::vector<std::string>{"bad.prepare", "bad.rollback"}));
}

TEST_F(TxTest, DuplicateEnlistmentIsIdempotent) {
  RecordingResource r("r");
  const TxId tx = tm_.begin();
  tm_.enlist(tx, &r);
  tm_.enlist(tx, &r);
  tm_.commit(tx);
  EXPECT_EQ(r.events.size(), 2u);  // one prepare + one commit
}

TEST_F(TxTest, RollbackOnlyPreventsCommit) {
  const TxId tx = tm_.begin();
  tm_.set_rollback_only(tx);
  EXPECT_TRUE(tm_.is_rollback_only(tx));
  EXPECT_THROW(tm_.commit(tx), TxAborted);
  EXPECT_EQ(tm_.get(tx).status(), TxStatus::RolledBack);
}

TEST_F(TxTest, UndoActionsRunInReverseOrderOnRollback) {
  std::vector<int> order;
  const TxId tx = tm_.begin();
  tm_.on_rollback(tx, [&] { order.push_back(1); });
  tm_.on_rollback(tx, [&] { order.push_back(2); });
  tm_.on_rollback(tx, [&] { order.push_back(3); });
  tm_.rollback(tx);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST_F(TxTest, UndoActionsDoNotRunOnCommit) {
  bool undone = false;
  const TxId tx = tm_.begin();
  tm_.on_rollback(tx, [&] { undone = true; });
  tm_.commit(tx);
  EXPECT_FALSE(undone);
}

TEST_F(TxTest, PostCommitActionsRunOnlyAfterCommit) {
  int ran = 0;
  const TxId tx = tm_.begin();
  tm_.after_commit(tx, [&] { ++ran; });
  tm_.commit(tx);
  EXPECT_EQ(ran, 1);

  const TxId tx2 = tm_.begin();
  tm_.after_commit(tx2, [&] { ++ran; });
  tm_.rollback(tx2);
  EXPECT_EQ(ran, 1);
}

TEST_F(TxTest, ExclusiveLocksConflictAcrossTransactions) {
  const TxId a = tm_.begin();
  const TxId b = tm_.begin();
  tm_.lock(a, ObjectId{1});
  tm_.lock(a, ObjectId{1});  // re-entrant for the holder
  EXPECT_THROW(tm_.lock(b, ObjectId{1}), TxAborted);
  EXPECT_TRUE(tm_.is_locked_by_other(b, ObjectId{1}));
  EXPECT_FALSE(tm_.is_locked_by_other(a, ObjectId{1}));
}

TEST_F(TxTest, LocksReleasedOnCompletion) {
  const TxId a = tm_.begin();
  tm_.lock(a, ObjectId{1});
  tm_.commit(a);
  const TxId b = tm_.begin();
  EXPECT_NO_THROW(tm_.lock(b, ObjectId{1}));
  tm_.rollback(b);
  const TxId c = tm_.begin();
  EXPECT_NO_THROW(tm_.lock(c, ObjectId{1}));
}

TEST_F(TxTest, CommittingTwiceThrows) {
  const TxId tx = tm_.begin();
  tm_.commit(tx);
  EXPECT_THROW(tm_.commit(tx), TxAborted);
}

TEST_F(TxTest, RollbackAfterCompletionIsNoOp) {
  const TxId tx = tm_.begin();
  tm_.commit(tx);
  EXPECT_NO_THROW(tm_.rollback(tx));
  EXPECT_EQ(tm_.get(tx).status(), TxStatus::Committed);
}

TEST_F(TxTest, UnknownTransactionThrows) {
  EXPECT_THROW((void)tm_.get(TxId{999}), TxAborted);
  EXPECT_FALSE(tm_.exists(TxId{999}));
}

TEST_F(TxTest, CommitChargesPerResource) {
  RecordingResource r1("a");
  RecordingResource r2("b");
  const TxId tx = tm_.begin();
  tm_.enlist(tx, &r1);
  tm_.enlist(tx, &r2);
  const SimTime t0 = clock_.now();
  tm_.commit(tx);
  // 2 resources x (prepare + commit) rounds.
  EXPECT_EQ(clock_.now() - t0, 4 * cost_.tx_commit_per_resource);
}

TEST_F(TxTest, TxScopeRollsBackWhenNotCommitted) {
  bool undone = false;
  {
    TxScope scope(tm_);
    tm_.on_rollback(scope.id(), [&] { undone = true; });
  }
  EXPECT_TRUE(undone);
}

TEST_F(TxTest, TxScopeCommitSticks) {
  TxId id;
  {
    TxScope scope(tm_);
    id = scope.id();
    scope.commit();
  }
  EXPECT_EQ(tm_.get(id).status(), TxStatus::Committed);
}

TEST_F(TxTest, ResourceVetoDuringPrepareStillRunsUndoActions) {
  RecordingResource bad("bad", Vote::Rollback);
  bool undone = false;
  const TxId tx = tm_.begin();
  tm_.enlist(tx, &bad);
  tm_.on_rollback(tx, [&] { undone = true; });
  EXPECT_THROW(tm_.commit(tx), TxAborted);
  EXPECT_TRUE(undone);
}

// -- coordinator crash between prepare and commit (presumed abort) -----------

TEST_F(TxTest, CoordinatorCrashAfterPrepareLeavesTxInDoubt) {
  RecordingResource r("r");
  const TxId tx = tm_.begin();
  tm_.enlist(tx, &r);
  tm_.lock(tx, ObjectId{7});
  tm_.set_crash_point([tx](TxId id) { return id == tx; });
  EXPECT_THROW(tm_.commit(tx), CoordinatorCrashed);
  // Phase 1 completed, phase 2 never ran: the resource is prepared but saw
  // neither commit nor rollback, and the lock is still held.
  EXPECT_EQ(r.events, (std::vector<std::string>{"r.prepare"}));
  EXPECT_EQ(tm_.get(tx).status(), TxStatus::InDoubt);
  EXPECT_EQ(tm_.in_doubt_count(), 1u);
  const TxId other = tm_.begin();
  EXPECT_THROW(tm_.lock(other, ObjectId{7}), TxAborted);
}

TEST_F(TxTest, RecoverInDoubtPresumesAbortAndReleasesEverything) {
  RecordingResource r("r");
  bool undone = false;
  const TxId tx = tm_.begin();
  tm_.enlist(tx, &r);
  tm_.lock(tx, ObjectId{7});
  tm_.on_rollback(tx, [&] { undone = true; });
  tm_.set_crash_point([tx](TxId id) { return id == tx; });
  EXPECT_THROW(tm_.commit(tx), CoordinatorCrashed);
  tm_.set_crash_point(nullptr);  // the restarted coordinator doesn't crash

  EXPECT_EQ(tm_.recover_in_doubt(), 1u);
  EXPECT_EQ(tm_.in_doubt_count(), 0u);
  EXPECT_EQ(tm_.get(tx).status(), TxStatus::RolledBack);
  EXPECT_EQ(tm_.stats().presumed_aborts, 1u);
  // No dangling prepared resource: the presumed abort rolled it back and
  // ran the undo actions.
  EXPECT_EQ(r.events, (std::vector<std::string>{"r.prepare", "r.rollback"}));
  EXPECT_TRUE(undone);

  // The retried transaction acquires the same lock and commits.
  RecordingResource retry("retry");
  const TxId tx2 = tm_.begin();
  tm_.enlist(tx2, &retry);
  EXPECT_NO_THROW(tm_.lock(tx2, ObjectId{7}));
  tm_.commit(tx2);
  EXPECT_EQ(tm_.get(tx2).status(), TxStatus::Committed);
  EXPECT_EQ(retry.events,
            (std::vector<std::string>{"retry.prepare", "retry.commit"}));
}

TEST_F(TxTest, RecoverInDoubtIgnoresHealthyTransactions) {
  const TxId committed = tm_.begin();
  tm_.commit(committed);
  const TxId open = tm_.begin();
  EXPECT_EQ(tm_.recover_in_doubt(), 0u);
  EXPECT_EQ(tm_.get(committed).status(), TxStatus::Committed);
  EXPECT_EQ(tm_.get(open).status(), TxStatus::Active);
}

}  // namespace
}  // namespace dedisys
