// Runtime OCL constraints: design-phase expressions (Fig. 1.6) loaded from
// XML descriptors and enforced by the middleware without hand-written
// validate() bodies.
#include <gtest/gtest.h>

#include "constraints/config.h"
#include "constraints/ocl_constraint.h"
#include "middleware/cluster.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;

constexpr const char* kDescriptor = R"(<constraints>
  <constraint name="TicketConstraint" type="HARD" priority="RELAXABLE"
              contextObject="Y" minSatisfactionDegree="POSSIBLY_SATISFIED">
    <ocl>self.soldTickets &lt;= self.seats</ocl>
    <context-class>Flight</context-class>
    <affected-methods>
      <affected-method>
        <objectMethod name="sellTickets">
          <objectClass>Flight</objectClass>
          <arguments><argument>int</argument></arguments>
        </objectMethod>
      </affected-method>
      <affected-method>
        <objectMethod name="cancelTickets">
          <objectClass>Flight</objectClass>
          <arguments><argument>int</argument></arguments>
        </objectMethod>
      </affected-method>
    </affected-methods>
  </constraint>
  <constraint name="SellCountPositive" type="PRE" priority="CRITICAL">
    <ocl>arg0 &gt; 0</ocl>
    <affected-methods>
      <affected-method>
        <objectMethod name="sellTickets">
          <objectClass>Flight</objectClass>
          <arguments><argument>int</argument></arguments>
        </objectMethod>
      </affected-method>
    </affected-methods>
  </constraint>
</constraints>)";

class OclRuntimeTest : public ::testing::Test {
 protected:
  OclRuntimeTest() : cluster_(make_config()) {
    FlightBooking::define_classes(cluster_.classes());
    ConstraintFactory empty_factory;
    loaded_ = load_constraints(kDescriptor, empty_factory,
                               cluster_.constraints());
    flight_ = FlightBooking::create_flight(cluster_.node(0), 80);
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  Cluster cluster_;
  std::size_t loaded_ = 0;
  ObjectId flight_;
};

TEST_F(OclRuntimeTest, DescriptorLoadsWithoutFactoryClasses) {
  EXPECT_EQ(loaded_, 2u);
  auto* reg = cluster_.constraints().registration("TicketConstraint");
  ASSERT_NE(reg, nullptr);
  auto* ocl = dynamic_cast<OclConstraint*>(reg->constraint.get());
  ASSERT_NE(ocl, nullptr);
  EXPECT_EQ(ocl->expression(), "self.soldTickets <= self.seats");
}

TEST_F(OclRuntimeTest, OclInvariantEnforcedInHealthyMode) {
  FlightBooking::sell(cluster_.node(0), flight_, 80);
  EXPECT_THROW(FlightBooking::sell(cluster_.node(0), flight_, 1),
               ConstraintViolation);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 80);
}

TEST_F(OclRuntimeTest, OclPreconditionChecksArguments) {
  EXPECT_THROW(FlightBooking::sell(cluster_.node(0), flight_, -1),
               ConstraintViolation);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 0);
}

TEST_F(OclRuntimeTest, OclConstraintParticipatesInThreatHandling) {
  FlightBooking::sell(cluster_.node(0), flight_, 70);
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  // Degraded mode: the OCL invariant becomes a possibly-satisfied threat,
  // accepted by the declared minimum satisfaction degree.
  EXPECT_NO_THROW(FlightBooking::sell(cluster_.node(0), flight_, 5));
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);
  cluster_.inject(fault::Heal{});
  const auto report = cluster_.reconcile();
  EXPECT_EQ(report.constraints.removed_satisfied, 1u);
}

TEST_F(OclRuntimeTest, MalformedOclRejectedAtDeployment) {
  ConstraintFactory empty;
  ConstraintRepository repo;
  EXPECT_THROW(load_constraints(R"(<constraints>
      <constraint name="Bad" type="HARD"><ocl>self.</ocl></constraint>
    </constraints>)",
                                empty, repo),
               ConfigError);
}

TEST_F(OclRuntimeTest, StringAndImpliesExpressionsInDescriptors) {
  // ATS-style rule expressed purely in OCL: a "Signal" component kind
  // requires a non-empty affected component.
  ConstraintFactory empty;
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cl(cfg);
  ClassDescriptor& report = cl.classes().define("Report");
  report.define_property("componentKind", Value{std::string{}}, "string");
  report.define_property("affectedComponent", Value{std::string{}}, "string");
  load_constraints(R"(<constraints>
      <constraint name="KindNeedsComponent" type="HARD" priority="CRITICAL">
        <ocl>self.componentKind = "Signal" implies self.affectedComponent &lt;&gt; ""</ocl>
        <context-class>Report</context-class>
        <affected-methods>
          <affected-method>
            <objectMethod name="setComponentKind">
              <objectClass>Report</objectClass>
              <arguments><argument>string</argument></arguments>
            </objectMethod>
          </affected-method>
        </affected-methods>
      </constraint>
    </constraints>)",
                   empty, cl.constraints());

  DedisysNode& n = cl.node(0);
  TxScope tx(n.tx());
  const ObjectId r = n.create(tx.id(), "Report");
  // Kind "Power" needs no component (the implication is vacuous).
  EXPECT_NO_THROW(n.invoke(tx.id(), r, "setComponentKind",
                           {Value{std::string{"Power"}}}));
  // Kind "Signal" without a component violates the rule.
  EXPECT_THROW(n.invoke(tx.id(), r, "setComponentKind",
                        {Value{std::string{"Signal"}}}),
               ConstraintViolation);
}

TEST(EntityOclEnv, ConvertsScalarsAndRejectsReferences) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  ClassDescriptor& cls = cluster.classes().define("Mixed");
  cls.define_property("count", Value{std::int64_t{3}}, "int");
  cls.define_property("rate", Value{2.5}, "double");
  cls.define_property("label", Value{std::string{"x"}}, "string");
  cls.define_property("flag", Value{true}, "bool");
  cls.define_property("ref", Value{ObjectId{1}}, "object");

  DedisysNode& n = cluster.node(0);
  TxScope tx(n.tx());
  const ObjectId id = n.create(tx.id(), "Mixed");
  tx.commit();

  ConstraintValidationContext ctx(n.accessor(), n.id(), TxId{});
  ctx.set_context_object(id);
  EntityOclEnv env(ctx);
  EXPECT_EQ(ocl_num(env.attribute("count")), 3.0);
  EXPECT_EQ(ocl_num(env.attribute("rate")), 2.5);
  EXPECT_EQ(ocl_num(env.attribute("flag")), 1.0);
  EXPECT_EQ(std::get<std::string>(env.attribute("label")), "x");
  EXPECT_THROW((void)env.attribute("ref"), DedisysError);
  EXPECT_THROW((void)env.argument(0), DedisysError);
}

}  // namespace
}  // namespace dedisys
