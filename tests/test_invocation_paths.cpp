// Invocation-path details: interception of nested (internal) calls
// (Section 4.2.4 call #7), remote reads, routing, locks and cost
// accounting along the pipeline.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/dtms.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::Dtms;
using scenarios::FlightBooking;

TEST(NestedInterception, InternalCallsTriggerConstraintChecks) {
  // Section 4.2.4: internal invocations bypass the container proxy, so
  // AOP-style interception must still deliver them to the CCMgr.  The
  // DTMS retune() updates its peer via a nested call; the constraint on
  // setFrequency must fire for that nested call too.
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  Dtms::define_classes(cluster.classes());
  Dtms::register_constraints(cluster.constraints());
  const auto channel = Dtms::create_channel(cluster, 0, 1, 100);

  DedisysNode& a = cluster.node(0);
  const std::size_t before = a.ccmgr().stats().validations +
                             cluster.node(1).ccmgr().stats().validations;
  {
    TxScope tx(a.tx());
    a.invoke(tx.id(), channel.endpoint_a, "retune",
             {Value{std::int64_t{200}}});
    tx.commit();
  }
  const std::size_t after = a.ccmgr().stats().validations +
                            cluster.node(1).ccmgr().stats().validations;
  // Two validations: the nested setFrequency on the peer AND the outer
  // retune on the called endpoint.
  EXPECT_EQ(after - before, 2u);
}

TEST(RemoteReads, ChargeRpcRoundTripsAndReturnPeerState) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  Dtms::define_classes(cluster.classes());
  Dtms::register_constraints(cluster.constraints());
  const auto channel = Dtms::create_channel(cluster, 0, 1, 118000);

  // Node 0 has no replica of endpoint B: reading it through the accessor
  // is a remote read that must advance the clock by an RPC round trip.
  DedisysNode& a = cluster.node(0);
  ASSERT_FALSE(a.replication().has_local_replica(channel.endpoint_b));
  const SimTime t0 = cluster.sim().clock.now();
  const Entity& peer = a.accessor().read(channel.endpoint_b);
  EXPECT_EQ(as_int(peer.get("frequency")), 118000);
  EXPECT_EQ(cluster.sim().clock.now() - t0, 2 * cfg.cost.rpc_latency);
}

TEST(Routing, WriteLocksAreHeldUntilTransactionEnd) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  DedisysNode& n = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(n, 100);

  TxScope tx1(n.tx());
  n.invoke(tx1.id(), flight, "sellTickets", {Value{std::int64_t{1}}});
  // A concurrent transaction conflicts on the same entity-bean lock.
  {
    TxScope tx2(n.tx());
    EXPECT_THROW(
        n.invoke(tx2.id(), flight, "sellTickets", {Value{std::int64_t{1}}}),
        TxAborted);
  }
  tx1.commit();
  // After commit the lock is free again.
  EXPECT_NO_THROW(FlightBooking::sell(n, flight, 1));
}

TEST(Routing, ReadsDoNotTakeWriteLocks) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  DedisysNode& n = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(n, 100);

  TxScope tx1(n.tx());
  n.invoke(tx1.id(), flight, "sellTickets", {Value{std::int64_t{1}}});
  TxScope tx2(n.tx());
  EXPECT_NO_THROW(n.invoke(tx2.id(), flight, "getSoldTickets"));
  tx2.commit();
  tx1.commit();
}

TEST(Routing, SimulatedTimeAdvancesMonotonicallyAcrossOperations) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  DedisysNode& n = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(n, 100);

  SimTime last = cluster.sim().clock.now();
  for (int i = 0; i < 10; ++i) {
    FlightBooking::sell(n, flight, 1);
    EXPECT_GT(cluster.sim().clock.now(), last);
    last = cluster.sim().clock.now();
  }
}

TEST(Routing, RolledBackWriteRestoresAllReplicas) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  DedisysNode& n = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(n, 100);
  FlightBooking::sell(n, flight, 10);

  {
    TxScope tx(n.tx());
    n.invoke(tx.id(), flight, "sellTickets", {Value{std::int64_t{7}}});
    // Update already propagated synchronously...
    EXPECT_EQ(as_int(cluster.node(2)
                         .replication()
                         .local_replica(flight)
                         .get("soldTickets")),
              17);
    tx.rollback();
  }
  // ... and the rollback restored every replica.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(as_int(cluster.node(i)
                         .replication()
                         .local_replica(flight)
                         .get("soldTickets")),
              10)
        << "node " << i;
  }
}

}  // namespace
}  // namespace dedisys
