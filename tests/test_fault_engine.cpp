#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault_engine.h"
#include "sim/fault_plan.h"
#include "sim/network.h"

namespace dedisys {
namespace {

class FaultEngineTest : public ::testing::Test {
 protected:
  FaultEngineTest() : net_(clock_, cost_) {
    for (std::size_t i = 0; i < 3; ++i) net_.add_node(NodeId{i});
  }

  SimClock clock_;
  CostModel cost_;
  SimNetwork net_;
};

TEST_F(FaultEngineTest, TypedApplyReturnsPreviousTopology) {
  const Topology before =
      net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}}}});
  EXPECT_TRUE(net_.reachable(NodeId{0}, NodeId{1}));
  EXPECT_FALSE(net_.reachable(NodeId{0}, NodeId{2}));
  // Applying the returned snapshot undoes the fault.
  net_.apply(before);
  EXPECT_TRUE(net_.fully_connected());

  const Topology healthy = net_.apply(fault::Crash{NodeId{1}});
  EXPECT_FALSE(net_.is_alive(NodeId{1}));
  net_.apply(healthy);
  EXPECT_TRUE(net_.is_alive(NodeId{1}));
}

TEST_F(FaultEngineTest, CrashRestartAndHealOps) {
  net_.apply(fault::Crash{NodeId{2}});
  EXPECT_FALSE(net_.is_alive(NodeId{2}));
  EXPECT_FALSE(net_.fully_connected());
  net_.apply(fault::Restart{NodeId{2}});
  EXPECT_TRUE(net_.is_alive(NodeId{2}));
  net_.apply(fault::Partition{{{NodeId{0}}, {NodeId{1}, NodeId{2}}}});
  net_.apply(fault::Heal{});
  EXPECT_TRUE(net_.fully_connected());
  EXPECT_EQ(net_.fault_stats().crashes, 1u);
  EXPECT_EQ(net_.fault_stats().restarts, 1u);
  EXPECT_EQ(net_.fault_stats().partitions, 1u);
  EXPECT_EQ(net_.fault_stats().heals, 1u);
}

TEST_F(FaultEngineTest, FaultFreeVerdictIsPassThrough) {
  EXPECT_FALSE(net_.faults_active());
  const SimNetwork::Delivery v = net_.delivery_verdict(NodeId{0}, NodeId{1});
  EXPECT_TRUE(v.delivered);
  EXPECT_EQ(v.copies, 1u);
  EXPECT_EQ(v.extra_delay, 0);
  EXPECT_EQ(net_.fault_stats().messages_dropped, 0u);
  EXPECT_EQ(net_.fault_stats().messages_duplicated, 0u);
  EXPECT_EQ(net_.fault_stats().messages_delayed, 0u);
}

TEST_F(FaultEngineTest, CertainFaultsAlwaysApply) {
  LinkFaults f;
  f.drop = 1.0;
  net_.apply(fault::SetLinkFaults{f});
  EXPECT_TRUE(net_.faults_active());
  const SimNetwork::Delivery dropped =
      net_.delivery_verdict(NodeId{0}, NodeId{1});
  EXPECT_FALSE(dropped.delivered);
  EXPECT_EQ(dropped.copies, 0u);
  EXPECT_EQ(net_.fault_stats().messages_dropped, 1u);

  f.drop = 0.0;
  f.duplicate = 1.0;
  f.delay_prob = 1.0;
  f.delay = 123;
  net_.apply(fault::SetLinkFaults{f});
  const SimNetwork::Delivery noisy =
      net_.delivery_verdict(NodeId{0}, NodeId{1});
  EXPECT_TRUE(noisy.delivered);
  EXPECT_EQ(noisy.copies, 2u);
  EXPECT_EQ(noisy.extra_delay, 123);

  // Local delivery is never faulted.
  const SimNetwork::Delivery local =
      net_.delivery_verdict(NodeId{0}, NodeId{0});
  EXPECT_TRUE(local.delivered);
  EXPECT_EQ(local.copies, 1u);

  net_.clear_link_faults();
  EXPECT_FALSE(net_.faults_active());
}

TEST_F(FaultEngineTest, PerLinkOverrideBeatsDefault) {
  LinkFaults lossy;
  lossy.drop = 1.0;
  net_.apply(fault::SetLinkFaultsOn{NodeId{0}, NodeId{1}, lossy});
  EXPECT_FALSE(net_.delivery_verdict(NodeId{0}, NodeId{1}).delivered);
  // Other links keep the (clean) default.
  EXPECT_TRUE(net_.delivery_verdict(NodeId{0}, NodeId{2}).delivered);
  EXPECT_TRUE(net_.delivery_verdict(NodeId{1}, NodeId{0}).delivered);
}

TEST_F(FaultEngineTest, SameSeedSameVerdictSequence) {
  LinkFaults f;
  f.drop = 0.4;
  f.duplicate = 0.3;
  net_.apply(fault::SetLinkFaults{f});

  auto draw_sequence = [&] {
    std::vector<bool> fates;
    for (int i = 0; i < 64; ++i) {
      const SimNetwork::Delivery v = net_.delivery_verdict(NodeId{0}, NodeId{1});
      fates.push_back(v.delivered);
      fates.push_back(v.copies == 2);
    }
    return fates;
  };

  net_.seed_faults(42);
  const std::vector<bool> first = draw_sequence();
  net_.seed_faults(42);
  const std::vector<bool> second = draw_sequence();
  EXPECT_EQ(first, second);

  net_.seed_faults(43);
  EXPECT_NE(first, draw_sequence());
}

TEST_F(FaultEngineTest, EngineAppliesActionsAtScheduledTimes) {
  FaultPlan plan;
  plan.seed = 7;
  plan.add(200, fault::Restart{NodeId{1}});  // out of order on purpose
  plan.add(100, fault::Crash{NodeId{1}});
  FaultEngine engine(net_, plan);

  EXPECT_EQ(engine.poll(), 0u);  // nothing due at t=0
  EXPECT_EQ(engine.next_at(), 100);

  EXPECT_EQ(engine.advance_to(150), 1u);
  EXPECT_FALSE(net_.is_alive(NodeId{1}));
  EXPECT_EQ(clock_.now(), 150);
  EXPECT_EQ(engine.next_at(), 200);

  clock_.advance_to(250);
  EXPECT_EQ(engine.poll(), 1u);
  EXPECT_TRUE(net_.is_alive(NodeId{1}));
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(engine.stats().applied, 2u);
  EXPECT_EQ(engine.stats().crashes, 1u);
  EXPECT_EQ(engine.stats().restarts, 1u);
}

TEST_F(FaultEngineTest, CrashAndRestartRouteThroughHandlers) {
  FaultPlan plan;
  plan.add(10, fault::Crash{NodeId{2}});
  plan.add(20, fault::Restart{NodeId{2}});
  FaultEngine engine(net_, plan);
  std::vector<std::string> calls;
  engine.set_crash_handler(
      [&](NodeId n) { calls.push_back("crash " + to_string(n)); });
  engine.set_restart_handler(
      [&](NodeId n) { calls.push_back("restart " + to_string(n)); });

  engine.advance_to(30);
  // The handlers were invoked instead of the direct network apply: the
  // node never actually left the alive set.
  EXPECT_TRUE(net_.is_alive(NodeId{2}));
  EXPECT_EQ(calls, (std::vector<std::string>{"crash 2", "restart 2"}));
}

TEST_F(FaultEngineTest, RandomPlanIsDeterministicPerSeed) {
  RandomPlanOptions options;
  options.nodes = net_.nodes();
  options.horizon = sim_ms(100);
  options.events = 12;

  const FaultPlan a = random_fault_plan(9, options);
  const FaultPlan b = random_fault_plan(9, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].at, b.actions[i].at);
    EXPECT_EQ(fault::describe(a.actions[i].op),
              fault::describe(b.actions[i].op));
  }

  // Plans close past the horizon with a heal and a link-fault reset, so a
  // drained run always ends fully connected and fault-free.
  ASSERT_GE(a.size(), 2u);
  const fault::Op& last = a.actions.back().op;
  EXPECT_EQ(std::string(fault::op_name(last)), "link-faults");
  EXPECT_GT(a.actions.back().at, options.horizon);

  const FaultPlan other = random_fault_plan(10, options);
  bool differs = other.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.actions.size(); ++i) {
    differs = a.actions[i].at != other.actions[i].at ||
              fault::describe(a.actions[i].op) !=
                  fault::describe(other.actions[i].op);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace dedisys
