#include <gtest/gtest.h>

#include "gcs/group_comm.h"
#include "gcs/membership.h"
#include "runtime/sim_runtime.h"

namespace dedisys {
namespace {

class GcsTest : public ::testing::Test {
 protected:
  GcsTest() : net_(clock_, CostModel{}), weights_(std::make_shared<NodeWeights>()) {
    for (std::uint64_t i = 0; i < 3; ++i) net_.add_node(NodeId{i});
    for (std::uint64_t i = 0; i < 3; ++i) {
      gms_.push_back(std::make_unique<GroupMembershipService>(rt_, NodeId{i},
                                                              weights_));
    }
  }

  SimClock clock_;
  SimNetwork net_;
  SimRuntime rt_{clock_, net_};
  std::shared_ptr<NodeWeights> weights_;
  std::vector<std::unique_ptr<GroupMembershipService>> gms_;
};

TEST_F(GcsTest, InitialViewIsCompleteWithFullWeight) {
  const View& v = gms_[0]->current_view();
  EXPECT_TRUE(v.complete);
  EXPECT_EQ(v.members.size(), 3u);
  EXPECT_DOUBLE_EQ(v.weight_fraction, 1.0);
  EXPECT_EQ(v.coordinator(), NodeId{0});
}

TEST_F(GcsTest, PartitionInstallsSmallerViews) {
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}}}});
  EXPECT_EQ(gms_[0]->current_view().members.size(), 2u);
  EXPECT_FALSE(gms_[0]->current_view().complete);
  EXPECT_EQ(gms_[2]->current_view().members.size(), 1u);
  EXPECT_NEAR(gms_[0]->current_view().weight_fraction, 2.0 / 3, 1e-9);
  EXPECT_NEAR(gms_[2]->current_view().weight_fraction, 1.0 / 3, 1e-9);
}

TEST_F(GcsTest, OneWayCutKeepsViewsBidirectional) {
  // Cut 1 -> 0 only.  All three nodes remain mutually reachable (node 1
  // routes to 0 via 2), so every view must stay complete — the legacy
  // outbound-only GMS dropped node 0 from node 1's view here and elected
  // a second primary inside the strongly-connected component.
  net_.apply(fault::AsymPartition{{{NodeId{1}, NodeId{0}}}});
  for (const auto& gms : gms_) {
    EXPECT_TRUE(gms->current_view().complete);
    EXPECT_EQ(gms->current_view().members.size(), 3u);
  }

  GroupMembershipService legacy(rt_, NodeId{1}, weights_,
                                /*legacy_unidirectional_views=*/true);
  EXPECT_FALSE(legacy.current_view().complete);
  EXPECT_EQ(legacy.current_view().members.size(), 2u);
  EXPECT_EQ(legacy.current_view().coordinator(), NodeId{1});  // split brain
}

TEST_F(GcsTest, WeightedNodesShiftPartitionWeight) {
  weights_->set(NodeId{2}, 4.0);  // total weight = 1 + 1 + 4 = 6
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}}}});
  EXPECT_NEAR(gms_[0]->current_view().weight_fraction, 2.0 / 6, 1e-9);
  EXPECT_NEAR(gms_[2]->current_view().weight_fraction, 4.0 / 6, 1e-9);
}

TEST_F(GcsTest, ViewIdsIncreaseAndListenersFire) {
  struct Recorder : ViewListener {
    std::vector<std::pair<std::size_t, std::size_t>> transitions;
    void on_view_installed(const View& installed, const View& prev) override {
      transitions.emplace_back(prev.members.size(), installed.members.size());
    }
  } rec;
  gms_[0]->subscribe(&rec);

  net_.apply(fault::Partition{{{NodeId{0}}, {NodeId{1}, NodeId{2}}}});
  net_.apply(fault::Heal{});
  ASSERT_EQ(rec.transitions.size(), 2u);
  EXPECT_EQ(rec.transitions[0], (std::pair<std::size_t, std::size_t>{3, 1}));
  EXPECT_EQ(rec.transitions[1], (std::pair<std::size_t, std::size_t>{1, 3}));
}

TEST_F(GcsTest, NoViewChangeWhenMembershipUnchanged) {
  struct Recorder : ViewListener {
    int calls = 0;
    void on_view_installed(const View&, const View&) override { ++calls; }
  } rec;
  gms_[0]->subscribe(&rec);
  // Re-partition into the same membership for node 0.
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}, NodeId{2}}}});
  EXPECT_EQ(rec.calls, 0);
}

TEST_F(GcsTest, JoinedSinceDetectsReunifiedNodes) {
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}}}});
  const View degraded = gms_[0]->current_view();
  net_.apply(fault::Heal{});
  const View healed = gms_[0]->current_view();
  const auto joined = healed.joined_since(degraded);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0], NodeId{2});
}

TEST_F(GcsTest, ViewContainsIsExact) {
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{2}}, {NodeId{1}}}});
  const View& v = gms_[0]->current_view();
  EXPECT_TRUE(v.contains(NodeId{0}));
  EXPECT_FALSE(v.contains(NodeId{1}));
  EXPECT_TRUE(v.contains(NodeId{2}));
}

TEST_F(GcsTest, MulticastDeliversToReachableMembersAndCharges) {
  GroupCommunication gc(rt_);
  net_.apply(fault::Partition{{{NodeId{0}, NodeId{1}}, {NodeId{2}}}});
  std::vector<NodeId> delivered;
  const SimTime t0 = clock_.now();
  const std::size_t reached = gc.multicast(
      NodeId{0}, {NodeId{0}, NodeId{1}, NodeId{2}},
      [&](NodeId n) { delivered.push_back(n); });
  EXPECT_EQ(reached, 1u);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], NodeId{1});
  EXPECT_GT(clock_.now(), t0);  // multicast + confirmation charged
}

TEST_F(GcsTest, MulticastToNobodyIsFree) {
  GroupCommunication gc(rt_);
  net_.apply(fault::Partition{{{NodeId{0}}, {NodeId{1}, NodeId{2}}}});
  const SimTime t0 = clock_.now();
  const std::size_t reached =
      gc.multicast(NodeId{0}, {NodeId{0}}, [](NodeId) { FAIL(); });
  EXPECT_EQ(reached, 0u);
  EXPECT_EQ(clock_.now(), t0);
}

TEST_F(GcsTest, PointToPointSendRoundTrip) {
  GroupCommunication gc(rt_);
  bool delivered = false;
  const SimTime t0 = clock_.now();
  EXPECT_TRUE(gc.send(NodeId{0}, NodeId{1}, [&] { delivered = true; }));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(clock_.now() - t0, 2 * CostModel{}.rpc_latency);

  net_.apply(fault::Partition{{{NodeId{0}}, {NodeId{1}, NodeId{2}}}});
  EXPECT_FALSE(gc.send(NodeId{0}, NodeId{1}, [] { FAIL(); }));
}

}  // namespace
}  // namespace dedisys
