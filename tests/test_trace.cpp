// Observability subsystem: histogram percentiles, trace ring buffer, JSON
// round-trips and the full threat-lifecycle trace of a partition →
// reconcile scenario.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "middleware/admin.h"
#include "middleware/obs_export.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "scenarios/evalapp.h"
#include "web/metrics_servlet.h"

namespace dedisys {
namespace {

using obs::Json;
using obs::LatencyHistogram;
using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TraceRecorder;
using scenarios::AcceptAllNegotiation;
using scenarios::EvalApp;

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogram, SingleValueCollapsesAllPercentiles) {
  LatencyHistogram h;
  h.record(150);
  // Clamping to [min, max] pins every percentile to the only observation.
  EXPECT_DOUBLE_EQ(h.percentile(50), 150.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 150.0);
  EXPECT_EQ(h.min(), 150);
  EXPECT_EQ(h.max(), 150);
}

TEST(LatencyHistogram, PercentilesOrderedAndWithinRange) {
  LatencyHistogram h;
  // 100 samples spread over two decades: 1..100 us.
  for (SimDuration d = 1; d <= 100; ++d) h.record(d);
  const double p50 = h.percentile(50);
  const double p95 = h.percentile(95);
  const double p99 = h.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 100.0);
  // The median of 1..100 lies in the (50, 100] bucket.
  EXPECT_GT(p50, 20.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(LatencyHistogram, NegativeDurationsClampToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogram, OverflowBucketUsesObservedMax) {
  LatencyHistogram h;
  // Beyond the last bound (50 s): lands in the open-ended bucket.
  h.record(sim_sec(60));
  h.record(sim_sec(80));
  const double p99 = h.percentile(99);
  EXPECT_GE(p99, static_cast<double>(sim_sec(60)));
  EXPECT_LE(p99, static_cast<double>(sim_sec(80)));
}

TEST(LatencyHistogram, SummaryMatchesDirectQueries) {
  LatencyHistogram h;
  for (SimDuration d : {10, 20, 30, 40, 50}) h.record(d);
  const obs::LatencySummary s = obs::summarize(h);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 30.0);
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(50));
  EXPECT_DOUBLE_EQ(s.p99, h.percentile(99));
  EXPECT_EQ(s.min, 10);
  EXPECT_EQ(s.max, 50);
}

// ---------------------------------------------------------------------------
// Trace ring buffer
// ---------------------------------------------------------------------------

TraceEvent make_event(SimTime at, TraceEventKind kind) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  return e;
}

TEST(TraceRecorder, RecordsUpToCapacityWithoutDropping) {
  TraceRecorder rec(4);
  for (int i = 0; i < 4; ++i) {
    rec.record(make_event(i, TraceEventKind::Validation));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.recorded(), 4u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].at, static_cast<SimTime>(i));
  }
}

TEST(TraceRecorder, WraparoundKeepsNewestEventsOldestFirst) {
  TraceRecorder rec(4);
  for (int i = 0; i < 7; ++i) {
    rec.record(make_event(100 + i, TraceEventKind::Validation));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 3u);
  EXPECT_EQ(rec.recorded(), 7u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Events 0..2 were overwritten; 3..6 remain, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 3);
    EXPECT_EQ(events[i].at, static_cast<SimTime>(103 + i));
  }
}

TEST(TraceRecorder, EventsOfFiltersByKind) {
  TraceRecorder rec(8);
  rec.record(make_event(1, TraceEventKind::InvocationStart));
  rec.record(make_event(2, TraceEventKind::Validation));
  rec.record(make_event(3, TraceEventKind::InvocationEnd));
  EXPECT_EQ(rec.events_of(TraceEventKind::Validation).size(), 1u);
  EXPECT_EQ(rec.events_of(TraceEventKind::TxAbort).size(), 0u);
}

TEST(TraceRecorder, ClearResetsRetainedEventsButNotSeq) {
  TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.record(make_event(i, TraceEventKind::Validation));
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(make_event(99, TraceEventKind::Validation));
  EXPECT_EQ(rec.events().front().seq, 6u);
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

TEST(ObsJson, RoundTripsNestedDocument) {
  Json doc = Json::object();
  doc.set("name", "bench");
  doc.set("count", std::int64_t{42});
  doc.set("ratio", 2.5);
  doc.set("flag", true);
  doc.set("missing", nullptr);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc.set("items", std::move(arr));

  for (int indent : {-1, 2}) {
    const Json parsed = Json::parse(doc.dump(indent));
    EXPECT_EQ(parsed.at("name").as_string(), "bench");
    EXPECT_EQ(parsed.at("count").as_int(), 42);
    EXPECT_DOUBLE_EQ(parsed.at("ratio").as_double(), 2.5);
    EXPECT_TRUE(parsed.at("flag").as_bool());
    EXPECT_TRUE(parsed.at("missing").is_null());
    EXPECT_EQ(parsed.at("items").size(), 2u);
    EXPECT_EQ(parsed.at("items").at(0).as_int(), 1);
    EXPECT_EQ(parsed.at("items").at(1).as_string(), "two");
  }
}

TEST(ObsJson, PreservesInsertionOrderAndEscapes) {
  Json doc = Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("text", "line\n\"quoted\"\tend");
  const std::string compact = doc.dump();
  EXPECT_LT(compact.find("\"z\""), compact.find("\"a\""));
  const Json parsed = Json::parse(compact);
  EXPECT_EQ(parsed.at("text").as_string(), "line\n\"quoted\"\tend");
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), ConfigError);
  EXPECT_THROW(Json::parse("[1,]"), ConfigError);
  EXPECT_THROW(Json::parse("{} trailing"), ConfigError);
  EXPECT_THROW(Json::parse("nope"), ConfigError);
}

TEST(ObsJson, LatencySummaryExportRoundTrips) {
  LatencyHistogram h;
  for (SimDuration d : {10, 20, 30}) h.record(d);
  const Json parsed = Json::parse(obs::to_json(obs::summarize(h)).dump());
  EXPECT_EQ(parsed.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed.at("mean_us").as_double(), 20.0);
  EXPECT_GT(parsed.at("p95_us").as_double(), 0.0);
  EXPECT_EQ(parsed.at("min_us").as_int(), 10);
  EXPECT_EQ(parsed.at("max_us").as_int(), 30);
}

// ---------------------------------------------------------------------------
// End-to-end: partition → threat → heal → reconcile, fully traced
// ---------------------------------------------------------------------------

class TracedClusterTest : public ::testing::Test {
 protected:
  TracedClusterTest() {
    cfg_.nodes = 3;
    cfg_.observability = true;
    cluster_ = std::make_unique<Cluster>(cfg_);
    EvalApp::define_classes(cluster_->classes());
    EvalApp::register_constraints(cluster_->constraints());
  }

  ClusterConfig cfg_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(TracedClusterTest, ThreatLifecycleAppearsInSimTimeOrder) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 2);
  EvalApp::run_op(cluster_->node(0), ids[0], "emptySatisfied");
  EvalApp::run_op(cluster_->node(0), ids[0], "setValue",
                  {Value{std::string{"x"}}});

  cluster_->split({{0, 1}, {2}});
  EvalApp::run_op_negotiated(cluster_->node(0), ids[0], "emptyThreat",
                             std::make_shared<AcceptAllNegotiation>());
  cluster_->heal();
  cluster_->reconcile();

  const TraceRecorder& trace = cluster_->obs().trace();
  EXPECT_EQ(trace.dropped(), 0u);

  // Every stage of the pipeline left events.
  for (TraceEventKind kind :
       {TraceEventKind::InvocationStart, TraceEventKind::InvocationEnd,
        TraceEventKind::Validation, TraceEventKind::ThreatDetected,
        TraceEventKind::ThreatNegotiated, TraceEventKind::ThreatAccepted,
        TraceEventKind::ThreatReconciled, TraceEventKind::TxPrepare,
        TraceEventKind::TxCommit, TraceEventKind::ViewChange,
        TraceEventKind::ModeTransition, TraceEventKind::ReplicaPropagate,
        TraceEventKind::ReconcileStart, TraceEventKind::ReconcileEnd,
        TraceEventKind::NetworkSplit, TraceEventKind::NetworkHeal}) {
    EXPECT_FALSE(trace.events_of(kind).empty())
        << "no event of kind " << obs::to_string(kind);
  }

  // Events are retained in recording order with non-decreasing SimTime.
  const auto events = trace.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].at, events[i - 1].at);
  }

  // Lifecycle ordering for the accepted threat.
  const auto detected = trace.events_of(TraceEventKind::ThreatDetected);
  const auto negotiated = trace.events_of(TraceEventKind::ThreatNegotiated);
  const auto accepted = trace.events_of(TraceEventKind::ThreatAccepted);
  const auto reconciled = trace.events_of(TraceEventKind::ThreatReconciled);
  ASSERT_FALSE(detected.empty());
  ASSERT_FALSE(accepted.empty());
  ASSERT_FALSE(reconciled.empty());
  EXPECT_LT(detected.front().seq, negotiated.front().seq);
  EXPECT_LT(negotiated.front().seq, accepted.front().seq);
  EXPECT_LT(accepted.front().seq, reconciled.front().seq);
  EXPECT_EQ(detected.front().label, "TouchHard");
  EXPECT_EQ(reconciled.front().detail, "satisfied");

  // Latencies were recorded for the instrumented operations.
  const obs::LatencyRegistry& lat = cluster_->obs().latencies();
  for (const char* key : {"create", "invoke.write", "tx.commit",
                          "reconcile.total"}) {
    const LatencyHistogram* h = lat.find(key);
    ASSERT_NE(h, nullptr) << key;
    EXPECT_GT(h->count(), 0u) << key;
  }
}

TEST_F(TracedClusterTest, TimelineRendersLifecycle) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  cluster_->split({{0, 1}, {2}});
  EvalApp::run_op_negotiated(cluster_->node(0), ids[0], "emptyThreat",
                             std::make_shared<AcceptAllNegotiation>());
  cluster_->heal();
  cluster_->reconcile();

  AdminConsole admin(*cluster_);
  const std::string timeline = admin.timeline();
  // The acceptance scenario's milestones, rendered human-readably.
  for (const char* needle :
       {"invocation.start", "validation", "threat.accepted", "view.change",
        "reconcile.end", "mode.transition"}) {
    EXPECT_NE(timeline.find(needle), std::string::npos) << needle;
  }
  // SimTime stamps appear in order because events do.
  EXPECT_LT(timeline.find("network.split"), timeline.find("network.heal"));
}

TEST_F(TracedClusterTest, ClusterJsonExportRoundTrips) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  EvalApp::run_op(cluster_->node(0), ids[0], "setValue",
                  {Value{std::string{"x"}}});

  AdminConsole admin(*cluster_);
  const Json doc = Json::parse(admin.metrics_json());
  EXPECT_EQ(doc.at("metrics").at("nodes").size(), 3u);
  EXPECT_GT(doc.at("metrics").at("sim_time_us").as_int(), 0);
  EXPECT_TRUE(doc.at("latencies").contains("invoke.write"));
  EXPECT_GT(doc.at("trace").at("events").size(), 0u);
  const Json& first = doc.at("trace").at("events").at(0);
  EXPECT_TRUE(first.contains("seq"));
  EXPECT_TRUE(first.contains("at_us"));
  EXPECT_TRUE(first.contains("kind"));
}

TEST_F(TracedClusterTest, MetricsServletServesJsonAndTimeline) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  EvalApp::run_op(cluster_->node(0), ids[0], "emptySatisfied");

  web::MetricsServlet servlet(*cluster_);
  EXPECT_TRUE(servlet.handles("/metrics"));
  EXPECT_TRUE(servlet.handles("/timeline"));
  EXPECT_FALSE(servlet.handles("/business"));

  const web::HttpResponse metrics =
      servlet.handle(web::HttpRequest{"/metrics", {}});
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.kind, "metrics");
  const Json doc = Json::parse(metrics.fields.at("body"));
  EXPECT_TRUE(doc.contains("metrics"));
  EXPECT_TRUE(doc.contains("trace"));

  const web::HttpResponse timeline =
      servlet.handle(web::HttpRequest{"/timeline", {}});
  EXPECT_EQ(timeline.kind, "timeline");
  EXPECT_NE(timeline.fields.at("body").find("invocation.start"),
            std::string::npos);

  const web::HttpResponse missing =
      servlet.handle(web::HttpRequest{"/nope", {}});
  EXPECT_EQ(missing.status, 404);
}

TEST(TraceDisabled, DisabledClusterRecordsNothing) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  const auto ids = EvalApp::create_entities(cluster.node(0), 1);
  EvalApp::run_op(cluster.node(0), ids[0], "emptySatisfied");

  EXPECT_FALSE(cluster.obs().enabled());
  EXPECT_EQ(cluster.obs().trace().size(), 0u);
  EXPECT_TRUE(cluster.obs().latencies().empty());
}

TEST(TraceDisabled, TracingDoesNotChangeSimulatedTime) {
  const auto run = [](bool observability) {
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.observability = observability;
    Cluster cluster(cfg);
    EvalApp::define_classes(cluster.classes());
    EvalApp::register_constraints(cluster.constraints());
    const auto ids = EvalApp::create_entities(cluster.node(0), 3);
    for (int i = 0; i < 5; ++i) {
      EvalApp::run_op(cluster.node(0), ids[i % ids.size()], "setValue",
                      {Value{std::string{"x"}}});
    }
    cluster.split({{0, 1}, {2}});
    EvalApp::run_op_negotiated(cluster.node(0), ids[0], "emptyThreat",
                               std::make_shared<AcceptAllNegotiation>());
    cluster.heal();
    cluster.reconcile();
    return cluster.clock().now();
  };
  // Deterministic simulation: recording costs zero simulated time.
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace dedisys
