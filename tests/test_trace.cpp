// Observability subsystem: histogram percentiles, trace ring buffer, JSON
// round-trips and the full threat-lifecycle trace of a partition →
// reconcile scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "middleware/admin.h"
#include "middleware/obs_export.h"
#include "obs/analyze.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "scenarios/chaos.h"
#include "scenarios/evalapp.h"
#include "sim/fault_engine.h"
#include "sim/fault_plan.h"
#include "web/metrics_servlet.h"

namespace dedisys {
namespace {

using obs::Json;
using obs::LatencyHistogram;
using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TraceRecorder;
using scenarios::AcceptAllNegotiation;
using scenarios::EvalApp;

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogram, SingleValueCollapsesAllPercentiles) {
  LatencyHistogram h;
  h.record(150);
  // Clamping to [min, max] pins every percentile to the only observation.
  EXPECT_DOUBLE_EQ(h.percentile(50), 150.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 150.0);
  EXPECT_EQ(h.min(), 150);
  EXPECT_EQ(h.max(), 150);
}

TEST(LatencyHistogram, PercentilesOrderedAndWithinRange) {
  LatencyHistogram h;
  // 100 samples spread over two decades: 1..100 us.
  for (SimDuration d = 1; d <= 100; ++d) h.record(d);
  const double p50 = h.percentile(50);
  const double p95 = h.percentile(95);
  const double p99 = h.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 100.0);
  // The median of 1..100 lies in the (50, 100] bucket.
  EXPECT_GT(p50, 20.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(LatencyHistogram, SingleBucketReportsClampedMidpoint) {
  LatencyHistogram h;
  h.record(60);
  h.record(80);
  // Both samples land in the (50, 100] bucket; interpolating inside it
  // would fabricate p50 < p99 out of spread the data cannot support, so
  // every percentile collapses to the bucket midpoint.
  EXPECT_DOUBLE_EQ(h.percentile(50), 75.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 75.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 75.0);

  // When the midpoint lies outside the observed range it clamps to it.
  LatencyHistogram tight;
  tight.record(51);
  tight.record(52);
  EXPECT_DOUBLE_EQ(tight.percentile(50), 52.0);
  EXPECT_DOUBLE_EQ(tight.percentile(99), 52.0);
}

TEST(LatencyHistogram, PercentilesMonotoneAcrossShapes) {
  // p50 <= p95 <= p99 must hold for degenerate shapes too, not just the
  // well-populated ladder above.
  const std::vector<std::vector<SimDuration>> shapes = {
      {},                            // empty
      {7},                           // single sample
      {60, 60, 60, 80},              // single bucket
      {1, 1, 1, 1, 5000},            // heavy head, one outlier
      {sim_sec(60), sim_sec(80)},    // overflow bucket only
  };
  for (const auto& samples : shapes) {
    LatencyHistogram h;
    for (SimDuration d : samples) h.record(d);
    const double p50 = h.percentile(50);
    const double p95 = h.percentile(95);
    const double p99 = h.percentile(99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    if (!samples.empty()) {
      EXPECT_GE(p50, static_cast<double>(h.min()));
      EXPECT_LE(p99, static_cast<double>(h.max()));
    }
  }
}

TEST(LatencyHistogram, NegativeDurationsClampToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogram, OverflowBucketUsesObservedMax) {
  LatencyHistogram h;
  // Beyond the last bound (50 s): lands in the open-ended bucket.
  h.record(sim_sec(60));
  h.record(sim_sec(80));
  const double p99 = h.percentile(99);
  EXPECT_GE(p99, static_cast<double>(sim_sec(60)));
  EXPECT_LE(p99, static_cast<double>(sim_sec(80)));
}

TEST(LatencyHistogram, SummaryMatchesDirectQueries) {
  LatencyHistogram h;
  for (SimDuration d : {10, 20, 30, 40, 50}) h.record(d);
  const obs::LatencySummary s = obs::summarize(h);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 30.0);
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(50));
  EXPECT_DOUBLE_EQ(s.p99, h.percentile(99));
  EXPECT_EQ(s.min, 10);
  EXPECT_EQ(s.max, 50);
}

// ---------------------------------------------------------------------------
// Trace ring buffer
// ---------------------------------------------------------------------------

TraceEvent make_event(SimTime at, TraceEventKind kind) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  return e;
}

TEST(TraceRecorder, RecordsUpToCapacityWithoutDropping) {
  TraceRecorder rec(4);
  for (int i = 0; i < 4; ++i) {
    rec.record(make_event(i, TraceEventKind::Validation));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.recorded(), 4u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].at, static_cast<SimTime>(i));
  }
}

TEST(TraceRecorder, WraparoundKeepsNewestEventsOldestFirst) {
  TraceRecorder rec(4);
  for (int i = 0; i < 7; ++i) {
    rec.record(make_event(100 + i, TraceEventKind::Validation));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 3u);
  EXPECT_EQ(rec.recorded(), 7u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Events 0..2 were overwritten; 3..6 remain, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 3);
    EXPECT_EQ(events[i].at, static_cast<SimTime>(103 + i));
  }
}

TEST(TraceRecorder, EventsOfFiltersByKind) {
  TraceRecorder rec(8);
  rec.record(make_event(1, TraceEventKind::InvocationStart));
  rec.record(make_event(2, TraceEventKind::Validation));
  rec.record(make_event(3, TraceEventKind::InvocationEnd));
  EXPECT_EQ(rec.events_of(TraceEventKind::Validation).size(), 1u);
  EXPECT_EQ(rec.events_of(TraceEventKind::TxAbort).size(), 0u);
}

TEST(TraceRecorder, ClearResetsRetainedEventsButNotSeq) {
  TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.record(make_event(i, TraceEventKind::Validation));
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record(make_event(99, TraceEventKind::Validation));
  EXPECT_EQ(rec.events().front().seq, 6u);
}

TEST(TraceTimeline, DropWarningFramesTruncatedTimeline) {
  TraceRecorder rec(2);
  for (int i = 0; i < 5; ++i) {
    rec.record(make_event(i, TraceEventKind::Validation));
  }
  const std::string timeline = obs::render_timeline(rec);
  EXPECT_NE(timeline.find("WARNING: timeline is truncated - 3"),
            std::string::npos);
  EXPECT_NE(timeline.find("(+3 older events dropped"), std::string::npos);

  TraceRecorder intact(8);
  intact.record(make_event(1, TraceEventKind::Validation));
  EXPECT_EQ(obs::render_timeline(intact).find("WARNING"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span-tree reconstruction and trace analysis
// ---------------------------------------------------------------------------

TraceEvent traced_event(SimTime at, TraceEventKind kind, std::uint64_t trace,
                        std::uint64_t span, std::uint64_t parent,
                        std::string label = {}, std::string detail = {}) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.trace_id = trace;
  e.span_id = span;
  e.parent_span = parent;
  e.label = std::move(label);
  e.detail = std::move(detail);
  return e;
}

TEST(TraceAnalyze, BuildsSpanTreePhasesAndCriticalPath) {
  std::vector<TraceEvent> events;
  events.push_back(traced_event(0, TraceEventKind::SpanStart, 1, 1, 0,
                                "Account::deposit"));
  events.push_back(
      traced_event(10, TraceEventKind::SpanStart, 1, 2, 1, "validation"));
  events.push_back(traced_event(15, TraceEventKind::Validation, 1, 2, 1,
                                "TouchHard", "satisfied"));
  events.push_back(
      traced_event(30, TraceEventKind::SpanEnd, 1, 2, 1, "validation"));
  events.push_back(traced_event(40, TraceEventKind::SpanStart, 1, 3, 1, "2pc"));
  events.push_back(traced_event(90, TraceEventKind::SpanEnd, 1, 3, 1, "2pc"));
  events.push_back(traced_event(100, TraceEventKind::SpanEnd, 1, 1, 0,
                                "Account::deposit"));
  // An untraced event outside any span counts as an orphan, nothing more.
  events.push_back(make_event(95, TraceEventKind::TxCommit));

  const obs::TraceAnalysis analysis = obs::analyze(events);
  ASSERT_EQ(analysis.trees.size(), 1u);
  ASSERT_EQ(analysis.traces.size(), 1u);
  EXPECT_EQ(analysis.traced_events, 1u);
  EXPECT_EQ(analysis.orphan_events, 1u);

  const obs::SpanTree& tree = analysis.trees.front();
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.roots.front(), 1u);
  ASSERT_NE(tree.find(1), nullptr);
  EXPECT_EQ(tree.find(1)->children, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_TRUE(tree.find(2)->saw_start);
  EXPECT_TRUE(tree.find(2)->saw_end);
  EXPECT_EQ(tree.find(2)->events, 1u);

  const obs::TraceSummary& summary = analysis.traces.front();
  EXPECT_EQ(summary.trace_id, 1u);
  EXPECT_EQ(summary.root_label, "Account::deposit");
  EXPECT_EQ(summary.duration_us, 100);
  EXPECT_EQ(summary.spans, 3u);
  EXPECT_EQ(summary.events, 1u);
  // Self time partitions the trace: validation 20, 2pc 50, root rest 30.
  EXPECT_EQ(summary.phase_self_us.at("validation"), 20);
  EXPECT_EQ(summary.phase_self_us.at("2pc"), 50);
  EXPECT_EQ(summary.phase_self_us.at("interception"), 30);

  // Critical path descends into the child finishing last: root -> 2pc.
  ASSERT_EQ(summary.critical_path.size(), 2u);
  EXPECT_EQ(summary.critical_path[0].label, "Account::deposit");
  EXPECT_EQ(summary.critical_path[0].self_us, 50);
  EXPECT_EQ(summary.critical_path[1].label, "2pc");
  EXPECT_EQ(summary.critical_path[1].self_us, 50);
}

TEST(TraceAnalyze, ModeResidencyFollowsTransitions) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(0, TraceEventKind::Validation));
  TraceEvent degraded = make_event(100, TraceEventKind::ModeTransition);
  degraded.node = NodeId{2};
  degraded.label = "degraded";
  degraded.detail = "from healthy";
  events.push_back(degraded);
  TraceEvent healthy = make_event(300, TraceEventKind::ModeTransition);
  healthy.node = NodeId{2};
  healthy.label = "healthy";
  healthy.detail = "from degraded";
  events.push_back(healthy);
  events.push_back(make_event(400, TraceEventKind::Validation));

  const obs::TraceAnalysis analysis = obs::analyze(events);
  ASSERT_EQ(analysis.mode_timeline.size(), 2u);
  EXPECT_EQ(analysis.mode_timeline.front().to, "degraded");
  EXPECT_EQ(analysis.mode_timeline.front().from, "healthy");
  const auto& residency = analysis.mode_residency.at(2);
  EXPECT_EQ(residency.at("healthy"), 200);   // 0..100 plus 300..400
  EXPECT_EQ(residency.at("degraded"), 200);  // 100..300
}

// ---------------------------------------------------------------------------
// Trace-driven invariant checker
// ---------------------------------------------------------------------------

TraceEvent threat_event(SimTime at, TraceEventKind kind, std::string label,
                        std::uint64_t object, std::uint64_t tx = 0,
                        std::string detail = {}) {
  TraceEvent e = make_event(at, kind);
  e.label = std::move(label);
  e.object = ObjectId{object};
  if (tx != 0) e.tx = TxId{tx};
  e.detail = std::move(detail);
  return e;
}

TEST(TraceChecker, FlagsThreatMissedByReconciliation) {
  std::vector<TraceEvent> events;
  events.push_back(threat_event(10, TraceEventKind::ThreatAccepted, "C", 5));
  events.push_back(make_event(100, TraceEventKind::ReconcileStart));
  events.push_back(make_event(200, TraceEventKind::ReconcileEnd));

  const obs::TraceCheckResult result = obs::check_events(events);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reconciles, 1u);
  EXPECT_EQ(result.threats_tracked, 1u);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations.front().invariant, "no-lost-threats");
  EXPECT_NE(result.violations.front().detail.find("C@5"), std::string::npos);

  // The same stream with the re-evaluation present is clean, and the
  // "satisfied" outcome erases the threat for later windows too.
  events.insert(events.begin() + 2,
                threat_event(150, TraceEventKind::ThreatReconciled, "C", 5, 0,
                             "satisfied"));
  events.push_back(make_event(300, TraceEventKind::ReconcileStart));
  events.push_back(make_event(400, TraceEventKind::ReconcileEnd));
  const obs::TraceCheckResult clean = obs::check_events(events);
  EXPECT_TRUE(clean.ok()) << (clean.violations.empty()
                                  ? ""
                                  : clean.violations.front().detail);
  EXPECT_EQ(clean.reconciles, 2u);
}

TEST(TraceChecker, AbortedStagingAndResolutionClearLiveSet) {
  std::vector<TraceEvent> events;
  // Threat A staged under tx 7, which aborts: nothing was stored.
  events.push_back(threat_event(10, TraceEventKind::ThreatAccepted, "A", 1, 7));
  events.push_back(threat_event(20, TraceEventKind::TxAbort, "", 0, 7));
  // Threat B commits durably, then a satisfied business op resolves it.
  events.push_back(threat_event(30, TraceEventKind::ThreatAccepted, "B", 2, 8));
  events.push_back(threat_event(40, TraceEventKind::TxCommit, "", 0, 8));
  events.push_back(threat_event(50, TraceEventKind::ThreatResolved, "B", 2));
  events.push_back(make_event(100, TraceEventKind::ReconcileStart));
  events.push_back(make_event(200, TraceEventKind::ReconcileEnd));

  const obs::TraceCheckResult result = obs::check_events(events);
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().detail);
  EXPECT_EQ(result.threats_tracked, 2u);
}

TEST(TraceChecker, RepeatAcceptCannotDowngradeDurableThreat) {
  std::vector<TraceEvent> events;
  // Durably stored (no transaction), then re-accepted inside tx 9 which
  // aborts.  The original store must stay live: the reconcile window that
  // skips it is still a violation.
  events.push_back(threat_event(10, TraceEventKind::ThreatAccepted, "C", 3));
  events.push_back(threat_event(20, TraceEventKind::ThreatAccepted, "C", 3, 9));
  events.push_back(threat_event(30, TraceEventKind::TxAbort, "", 0, 9));
  events.push_back(make_event(100, TraceEventKind::ReconcileStart));
  events.push_back(make_event(200, TraceEventKind::ReconcileEnd));

  const obs::TraceCheckResult result = obs::check_events(events);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations.front().invariant, "no-lost-threats");
}

TEST(TraceChecker, SplitViewsInsideOnePartitionAreViolations) {
  const auto view = [](SimTime at, std::uint64_t node, std::string members) {
    TraceEvent e = make_event(at, TraceEventKind::ViewChange);
    e.node = NodeId{node};
    e.detail = "members=" + std::move(members);
    return e;
  };
  std::vector<TraceEvent> events;
  events.push_back(view(10, 0, "{0,1,2}"));
  events.push_back(view(11, 1, "{0,1}"));
  // Views are checked once the install burst quiesces.
  events.push_back(make_event(20, TraceEventKind::Validation));

  const obs::TraceCheckResult split = obs::check_events(events);
  ASSERT_EQ(split.violations.size(), 1u);
  EXPECT_EQ(split.violations.front().invariant, "one-primary-per-partition");
  EXPECT_GT(split.view_checks, 0u);

  // Agreeing views — and views that do not mutually contain each other —
  // are fine.
  std::vector<TraceEvent> agree;
  agree.push_back(view(10, 0, "{0,1}"));
  agree.push_back(view(11, 1, "{0,1}"));
  agree.push_back(view(12, 2, "{2}"));
  agree.push_back(make_event(20, TraceEventKind::Validation));
  EXPECT_TRUE(obs::check_events(agree).ok());
}

TEST(TraceChecker, DroppedEventsMarkVerdictIncomplete) {
  const std::vector<TraceEvent> events = {
      make_event(10, TraceEventKind::Validation)};
  EXPECT_TRUE(obs::check_events(events, 0).complete);
  EXPECT_FALSE(obs::check_events(events, 5).complete);
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

TEST(ObsJson, RoundTripsNestedDocument) {
  Json doc = Json::object();
  doc.set("name", "bench");
  doc.set("count", std::int64_t{42});
  doc.set("ratio", 2.5);
  doc.set("flag", true);
  doc.set("missing", nullptr);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc.set("items", std::move(arr));

  for (int indent : {-1, 2}) {
    const Json parsed = Json::parse(doc.dump(indent));
    EXPECT_EQ(parsed.at("name").as_string(), "bench");
    EXPECT_EQ(parsed.at("count").as_int(), 42);
    EXPECT_DOUBLE_EQ(parsed.at("ratio").as_double(), 2.5);
    EXPECT_TRUE(parsed.at("flag").as_bool());
    EXPECT_TRUE(parsed.at("missing").is_null());
    EXPECT_EQ(parsed.at("items").size(), 2u);
    EXPECT_EQ(parsed.at("items").at(0).as_int(), 1);
    EXPECT_EQ(parsed.at("items").at(1).as_string(), "two");
  }
}

TEST(ObsJson, PreservesInsertionOrderAndEscapes) {
  Json doc = Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("text", "line\n\"quoted\"\tend");
  const std::string compact = doc.dump();
  EXPECT_LT(compact.find("\"z\""), compact.find("\"a\""));
  const Json parsed = Json::parse(compact);
  EXPECT_EQ(parsed.at("text").as_string(), "line\n\"quoted\"\tend");
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), ConfigError);
  EXPECT_THROW(Json::parse("[1,]"), ConfigError);
  EXPECT_THROW(Json::parse("{} trailing"), ConfigError);
  EXPECT_THROW(Json::parse("nope"), ConfigError);
}

TEST(ObsJson, LatencySummaryExportRoundTrips) {
  LatencyHistogram h;
  for (SimDuration d : {10, 20, 30}) h.record(d);
  const Json parsed = Json::parse(obs::to_json(obs::summarize(h)).dump());
  EXPECT_EQ(parsed.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed.at("mean_us").as_double(), 20.0);
  EXPECT_GT(parsed.at("p95_us").as_double(), 0.0);
  EXPECT_EQ(parsed.at("min_us").as_int(), 10);
  EXPECT_EQ(parsed.at("max_us").as_int(), 30);
}

// ---------------------------------------------------------------------------
// End-to-end: partition → threat → heal → reconcile, fully traced
// ---------------------------------------------------------------------------

class TracedClusterTest : public ::testing::Test {
 protected:
  TracedClusterTest() {
    cfg_.nodes = 3;
    cfg_.flags.observability = true;
    cluster_ = std::make_unique<Cluster>(cfg_);
    EvalApp::define_classes(cluster_->classes());
    EvalApp::register_constraints(cluster_->constraints());
  }

  ClusterConfig cfg_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(TracedClusterTest, ThreatLifecycleAppearsInSimTimeOrder) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 2);
  EvalApp::run_op(cluster_->node(0), ids[0], "emptySatisfied");
  EvalApp::run_op(cluster_->node(0), ids[0], "setValue",
                  {Value{std::string{"x"}}});

  cluster_->inject(fault::split_indices({{0, 1}, {2}}));
  EvalApp::run_op_negotiated(cluster_->node(0), ids[0], "emptyThreat",
                             std::make_shared<AcceptAllNegotiation>());
  cluster_->inject(fault::Heal{});
  cluster_->reconcile();

  const TraceRecorder& trace = cluster_->obs().trace();
  EXPECT_EQ(trace.dropped(), 0u);

  // Every stage of the pipeline left events.
  for (TraceEventKind kind :
       {TraceEventKind::InvocationStart, TraceEventKind::InvocationEnd,
        TraceEventKind::Validation, TraceEventKind::ThreatDetected,
        TraceEventKind::ThreatNegotiated, TraceEventKind::ThreatAccepted,
        TraceEventKind::ThreatReconciled, TraceEventKind::TxPrepare,
        TraceEventKind::TxCommit, TraceEventKind::ViewChange,
        TraceEventKind::ModeTransition, TraceEventKind::ReplicaPropagate,
        TraceEventKind::ReconcileStart, TraceEventKind::ReconcileEnd,
        TraceEventKind::NetworkSplit, TraceEventKind::NetworkHeal}) {
    EXPECT_FALSE(trace.events_of(kind).empty())
        << "no event of kind " << obs::to_string(kind);
  }

  // Events are retained in recording order with non-decreasing SimTime.
  const auto events = trace.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].at, events[i - 1].at);
  }

  // Lifecycle ordering for the accepted threat.
  const auto detected = trace.events_of(TraceEventKind::ThreatDetected);
  const auto negotiated = trace.events_of(TraceEventKind::ThreatNegotiated);
  const auto accepted = trace.events_of(TraceEventKind::ThreatAccepted);
  const auto reconciled = trace.events_of(TraceEventKind::ThreatReconciled);
  ASSERT_FALSE(detected.empty());
  ASSERT_FALSE(accepted.empty());
  ASSERT_FALSE(reconciled.empty());
  EXPECT_LT(detected.front().seq, negotiated.front().seq);
  EXPECT_LT(negotiated.front().seq, accepted.front().seq);
  EXPECT_LT(accepted.front().seq, reconciled.front().seq);
  EXPECT_EQ(detected.front().label, "TouchHard");
  EXPECT_EQ(reconciled.front().detail, "satisfied");

  // Latencies were recorded for the instrumented operations.
  const obs::LatencyRegistry& lat = cluster_->obs().latencies();
  for (const char* key : {"create", "invoke.write", "tx.commit",
                          "reconcile.total"}) {
    const LatencyHistogram* h = lat.find(key);
    ASSERT_NE(h, nullptr) << key;
    EXPECT_GT(h->count(), 0u) << key;
  }
}

TEST_F(TracedClusterTest, TimelineRendersLifecycle) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  cluster_->inject(fault::split_indices({{0, 1}, {2}}));
  EvalApp::run_op_negotiated(cluster_->node(0), ids[0], "emptyThreat",
                             std::make_shared<AcceptAllNegotiation>());
  cluster_->inject(fault::Heal{});
  cluster_->reconcile();

  AdminConsole admin(*cluster_);
  const std::string timeline = admin.timeline();
  // The acceptance scenario's milestones, rendered human-readably.
  for (const char* needle :
       {"invocation.start", "validation", "threat.accepted", "view.change",
        "reconcile.end", "mode.transition"}) {
    EXPECT_NE(timeline.find(needle), std::string::npos) << needle;
  }
  // SimTime stamps appear in order because events do.
  EXPECT_LT(timeline.find("network.split"), timeline.find("network.heal"));
}

TEST_F(TracedClusterTest, ClusterJsonExportRoundTrips) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  EvalApp::run_op(cluster_->node(0), ids[0], "setValue",
                  {Value{std::string{"x"}}});

  AdminConsole admin(*cluster_);
  const Json doc = Json::parse(admin.metrics_json());
  EXPECT_EQ(doc.at("metrics").at("nodes").size(), 3u);
  EXPECT_GT(doc.at("metrics").at("sim_time_us").as_int(), 0);
  EXPECT_TRUE(doc.at("latencies").contains("invoke.write"));
  EXPECT_GT(doc.at("trace").at("events").size(), 0u);
  const Json& first = doc.at("trace").at("events").at(0);
  EXPECT_TRUE(first.contains("seq"));
  EXPECT_TRUE(first.contains("at_us"));
  EXPECT_TRUE(first.contains("kind"));
}

TEST_F(TracedClusterTest, MetricsServletServesJsonAndTimeline) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  EvalApp::run_op(cluster_->node(0), ids[0], "emptySatisfied");

  web::MetricsServlet servlet(*cluster_);
  EXPECT_TRUE(servlet.handles("/metrics"));
  EXPECT_TRUE(servlet.handles("/timeline"));
  EXPECT_FALSE(servlet.handles("/business"));

  const web::HttpResponse metrics =
      servlet.handle(web::HttpRequest{"/metrics", {}});
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.kind, "metrics");
  const Json doc = Json::parse(metrics.fields.at("body"));
  EXPECT_TRUE(doc.contains("metrics"));
  EXPECT_TRUE(doc.contains("trace"));

  const web::HttpResponse timeline =
      servlet.handle(web::HttpRequest{"/timeline", {}});
  EXPECT_EQ(timeline.kind, "timeline");
  EXPECT_NE(timeline.fields.at("body").find("invocation.start"),
            std::string::npos);

  const web::HttpResponse missing =
      servlet.handle(web::HttpRequest{"/nope", {}});
  EXPECT_EQ(missing.status, 404);
}

TEST_F(TracedClusterTest, EveryTracedEventReachesItsRootSpan) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 2);
  EvalApp::run_op(cluster_->node(0), ids[0], "setValue",
                  {Value{std::string{"x"}}});
  cluster_->inject(fault::split_indices({{0, 1}, {2}}));
  EvalApp::run_op_negotiated(cluster_->node(0), ids[0], "emptyThreat",
                             std::make_shared<AcceptAllNegotiation>());
  cluster_->inject(fault::Heal{});
  cluster_->reconcile();

  const std::vector<TraceEvent> events = cluster_->obs().trace().events();
  ASSERT_EQ(cluster_->obs().trace().dropped(), 0u);
  const obs::TraceAnalysis analysis = obs::analyze(events);
  ASSERT_FALSE(analysis.traces.empty());

  // Index the trees by trace id.
  std::map<std::uint64_t, const obs::SpanTree*> trees;
  for (const obs::SpanTree& tree : analysis.trees) {
    trees[tree.trace_id] = &tree;
  }

  // Acceptance: every event stamped with a trace id hangs off a span whose
  // parent chain ends at a root of that trace's tree.
  for (const TraceEvent& e : events) {
    if (e.trace_id == 0) continue;
    ASSERT_NE(e.span_id, 0u) << "traced event without a span: "
                             << obs::to_string(e.kind);
    auto it = trees.find(e.trace_id);
    ASSERT_NE(it, trees.end());
    const obs::SpanTree& tree = *it->second;
    const obs::Span* span = tree.find(e.span_id);
    ASSERT_NE(span, nullptr) << obs::to_string(e.kind);
    std::size_t hops = 0;
    while (span->parent != 0 && tree.find(span->parent) != nullptr &&
           hops++ < 64) {
      span = tree.find(span->parent);
    }
    EXPECT_NE(std::find(tree.roots.begin(), tree.roots.end(), span->id),
              tree.roots.end())
        << "span chain of " << obs::to_string(e.kind)
        << " does not reach a root";
  }

  // Nothing was dropped, so every span has both markers, and the pipeline's
  // layers all opened spans: validation and 2PC inside the invocation,
  // GCS legs and backup propagation across "nodes", and the reconcile pass
  // with its per-threat re-evaluation stitched to the originating trace.
  std::set<std::string> labels;
  for (const obs::SpanTree& tree : analysis.trees) {
    for (const auto& [id, span] : tree.spans) {
      (void)id;
      EXPECT_TRUE(span.saw_start && span.saw_end) << span.label;
      labels.insert(span.label);
    }
  }
  for (const char* expected :
       {"validation", "2pc", "gcs.multicast", "replication.propagate",
        "reconcile", "reconcile.threat"}) {
    EXPECT_EQ(labels.count(expected), 1u) << expected;
  }

  // The trace-driven checker agrees with the scenario's clean outcome.
  const obs::TraceCheckResult verdict = obs::check_events(events);
  EXPECT_TRUE(verdict.complete);
  EXPECT_TRUE(verdict.ok()) << (verdict.violations.empty()
                                    ? ""
                                    : verdict.violations.front().detail);
  EXPECT_GT(verdict.reconciles, 0u);
  EXPECT_GT(verdict.threats_tracked, 0u);
}

TEST_F(TracedClusterTest, MetricsJsonCarriesSpansAndCriticalPath) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  EvalApp::run_op(cluster_->node(0), ids[0], "setValue",
                  {Value{std::string{"x"}}});

  AdminConsole admin(*cluster_);
  const Json doc = Json::parse(admin.metrics_json());
  ASSERT_TRUE(doc.contains("spans"));
  const Json& spans = doc.at("spans");
  EXPECT_GT(spans.at("traces").as_int(), 0);
  EXPECT_GT(spans.at("traced_events").as_int(), 0);
  ASSERT_GT(spans.at("top").size(), 0u);
  const Json& top = spans.at("top").at(0);
  EXPECT_FALSE(top.at("root").as_string().empty());
  EXPECT_GE(top.at("duration_us").as_int(), 0);
  EXPECT_TRUE(top.at("phases").is_object());

  ASSERT_TRUE(doc.contains("critical_path"));
  ASSERT_GT(doc.at("critical_path").size(), 0u);
  const Json& hop = doc.at("critical_path").at(0);
  for (const char* field : {"span", "start_us", "end_us", "self_us"}) {
    EXPECT_TRUE(hop.contains(field)) << field;
  }

  // The exported trace block round-trips into the offline analyzer: the
  // CLI sees the same spans the in-process analysis saw.
  const std::vector<TraceEvent> rebuilt = obs::events_from_json(doc);
  EXPECT_EQ(rebuilt.size(), cluster_->obs().trace().size());
  const obs::TraceAnalysis offline = obs::analyze(rebuilt);
  EXPECT_EQ(offline.traces.size(),
            static_cast<std::size_t>(spans.at("traces").as_int()));
}

TEST_F(TracedClusterTest, PrometheusExpositionServed) {
  const auto ids = EvalApp::create_entities(cluster_->node(0), 1);
  EvalApp::run_op(cluster_->node(0), ids[0], "setValue",
                  {Value{std::string{"x"}}});

  web::MetricsServlet servlet(*cluster_);
  EXPECT_TRUE(servlet.handles("/metrics.prom"));
  const web::HttpResponse response =
      servlet.handle(web::HttpRequest{"/metrics.prom", {}});
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.fields.at("content-type").find("text/plain"),
            std::string::npos);
  const std::string& body = response.fields.at("body");
  for (const char* needle :
       {"# TYPE dedisys_sim_time_us gauge", "dedisys_node_mode{",
        "dedisys_node_total{", "dedisys_latency_us",
        "dedisys_trace_events_recorded_total",
        "dedisys_trace_phase_self_us_total{"}) {
    EXPECT_NE(body.find(needle), std::string::npos) << needle;
  }
}

// ---------------------------------------------------------------------------
// Span propagation under gray faults
// ---------------------------------------------------------------------------

TEST(SpanPropagation, GrayChaosMessagesCarrySpanContext) {
  scenarios::ChaosOptions options;
  options.seed = 8091;
  options.gray = true;
  options.ops = 50;
  options.fault_events = 8;
  const scenarios::ChaosResult first = scenarios::run_chaos(options);
  const scenarios::ChaosResult second = scenarios::run_chaos(options);
  // Span minting is part of the deterministic run: byte-identical replay.
  EXPECT_EQ(first.timeline, second.timeline);

  const std::vector<TraceEvent> events =
      obs::events_from_json(Json::parse(first.metrics_json));
  ASSERT_FALSE(events.empty());
  std::set<std::uint64_t> span_traces;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::SpanStart) span_traces.insert(e.trace_id);
  }
  // Every cross-node message event — retries after loss, duplicate
  // suppression, primary->backup propagation — carries the originating
  // trace: the causal context survives the "network" hop.
  std::size_t checked = 0;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::ReplicaPropagate &&
        e.kind != TraceEventKind::MsgRetried &&
        e.kind != TraceEventKind::MsgDeduped) {
      continue;
    }
    ++checked;
    EXPECT_NE(e.trace_id, 0u) << obs::to_string(e.kind) << " seq " << e.seq;
    EXPECT_NE(e.span_id, 0u) << obs::to_string(e.kind) << " seq " << e.seq;
    EXPECT_EQ(span_traces.count(e.trace_id), 1u)
        << obs::to_string(e.kind) << " seq " << e.seq
        << " carries a trace id no span opened";
  }
  EXPECT_GT(checked, 0u);
}

TEST(SpanPropagation, TracingInvariantUnderGrayFaults) {
  const auto run = [](bool observability) {
    RandomPlanOptions popt;
    popt.nodes = {NodeId{0}, NodeId{1}, NodeId{2}};
    popt.events = 6;
    popt.horizon = sim_ms(80);

    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.flags.observability = observability;
    Cluster cluster(cfg);
    EvalApp::define_classes(cluster.classes());
    EvalApp::register_constraints(cluster.constraints());
    FaultEngine engine(cluster.sim().network, random_gray_plan(4242, popt));
    cluster.adopt_fault_engine(engine);

    const auto ids = EvalApp::create_entities(cluster.node(0), 3);
    const Value payload{std::string{"x"}};
    for (int i = 0; i < 40; ++i) {
      engine.poll();
      try {
        EvalApp::run_op(cluster.node(i % 3), ids[i % ids.size()], "setValue",
                        {payload});
      } catch (const std::exception&) {
        // Crashed node or rejected threat: identical on both runs.
      }
    }
    while (!engine.done()) engine.advance_to(engine.next_at());
    cluster.inject(fault::Heal{});
    cluster.reconcile();
    return cluster.sim().clock.now();
  };
  // Gray faults, retries and backup applies traced or not: the simulated
  // clock lands on the same stamp.
  EXPECT_EQ(run(false), run(true));
}

TEST(TraceDisabled, DisabledClusterRecordsNothing) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  EvalApp::define_classes(cluster.classes());
  EvalApp::register_constraints(cluster.constraints());
  const auto ids = EvalApp::create_entities(cluster.node(0), 1);
  EvalApp::run_op(cluster.node(0), ids[0], "emptySatisfied");

  EXPECT_FALSE(cluster.obs().enabled());
  EXPECT_EQ(cluster.obs().trace().size(), 0u);
  EXPECT_TRUE(cluster.obs().latencies().empty());
}

TEST(TraceDisabled, TracingDoesNotChangeSimulatedTime) {
  const auto run = [](bool observability) {
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.flags.observability = observability;
    Cluster cluster(cfg);
    EvalApp::define_classes(cluster.classes());
    EvalApp::register_constraints(cluster.constraints());
    const auto ids = EvalApp::create_entities(cluster.node(0), 3);
    for (int i = 0; i < 5; ++i) {
      EvalApp::run_op(cluster.node(0), ids[i % ids.size()], "setValue",
                      {Value{std::string{"x"}}});
    }
    cluster.inject(fault::split_indices({{0, 1}, {2}}));
    EvalApp::run_op_negotiated(cluster.node(0), ids[0], "emptyThreat",
                               std::make_shared<AcceptAllNegotiation>());
    cluster.inject(fault::Heal{});
    cluster.reconcile();
    return cluster.sim().clock.now();
  };
  // Deterministic simulation: recording costs zero simulated time.
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace dedisys
