#include <gtest/gtest.h>

#include "persist/history_store.h"
#include "persist/record_store.h"
#include "runtime/sim_runtime.h"

namespace dedisys {
namespace {

class RecordStoreTest : public ::testing::Test {
 protected:
  RecordStoreTest() : store_(rt_) {}

  SimClock clock_;
  CostModel cost_;
  SimRuntime rt_{clock_, cost_};
  RecordStore store_;
};

TEST_F(RecordStoreTest, PutGetRoundTrip) {
  store_.put("t", "k", AttributeMap{{"a", Value{std::int64_t{7}}}});
  const auto rec = store_.get("t", "k");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(as_int(rec->at("a")), 7);
}

TEST_F(RecordStoreTest, GetMissingReturnsNullopt) {
  EXPECT_FALSE(store_.get("t", "missing").has_value());
  EXPECT_FALSE(store_.get("no-table", "k").has_value());
}

TEST_F(RecordStoreTest, PutOverwrites) {
  store_.put("t", "k", AttributeMap{{"a", Value{std::int64_t{1}}}});
  store_.put("t", "k", AttributeMap{{"a", Value{std::int64_t{2}}}});
  EXPECT_EQ(as_int(store_.get("t", "k")->at("a")), 2);
  EXPECT_EQ(store_.count("t"), 1u);
}

TEST_F(RecordStoreTest, EraseRemoves) {
  store_.put("t", "k", {});
  EXPECT_TRUE(store_.erase("t", "k"));
  EXPECT_FALSE(store_.erase("t", "k"));
  EXPECT_EQ(store_.count("t"), 0u);
}

TEST_F(RecordStoreTest, OperationsChargeDatabaseCosts) {
  const SimTime t0 = clock_.now();
  store_.put("t", "k", {});
  EXPECT_EQ(clock_.now() - t0, cost_.db_write);
  const SimTime t1 = clock_.now();
  (void)store_.get("t", "k");
  EXPECT_EQ(clock_.now() - t1, cost_.db_read);
  const SimTime t2 = clock_.now();
  (void)store_.contains("t", "k");
  EXPECT_EQ(clock_.now() - t2, cost_.db_read);
  const SimTime t3 = clock_.now();
  store_.erase("t", "k");
  EXPECT_EQ(clock_.now() - t3, cost_.db_delete);
}

TEST_F(RecordStoreTest, ScanReturnsKeyOrderAndChargesPerRecord) {
  store_.put("t", "b", {});
  store_.put("t", "a", {});
  store_.put("t", "c", {});
  const SimTime t0 = clock_.now();
  const auto rows = store_.scan("t");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "a");
  EXPECT_EQ(rows[1].first, "b");
  EXPECT_EQ(rows[2].first, "c");
  EXPECT_EQ(clock_.now() - t0, 3 * cost_.db_read);
}

TEST_F(RecordStoreTest, StatisticsTrackOperations) {
  store_.put("t", "a", {});
  store_.put("t", "b", {});
  (void)store_.get("t", "a");
  store_.erase("t", "b");
  EXPECT_EQ(store_.write_count(), 2u);
  EXPECT_EQ(store_.read_count(), 1u);
  EXPECT_EQ(store_.delete_count(), 1u);
}

TEST_F(RecordStoreTest, TablesAreIndependent) {
  store_.put("t1", "k", AttributeMap{{"v", Value{std::int64_t{1}}}});
  store_.put("t2", "k", AttributeMap{{"v", Value{std::int64_t{2}}}});
  EXPECT_EQ(as_int(store_.get("t1", "k")->at("v")), 1);
  EXPECT_EQ(as_int(store_.get("t2", "k")->at("v")), 2);
  store_.erase("t1", "k");
  EXPECT_TRUE(store_.get("t2", "k").has_value());
}

class HistoryStoreTest : public ::testing::Test {
 protected:
  HistoryStoreTest() : store_(rt_) {}

  static EntitySnapshot snap(std::uint64_t id, std::uint64_t version) {
    EntitySnapshot s;
    s.id = ObjectId{id};
    s.class_name = "C";
    s.version = version;
    return s;
  }

  SimClock clock_;
  CostModel cost_;
  SimRuntime rt_{clock_, cost_};
  ReplicaHistoryStore store_;
};

TEST_F(HistoryStoreTest, AppendsInOrderWithTimestamps) {
  store_.append(snap(1, 1));
  clock_.advance(sim_ms(2));
  store_.append(snap(1, 2));
  const auto& h = store_.history(ObjectId{1});
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].state.version, 1u);
  EXPECT_EQ(h[1].state.version, 2u);
  EXPECT_LT(h[0].when, h[1].when);
}

TEST_F(HistoryStoreTest, AppendChargesHistoryWrite) {
  const SimTime t0 = clock_.now();
  store_.append(snap(1, 1));
  EXPECT_EQ(clock_.now() - t0, cost_.history_write);
}

TEST_F(HistoryStoreTest, HistoryOfUnknownObjectIsEmpty) {
  EXPECT_TRUE(store_.history(ObjectId{9}).empty());
  EXPECT_FALSE(store_.has_history(ObjectId{9}));
}

TEST_F(HistoryStoreTest, ClearPerObjectAndTotal) {
  store_.append(snap(1, 1));
  store_.append(snap(2, 1));
  store_.append(snap(2, 2));
  EXPECT_EQ(store_.total_entries(), 3u);
  store_.clear(ObjectId{2});
  EXPECT_EQ(store_.total_entries(), 1u);
  EXPECT_TRUE(store_.has_history(ObjectId{1}));
  store_.clear_all();
  EXPECT_EQ(store_.total_entries(), 0u);
}

}  // namespace
}  // namespace dedisys
