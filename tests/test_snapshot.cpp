// Record-store durability: snapshot save/load round-trips and recovery of
// persistent threat state after a simulated process restart.  Also covers
// the AdminConsole's value-typed ClusterSnapshot API.
#include <gtest/gtest.h>

#include <sstream>

#include "constraints/threats.h"
#include "middleware/admin.h"
#include "persist/snapshot.h"
#include "runtime/sim_runtime.h"

namespace dedisys {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : store_(rt_), other_(rt_) {}

  SimClock clock_;
  CostModel cost_;
  SimRuntime rt_{clock_, cost_};
  RecordStore store_;
  RecordStore other_;
};

TEST_F(SnapshotTest, RoundTripsAllValueTypes) {
  AttributeMap record;
  record["null"] = Value{};
  record["bool"] = Value{true};
  record["int"] = Value{std::int64_t{-42}};
  record["double"] = Value{3.14159265358979};
  record["string"] = Value{std::string{"plain"}};
  record["object"] = Value{ObjectId{77}};
  store_.put("t", "k", record);

  std::stringstream buffer;
  save_snapshot(store_, buffer);
  load_snapshot(other_, buffer);

  const auto loaded = other_.get("t", "k");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, record);
}

TEST_F(SnapshotTest, SurvivesHostileStringContent) {
  AttributeMap record;
  record["tricky"] = Value{std::string{"spaces and\nnewlines and 17 tokens"}};
  record["empty"] = Value{std::string{}};
  store_.put("table with space?", "key with space", record);

  std::stringstream buffer;
  save_snapshot(store_, buffer);
  load_snapshot(other_, buffer);
  const auto loaded = other_.get("table with space?", "key with space");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, record);
}

TEST_F(SnapshotTest, MultipleTablesAndRecordsPreserved) {
  for (int t = 0; t < 3; ++t) {
    for (int r = 0; r < 5; ++r) {
      store_.put("table" + std::to_string(t), "rec" + std::to_string(r),
                 AttributeMap{{"v", Value{std::int64_t{t * 10 + r}}}});
    }
  }
  std::stringstream buffer;
  save_snapshot(store_, buffer);
  load_snapshot(other_, buffer);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(other_.count("table" + std::to_string(t)), 5u);
  }
  EXPECT_EQ(as_int(other_.get("table2", "rec3")->at("v")), 23);
}

TEST_F(SnapshotTest, LoadReplacesExistingContent) {
  other_.put("old", "stale", {});
  std::stringstream buffer;
  store_.put("new", "fresh", {});
  save_snapshot(store_, buffer);
  load_snapshot(other_, buffer);
  EXPECT_EQ(other_.count("old"), 0u);
  EXPECT_EQ(other_.count("new"), 1u);
}

TEST_F(SnapshotTest, CorruptInputFailsLoudly) {
  const char* bad[] = {
      "record 1 k 0",           // record before table
      "table 5 abc",            // truncated token
      "table 3 abc\njunk",      // unknown item
      "table 3 abc\nrecord 1 k notanumber",
  };
  for (const char* text : bad) {
    std::stringstream buffer{text};
    EXPECT_THROW(load_snapshot(other_, buffer), ConfigError) << text;
  }
}

TEST_F(SnapshotTest, ThreatStoreStateSurvivesRestart) {
  // Persist threats, "restart" by loading the snapshot into a fresh store,
  // and rebuild the ThreatStore index from durable state.
  ThreatStore threats(store_);
  ConsistencyThreat t;
  t.constraint_name = "C1";
  t.context_object = ObjectId{5};
  t.degree = SatisfactionDegree::PossiblySatisfied;
  t.affected_objects = {ObjectId{5}};
  threats.store(t);
  t.context_object = ObjectId{6};
  threats.store(t);

  std::stringstream buffer;
  save_snapshot(store_, buffer);
  load_snapshot(other_, buffer);

  ThreatStore recovered(other_);
  recovered.rebuild_index();
  EXPECT_EQ(recovered.identity_count(), 2u);
  EXPECT_TRUE(recovered.has("C1@5"));
  EXPECT_TRUE(recovered.has("C1@6"));
  const auto all = recovered.load_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].threat.constraint_name, "C1");
}

// -- AdminConsole ClusterSnapshot (typed snapshot API) -----------------------

TEST(ClusterSnapshotTest, TakeAndRestoreRoundTripsClusterState) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);
  AdminConsole admin(cluster);

  cluster.node(0).db().put("entities", "1",
                           AttributeMap{{"v", Value{std::int64_t{7}}}});
  cluster.node(1).db().put("entities", "2",
                           AttributeMap{{"v", Value{std::int64_t{8}}}});
  ConsistencyThreat threat;
  threat.constraint_name = "C1";
  threat.context_object = ObjectId{1};
  threat.degree = SatisfactionDegree::PossiblySatisfied;
  cluster.threats().store(threat);

  const ClusterSnapshot snap = admin.take_snapshot();
  ASSERT_EQ(snap.node_states.size(), 2u);
  EXPECT_FALSE(snap.threat_state.empty());

  // Mutate everything, then restore the snapshot.
  cluster.node(0).db().erase("entities", "1");
  cluster.node(1).db().put("entities", "9", {});
  cluster.threats().remove("C1@1");
  admin.restore(snap);

  EXPECT_TRUE(cluster.node(0).db().contains("entities", "1"));
  EXPECT_FALSE(cluster.node(1).db().contains("entities", "9"));
  EXPECT_EQ(cluster.threats().identity_count(), 1u);
  EXPECT_TRUE(cluster.threats().has("C1@1"));
}

}  // namespace
}  // namespace dedisys
