// Script-based test driver (the DedisysTest analogue) and the virtual-time
// failure schedule.
#include <gtest/gtest.h>

#include "scenarios/evalapp.h"
#include "scenarios/flight.h"
#include "scenarios/script.h"

namespace dedisys {
namespace {

using scenarios::EvalApp;
using scenarios::FailureSchedule;
using scenarios::FlightBooking;
using scenarios::ScriptReport;
using scenarios::ScriptRunner;

class ScriptTest : public ::testing::Test {
 protected:
  ScriptTest() : cluster_(make_config()), runner_(cluster_) {
    EvalApp::define_classes(cluster_.classes());
    EvalApp::register_constraints(cluster_.constraints());
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  Cluster cluster_;
  ScriptRunner runner_;
};

TEST_F(ScriptTest, RunsTheSection51WorkloadEndToEnd) {
  const ScriptReport report = runner_.run(R"(
    # the Section 5.1 measurement sequence, scaled down
    create TestEntity 50
    invoke setValue 50 payload
    invoke getValue 50
    invoke emptyPlain 50
    invoke emptySatisfied 50
    delete
  )");
  ASSERT_EQ(report.commands.size(), 6u);
  EXPECT_EQ(report.committed_ops, 50u * 6);
  EXPECT_EQ(report.aborted_ops, 0u);
  for (const auto& cmd : report.commands) {
    EXPECT_GT(cmd.ops_per_second(), 0.0) << cmd.command;
  }
}

TEST_F(ScriptTest, DegradedModeScenarioWithAssertions) {
  const ScriptReport report = runner_.run(R"(
    create TestEntity 10
    expect-mode healthy
    split 0,1|2
    expect-mode degraded
    negotiate accept
    invoke emptyThreat 10
    expect-threats 10
    heal
    reconcile
    expect-threats 0
    expect-mode healthy
    delete
  )");
  EXPECT_EQ(report.aborted_ops, 0u);
}

TEST_F(ScriptTest, RejectNegotiationAbortsOperations) {
  const ScriptReport report = runner_.run(R"(
    create TestEntity 5
    split 0,1|2
    negotiate reject
    invoke emptyThreat 5
    expect-threats 0
  )");
  EXPECT_EQ(report.aborted_ops, 5u);
}

TEST_F(ScriptTest, AttributeAssertions) {
  EXPECT_NO_THROW(runner_.run(R"(
    create TestEntity 3
    invoke setValue 3 hello
    expect-attr 0 value hello
    expect-attr 2 value hello
  )"));
  EXPECT_THROW(runner_.run(R"(
    create TestEntity 1
    invoke setValue 1 hello
    expect-attr 0 value goodbye
  )"),
               DedisysError);
}

TEST_F(ScriptTest, SyntaxErrorsAreReportedWithLineNumbers) {
  try {
    runner_.run("\n\nbogus command\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW(runner_.run("invoke setValue 5 x"), ConfigError);  // no create
  EXPECT_THROW(runner_.run("node 99"), ConfigError);
  EXPECT_THROW(runner_.run("create TestEntity notanumber"), ConfigError);
  EXPECT_THROW(runner_.run("negotiate maybe"), ConfigError);
}

TEST_F(ScriptTest, FailedThreatAssertionThrows) {
  EXPECT_THROW(runner_.run(R"(
    create TestEntity 1
    expect-threats 5
  )"),
               DedisysError);
}

TEST(FailureScheduleTest, FiresAtVirtualTimes) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints());

  FailureSchedule schedule(cluster);
  schedule.split_at(sim_sec(10), {{0, 1}, {2}})
      .heal_at(sim_sec(20))
      .crash_at(sim_sec(30), 2)
      .recover_at(sim_sec(40), 2);

  cluster.sim().events.run_until(sim_sec(5));
  EXPECT_EQ(cluster.node(0).mode(), SystemMode::Healthy);
  cluster.sim().events.run_until(sim_sec(15));
  EXPECT_EQ(cluster.node(0).mode(), SystemMode::Degraded);
  cluster.sim().events.run_until(sim_sec(25));
  EXPECT_EQ(cluster.node(0).mode(), SystemMode::Reconciling);
  cluster.sim().events.run_until(sim_sec(35));
  EXPECT_FALSE(cluster.sim().network.is_alive(NodeId{2}));
  cluster.sim().events.run_until(sim_sec(45));
  EXPECT_TRUE(cluster.sim().network.is_alive(NodeId{2}));
}

}  // namespace
}  // namespace dedisys
