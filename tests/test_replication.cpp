// Replication service behaviour (Section 4.3): routing, propagation,
// staleness per protocol, conflict detection and replica reconciliation.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;

Cluster make_cluster(ReplicationProtocol protocol, std::size_t nodes = 3) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.protocol = protocol;
  return Cluster(cfg);
}

class ReplicationFixture
    : public ::testing::TestWithParam<ReplicationProtocol> {
 protected:
  ReplicationFixture() : cluster_(make_cluster(GetParam())) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(
        cluster_.constraints(), false, SatisfactionDegree::Uncheckable);
  }

  Cluster cluster_;
};

TEST_P(ReplicationFixture, CreateReplicatesToAllNodes) {
  const ObjectId f = FlightBooking::create_flight(cluster_.node(1), 50);
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_TRUE(cluster_.node(i).replication().has_local_replica(f));
  }
  EXPECT_EQ(cluster_.directory()->get(f).designated_primary, NodeId{1});
}

TEST_P(ReplicationFixture, WritesRouteToDesignatedPrimaryWhenHealthy) {
  const ObjectId f = FlightBooking::create_flight(cluster_.node(1), 50);
  EXPECT_EQ(cluster_.node(0).replication().execution_node(f, true), NodeId{1});
  EXPECT_EQ(cluster_.node(2).replication().execution_node(f, true), NodeId{1});
}

TEST_P(ReplicationFixture, ReadsAreLocalOnEveryReplica) {
  const ObjectId f = FlightBooking::create_flight(cluster_.node(1), 50);
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_EQ(cluster_.node(i).replication().execution_node(f, false),
              NodeId{i});
  }
}

TEST_P(ReplicationFixture, SynchronousPropagationKeepsReplicasIdentical) {
  const ObjectId f = FlightBooking::create_flight(cluster_.node(0), 50);
  FlightBooking::sell(cluster_.node(2), f, 7);  // routed to primary 0
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_EQ(as_int(cluster_.node(i)
                         .replication()
                         .local_replica(f)
                         .get("soldTickets")),
              7);
  }
}

TEST_P(ReplicationFixture, NothingPossiblyStaleWhenHealthy) {
  const ObjectId f = FlightBooking::create_flight(cluster_.node(0), 50);
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_FALSE(cluster_.node(i).replication().possibly_stale(f));
    EXPECT_TRUE(cluster_.node(i).replication().reachable(f));
  }
}

TEST_P(ReplicationFixture, ObjectFullyInsidePartitionIsNeverStale) {
  // Replicas restricted to nodes 0 and 1; partition {0,1} keeps them all.
  DedisysNode& n0 = cluster_.node(0);
  TxScope tx(n0.tx());
  const ObjectId id = n0.replication().create(
      "Flight", tx.id(), std::vector<NodeId>{NodeId{0}, NodeId{1}});
  tx.commit();
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_FALSE(n0.replication().possibly_stale(id));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ReplicationFixture,
    ::testing::Values(ReplicationProtocol::PrimaryBackup,
                      ReplicationProtocol::PrimaryPartition,
                      ReplicationProtocol::AdaptiveVoting),
    [](const ::testing::TestParamInfo<ReplicationProtocol>& info) {
      switch (info.param) {
        case ReplicationProtocol::PrimaryBackup: return "PrimaryBackup";
        case ReplicationProtocol::PrimaryPartition: return "P4";
        case ReplicationProtocol::AdaptiveVoting: return "AdaptiveVoting";
      }
      return "Unknown";
    });

// ---------------------------------------------------------------------------
// Protocol-specific degraded-mode behaviour
// ---------------------------------------------------------------------------

TEST(ProtocolBehaviour, P4ElectsTemporaryPrimaryPerPartition) {
  Cluster c = make_cluster(ReplicationProtocol::PrimaryPartition);
  FlightBooking::define_classes(c.classes());
  FlightBooking::register_constraints(c.constraints(), false,
                                      SatisfactionDegree::Uncheckable);
  const ObjectId f = FlightBooking::create_flight(c.node(0), 50);
  c.inject(fault::split_indices({{0, 1}, {2}}));
  // Partition with the designated primary keeps it.
  EXPECT_EQ(c.node(1).replication().execution_node(f, true), NodeId{0});
  // The other partition elects its lowest reachable replica node.
  EXPECT_EQ(c.node(2).replication().execution_node(f, true), NodeId{2});
  // Every partition is possibly stale under P4 (Section 3.1).
  EXPECT_TRUE(c.node(0).replication().possibly_stale(f));
  EXPECT_TRUE(c.node(2).replication().possibly_stale(f));
}

TEST(ProtocolBehaviour, PrimaryBackupOnlyMajorityWritesAndIsFresh) {
  Cluster c = make_cluster(ReplicationProtocol::PrimaryBackup);
  FlightBooking::define_classes(c.classes());
  FlightBooking::register_constraints(c.constraints(), false,
                                      SatisfactionDegree::Uncheckable);
  const ObjectId f = FlightBooking::create_flight(c.node(2), 50);
  c.inject(fault::split_indices({{0, 1}, {2}}));
  // Designated primary (node 2) is in the minority: the majority re-elects.
  EXPECT_EQ(c.node(0).replication().execution_node(f, true), NodeId{0});
  // Minority cannot write at all.
  EXPECT_THROW((void)c.node(2).replication().execution_node(f, true),
               ObjectUnreachable);
  // Majority views are authoritative; minority views possibly stale.
  EXPECT_FALSE(c.node(0).replication().possibly_stale(f));
  EXPECT_TRUE(c.node(2).replication().possibly_stale(f));
}

TEST(ProtocolBehaviour, AdaptiveVotingWritesEverywhereWithQuorumCost) {
  Cluster c = make_cluster(ReplicationProtocol::AdaptiveVoting);
  FlightBooking::define_classes(c.classes());
  FlightBooking::register_constraints(c.constraints(), false,
                                      SatisfactionDegree::Uncheckable);
  const ObjectId f = FlightBooking::create_flight(c.node(0), 50);
  c.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_NO_THROW(FlightBooking::sell(c.node(0), f, 1));
  EXPECT_NO_THROW(FlightBooking::sell(c.node(2), f, 1));
  EXPECT_TRUE(c.node(0).replication().possibly_stale(f));
}

// ---------------------------------------------------------------------------
// Degraded-mode bookkeeping and replica reconciliation
// ---------------------------------------------------------------------------

class ReconcileTest : public ::testing::Test {
 protected:
  ReconcileTest() : cluster_(make_cluster(ReplicationProtocol::PrimaryPartition)) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(cluster_.constraints(), false,
                                        SatisfactionDegree::Uncheckable);
    flight_ = FlightBooking::create_flight(cluster_.node(0), 100);
  }

  Cluster cluster_;
  ObjectId flight_;
};

TEST_F(ReconcileTest, DegradedUpdatesTrackedPerNode) {
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 1);
  EXPECT_EQ(cluster_.node(0).replication().degraded_updates().count(flight_),
            1u);
  EXPECT_EQ(cluster_.node(2).replication().degraded_updates().count(flight_),
            0u);
}

TEST_F(ReconcileTest, HistoryCapturedOnlyWhenEnabled) {
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 1);
  FlightBooking::sell(cluster_.node(0), flight_, 1);
  EXPECT_EQ(cluster_.node(0).replication().history().history(flight_).size(),
            2u);

  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.keep_history = false;
  Cluster reduced(cfg);
  FlightBooking::define_classes(reduced.classes());
  FlightBooking::register_constraints(reduced.constraints(), false,
                                      SatisfactionDegree::Uncheckable);
  const ObjectId f2 = FlightBooking::create_flight(reduced.node(0), 100);
  reduced.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(reduced.node(0), f2, 1);
  EXPECT_EQ(reduced.node(0).replication().history().total_entries(), 0u);
}

TEST_F(ReconcileTest, SinglePartitionUpdateWinsWithoutConflict) {
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 4);
  cluster_.inject(fault::Heal{});
  const auto report = cluster_.reconcile();
  EXPECT_EQ(report.replica.conflicts, 0u);
  EXPECT_EQ(report.replica.updates_propagated, 1u);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(2), flight_), 4);
}

TEST_F(ReconcileTest, WriteWriteConflictResolvedByLatestVersionByDefault) {
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 1);  // version +1
  FlightBooking::sell(cluster_.node(2), flight_, 1);
  FlightBooking::sell(cluster_.node(2), flight_, 1);  // partition B newer
  cluster_.inject(fault::Heal{});
  const auto report = cluster_.reconcile();
  EXPECT_EQ(report.replica.conflicts, 1u);
  // Latest version (partition B: 2 sold) wins everywhere.
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_EQ(as_int(cluster_.node(i)
                         .replication()
                         .local_replica(flight_)
                         .get("soldTickets")),
              2);
  }
}

TEST_F(ReconcileTest, ApplicationHandlerOverridesGenericPolicy) {
  class PickSmallest final : public ReplicaConsistencyHandler {
   public:
    EntitySnapshot reconcile_replicas(
        ObjectId, const std::vector<EntitySnapshot>& candidates) override {
      EntitySnapshot best = candidates.front();
      for (const auto& c : candidates) {
        if (as_int(c.attributes.at("soldTickets")) <
            as_int(best.attributes.at("soldTickets"))) {
          best = c;
        }
      }
      best.version += 10;  // make the merged state the newest
      return best;
    }
  } handler;

  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 1);
  FlightBooking::sell(cluster_.node(2), flight_, 5);
  cluster_.inject(fault::Heal{});
  (void)cluster_.reconcile(&handler);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight_), 1);
}

TEST_F(ReconcileTest, ConflictTrackingClearsAfterReconciliation) {
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 1);
  FlightBooking::sell(cluster_.node(2), flight_, 1);
  cluster_.inject(fault::Heal{});
  (void)cluster_.reconcile();
  EXPECT_TRUE(cluster_.node(0).replication().degraded_updates().empty());
  EXPECT_TRUE(cluster_.node(2).replication().degraded_updates().empty());
  EXPECT_EQ(cluster_.node(0).replication().history().total_entries(), 0u);
  EXPECT_EQ(cluster_.node(0).mode(), SystemMode::Healthy);
}

TEST_F(ReconcileTest, RollbackSearchRestoresConsistentHistoricalState) {
  // Overbook during the partition, then let the rollback search walk the
  // degraded-mode history until the ticket constraint holds again.
  FlightBooking::sell(cluster_.node(0), flight_, 95);  // healthy: 95/100
  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight_, 3);   // A: 98
  FlightBooking::sell(cluster_.node(2), flight_, 4);   // B: 99
  cluster_.inject(fault::Heal{});

  // Additive merge creates the violation (95+3+4 = 102 > 100).
  class AdditiveMerge final : public ReplicaConsistencyHandler {
   public:
    EntitySnapshot reconcile_replicas(
        ObjectId, const std::vector<EntitySnapshot>& c) override {
      std::int64_t total = 95;
      std::uint64_t maxv = 0;
      for (const auto& s : c) {
        total += as_int(s.attributes.at("soldTickets")) - 95;
        maxv = std::max(maxv, s.version);
      }
      EntitySnapshot out = c.front();
      out.attributes["soldTickets"] = Value{total};
      out.version = maxv + 1;
      return out;
    }
  } merge;

  // Mark the stored threat as rollback-allowed via dynamic negotiation.
  // (Already stored threats came from static negotiation; instead make the
  // threat rollback-capable by re-selling with a handler.)
  // Simpler: reconcile with rollback handler wired by the Cluster; the
  // stored threat must carry allow_rollback, so re-inject it:
  cluster_.threats().remove("TicketConstraint@" + to_string(flight_));
  ConsistencyThreat t;
  t.constraint_name = "TicketConstraint";
  t.context_object = flight_;
  t.degree = SatisfactionDegree::PossiblySatisfied;
  t.affected_objects = {flight_};
  t.instructions.allow_rollback = true;
  cluster_.threats().store(t);

  const auto report = cluster_.reconcile(&merge, nullptr);
  EXPECT_EQ(report.constraints.violations, 1u);
  EXPECT_EQ(report.constraints.resolved_by_rollback, 1u);
  // The rolled-back state satisfies the constraint, at the price of lost
  // updates (availability retrospectively reduced, Section 3.3).
  EXPECT_LE(FlightBooking::sold(cluster_.node(0), flight_), 100);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

}  // namespace
}  // namespace dedisys
