// Constraint inheritance / behavioral subtyping (Section 2.3.1, [DL96]):
// constraints of superclasses and interfaces also apply to subclasses;
// preconditions are concatenated with OR (a subclass may weaken them),
// postconditions and invariants with AND (a subclass may only strengthen).
#include <gtest/gtest.h>

#include "middleware/cluster.h"

namespace dedisys {
namespace {

ConstraintPtr predicate_constraint(
    const std::string& name, ConstraintType type,
    std::function<bool(ConstraintValidationContext&)> fn,
    bool needs_context = true) {
  auto c = std::make_shared<FunctionConstraint>(
      name, type, ConstraintPriority::Tradeable, std::move(fn));
  c->set_context_object_needed(needs_context);
  return c;
}

void register_for_class(ConstraintRepository& repo, ConstraintPtr c,
                        const std::string& cls, const std::string& method,
                        const std::vector<std::string>& params) {
  ConstraintRegistration reg;
  reg.constraint = std::move(c);
  reg.affected_methods.push_back(AffectedMethod{
      cls, MethodSignature{method, params},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  repo.register_constraint(std::move(reg));
}

class InheritanceTest : public ::testing::Test {
 protected:
  InheritanceTest() : cluster_(make_config()) {
    // Account (base): deposit(amount); SavingsAccount extends Account.
    ClassDescriptor& account = cluster_.classes().define("Account");
    account.define_property("balance", Value{std::int64_t{0}}, "int");
    account.define_method(
        MethodSignature{"deposit", {"int"}}, MethodKind::Mutator,
        [](Entity& self, MethodContext&, const std::vector<Value>& args) {
          self.set("balance",
                   Value{as_int(self.get("balance")) + as_int(args.at(0))});
          return Value{};
        });

    ClassDescriptor& savings = cluster_.classes().define("SavingsAccount");
    savings.set_super("Account");
    savings.add_interface("Auditable");
    savings.define_property("balance", Value{std::int64_t{0}}, "int");
    savings.define_method(
        MethodSignature{"deposit", {"int"}}, MethodKind::Mutator,
        [](Entity& self, MethodContext&, const std::vector<Value>& args) {
          self.set("balance",
                   Value{as_int(self.get("balance")) + as_int(args.at(0))});
          return Value{};
        });

    // Base precondition: deposits up to 1000.  Subclass precondition:
    // deposits up to 100.  OR semantics: the subclass call succeeds for
    // any amount <= 1000 (behavioral subtyping may only WEAKEN).
    register_for_class(cluster_.constraints(),
                       predicate_constraint(
                           "BaseDepositLimit", ConstraintType::Precondition,
                           [](ConstraintValidationContext& ctx) {
                             return as_int(ctx.arguments().at(0)) <= 1000;
                           },
                           false),
                       "Account", "deposit", {"int"});
    register_for_class(cluster_.constraints(),
                       predicate_constraint(
                           "SavingsDepositLimit", ConstraintType::Precondition,
                           [](ConstraintValidationContext& ctx) {
                             return as_int(ctx.arguments().at(0)) <= 100;
                           },
                           false),
                       "SavingsAccount", "deposit", {"int"});

    // Invariants are AND'd: base requires balance >= 0, interface requires
    // balance <= 5000 — both apply to SavingsAccount.
    register_for_class(cluster_.constraints(),
                       predicate_constraint(
                           "BalanceNonNegative", ConstraintType::HardInvariant,
                           [](ConstraintValidationContext& ctx) {
                             return as_int(ctx.context_entity().get(
                                        "balance")) >= 0;
                           }),
                       "Account", "deposit", {"int"});
    register_for_class(cluster_.constraints(),
                       predicate_constraint(
                           "AuditCeiling", ConstraintType::HardInvariant,
                           [](ConstraintValidationContext& ctx) {
                             return as_int(ctx.context_entity().get(
                                        "balance")) <= 5000;
                           }),
                       "Auditable", "deposit", {"int"});
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 1;
    return cfg;
  }

  ObjectId create(const std::string& cls) {
    DedisysNode& n = cluster_.node(0);
    TxScope tx(n.tx());
    const ObjectId id = n.create(tx.id(), cls);
    tx.commit();
    return id;
  }

  void deposit(ObjectId account, std::int64_t amount) {
    DedisysNode& n = cluster_.node(0);
    TxScope tx(n.tx());
    n.invoke(tx.id(), account, "deposit", {Value{amount}});
    tx.commit();
  }

  Cluster cluster_;
};

TEST_F(InheritanceTest, AncestryWalksSuperclassesAndInterfaces) {
  const auto chain = cluster_.classes().ancestry("SavingsAccount");
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], "SavingsAccount");
  EXPECT_EQ(chain[1], "Account");
  EXPECT_EQ(chain[2], "Auditable");
  // A class without hierarchy yields just itself.
  EXPECT_EQ(cluster_.classes().ancestry("Account"),
            (std::vector<std::string>{"Account"}));
}

TEST_F(InheritanceTest, SubclassPreconditionIsWeakenedByInheritedOne) {
  const ObjectId savings = create("SavingsAccount");
  // Within the subclass's own limit: trivially fine.
  EXPECT_NO_THROW(deposit(savings, 50));
  // Beyond the subclass limit but within the base limit: the OR of
  // preconditions still holds (the base contract admits the call).
  EXPECT_NO_THROW(deposit(savings, 500));
  // Beyond every level's limit: rejected.
  EXPECT_THROW(deposit(savings, 2000), ConstraintViolation);
}

TEST_F(InheritanceTest, BaseClassUsesOnlyItsOwnPrecondition) {
  const ObjectId account = create("Account");
  EXPECT_NO_THROW(deposit(account, 1000));
  EXPECT_THROW(deposit(account, 1001), ConstraintViolation);
}

TEST_F(InheritanceTest, InheritedInvariantsAreConjunction) {
  const ObjectId savings = create("SavingsAccount");
  for (int i = 0; i < 5; ++i) deposit(savings, 1000);  // balance 5000
  // The interface invariant (<= 5000) now blocks further deposits even
  // though the base invariant (>= 0) is satisfied.
  EXPECT_THROW(deposit(savings, 100), ConstraintViolation);
  // The base class is not subject to the interface's ceiling.
  const ObjectId account = create("Account");
  for (int i = 0; i < 7; ++i) EXPECT_NO_THROW(deposit(account, 1000));
}

TEST_F(InheritanceTest, DiamondAncestryIsDeduplicated) {
  ClassDescriptor& mid1 = cluster_.classes().define("Mid1");
  mid1.set_super("Account");
  ClassDescriptor& mid2 = cluster_.classes().define("Mid2");
  mid2.set_super("Account");
  ClassDescriptor& leaf = cluster_.classes().define("Leaf");
  leaf.set_super("Mid1");
  leaf.add_interface("Mid2");
  const auto chain = cluster_.classes().ancestry("Leaf");
  EXPECT_EQ(std::count(chain.begin(), chain.end(), "Account"), 1);
  EXPECT_EQ(chain.size(), 4u);
}

}  // namespace
}  // namespace dedisys
