#include <gtest/gtest.h>

#include "objects/class_descriptor.h"
#include "objects/entity.h"
#include "objects/invocation.h"
#include "objects/method_context.h"
#include "objects/naming.h"

namespace dedisys {
namespace {

TEST(Value, RenderingAndTypeNames) {
  EXPECT_EQ(to_string(Value{}), "null");
  EXPECT_EQ(to_string(Value{true}), "true");
  EXPECT_EQ(to_string(Value{std::int64_t{42}}), "42");
  EXPECT_EQ(to_string(Value{std::string{"hi"}}), "\"hi\"");
  EXPECT_EQ(std::string(type_name(Value{std::int64_t{1}})), "int");
  EXPECT_EQ(std::string(type_name(Value{ObjectId{1}})), "object");
  EXPECT_TRUE(is_null(Value{}));
  EXPECT_FALSE(is_null(Value{false}));
}

TEST(MethodSignature, KeyIncludesParameterTypes) {
  MethodSignature a{"set", {"int", "string"}};
  MethodSignature b{"set", {"int"}};
  EXPECT_EQ(a.key(), "set(int,string)");
  EXPECT_EQ(b.key(), "set(int)");
  EXPECT_FALSE(a == b);
}

class ClassTest : public ::testing::Test {
 protected:
  ClassTest() : cls_("Flight") {
    cls_.define_property("seats", Value{std::int64_t{0}}, "int");
  }

  ClassDescriptor cls_;
};

TEST_F(ClassTest, DefinePropertyCreatesAccessors) {
  const MethodDescriptor* getter = cls_.find_method({"getSeats", {}});
  const MethodDescriptor* setter = cls_.find_method({"setSeats", {"int"}});
  ASSERT_NE(getter, nullptr);
  ASSERT_NE(setter, nullptr);
  EXPECT_EQ(getter->kind, MethodKind::Getter);
  EXPECT_EQ(setter->kind, MethodKind::Setter);
  EXPECT_FALSE(getter->is_write());
  EXPECT_TRUE(setter->is_write());
  EXPECT_TRUE(setter->mutates());
}

TEST_F(ClassTest, EmptyMethodsAreWritesButDoNotMutate) {
  cls_.define_method({"ping", {}}, MethodKind::Empty, {});
  const MethodDescriptor& m = cls_.method({"ping", {}});
  EXPECT_TRUE(m.is_write());
  EXPECT_FALSE(m.mutates());
}

TEST_F(ClassTest, DuplicateMethodThrows) {
  EXPECT_THROW(cls_.define_method({"getSeats", {}}, MethodKind::Getter, {}),
               ConfigError);
}

TEST_F(ClassTest, UnknownMethodThrows) {
  EXPECT_THROW((void)cls_.method({"nope", {}}), ConfigError);
  EXPECT_EQ(cls_.find_method({"nope", {}}), nullptr);
}

TEST(ClassRegistry, DefineAndLookup) {
  ClassRegistry reg;
  reg.define("A");
  EXPECT_TRUE(reg.contains("A"));
  EXPECT_FALSE(reg.contains("B"));
  EXPECT_THROW(reg.define("A"), ConfigError);
  EXPECT_THROW((void)reg.get("B"), ConfigError);
}

class EntityTest : public ::testing::Test {
 protected:
  EntityTest() : cls_("C") {
    cls_.define_attribute("x", Value{std::int64_t{5}});
    entity_ = std::make_unique<Entity>(ObjectId{1}, cls_);
  }

  ClassDescriptor cls_;
  std::unique_ptr<Entity> entity_;
};

TEST_F(EntityTest, StartsWithClassDefaults) {
  EXPECT_EQ(as_int(entity_->get("x")), 5);
  EXPECT_EQ(entity_->version(), 0u);
}

TEST_F(EntityTest, SetBumpsVersion) {
  entity_->set("x", Value{std::int64_t{6}});
  entity_->set("x", Value{std::int64_t{7}});
  EXPECT_EQ(entity_->version(), 2u);
  EXPECT_EQ(as_int(entity_->get("x")), 7);
}

TEST_F(EntityTest, UnknownAttributeThrows) {
  EXPECT_THROW((void)entity_->get("y"), ConfigError);
  EXPECT_THROW(entity_->set("y", Value{}), ConfigError);
}

TEST_F(EntityTest, SnapshotRestoreRoundTrip) {
  entity_->set("x", Value{std::int64_t{9}});
  const EntitySnapshot snap = entity_->snapshot();
  entity_->set("x", Value{std::int64_t{100}});
  entity_->restore(snap);
  EXPECT_EQ(as_int(entity_->get("x")), 9);
  EXPECT_EQ(entity_->version(), snap.version);
  EXPECT_EQ(snap.class_name, "C");
}

TEST_F(EntityTest, EstimatedLatestVersionGrowsWithStaleness) {
  entity_->set_expected_update_period(sim_ms(10));
  entity_->set("x", Value{std::int64_t{1}});
  entity_->touch(sim_ms(100));
  EXPECT_EQ(entity_->estimated_latest_version(sim_ms(100)), 1u);
  EXPECT_EQ(entity_->estimated_latest_version(sim_ms(130)), 4u);  // missed 3
  // Without a period, estimation is disabled.
  entity_->set_expected_update_period(0);
  EXPECT_EQ(entity_->estimated_latest_version(sim_ms(1000)), 1u);
}

TEST(NamingService, BindLookupUnbind) {
  NamingService ns;
  ns.bind("flights/1", ObjectId{1});
  EXPECT_EQ(ns.lookup("flights/1"), ObjectId{1});
  EXPECT_THROW(ns.bind("flights/1", ObjectId{2}), ConfigError);
  ns.rebind("flights/1", ObjectId{2});
  EXPECT_EQ(ns.lookup("flights/1"), ObjectId{2});
  ns.unbind("flights/1");
  EXPECT_FALSE(ns.bound("flights/1"));
  EXPECT_THROW((void)ns.lookup("flights/1"), ConfigError);
}

TEST(NamingService, PrefixListing) {
  NamingService ns;
  ns.bind("flights/1", ObjectId{1});
  ns.bind("flights/2", ObjectId{2});
  ns.bind("persons/1", ObjectId{3});
  EXPECT_EQ(ns.list("flights/").size(), 2u);
  EXPECT_EQ(ns.list("persons/").size(), 1u);
  EXPECT_TRUE(ns.list("nothing/").empty());
}

TEST(InterceptorChain, ExecutesInOrderAroundTerminal) {
  struct Tagger final : Interceptor {
    std::string tag;
    std::vector<std::string>* log;
    Tagger(std::string t, std::vector<std::string>* l)
        : tag(std::move(t)), log(l) {}
    Value invoke(Invocation& inv, InterceptorChain& chain) override {
      log->push_back(tag + ".before");
      Value r = chain.proceed(inv);
      log->push_back(tag + ".after");
      return r;
    }
    [[nodiscard]] std::string name() const override { return tag; }
  };

  std::vector<std::string> log;
  InterceptorStack stack;
  stack.add(std::make_shared<Tagger>("outer", &log));
  stack.add(std::make_shared<Tagger>("inner", &log));

  Invocation inv;
  const Value result = stack.execute(inv, [&](Invocation&) {
    log.push_back("terminal");
    return Value{std::int64_t{42}};
  });
  EXPECT_EQ(as_int(result), 42);
  EXPECT_EQ(log, (std::vector<std::string>{"outer.before", "inner.before",
                                           "terminal", "inner.after",
                                           "outer.after"}));
  EXPECT_EQ(stack.names(),
            (std::vector<std::string>{"outer", "inner"}));
}

TEST(InterceptorChain, InterceptorMayAbortByThrowing) {
  struct Bouncer final : Interceptor {
    Value invoke(Invocation&, InterceptorChain&) override {
      throw ConstraintViolation("C");
    }
    [[nodiscard]] std::string name() const override { return "bouncer"; }
  };
  InterceptorStack stack;
  stack.add(std::make_shared<Bouncer>());
  Invocation inv;
  bool terminal_ran = false;
  EXPECT_THROW(stack.execute(inv,
                             [&](Invocation&) {
                               terminal_ran = true;
                               return Value{};
                             }),
               ConstraintViolation);
  EXPECT_FALSE(terminal_ran);
}

}  // namespace
}  // namespace dedisys
