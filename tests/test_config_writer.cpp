// Descriptor writer: serialized deployments reload into equivalent
// repositories (round trip for OCL constraints and metadata).
#include <gtest/gtest.h>

#include "constraints/config.h"
#include "constraints/config_writer.h"
#include "middleware/cluster.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

TEST(ConfigWriter, OclConstraintRoundTripsCompletely) {
  ConstraintRepository original;
  ConstraintFactory empty;
  load_constraints(R"(<constraints>
    <constraint name="TicketConstraint" type="HARD" priority="RELAXABLE"
                contextObject="Y" minSatisfactionDegree="POSSIBLY_SATISFIED"
                intraObject="Y">
      <ocl>self.soldTickets &lt;= self.seats</ocl>
      <context-class>Flight</context-class>
      <freshness class="Flight" maxAge="3"/>
      <affected-methods>
        <affected-method>
          <context-preparation>
            <preparation-class>ReferenceIsContextObject</preparation-class>
            <params><param name="getter" value="getFlight"/></params>
          </context-preparation>
          <objectMethod name="setCount">
            <objectClass>Booking</objectClass>
            <arguments><argument>int</argument></arguments>
          </objectMethod>
        </affected-method>
      </affected-methods>
    </constraint>
  </constraints>)",
                   empty, original);

  const std::string xml = write_constraints_xml(original);
  ConstraintRepository reloaded;
  ASSERT_EQ(load_constraints(xml, empty, reloaded), 1u);

  const ConstraintRegistration* reg = reloaded.registration("TicketConstraint");
  ASSERT_NE(reg, nullptr);
  const Constraint& c = *reg->constraint;
  EXPECT_EQ(c.type(), ConstraintType::HardInvariant);
  EXPECT_TRUE(c.is_tradeable());
  EXPECT_TRUE(c.intra_object());
  EXPECT_EQ(c.min_satisfaction_degree(),
            SatisfactionDegree::PossiblySatisfied);
  EXPECT_EQ(c.freshness_criteria().at("Flight"), 3u);
  EXPECT_EQ(reg->context_class, "Flight");
  ASSERT_EQ(reg->affected_methods.size(), 1u);
  EXPECT_EQ(reg->affected_methods[0].preparation.kind,
            ContextPreparationKind::ReferenceGetter);
  EXPECT_EQ(reg->affected_methods[0].preparation.getter, "getFlight");
  EXPECT_EQ(reg->affected_methods[0].method.key(), "setCount(int)");

  const auto* ocl = dynamic_cast<const OclConstraint*>(&c);
  ASSERT_NE(ocl, nullptr);
  EXPECT_EQ(ocl->expression(), "self.soldTickets <= self.seats");
}

TEST(ConfigWriter, ReloadedOclConstraintBehavesIdentically) {
  // Deploy from XML, serialize the live repository, reload into a second
  // cluster: enforcement must be equivalent.
  ClusterConfig cfg;
  cfg.nodes = 1;
  ConstraintFactory empty;

  Cluster first(cfg);
  scenarios::FlightBooking::define_classes(first.classes());
  load_constraints(R"(<constraints>
    <constraint name="Cap" type="HARD" priority="CRITICAL">
      <ocl>self.soldTickets &lt;= self.seats</ocl>
      <context-class>Flight</context-class>
      <affected-methods>
        <affected-method>
          <objectMethod name="sellTickets">
            <objectClass>Flight</objectClass>
            <arguments><argument>int</argument></arguments>
          </objectMethod>
        </affected-method>
      </affected-methods>
    </constraint>
  </constraints>)",
                   empty, first.constraints());
  const std::string snapshot = write_constraints_xml(first.constraints());

  Cluster second(cfg);
  scenarios::FlightBooking::define_classes(second.classes());
  load_constraints(snapshot, empty, second.constraints());

  const ObjectId f = scenarios::FlightBooking::create_flight(second.node(0), 5);
  EXPECT_NO_THROW(scenarios::FlightBooking::sell(second.node(0), f, 5));
  EXPECT_THROW(scenarios::FlightBooking::sell(second.node(0), f, 1),
               ConstraintViolation);
}

TEST(ConfigWriter, EscapesSpecialCharacters) {
  ConstraintRepository repo;
  ConstraintFactory empty;
  load_constraints(R"(<constraints>
    <constraint name="Weird" type="SOFT">
      <ocl>self.x &lt; 5 and self.y &gt; 1</ocl>
      <description>uses &lt;, &gt; &amp; "quotes"</description>
    </constraint>
  </constraints>)",
                   empty, repo);
  const std::string xml = write_constraints_xml(repo);
  ConstraintRepository reloaded;
  ASSERT_EQ(load_constraints(xml, empty, reloaded), 1u);
  EXPECT_EQ(reloaded.find("Weird").description(),
            "uses <, > & \"quotes\"");
}

}  // namespace
}  // namespace dedisys
