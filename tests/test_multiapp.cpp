// Multi-application support (Section 5.3): constraint repositories are
// application-specific; constraint names need only be unique within one
// application; the CCMgr differentiates applications through invocation
// context information.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

class MultiAppTest : public ::testing::Test {
 protected:
  MultiAppTest() : cluster_(make_config()) {
    // Both applications use the same class model but deploy DIFFERENT
    // constraints under the SAME name: "charter" tolerates 10% overbooking,
    // "scheduled" does not.
    scenarios::FlightBooking::define_classes(cluster_.classes());

    auto strict = std::make_shared<FunctionConstraint>(
        "CapacityRule", ConstraintType::HardInvariant,
        ConstraintPriority::Tradeable, [](ConstraintValidationContext& ctx) {
          const Entity& f = ctx.context_entity();
          return as_int(f.get("soldTickets")) <= as_int(f.get("seats"));
        });
    auto lenient = std::make_shared<FunctionConstraint>(
        "CapacityRule", ConstraintType::HardInvariant,
        ConstraintPriority::Tradeable, [](ConstraintValidationContext& ctx) {
          const Entity& f = ctx.context_entity();
          return 10 * as_int(f.get("soldTickets")) <=
                 11 * as_int(f.get("seats"));  // +10% overbooking allowed
        });

    register_for(cluster_.application_constraints("scheduled"),
                 std::move(strict));
    register_for(cluster_.application_constraints("charter"),
                 std::move(lenient));
  }

  static void register_for(ConstraintRepository& repo, ConstraintPtr c) {
    ConstraintRegistration reg;
    reg.constraint = std::move(c);
    reg.context_class = "Flight";
    reg.affected_methods.push_back(AffectedMethod{
        "Flight", MethodSignature{"sellTickets", {"int"}},
        ContextPreparation{ContextPreparationKind::CalledObject, ""}});
    repo.register_constraint(std::move(reg));
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 2;
    return cfg;
  }

  ObjectId create_flight(const std::string& app, std::int64_t seats) {
    DedisysNode& n = cluster_.node(0);
    TxScope tx(n.tx());
    const ObjectId id = n.create(tx.id(), "Flight", app);
    n.invoke(tx.id(), id, "setSeats", {Value{seats}});
    tx.commit();
    return id;
  }

  void sell(ObjectId flight, std::int64_t count) {
    DedisysNode& n = cluster_.node(0);
    TxScope tx(n.tx());
    n.invoke(tx.id(), flight, "sellTickets", {Value{count}});
    tx.commit();
  }

  Cluster cluster_;
};

TEST_F(MultiAppTest, SameConstraintNameDifferentSemanticsPerApplication) {
  const ObjectId scheduled = create_flight("scheduled", 100);
  const ObjectId charter = create_flight("charter", 100);

  sell(scheduled, 100);
  EXPECT_THROW(sell(scheduled, 1), ConstraintViolation);  // strict app

  sell(charter, 100);
  EXPECT_NO_THROW(sell(charter, 10));                     // +10% tolerated
  EXPECT_THROW(sell(charter, 1), ConstraintViolation);    // beyond 110
}

TEST_F(MultiAppTest, DefaultApplicationUnaffectedByAppRepositories) {
  // Objects without an application use the (empty) default repository:
  // no constraints apply at all.
  const ObjectId unscoped = create_flight("", 10);
  EXPECT_NO_THROW(sell(unscoped, 500));
}

TEST_F(MultiAppTest, ThreatsFromAppConstraintsReconcileAcrossApps) {
  const ObjectId charter = create_flight("charter", 100);
  cluster_.application_constraints("charter")
      .find("CapacityRule")
      .set_min_satisfaction_degree(SatisfactionDegree::PossiblySatisfied);

  cluster_.inject(fault::split_indices({{0}, {1}}));
  sell(charter, 5);  // possibly-satisfied threat, accepted statically
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);

  cluster_.inject(fault::Heal{});
  // Reconciliation must locate "CapacityRule" in the charter repository.
  const auto report = cluster_.reconcile();
  EXPECT_EQ(report.constraints.reevaluated, 1u);
  EXPECT_EQ(report.constraints.removed_satisfied, 1u);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

TEST_F(MultiAppTest, UnknownApplicationFallsBackToDefaultRepository) {
  // An object tagged with an application nobody registered behaves like
  // the default application (no constraints).
  const ObjectId ghost = create_flight("nonexistent-app", 10);
  EXPECT_NO_THROW(sell(ghost, 500));
}

}  // namespace
}  // namespace dedisys
