#include <gtest/gtest.h>

#include "constraints/config.h"
#include "constraints/negotiation.h"
#include "constraints/repository.h"
#include "constraints/satisfaction.h"
#include "constraints/threats.h"
#include "runtime/sim_runtime.h"

namespace dedisys {
namespace {

// ---------------------------------------------------------------------------
// Satisfaction degrees (Section 3.1)
// ---------------------------------------------------------------------------

constexpr SatisfactionDegree kAll[] = {
    SatisfactionDegree::Violated, SatisfactionDegree::Uncheckable,
    SatisfactionDegree::PossiblyViolated,
    SatisfactionDegree::PossiblySatisfied, SatisfactionDegree::Satisfied};

TEST(Satisfaction, ThreatClassification) {
  EXPECT_FALSE(is_threat(SatisfactionDegree::Satisfied));
  EXPECT_FALSE(is_threat(SatisfactionDegree::Violated));
  EXPECT_TRUE(is_threat(SatisfactionDegree::Uncheckable));
  EXPECT_TRUE(is_threat(SatisfactionDegree::PossiblyViolated));
  EXPECT_TRUE(is_threat(SatisfactionDegree::PossiblySatisfied));
}

TEST(Satisfaction, StringRoundTrip) {
  for (SatisfactionDegree d : kAll) {
    EXPECT_EQ(degree_from_string(to_string(d)), d);
  }
  EXPECT_THROW((void)degree_from_string("nonsense"), ConfigError);
}

/// Property sweep: combine() over every ordered pair follows the rules of
/// Section 3.1 exactly (minimum under the total order).
class CombineProperty
    : public ::testing::TestWithParam<
          std::tuple<SatisfactionDegree, SatisfactionDegree>> {};

TEST_P(CombineProperty, MatchesSectionThreeRules) {
  const auto [a, b] = GetParam();
  const SatisfactionDegree c = combine(a, b);
  // Commutative.
  EXPECT_EQ(c, combine(b, a));
  // Idempotent on equal inputs.
  EXPECT_EQ(combine(a, a), a);
  // Never better than either input, and equal to one of them.
  EXPECT_TRUE(c == a || c == b);
  EXPECT_FALSE(at_least(c, SatisfactionDegree::Satisfied) &&
               (a != SatisfactionDegree::Satisfied ||
                b != SatisfactionDegree::Satisfied));
  // Violated dominates everything.
  if (a == SatisfactionDegree::Violated || b == SatisfactionDegree::Violated) {
    EXPECT_EQ(c, SatisfactionDegree::Violated);
  }
  // Satisfied is the identity.
  if (a == SatisfactionDegree::Satisfied) {
    EXPECT_EQ(c, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CombineProperty,
    ::testing::Combine(::testing::ValuesIn(kAll), ::testing::ValuesIn(kAll)));

// ---------------------------------------------------------------------------
// Repository
// ---------------------------------------------------------------------------

ConstraintPtr make_constraint(const std::string& name,
                              ConstraintType type = ConstraintType::HardInvariant) {
  return std::make_shared<FunctionConstraint>(
      name, type, ConstraintPriority::Tradeable,
      [](ConstraintValidationContext&) { return true; });
}

ConstraintRegistration registration(const std::string& name,
                                    const std::string& cls,
                                    const std::string& method,
                                    ConstraintType type =
                                        ConstraintType::HardInvariant) {
  ConstraintRegistration reg;
  reg.constraint = make_constraint(name, type);
  reg.affected_methods.push_back(AffectedMethod{
      cls, MethodSignature{method, {}},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  return reg;
}

class RepositoryTest : public ::testing::Test {
 protected:
  ConstraintRepository repo_;
};

TEST_F(RepositoryTest, LookupFindsAffectedConstraints) {
  repo_.register_constraint(registration("C1", "A", "m"));
  repo_.register_constraint(registration("C2", "A", "m"));
  repo_.register_constraint(registration("C3", "A", "other"));
  repo_.register_constraint(registration("C4", "B", "m"));
  const auto& matches =
      repo_.lookup("A", MethodSignature{"m", {}}, ConstraintType::HardInvariant);
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(RepositoryTest, LookupFiltersByType) {
  repo_.register_constraint(
      registration("Pre", "A", "m", ConstraintType::Precondition));
  repo_.register_constraint(
      registration("Hard", "A", "m", ConstraintType::HardInvariant));
  EXPECT_EQ(repo_.lookup("A", {"m", {}}, ConstraintType::Precondition).size(),
            1u);
  EXPECT_EQ(repo_.lookup("A", {"m", {}}, ConstraintType::SoftInvariant).size(),
            0u);
}

TEST_F(RepositoryTest, DuplicateNamesRejected) {
  repo_.register_constraint(registration("C1", "A", "m"));
  EXPECT_THROW(repo_.register_constraint(registration("C1", "B", "n")),
               ConfigError);
}

TEST_F(RepositoryTest, RuntimeDisableAndRemove) {
  repo_.register_constraint(registration("C1", "A", "m"));
  EXPECT_EQ(repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant).size(),
            1u);
  repo_.set_enabled("C1", false);
  EXPECT_EQ(repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant).size(),
            0u);
  repo_.set_enabled("C1", true);
  EXPECT_EQ(repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant).size(),
            1u);
  repo_.remove("C1");
  EXPECT_EQ(repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant).size(),
            0u);
  EXPECT_THROW(repo_.remove("C1"), ConfigError);
}

TEST_F(RepositoryTest, CachedAndNaiveSearchAgree) {
  for (int i = 0; i < 20; ++i) {
    repo_.register_constraint(
        registration("C" + std::to_string(i), i % 2 == 0 ? "A" : "B", "m"));
  }
  repo_.set_caching(true);
  const auto cached =
      repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant);
  repo_.set_caching(false);
  const auto naive = repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant);
  ASSERT_EQ(cached.size(), naive.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].constraint, naive[i].constraint);
  }
}

TEST_F(RepositoryTest, CacheInvalidatedOnMutation) {
  repo_.register_constraint(registration("C1", "A", "m"));
  repo_.set_caching(true);
  (void)repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant);
  repo_.register_constraint(registration("C2", "A", "m"));
  EXPECT_EQ(repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant).size(),
            2u);
}

TEST_F(RepositoryTest, SearchCountTracksQueries) {
  repo_.register_constraint(registration("C1", "A", "m"));
  const std::size_t before = repo_.search_count();
  (void)repo_.lookup("A", {"m", {}}, ConstraintType::HardInvariant);
  (void)repo_.lookup("A", {"m", {}}, ConstraintType::Precondition);
  EXPECT_EQ(repo_.search_count(), before + 2);
}

// ---------------------------------------------------------------------------
// Configuration parsing (Listing 4.1)
// ---------------------------------------------------------------------------

class ConfigTest : public ::testing::Test {
 protected:
  ConfigTest() {
    factory_.register_class(
        "TrueConstraint",
        [](const std::string& name, ConstraintType type,
           ConstraintPriority prio) -> ConstraintPtr {
          return std::make_shared<FunctionConstraint>(
              name, type, prio,
              [](ConstraintValidationContext&) { return true; });
        });
  }

  ConstraintFactory factory_;
  ConstraintRepository repo_;
};

TEST_F(ConfigTest, ParsesFullDescriptor) {
  const char* xml = R"(<constraints>
    <!-- comment -->
    <constraint name="C1" type="HARD" priority="RELAXABLE" contextObject="Y"
                minSatisfactionDegree="POSSIBLY_SATISFIED" intraObject="Y">
      <class>TrueConstraint</class>
      <context-class>Flight</context-class>
      <description>soldTickets &lt;= seats</description>
      <freshness class="Flight" maxAge="3"/>
      <affected-methods>
        <affected-method>
          <context-preparation>
            <preparation-class>CalledObjectIsContextObject</preparation-class>
          </context-preparation>
          <objectMethod name="sellTickets">
            <objectClass>Flight</objectClass>
            <arguments><argument>int</argument></arguments>
          </objectMethod>
        </affected-method>
      </affected-methods>
    </constraint>
  </constraints>)";

  EXPECT_EQ(load_constraints(xml, factory_, repo_), 1u);
  Constraint& c = repo_.find("C1");
  EXPECT_EQ(c.type(), ConstraintType::HardInvariant);
  EXPECT_TRUE(c.is_tradeable());
  EXPECT_TRUE(c.intra_object());
  EXPECT_TRUE(c.context_object_needed());
  EXPECT_EQ(c.min_satisfaction_degree(),
            SatisfactionDegree::PossiblySatisfied);
  EXPECT_EQ(c.description(), "soldTickets <= seats");
  EXPECT_EQ(c.freshness_criteria().at("Flight"), 3u);
  const auto& matches = repo_.lookup("Flight", {"sellTickets", {"int"}},
                                     ConstraintType::HardInvariant);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].preparation->kind, ContextPreparationKind::CalledObject);
}

TEST_F(ConfigTest, ParsesReferenceGetterPreparation) {
  const char* xml = R"(<constraints>
    <constraint name="C1" type="SOFT">
      <class>TrueConstraint</class>
      <affected-methods>
        <affected-method>
          <context-preparation>
            <preparation-class>ReferenceIsContextObject</preparation-class>
            <params><param name="getter" value="getReport"/></params>
          </context-preparation>
          <objectMethod name="setKind">
            <objectClass>Alarm</objectClass>
            <arguments><argument>string</argument></arguments>
          </objectMethod>
        </affected-method>
      </affected-methods>
    </constraint>
  </constraints>)";
  load_constraints(xml, factory_, repo_);
  const auto& matches = repo_.lookup("Alarm", {"setKind", {"string"}},
                                     ConstraintType::SoftInvariant);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].preparation->kind,
            ContextPreparationKind::ReferenceGetter);
  EXPECT_EQ(matches[0].preparation->getter, "getReport");
}

TEST_F(ConfigTest, RejectsMalformedInput) {
  EXPECT_THROW(load_constraints("<constraints>", factory_, repo_), ConfigError);
  EXPECT_THROW(load_constraints("<wrong/>", factory_, repo_), ConfigError);
  EXPECT_THROW(load_constraints(
                   "<constraints><constraint type=\"HARD\">"
                   "<class>TrueConstraint</class></constraint></constraints>",
                   factory_, repo_),
               ConfigError);  // missing name
  EXPECT_THROW(
      load_constraints("<constraints><constraint name=\"C\" type=\"BOGUS\">"
                       "<class>TrueConstraint</class></constraint></constraints>",
                       factory_, repo_),
      ConfigError);  // bad type
  EXPECT_THROW(
      load_constraints("<constraints><constraint name=\"C\" type=\"HARD\">"
                       "<class>Unknown</class></constraint></constraints>",
                       factory_, repo_),
      ConfigError);  // unknown implementation class
}

TEST(XmlParser, HandlesEntitiesSelfClosingAndMismatch) {
  const XmlNode root = parse_xml(
      "<?xml version=\"1.0\"?><a x=\"1 &amp; 2\"><b/><c>text</c></a>");
  EXPECT_EQ(root.tag, "a");
  EXPECT_EQ(root.attr("x"), "1 & 2");
  EXPECT_NE(root.child("b"), nullptr);
  EXPECT_EQ(root.require_child("c").text, "text");
  EXPECT_THROW(parse_xml("<a><b></a>"), ConfigError);
  EXPECT_THROW(parse_xml("<a></a><b/>"), ConfigError);
}

// ---------------------------------------------------------------------------
// Threat store (Section 3.2.2, 5.5.1)
// ---------------------------------------------------------------------------

class ThreatStoreTest : public ::testing::Test {
 protected:
  ThreatStoreTest() : db_(rt_), store_(db_) {}

  static ConsistencyThreat threat(const std::string& constraint,
                                  std::uint64_t ctx_object) {
    ConsistencyThreat t;
    t.constraint_name = constraint;
    t.context_object = ObjectId{ctx_object};
    t.degree = SatisfactionDegree::PossiblySatisfied;
    t.affected_objects = {ObjectId{ctx_object}, ObjectId{ctx_object + 1}};
    t.application_data = "payload";
    t.instructions.allow_rollback = true;
    return t;
  }

  SimClock clock_;
  CostModel cost_;
  SimRuntime rt_{clock_, cost_};
  RecordStore db_;
  ThreatStore store_;
};

TEST_F(ThreatStoreTest, SerializationRoundTrip) {
  const ConsistencyThreat t = threat("C1", 7);
  const ConsistencyThreat back = ThreatStore::deserialize(
      ThreatStore::serialize(t));
  EXPECT_EQ(back.constraint_name, t.constraint_name);
  EXPECT_EQ(back.context_object, t.context_object);
  EXPECT_EQ(back.degree, t.degree);
  EXPECT_EQ(back.affected_objects, t.affected_objects);
  EXPECT_EQ(back.application_data, t.application_data);
  EXPECT_EQ(back.instructions.allow_rollback, t.instructions.allow_rollback);
}

TEST_F(ThreatStoreTest, IdentityCombinesConstraintAndContext) {
  EXPECT_EQ(threat("C1", 7).identity(), threat("C1", 7).identity());
  EXPECT_NE(threat("C1", 7).identity(), threat("C1", 8).identity());
  EXPECT_NE(threat("C1", 7).identity(), threat("C2", 7).identity());
  ConsistencyThreat no_ctx;
  no_ctx.constraint_name = "C1";
  EXPECT_EQ(no_ctx.identity(), "C1@-");
}

TEST_F(ThreatStoreTest, IdenticalOncePersistsSingleIdentity) {
  store_.set_policy(ThreatHistoryPolicy::IdenticalOnce);
  EXPECT_TRUE(store_.store(threat("C1", 7)));
  const std::size_t writes_after_first = db_.write_count();
  EXPECT_EQ(writes_after_first, 3u);  // threat row + two object rows
  EXPECT_FALSE(store_.store(threat("C1", 7)));
  EXPECT_FALSE(store_.store(threat("C1", 7)));
  EXPECT_EQ(db_.write_count(), writes_after_first);  // only reads afterwards
  EXPECT_EQ(store_.identity_count(), 1u);
  EXPECT_EQ(store_.total_occurrences(), 3u);
}

TEST_F(ThreatStoreTest, FullHistoryPersistsEveryOccurrence) {
  store_.set_policy(ThreatHistoryPolicy::FullHistory);
  store_.store(threat("C1", 7));
  const std::size_t first = db_.write_count();
  store_.store(threat("C1", 7));
  EXPECT_EQ(db_.write_count(), first + 2);  // two rows per identical threat
  EXPECT_EQ(store_.identity_count(), 1u);
  EXPECT_EQ(store_.total_occurrences(), 2u);
}

TEST_F(ThreatStoreTest, RemoveDeletesAllOccurrences) {
  store_.set_policy(ThreatHistoryPolicy::FullHistory);
  const ConsistencyThreat t = threat("C1", 7);
  store_.store(t);
  store_.store(t);
  store_.store(threat("C2", 9));
  store_.remove(t.identity());
  EXPECT_EQ(store_.identity_count(), 1u);
  EXPECT_FALSE(store_.has(t.identity()));
  EXPECT_TRUE(store_.has(threat("C2", 9).identity()));
  EXPECT_NO_THROW(store_.remove("missing@1"));
}

TEST_F(ThreatStoreTest, LoadAllReturnsOccurrenceCounts) {
  store_.store(threat("C1", 7));
  store_.store(threat("C1", 7));
  store_.store(threat("C2", 9));
  const auto all = store_.load_all();
  ASSERT_EQ(all.size(), 2u);
  std::size_t total = 0;
  for (const auto& st : all) total += st.occurrences;
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace dedisys
