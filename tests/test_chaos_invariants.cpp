// Chaos invariants under seeded fault plans (the acceptance gate of the
// fault-injection engine): threats survive partitions, every partition
// elects one primary per object, replicas converge after reconciliation,
// and the whole run is deterministic per seed.
#include <gtest/gtest.h>

#include "scenarios/chaos.h"

namespace dedisys {
namespace {

using scenarios::ChaosOptions;
using scenarios::ChaosResult;
using scenarios::run_chaos;

ChaosOptions options_for(std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.nodes = 3;
  options.objects = 4;
  options.ops = 48;
  options.fault_events = 10;
  options.horizon = sim_ms(300);
  return options;
}

void expect_invariants(const ChaosResult& result, std::uint64_t seed) {
  EXPECT_EQ(result.lost_threats, 0u) << "seed " << seed;
  EXPECT_EQ(result.threats_remaining, 0u) << "seed " << seed;
  EXPECT_EQ(result.primary_violations, 0u) << "seed " << seed;
  EXPECT_EQ(result.divergent_objects, 0u) << "seed " << seed;
  EXPECT_EQ(result.model_mismatches, 0u) << "seed " << seed;
  EXPECT_TRUE(result.invariants_ok());
}

TEST(ChaosInvariants, Seed1) {
  const ChaosResult result = run_chaos(options_for(1));
  expect_invariants(result, 1);
  EXPECT_GT(result.faults_applied, 0u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GE(result.reconciles, 1u);
}

TEST(ChaosInvariants, Seed2) {
  const ChaosResult result = run_chaos(options_for(2));
  expect_invariants(result, 2);
  EXPECT_GT(result.faults_applied, 0u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GE(result.reconciles, 1u);
}

TEST(ChaosInvariants, Seed3) {
  const ChaosResult result = run_chaos(options_for(3));
  expect_invariants(result, 3);
  EXPECT_GT(result.faults_applied, 0u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GE(result.reconciles, 1u);
}

TEST(ChaosInvariants, PrimaryBackupProtocolHoldsToo) {
  ChaosOptions options = options_for(4);
  options.protocol = ReplicationProtocol::PrimaryBackup;
  const ChaosResult result = run_chaos(options);
  expect_invariants(result, 4);
}

TEST(ChaosInvariants, SameSeedIsByteIdentical) {
  const ChaosResult first = run_chaos(options_for(5));
  const ChaosResult second = run_chaos(options_for(5));
  EXPECT_EQ(first.committed, second.committed);
  EXPECT_EQ(first.aborted, second.aborted);
  EXPECT_EQ(first.faults_applied, second.faults_applied);
  EXPECT_EQ(first.conflicts, second.conflicts);
  // The rendered trace is the strongest oracle: every event, timestamp and
  // detail string must match byte for byte.
  EXPECT_EQ(first.timeline, second.timeline);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

/// The interference-aware reconciliation scheduler (PR 8) is outcome- and
/// trace-preserving under chaos: the app's constraints are opaque, so every
/// one is its own singleton cluster and the scheduled batch order equals
/// the legacy identity order — the full event timeline stays byte-identical
/// and every invariant still holds.
TEST(ChaosInvariants, SchedulerPreservesOutcomesAndTimeline) {
  const ChaosResult off = run_chaos(options_for(8));
  ChaosOptions scheduled = options_for(8);
  scheduled.flags.validation_scheduler = true;
  const ChaosResult on = run_chaos(scheduled);
  expect_invariants(on, 8);
  EXPECT_EQ(off.committed, on.committed);
  EXPECT_EQ(off.aborted, on.aborted);
  EXPECT_EQ(off.faults_applied, on.faults_applied);
  EXPECT_EQ(off.conflicts, on.conflicts);
  EXPECT_EQ(off.timeline, on.timeline);
}

TEST(ChaosInvariants, DifferentSeedsDiverge) {
  const ChaosResult a = run_chaos(options_for(6));
  const ChaosResult b = run_chaos(options_for(7));
  EXPECT_NE(a.timeline, b.timeline);
}

}  // namespace
}  // namespace dedisys
