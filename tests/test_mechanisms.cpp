// Unit tests for the three Chapter-2 interception mechanisms: regardless
// of cost profile, each must capture the call faithfully (target, Method,
// boxed arguments) and forward to the intercepted body exactly once.
#include <gtest/gtest.h>

#include "validation/mechanisms.h"

namespace dedisys::validation {
namespace {

struct MechanismCase {
  const char* name;
  Mechanism* (*make)();
};

Mechanism* make_aspect() { return new AspectStaticMechanism; }
Mechanism* make_aop() { return new AopFrameworkMechanism; }
Mechanism* make_proxy() { return new ReflectiveProxyMechanism; }

class MechanismTest : public ::testing::TestWithParam<MechanismCase> {
 protected:
  MechanismTest() : mech_(GetParam().make()) {}

  std::unique_ptr<Mechanism> mech_;
  Employee employee_;
};

TEST_P(MechanismTest, CapturesMethodAndArgument) {
  const MethodInfo& add_work = employee_class().methods[0];
  const double hours = 7.5;
  mech_->begin(ObjectRefl{&employee_class(), &employee_}, add_work, &hours);

  std::string class_name;
  std::vector<Boxed> args;
  const MethodInfo* m = mech_->extract(class_name, args);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->key, "addWork(double)");
  EXPECT_EQ(m->declaring_class, "Employee");
  EXPECT_EQ(class_name, "Employee");
  ASSERT_EQ(args.size(), 1u);
  EXPECT_EQ(boxed_num(args[0]), 7.5);
}

TEST_P(MechanismTest, CapturesParameterlessMethods) {
  const MethodInfo& join = employee_class().methods[2];
  mech_->begin(ObjectRefl{&employee_class(), &employee_}, join, nullptr);

  std::string class_name;
  std::vector<Boxed> args;
  const MethodInfo* m = mech_->extract(class_name, args);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->key, "joinProject()");
  EXPECT_TRUE(args.empty());
}

TEST_P(MechanismTest, DispatchForwardsExactlyOnce) {
  const MethodInfo& add_work = employee_class().methods[0];
  const double hours = 3;
  mech_->begin(ObjectRefl{&employee_class(), &employee_}, add_work, &hours);

  int calls = 0;
  mech_->dispatch([](void* p) { ++*static_cast<int*>(p); }, &calls);
  EXPECT_EQ(calls, 1);
}

TEST_P(MechanismTest, SupportsRepeatedInterceptions) {
  const MethodInfo& charge = project_class().methods[0];
  Project project;
  for (int i = 0; i < 100; ++i) {
    const double amount = i;
    mech_->begin(ObjectRefl{&project_class(), &project}, charge, &amount);
    std::string class_name;
    std::vector<Boxed> args;
    const MethodInfo* m = mech_->extract(class_name, args);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(class_name, "Project");
    EXPECT_EQ(boxed_num(args.at(0)), i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, MechanismTest,
    ::testing::Values(MechanismCase{"AspectJ", make_aspect},
                      MechanismCase{"JBossAOP", make_aop},
                      MechanismCase{"Proxy", make_proxy}),
    [](const ::testing::TestParamInfo<MechanismCase>& info) {
      return info.param.name;
    });

TEST(ReflectiveGetMethod, DistinguishesOverloadsBySignature) {
  const ClassInfo& cls = department_class();
  const MethodInfo* hire = cls.get_method("hire", {});
  const MethodInfo* resize = cls.get_method("resize", {"double"});
  ASSERT_NE(hire, nullptr);
  ASSERT_NE(resize, nullptr);
  EXPECT_EQ(hire->key, "hire()");
  EXPECT_EQ(resize->key, "resize(double)");
  EXPECT_EQ(cls.get_method("resize", {}), nullptr);
  EXPECT_EQ(cls.get_method("resize", {"int"}), nullptr);
}

TEST(DepartmentReflection, BoxedAttributeAccess) {
  Department d;
  d.headcount = 12;
  d.budget_pool = 9000;
  ObjectRefl refl{&department_class(), &d};
  EXPECT_EQ(boxed_num(refl.get("headcount")), 12);
  EXPECT_EQ(boxed_num(refl.get("budget_pool")), 9000);
  EXPECT_THROW((void)refl.get("missing"), DedisysError);
}

}  // namespace
}  // namespace dedisys::validation
