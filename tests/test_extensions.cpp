// Extended mechanisms: method contracts (pre/postconditions with @pre),
// query-based constraints, deferred negotiation (Section 5.4), runtime
// constraint re-validation (Section 3.3), DTMS site-bound objects (NCC),
// crash/recovery, custom interceptors and simulation determinism.
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/dtms.h"
#include "scenarios/evalapp.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::AcceptAllNegotiation;
using scenarios::Dtms;
using scenarios::EvalApp;
using scenarios::FlightBooking;

// ---------------------------------------------------------------------------
// Method contracts (design by contract, Section 1.5)
// ---------------------------------------------------------------------------

class ContractsTest : public ::testing::Test {
 protected:
  ContractsTest() : cluster_(make_config()) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(cluster_.constraints());
    FlightBooking::register_method_contracts(cluster_.constraints());
    flight_ = FlightBooking::create_flight(cluster_.node(0), 100);
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 2;
    return cfg;
  }

  Cluster cluster_;
  ObjectId flight_;
};

TEST_F(ContractsTest, PreconditionRejectsBadArgumentBeforeExecution) {
  DedisysNode& n = cluster_.node(0);
  EXPECT_THROW(FlightBooking::sell(n, flight_, 0), ConstraintViolation);
  EXPECT_THROW(FlightBooking::sell(n, flight_, -5), ConstraintViolation);
  // The method never executed: state unchanged.
  EXPECT_EQ(FlightBooking::sold(n, flight_), 0);
}

TEST_F(ContractsTest, PostconditionWithPreStateValidatesTransition) {
  DedisysNode& n = cluster_.node(0);
  EXPECT_NO_THROW(FlightBooking::sell(n, flight_, 10));
  EXPECT_NO_THROW(FlightBooking::sell(n, flight_, 10));
  EXPECT_EQ(FlightBooking::sold(n, flight_), 20);
}

TEST_F(ContractsTest, PostconditionDetectsWrongTransition) {
  // Sabotage the business method at runtime: register a buggy variant
  // class and check the postcondition catches the broken state change.
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cl(cfg);
  ClassDescriptor& flight = cl.classes().define("Flight");
  flight.define_property("seats", Value{std::int64_t{100}}, "int");
  flight.define_property("soldTickets", Value{std::int64_t{0}}, "int");
  flight.define_method(
      MethodSignature{"sellTickets", {"int"}}, MethodKind::Mutator,
      [](Entity& self, MethodContext&, const std::vector<Value>& args) {
        // BUG: sells one ticket regardless of the requested count.
        (void)args;
        self.set("soldTickets", Value{as_int(self.get("soldTickets")) + 1});
        return Value{};
      });
  FlightBooking::register_method_contracts(cl.constraints());

  DedisysNode& n = cl.node(0);
  TxScope tx(n.tx());
  const ObjectId f = n.create(tx.id(), "Flight");
  EXPECT_THROW(n.invoke(tx.id(), f, "sellTickets", {Value{std::int64_t{3}}}),
               ConstraintViolation);
}

// ---------------------------------------------------------------------------
// Query-based constraints (no context object)
// ---------------------------------------------------------------------------

TEST(QueryConstraint, FleetCapacityEnforcedAcrossAllFlights) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_fleet_constraint(cluster.constraints());
  DedisysNode& n = cluster.node(0);
  const ObjectId f1 = FlightBooking::create_flight(n, 10);
  const ObjectId f2 = FlightBooking::create_flight(n, 10);

  // Fleet capacity 20: fill it exactly (per-flight overbooking is not
  // restricted in this configuration, only the fleet sum).
  FlightBooking::sell(n, f1, 15);
  FlightBooking::sell(n, f2, 5);
  // One more ticket breaks the fleet-wide sum (soft invariant at commit).
  EXPECT_THROW(FlightBooking::sell(n, f2, 1), TxAborted);
  EXPECT_EQ(FlightBooking::sold(n, f2), 5);
}

TEST(QueryConstraint, AccessesEveryFlightDuringValidation) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_fleet_constraint(cluster.constraints());
  DedisysNode& n = cluster.node(0);
  (void)FlightBooking::create_flight(n, 10);
  (void)FlightBooking::create_flight(n, 10);
  const std::size_t validations_before = n.ccmgr().stats().validations;
  FlightBooking::sell(n, cluster.objects_of("Flight").front(), 1);
  EXPECT_EQ(n.ccmgr().stats().validations, validations_before + 1);
  EXPECT_EQ(cluster.objects_of("Flight").size(), 2u);
}

// ---------------------------------------------------------------------------
// Deferred negotiation (Section 5.4)
// ---------------------------------------------------------------------------

class CountingNegotiation final : public NegotiationHandler {
 public:
  NegotiationOutcome negotiate(const ConsistencyThreat&,
                               ConstraintValidationContext&) override {
    ++calls;
    NegotiationOutcome out;
    out.accepted = accept;
    return out;
  }
  int calls = 0;
  bool accept = true;
};

class DeferredNegotiationTest : public ::testing::Test {
 protected:
  DeferredNegotiationTest() : cluster_(make_config()) {
    EvalApp::define_classes(cluster_.classes());
    EvalApp::register_constraints(cluster_.constraints());
    ids_ = EvalApp::create_entities(cluster_.node(0), 2);
    cluster_.inject(fault::split_indices({{0, 1}, {2}}));
    cluster_.node(0).ccmgr().set_negotiation_timing(
        ConstraintConsistencyManager::NegotiationTiming::Deferred);
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  Cluster cluster_;
  std::vector<ObjectId> ids_;
};

TEST_F(DeferredNegotiationTest, NegotiationHappensAtCommitNotPerOperation) {
  DedisysNode& n = cluster_.node(0);
  auto handler = std::make_shared<CountingNegotiation>();
  TxScope tx(n.tx());
  n.ccmgr().register_negotiation_handler(tx.id(), handler);
  n.invoke(tx.id(), ids_[0], "emptyThreat");
  n.invoke(tx.id(), ids_[1], "emptyThreat");
  EXPECT_EQ(handler->calls, 0);  // transaction continues optimistically
  tx.commit();
  EXPECT_EQ(handler->calls, 2);  // both threats decided before commit
  EXPECT_EQ(cluster_.threats().identity_count(), 2u);
}

TEST_F(DeferredNegotiationTest, RejectionAtCommitAbortsWholeTransaction) {
  DedisysNode& n = cluster_.node(0);
  auto handler = std::make_shared<CountingNegotiation>();
  handler->accept = false;
  TxScope tx(n.tx());
  n.ccmgr().register_negotiation_handler(tx.id(), handler);
  EXPECT_NO_THROW(n.invoke(tx.id(), ids_[0], "emptyThreat"));
  EXPECT_THROW(tx.commit(), TxAborted);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
}

// ---------------------------------------------------------------------------
// Runtime constraint management with re-validation (Section 3.3)
// ---------------------------------------------------------------------------

TEST(RuntimeConstraints, ReenabledConstraintIsRevalidatedForAllObjects) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints());
  DedisysNode& n = cluster.node(0);
  const ObjectId good = FlightBooking::create_flight(n, 100);
  const ObjectId bad = FlightBooking::create_flight(n, 100);
  FlightBooking::sell(n, good, 50);

  // Disable the constraint, oversell, re-enable.
  cluster.constraints().set_enabled("TicketConstraint", false);
  FlightBooking::sell(n, bad, 150);
  cluster.constraints().set_enabled("TicketConstraint", true);

  const auto violating = n.ccmgr().revalidate_for_objects(
      "TicketConstraint", cluster.objects_of("Flight"));
  ASSERT_EQ(violating.size(), 1u);
  EXPECT_EQ(violating[0], bad);
}

TEST(RuntimeConstraints, NewlyRegisteredConstraintAppliesImmediately) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  DedisysNode& n = cluster.node(0);
  const ObjectId f = FlightBooking::create_flight(n, 10);
  FlightBooking::sell(n, f, 50);  // no constraint deployed yet

  FlightBooking::register_constraints(cluster.constraints());
  EXPECT_THROW(FlightBooking::sell(n, f, 1), ConstraintViolation);
  const auto violating =
      n.ccmgr().revalidate_for_objects("TicketConstraint", {f});
  EXPECT_EQ(violating.size(), 1u);
}

// ---------------------------------------------------------------------------
// DTMS: site-bound objects and NCC (Section 1.4)
// ---------------------------------------------------------------------------

class DtmsTest : public ::testing::Test {
 protected:
  DtmsTest() : cluster_(make_config()) {
    Dtms::define_classes(cluster_.classes());
    Dtms::register_constraints(cluster_.constraints());
    channel_ = Dtms::create_channel(cluster_, 0, 1, 118100);
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 2;
    return cfg;
  }

  Cluster cluster_;
  Dtms::Channel channel_;
};

TEST_F(DtmsTest, SiteBoundObjectsHaveSingleReplicas) {
  EXPECT_TRUE(cluster_.node(0).replication().has_local_replica(
      channel_.endpoint_a));
  EXPECT_FALSE(cluster_.node(0).replication().has_local_replica(
      channel_.endpoint_b));
  EXPECT_TRUE(cluster_.node(1).replication().has_local_replica(
      channel_.endpoint_b));
}

TEST_F(DtmsTest, RetuneUpdatesBothEndpointsViaNestedInvocation) {
  DedisysNode& a = cluster_.node(0);
  TxScope tx(a.tx());
  a.invoke(tx.id(), channel_.endpoint_a, "retune",
           {Value{std::int64_t{121500}}});
  tx.commit();
  EXPECT_EQ(Dtms::frequency(cluster_.node(0), channel_.endpoint_a), 121500);
  EXPECT_EQ(Dtms::frequency(cluster_.node(1), channel_.endpoint_b), 121500);
}

TEST_F(DtmsTest, InconsistentRetuneRejectedWhenHealthy) {
  DedisysNode& a = cluster_.node(0);
  TxScope tx(a.tx());
  EXPECT_THROW(a.invoke(tx.id(), channel_.endpoint_a, "setFrequency",
                        {Value{std::int64_t{999}}}),
               ConstraintViolation);
}

TEST_F(DtmsTest, PartitionMakesPeerUnreachableAndThreatUncheckable) {
  cluster_.inject(fault::split_indices({{0}, {1}}));
  DedisysNode& a = cluster_.node(0);
  // Peer has no replica in this partition: NCC.
  EXPECT_FALSE(a.replication().reachable(channel_.endpoint_b));
  {
    TxScope tx(a.tx());
    a.invoke(tx.id(), channel_.endpoint_a, "setFrequency",
             {Value{std::int64_t{122800}}});
    tx.commit();
  }
  const auto threats = cluster_.threats().load_all();
  ASSERT_EQ(threats.size(), 1u);
  EXPECT_EQ(threats[0].threat.degree, SatisfactionDegree::Uncheckable);
}

TEST_F(DtmsTest, ReconciliationResolvesRealMismatch) {
  cluster_.inject(fault::split_indices({{0}, {1}}));
  {
    TxScope tx(cluster_.node(0).tx());
    cluster_.node(0).invoke(tx.id(), channel_.endpoint_a, "setFrequency",
                            {Value{std::int64_t{122800}}});
    tx.commit();
  }
  cluster_.inject(fault::Heal{});

  class Resync final : public ConstraintReconciliationHandler {
   public:
    explicit Resync(DedisysNode& n) : node_(&n) {}
    bool reconcile(const ConsistencyThreat& threat,
                   ConstraintValidationContext& ctx) override {
      const Entity& e = ctx.read(threat.context_object);
      TxScope tx(node_->tx());
      node_->invoke(tx.id(), as_object(e.get("peer")), "setFrequency",
                    {e.get("frequency")});
      tx.commit();
      return true;
    }

   private:
    DedisysNode* node_;
  } resync(cluster_.node(0));

  const auto report = cluster_.reconcile(nullptr, &resync);
  EXPECT_EQ(report.constraints.violations, 1u);
  EXPECT_EQ(report.constraints.resolved_immediately, 1u);
  EXPECT_EQ(Dtms::frequency(cluster_.node(1), channel_.endpoint_b), 122800);
}

// ---------------------------------------------------------------------------
// Node crash and recovery (pause-crash model, Section 1.1)
// ---------------------------------------------------------------------------

TEST(CrashRecovery, CrashedNodeTreatedAsPartitionThenRecovers) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  FlightBooking::register_constraints(cluster.constraints());
  DedisysNode& n0 = cluster.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 80);
  FlightBooking::sell(n0, flight, 10);

  cluster.sim().network.apply(fault::Crash{NodeId{2}});
  EXPECT_EQ(n0.mode(), SystemMode::Degraded);
  // Work continues; threats arise because node 2 might be a partition.
  FlightBooking::sell(n0, flight, 5);
  EXPECT_EQ(cluster.threats().identity_count(), 1u);

  cluster.sim().network.apply(fault::Restart{NodeId{2}});
  EXPECT_EQ(n0.mode(), SystemMode::Reconciling);
  const auto report = cluster.reconcile();
  EXPECT_EQ(report.replica.conflicts, 0u);  // it was a crash, not a split
  EXPECT_EQ(report.constraints.removed_satisfied, 1u);
  // The recovered node caught up on the missed update.
  EXPECT_EQ(as_int(cluster.node(2)
                       .replication()
                       .local_replica(flight)
                       .get("soldTickets")),
            15);
  EXPECT_EQ(n0.mode(), SystemMode::Healthy);
}

// ---------------------------------------------------------------------------
// Custom interceptors (standardjboss.xml extension point)
// ---------------------------------------------------------------------------

TEST(CustomInterceptor, SeesEveryInvocationOnItsNode) {
  class Auditor final : public Interceptor {
   public:
    Value invoke(Invocation& inv, InterceptorChain& chain) override {
      log.push_back(inv.method.name);
      return chain.proceed(inv);
    }
    [[nodiscard]] std::string name() const override { return "Auditor"; }
    std::vector<std::string> log;
  };

  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  FlightBooking::define_classes(cluster.classes());
  auto auditor = std::make_shared<Auditor>();
  cluster.node(0).add_server_interceptor(auditor);
  EXPECT_EQ(cluster.node(0).server_interceptor_names().back(), "Auditor");

  const ObjectId f = FlightBooking::create_flight(cluster.node(0), 10);
  FlightBooking::sell(cluster.node(0), f, 1);
  ASSERT_GE(auditor->log.size(), 2u);
  EXPECT_EQ(auditor->log[0], "setSeats");
  EXPECT_EQ(auditor->log[1], "sellTickets");
}

// ---------------------------------------------------------------------------
// Determinism: identical runs yield identical virtual time and state
// ---------------------------------------------------------------------------

TEST(Determinism, IdenticalRunsAreBitwiseRepeatable) {
  auto run = [] {
    ClusterConfig cfg;
    cfg.nodes = 3;
    Cluster cluster(cfg);
    FlightBooking::define_classes(cluster.classes());
    FlightBooking::register_constraints(cluster.constraints());
    const ObjectId f = FlightBooking::create_flight(cluster.node(0), 500);
    for (int i = 0; i < 20; ++i) {
      FlightBooking::sell(cluster.node(static_cast<std::size_t>(i % 3)), f, 2);
    }
    cluster.inject(fault::split_indices({{0, 1}, {2}}));
    FlightBooking::sell(cluster.node(0), f, 1);
    FlightBooking::sell(cluster.node(2), f, 1);
    cluster.inject(fault::Heal{});
    (void)cluster.reconcile();
    return std::make_pair(cluster.sim().clock.now(),
                          FlightBooking::sold(cluster.node(1), f));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dedisys
