// End-to-end integration tests: the flight-booking scenario of Section 1.3
// driven through the full middleware stack (partition, divergent bookings,
// threat negotiation, replica + constraint reconciliation).
#include <gtest/gtest.h>

#include "middleware/cluster.h"
#include "scenarios/flight.h"

namespace dedisys {
namespace {

using scenarios::FlightBooking;

class FlightCluster : public ::testing::Test {
 protected:
  FlightCluster() : cluster_(make_config()) {
    FlightBooking::define_classes(cluster_.classes());
    FlightBooking::register_constraints(cluster_.constraints());
  }

  static ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.nodes = 3;
    return cfg;
  }

  Cluster cluster_;
};

/// Replica handler merging divergent soldTickets counts additively
/// (each partition's delta relative to the healthy count is applied).
class AdditiveMerge final : public ReplicaConsistencyHandler {
 public:
  explicit AdditiveMerge(std::int64_t healthy_sold)
      : healthy_sold_(healthy_sold) {}

  EntitySnapshot reconcile_replicas(
      ObjectId, const std::vector<EntitySnapshot>& candidates) override {
    std::int64_t total = healthy_sold_;
    std::uint64_t max_version = 0;
    for (const EntitySnapshot& c : candidates) {
      total += as_int(c.attributes.at("soldTickets")) - healthy_sold_;
      max_version = std::max(max_version, c.version);
    }
    EntitySnapshot out = candidates.front();
    out.attributes["soldTickets"] = Value{total};
    out.version = max_version + 1;
    return out;
  }

 private:
  std::int64_t healthy_sold_;
};

/// Constraint reconciliation handler that rebooks surplus passengers
/// (cancels tickets beyond capacity) — the Section 1.3 clean-up.
class Rebooker final : public ConstraintReconciliationHandler {
 public:
  explicit Rebooker(DedisysNode& node) : node_(&node) {}

  bool reconcile(const ConsistencyThreat& threat,
                 ConstraintValidationContext&) override {
    ++calls_;
    TxScope tx(node_->tx());
    const ObjectId flight = threat.context_object;
    const std::int64_t sold =
        as_int(node_->invoke(tx.id(), flight, "getSoldTickets"));
    const std::int64_t seats =
        as_int(node_->invoke(tx.id(), flight, "getSeats"));
    if (sold > seats) {
      node_->invoke(tx.id(), flight, "cancelTickets", {Value{sold - seats}});
      rebooked_ += sold - seats;
    }
    tx.commit();
    return true;  // resolved immediately
  }

  [[nodiscard]] int calls() const { return calls_; }
  [[nodiscard]] std::int64_t rebooked() const { return rebooked_; }

 private:
  DedisysNode* node_;
  int calls_ = 0;
  std::int64_t rebooked_ = 0;
};

TEST_F(FlightCluster, HealthyModeBookingPropagatesToAllReplicas) {
  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 80);
  FlightBooking::sell(n0, flight, 70);

  EXPECT_EQ(FlightBooking::sold(n0, flight), 70);
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_EQ(as_int(cluster_.node(i)
                         .replication()
                         .local_replica(flight)
                         .get("soldTickets")),
              70)
        << "replica on node " << i;
  }
}

TEST_F(FlightCluster, HealthyModeViolationAbortsTransaction) {
  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 10);
  FlightBooking::sell(n0, flight, 10);
  EXPECT_THROW(FlightBooking::sell(n0, flight, 1), ConstraintViolation);
  // The aborted update was rolled back on all replicas.
  EXPECT_EQ(FlightBooking::sold(n0, flight), 10);
  EXPECT_EQ(as_int(cluster_.node(2)
                       .replication()
                       .local_replica(flight)
                       .get("soldTickets")),
            10);
}

TEST_F(FlightCluster, Section13OverbookingScenario) {
  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 80);
  FlightBooking::sell(n0, flight, 70);

  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_EQ(n0.mode(), SystemMode::Degraded);
  EXPECT_EQ(cluster_.node(2).mode(), SystemMode::Degraded);

  // Partition A sells 7 (77 <= 80 holds there), partition B sells 8
  // (78 <= 80 holds there) — both accepted as possibly-satisfied threats.
  FlightBooking::sell(cluster_.node(0), flight, 7);
  FlightBooking::sell(cluster_.node(2), flight, 8);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight), 77);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(2), flight), 78);
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);

  cluster_.inject(fault::Heal{});
  EXPECT_EQ(n0.mode(), SystemMode::Reconciling);

  AdditiveMerge merge(70);
  Rebooker rebooker(n0);
  const Cluster::ReconciliationReport report =
      cluster_.reconcile(&merge, &rebooker);

  EXPECT_EQ(report.replica.conflicts, 1u);
  EXPECT_EQ(report.constraints.reevaluated, 1u);
  EXPECT_EQ(report.constraints.violations, 1u);
  EXPECT_EQ(report.constraints.resolved_immediately, 1u);
  EXPECT_EQ(rebooker.calls(), 1);
  EXPECT_EQ(rebooker.rebooked(), 5);

  // 85 bookings reconciled down to capacity; threat removed; healthy mode.
  EXPECT_EQ(FlightBooking::sold(n0, flight), 80);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
  EXPECT_EQ(n0.mode(), SystemMode::Healthy);
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_EQ(as_int(cluster_.node(i)
                         .replication()
                         .local_replica(flight)
                         .get("soldTickets")),
              80);
  }
}

TEST_F(FlightCluster, ThreatThatTurnsOutSatisfiedIsSimplyRemoved) {
  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 100);
  FlightBooking::sell(n0, flight, 10);

  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  FlightBooking::sell(cluster_.node(0), flight, 5);  // only one partition
  EXPECT_EQ(cluster_.threats().identity_count(), 1u);

  cluster_.inject(fault::Heal{});
  const Cluster::ReconciliationReport report = cluster_.reconcile();
  EXPECT_EQ(report.replica.conflicts, 0u);
  EXPECT_EQ(report.constraints.removed_satisfied, 1u);
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
  // The single-partition update won and reached every replica.
  EXPECT_EQ(FlightBooking::sold(cluster_.node(2), flight), 15);
}

TEST_F(FlightCluster, NonTradeableConstraintRejectsThreatsInDegradedMode) {
  cluster_.constraints().remove("TicketConstraint");
  auto strict = std::make_shared<scenarios::TicketConstraint>(
      "TicketConstraint", ConstraintType::HardInvariant,
      ConstraintPriority::NonTradeable);
  ConstraintRegistration reg;
  reg.constraint = std::move(strict);
  reg.context_class = "Flight";
  reg.affected_methods.push_back(AffectedMethod{
      "Flight", MethodSignature{"sellTickets", {"int"}},
      ContextPreparation{ContextPreparationKind::CalledObject, ""}});
  cluster_.constraints().register_constraint(std::move(reg));

  DedisysNode& n0 = cluster_.node(0);
  const ObjectId flight = FlightBooking::create_flight(n0, 80);
  FlightBooking::sell(n0, flight, 70);

  cluster_.inject(fault::split_indices({{0, 1}, {2}}));
  EXPECT_THROW(FlightBooking::sell(cluster_.node(0), flight, 1),
               ConsistencyThreatRejected);
  // Fallback to conventional behaviour: no progress, no threats stored.
  EXPECT_EQ(cluster_.threats().identity_count(), 0u);
  EXPECT_EQ(FlightBooking::sold(cluster_.node(0), flight), 70);
}

TEST_F(FlightCluster, PrimaryBackupBlocksMinorityPartitionWrites) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.protocol = ReplicationProtocol::PrimaryBackup;
  Cluster pb(cfg);
  FlightBooking::define_classes(pb.classes());
  FlightBooking::register_constraints(pb.constraints());

  const ObjectId flight = FlightBooking::create_flight(pb.node(0), 80);
  pb.inject(fault::split_indices({{0, 1}, {2}}));
  // Majority partition writes fine; reads there are reliable.
  FlightBooking::sell(pb.node(0), flight, 5);
  EXPECT_EQ(pb.threats().identity_count(), 0u);
  // Minority partition is blocked for writes.
  EXPECT_THROW(FlightBooking::sell(pb.node(2), flight, 1), ObjectUnreachable);
  // ... but can still read (stale) local data.
  EXPECT_EQ(FlightBooking::sold(pb.node(2), flight), 0);
}

}  // namespace
}  // namespace dedisys
