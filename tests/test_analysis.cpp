// Static analysis of OCL constraints (PR 3): read-set extraction,
// constant folding, locality classification, descriptor diagnostics and
// the read-set pruning equivalence property.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/abstract_interp.h"
#include "analysis/analyzer.h"
#include "analysis/domain.h"
#include "analysis/report.h"
#include "constraints/constraint.h"
#include "constraints/ocl_constraint.h"
#include "constraints/repository.h"
#include "constraints/threats.h"
#include "middleware/admin.h"
#include "middleware/cluster.h"
#include "middleware/metrics.h"
#include "obs/json.h"
#include "ocl/ocl.h"

namespace dedisys {
namespace {

using analysis::AnalysisReport;
using analysis::Box;
using analysis::ConfigAnalysis;
using analysis::Diagnostic;
using analysis::Interval;
using analysis::Locality;
using analysis::Triviality;
using analysis::Verdict;

bool has_error_containing(const AnalysisReport& report,
                          const std::string& needle) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Diagnostic::Severity::Error &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// -- expression-level analysis ----------------------------------------------

TEST(Analysis, ReadSetExtraction) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.a + arg0 > self.b * 2"));
  EXPECT_FALSE(r.opaque);
  EXPECT_EQ(r.read_set.attributes, (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(r.read_set.arguments, (std::set<std::size_t>{0}));
  EXPECT_EQ(r.triviality, Triviality::None);
  // arg-reading invariants depend on the invocation itself: never pruned.
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, AttributeOnlyReadSetIsPrunable) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x >= 0"));
  EXPECT_EQ(r.read_set.attributes, (std::set<std::string>{"x"}));
  EXPECT_TRUE(r.read_set.arguments.empty());
  EXPECT_TRUE(r.prunable);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Analysis, ConstantFoldingAlwaysTrue) {
  const AnalysisReport r = analysis::analyze_expression(parse_ocl("1 <= 2"));
  EXPECT_EQ(r.triviality, Triviality::AlwaysTrue);
  EXPECT_TRUE(r.prunable);
  EXPECT_FALSE(r.has_errors());  // warning only
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Diagnostic::Severity::Warning);
}

TEST(Analysis, ConstantFoldingAlwaysFalse) {
  const AnalysisReport r = analysis::analyze_expression(parse_ocl("1 > 2"));
  EXPECT_EQ(r.triviality, Triviality::AlwaysFalse);
  EXPECT_FALSE(r.prunable);
  EXPECT_TRUE(has_error_containing(r, "always false"));
}

TEST(Analysis, FoldingThroughNot) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("not (1 > 2)"));
  EXPECT_EQ(r.triviality, Triviality::AlwaysTrue);
}

TEST(Analysis, DeadCodeAbsorbingAnd) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x >= 0 and false"));
  EXPECT_TRUE(r.has_dead_code);
  EXPECT_EQ(r.triviality, Triviality::AlwaysFalse);
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, DeadCodeAbsorbingOr) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("true or self.x > 0"));
  EXPECT_TRUE(r.has_dead_code);
  EXPECT_EQ(r.triviality, Triviality::AlwaysTrue);
  EXPECT_TRUE(r.prunable);
}

TEST(Analysis, NonAbsorbingLogicIsNotDeadCode) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x >= 0 and true"));
  EXPECT_FALSE(r.has_dead_code);
  EXPECT_EQ(r.triviality, Triviality::None);
}

TEST(Analysis, DivisionByConstantZero) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x / 0 <= 1"));
  EXPECT_TRUE(has_error_containing(r, "division by zero"));
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, SetterAttributeMapping) {
  EXPECT_EQ(analysis::setter_attribute("setValue"), "value");
  EXPECT_EQ(analysis::setter_attribute("setSoldTickets"), "soldTickets");
  EXPECT_EQ(analysis::setter_attribute("setX"), "x");
  EXPECT_EQ(analysis::setter_attribute("set"), "");
  EXPECT_EQ(analysis::setter_attribute("getValue"), "");
  EXPECT_EQ(analysis::setter_attribute("settle"), "");
}

TEST(Analysis, OclApplySharedWithInterpreter) {
  const OclValue sum =
      ocl_apply(OclBinOp::Add, OclValue{2.0}, OclValue{3.0});
  EXPECT_DOUBLE_EQ(std::get<double>(sum), 5.0);
  const OclValue eq = ocl_apply(OclBinOp::Eq, OclValue{std::string{"a"}},
                                OclValue{std::string{"a"}});
  EXPECT_NE(std::get<double>(eq), 0.0);
  EXPECT_STREQ(to_string(OclBinOp::Implies), "implies");
}

// -- registration-level analysis --------------------------------------------

ConstraintRegistration make_reg(
    const std::string& name, const std::string& expr,
    const std::string& context_class,
    std::vector<AffectedMethod> methods) {
  ConstraintRegistration reg;
  reg.constraint = std::make_shared<OclConstraint>(
      name, ConstraintType::HardInvariant, ConstraintPriority::NonTradeable,
      expr);
  reg.context_class = context_class;
  reg.affected_methods = std::move(methods);
  return reg;
}

AffectedMethod setter(const std::string& cls, const std::string& name,
                      ContextPreparationKind kind =
                          ContextPreparationKind::CalledObject) {
  ContextPreparation prep;
  prep.kind = kind;
  if (kind == ContextPreparationKind::ReferenceGetter) {
    prep.getter = "getRef";
  }
  return AffectedMethod{cls, MethodSignature{name, {"int"}}, prep};
}

ClassRegistry flight_classes() {
  ClassRegistry classes;
  ClassDescriptor& flight = classes.define("Flight");
  flight.define_attribute("seats", Value{std::int64_t{100}});
  flight.define_attribute("soldTickets", Value{std::int64_t{0}});
  flight.define_attribute("status", Value{std::string{"open"}});
  return classes;
}

TEST(Analysis, UnknownAttributeDiagnostic) {
  const ClassRegistry classes = flight_classes();
  const ConstraintRegistration reg =
      make_reg("typo", "self.soldTickets <= self.seatz", "Flight",
               {setter("Flight", "setSoldTickets")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_TRUE(has_error_containing(r, "seatz"));
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, UnknownContextClassOnlyWarns) {
  const ClassRegistry classes = flight_classes();
  const ConstraintRegistration reg =
      make_reg("ghost", "self.anything >= 0", "Cargo",
               {setter("Cargo", "setAnything")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_FALSE(r.has_errors());
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_NE(r.diagnostics[0].message.find("no class metadata"),
            std::string::npos);
  EXPECT_TRUE(r.prunable);  // no proven error, attribute-only read-set
}

TEST(Analysis, StringNumericComparisonDiagnostics) {
  const ClassRegistry classes = flight_classes();
  const AnalysisReport eq = analysis::analyze_registration(
      make_reg("kind_eq", "self.status = 1", "Flight",
               {setter("Flight", "setStatus")}),
      &classes);
  EXPECT_TRUE(has_error_containing(eq, "string and numeric"));

  const AnalysisReport arith = analysis::analyze_registration(
      make_reg("kind_arith", "self.status + 1 > 0", "Flight",
               {setter("Flight", "setStatus")}),
      &classes);
  EXPECT_TRUE(has_error_containing(arith, "string operand"));
}

TEST(Analysis, ArgumentOutOfRangeDiagnostic) {
  const ClassRegistry classes = flight_classes();
  const ConstraintRegistration reg =
      make_reg("argrange", "arg1 >= 0", "Flight",
               {setter("Flight", "setSeats")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_TRUE(has_error_containing(r, "arg1 is out of range"));
}

TEST(Analysis, LocalityClassification) {
  const ClassRegistry classes = flight_classes();
  const AnalysisReport local = analysis::analyze_registration(
      make_reg("local", "self.seats >= 0", "Flight",
               {setter("Flight", "setSeats")}),
      &classes);
  EXPECT_EQ(local.locality, Locality::Local);

  const AnalysisReport cross = analysis::analyze_registration(
      make_reg("cross", "self.seats >= 0", "Flight",
               {setter("Flight", "setSeats"),
                setter("Booking", "setFlight",
                       ContextPreparationKind::ReferenceGetter)}),
      &classes);
  EXPECT_EQ(cross.locality, Locality::CrossObject);

  ConstraintRegistration fn;
  fn.constraint = std::make_shared<FunctionConstraint>(
      "opaque", ConstraintType::HardInvariant, ConstraintPriority::Tradeable,
      [](ConstraintValidationContext&) { return true; });
  const AnalysisReport opaque = analysis::analyze_registration(fn, &classes);
  EXPECT_TRUE(opaque.opaque);
  EXPECT_EQ(opaque.locality, Locality::Opaque);
  EXPECT_FALSE(opaque.prunable);
}

TEST(Analysis, RepositoryAnalysisAttachesReportsOnce) {
  ClassRegistry classes = flight_classes();
  ConstraintRepository repo;
  repo.register_constraint(make_reg("inv", "self.seats >= 0", "Flight",
                                    {setter("Flight", "setSeats")}));
  EXPECT_EQ(analysis::analyze_repository(repo, &classes), 1u);
  const ConstraintRegistration* reg = repo.registration("inv");
  ASSERT_NE(reg, nullptr);
  ASSERT_NE(reg->analysis, nullptr);
  EXPECT_TRUE(reg->analysis->prunable);
  // Structurally local constraints become intra-object (Section 3.1).
  EXPECT_TRUE(reg->constraint->intra_object());
  // Idempotent: already-analyzed registrations are left alone.
  EXPECT_EQ(analysis::analyze_repository(repo, &classes), 0u);
}

TEST(Analysis, LoadClassesXml) {
  ClassRegistry classes;
  const std::size_t n = analysis::load_classes_xml(
      "<classes>"
      "  <class name=\"Base\"><attribute name=\"id\" type=\"long\"/></class>"
      "  <class name=\"Derived\" super=\"Base\">"
      "    <attribute name=\"label\" type=\"string\"/>"
      "  </class>"
      "</classes>",
      classes);
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(classes.contains("Derived"));
  EXPECT_EQ(classes.get("Derived").super(), "Base");
  // Inherited attributes resolve through the ancestry walk.
  const ConstraintRegistration reg =
      make_reg("inherit", "self.id >= 0 and self.label = self.label",
               "Derived", {setter("Derived", "setLabel")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, RenderDiagnosticsFormat) {
  AnalysisReport r;
  r.diagnostics.push_back(
      Diagnostic{Diagnostic::Severity::Error, "boom"});
  EXPECT_EQ(analysis::render_diagnostics("C1", r), "C1: error: boom\n");
}

// -- cluster wiring ----------------------------------------------------------

void define_wide_class(ClassRegistry& classes) {
  ClassDescriptor& wide = classes.define("Wide");
  for (int k = 0; k < 4; ++k) {
    wide.define_property("f" + std::to_string(k), Value{std::int64_t{0}},
                         "int");
  }
}

std::vector<AffectedMethod> all_wide_setters() {
  std::vector<AffectedMethod> out;
  out.reserve(4);
  for (int k = 0; k < 4; ++k) {
    out.push_back(setter("Wide", "setF" + std::to_string(k)));
  }
  return out;
}

void register_wide_constraints(ConstraintRepository& repo) {
  for (int k = 0; k < 4; ++k) {
    repo.register_constraint(
        make_reg("inv" + std::to_string(k),
                 "self.f" + std::to_string(k) + " >= 0", "Wide",
                 all_wide_setters()));
  }
  ConstraintRegistration triv = make_reg("triv", "1 <= 2", "Wide",
                                         all_wide_setters());
  repo.register_constraint(std::move(triv));
  ConstraintRegistration soft =
      make_reg("soft0", "self.f0 >= 0 - 1000", "Wide", all_wide_setters());
  soft.constraint = std::make_shared<OclConstraint>(
      "soft0", ConstraintType::SoftInvariant, ConstraintPriority::Tradeable,
      "self.f0 >= 0 - 1000");
  repo.register_constraint(std::move(soft));
}

/// Deterministic xorshift so the "randomized" workload is reproducible.
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  int below(int n) { return static_cast<int>(next() % n); }
};

std::string run_wide_workload(Cluster& cluster) {
  DedisysNode& node = cluster.node(0);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    TxScope tx(node.tx());
    ids.push_back(node.create(tx.id(), "Wide"));
    tx.commit();
  }
  Rng rng;
  std::string digest;
  for (int i = 0; i < 160; ++i) {
    const ObjectId target = ids[static_cast<std::size_t>(rng.below(3))];
    const int field = rng.below(4);
    // ~25% of writes are negative -> hard-invariant violations + rollback.
    const std::int64_t value = rng.below(16) - 4;
    try {
      TxScope tx(node.tx());
      node.invoke(tx.id(), target, "setF" + std::to_string(field),
                  {Value{value}});
      tx.commit();
      digest += "ok;";
    } catch (const DedisysError&) {
      digest += "viol;";
    }
  }
  // Final state must match too: pruning may not change any outcome.
  for (const ObjectId id : ids) {
    for (int k = 0; k < 4; ++k) {
      TxScope tx(node.tx());
      const Value v =
          node.invoke(tx.id(), id, "getF" + std::to_string(k), {});
      tx.commit();
      digest += std::to_string(std::get<std::int64_t>(v)) + ",";
    }
  }
  return digest;
}

/// Pinned equivalence property: read-set pruning must not change a single
/// invocation outcome or any final attribute value, while provably
/// skipping work.
TEST(Analysis, PruningEquivalentToExhaustiveValidation) {
  ClusterConfig cfg;
  cfg.nodes = 2;

  Cluster pruned(cfg);
  define_wide_class(pruned.classes());
  register_wide_constraints(pruned.constraints());
  analysis::analyze_repository(pruned.constraints(), &pruned.classes());
  ASSERT_TRUE(pruned.node(0).ccmgr().pruning());  // default on

  Cluster exhaustive(cfg);
  define_wide_class(exhaustive.classes());
  register_wide_constraints(exhaustive.constraints());
  analysis::analyze_repository(exhaustive.constraints(),
                               &exhaustive.classes());
  for (std::size_t n = 0; n < cfg.nodes; ++n) {
    exhaustive.node(n).ccmgr().set_pruning(false);
  }

  const std::string pruned_digest = run_wide_workload(pruned);
  const std::string exhaustive_digest = run_wide_workload(exhaustive);
  EXPECT_EQ(pruned_digest, exhaustive_digest);
  // The workload contains both outcomes, so the digest is discriminating.
  EXPECT_NE(pruned_digest.find("ok;"), std::string::npos);
  EXPECT_NE(pruned_digest.find("viol;"), std::string::npos);

  const auto& ps = pruned.node(0).ccmgr().stats();
  const auto& es = exhaustive.node(0).ccmgr().stats();
  EXPECT_GT(ps.evaluations_skipped, 0u);
  EXPECT_EQ(es.evaluations_skipped, 0u);
  EXPECT_LT(ps.validations, es.validations);
  EXPECT_EQ(ps.violations, es.violations);

  // The saved work is visible to operators through the metrics snapshot.
  const ClusterMetrics m = collect_metrics(pruned);
  EXPECT_EQ(m.nodes[0].evaluations_skipped, ps.evaluations_skipped);
}

TEST(Analysis, AdminDeployAnalyzesAndExportsReports) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  ClassDescriptor& flight = cluster.classes().define("Flight");
  flight.define_property("seats", Value{std::int64_t{100}}, "int");
  flight.define_property("soldTickets", Value{std::int64_t{0}}, "int");

  AdminConsole admin(cluster);
  const std::size_t loaded = admin.deploy_constraints(
      "<constraints>"
      "  <constraint name=\"SeatLimit\" type=\"HARD\" priority=\"CRITICAL\">"
      "    <ocl>self.soldTickets &lt;= self.seats</ocl>"
      "    <context-class>Flight</context-class>"
      "    <affected-methods>"
      "      <affected-method>"
      "        <objectMethod name=\"setSoldTickets\">"
      "          <objectClass>Flight</objectClass>"
      "          <arguments><argument>int</argument></arguments>"
      "        </objectMethod>"
      "      </affected-method>"
      "    </affected-methods>"
      "  </constraint>"
      "</constraints>");
  EXPECT_EQ(loaded, 1u);

  const AnalysisReport* r = admin.analysis_report("SeatLimit");
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->opaque);
  EXPECT_EQ(r->locality, Locality::Local);
  EXPECT_TRUE(r->prunable);
  EXPECT_EQ(r->read_set.attributes,
            (std::set<std::string>{"seats", "soldTickets"}));
  EXPECT_EQ(admin.analysis_report("NoSuch"), nullptr);

  // The reports ride along in the JSON export for /metrics consumers.
  const obs::Json doc = obs::Json::parse(admin.metrics_json());
  const obs::Json& constraints = doc.at("constraints");
  ASSERT_EQ(constraints.size(), 1u);
  const obs::Json& entry = constraints.at(0);
  EXPECT_EQ(entry.at("name").as_string(), "SeatLimit");
  EXPECT_EQ(entry.at("analysis").at("locality").as_string(), "local");
  EXPECT_EQ(entry.at("analysis").at("prunable").as_bool(), true);
}

// -- abstract interpretation (PR 8) -----------------------------------------

bool has_warning_containing(const AnalysisReport& report,
                            const std::string& needle) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Diagnostic::Severity::Warning &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Golden pins for the interval domain: lattice operations, arithmetic
/// transfer functions and their edge conventions.
TEST(AbstractInterp, IntervalLatticeGolden) {
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_TRUE(Interval::bottom().is_empty());
  EXPECT_TRUE(Interval::point(3).is_point());
  EXPECT_TRUE(Interval::at_least(0).contains(1e12));
  EXPECT_FALSE(Interval::at_most(0).contains(0.5));

  EXPECT_EQ(join(Interval::range(0, 2), Interval::range(5, 7)),
            Interval::range(0, 7));
  EXPECT_EQ(join(Interval::bottom(), Interval::point(4)), Interval::point(4));
  EXPECT_EQ(meet(Interval::range(0, 10), Interval::range(5, 20)),
            Interval::range(5, 10));
  EXPECT_TRUE(meet(Interval::range(0, 2), Interval::range(5, 7)).is_empty());

  // Widening: bounds that grew jump to infinity, stable bounds persist.
  const Interval w = widen(Interval::range(0, 4), Interval::range(-1, 4));
  EXPECT_EQ(w.lo, -kInf);
  EXPECT_EQ(w.hi, 4);
  EXPECT_EQ(widen(Interval::range(0, 4), Interval::range(0, 4)),
            Interval::range(0, 4));

  EXPECT_TRUE(Interval::range(1, 2).subset_of(Interval::range(0, 3)));
  EXPECT_FALSE(Interval::range(0, 3).subset_of(Interval::range(1, 2)));
  EXPECT_TRUE(Interval::bottom().subset_of(Interval::point(0)));
}

TEST(AbstractInterp, IntervalArithmeticGolden) {
  EXPECT_EQ(add(Interval::range(1, 2), Interval::range(10, 20)),
            Interval::range(11, 22));
  EXPECT_EQ(sub(Interval::range(1, 2), Interval::range(10, 20)),
            Interval::range(-19, -8));
  EXPECT_EQ(neg(Interval::range(-1, 5)), Interval::range(-5, 1));
  EXPECT_EQ(mul(Interval::range(-1, 2), Interval::range(3, 4)),
            Interval::range(-4, 8));
  // 0 * inf is 0 by the interval convention, not IEEE NaN.
  EXPECT_EQ(mul(Interval::point(0), Interval::top()), Interval::point(0));
  // Division by an interval containing zero loses all precision (top);
  // a sign-definite divisor keeps bounds.
  EXPECT_TRUE(div(Interval::point(1), Interval::range(-1, 1)).is_top());
  EXPECT_EQ(div(Interval::range(10, 20), Interval::range(2, 5)),
            Interval::range(2, 10));
  EXPECT_EQ(to_string(Interval::range(0, 1)), "[0, 1]");
  EXPECT_EQ(to_string(Interval::top()), "[-inf, +inf]");
  EXPECT_EQ(to_string(Interval::bottom()), "(empty)");
}

TEST(AbstractInterp, BoxesDisjointWitness) {
  const Box a{{"seats", Interval::at_least(10)}};
  const Box b{{"seats", Interval::at_most(5)}};
  const Box c{{"price", Interval::at_most(5)}};
  std::string witness;
  EXPECT_TRUE(analysis::boxes_disjoint(a, b, &witness));
  EXPECT_EQ(witness, "seats");
  // Different attributes never prove disjointness.
  EXPECT_FALSE(analysis::boxes_disjoint(a, c));
}

/// Classes with one bool attribute (interval [0, 1]), numeric attributes
/// (top) and a string attribute, for registration-level interpretation.
ClassRegistry typed_classes() {
  ClassRegistry classes;
  ClassDescriptor& flight = classes.define("Flight");
  flight.define_attribute("seats", Value{std::int64_t{100}});
  flight.define_attribute("price", Value{2.0});
  flight.define_attribute("status", Value{std::string{"open"}});
  flight.define_attribute("active", Value{false});
  return classes;
}

AnalysisReport interpret(const std::string& expr) {
  static const ClassRegistry classes = typed_classes();
  return analysis::analyze_registration(
      make_reg("c", expr, "Flight", {setter("Flight", "setSeats")}),
      &classes);
}

/// Exemplar classification table: the verdict the abstract interpreter
/// must reach for each expression shape, pinned as golden values.
TEST(AbstractInterp, ClassificationGolden) {
  // Bool attributes carry the derived interval [0, 1].
  EXPECT_EQ(interpret("self.active >= 0").verdict, Verdict::Tautology);
  EXPECT_EQ(interpret("self.active <= 1").verdict, Verdict::Tautology);
  EXPECT_EQ(interpret("self.active >= 0 and self.active <= 1").verdict,
            Verdict::Tautology);
  EXPECT_EQ(interpret("self.active > 1").verdict, Verdict::Unsatisfiable);
  EXPECT_EQ(interpret("self.active < 0").verdict, Verdict::Unsatisfiable);
  // Intervals propagate through arithmetic before the comparison decides.
  EXPECT_EQ(interpret("self.active * 2 <= 2").verdict, Verdict::Tautology);
  EXPECT_EQ(interpret("self.active - 1 <= 0").verdict, Verdict::Tautology);
  EXPECT_EQ(interpret("not (self.active > 1)").verdict, Verdict::Tautology);
  EXPECT_EQ(interpret("self.active >= 0 or self.seats > 0").verdict,
            Verdict::Tautology);
  EXPECT_EQ(interpret("self.active < 0 implies self.seats > 100").verdict,
            Verdict::Tautology);
  // Unbounded numeric attributes stay contingent...
  EXPECT_EQ(interpret("self.seats >= 0").verdict, Verdict::Contingent);
  EXPECT_EQ(interpret("self.seats + 1 > self.seats").verdict,
            Verdict::Contingent);
  EXPECT_EQ(interpret("self.status = \"open\"").verdict,
            Verdict::Contingent);
  // ...unless the constraint's own atoms make the satisfying box empty.
  EXPECT_EQ(interpret("self.seats >= 10 and self.seats <= 5").verdict,
            Verdict::Unsatisfiable);
  EXPECT_EQ(interpret("self.seats >= 5 and self.seats <= 10").verdict,
            Verdict::Contingent);
}

TEST(AbstractInterp, TautologyAndUnsatDiagnostics) {
  const AnalysisReport taut = interpret("self.active >= 0");
  EXPECT_TRUE(has_warning_containing(taut, "proven tautology"));
  EXPECT_FALSE(taut.has_errors());
  EXPECT_TRUE(taut.prunable);

  const AnalysisReport unsat = interpret("self.active > 1");
  EXPECT_TRUE(has_error_containing(unsat, "statically unsatisfiable"));
  EXPECT_FALSE(unsat.prunable);
}

TEST(AbstractInterp, RefinedWarnings) {
  // Divisor interval [0, 1] contains zero -> possible division by zero.
  EXPECT_TRUE(has_warning_containing(
      interpret("self.seats / self.active >= 0"),
      "possible division by zero"));
  // A branch decided by derived intervals (not by constant folding) is
  // flagged as dead.
  const AnalysisReport dead =
      interpret("self.active >= 0 or self.seats > 0");
  EXPECT_TRUE(has_warning_containing(dead, "dead branch"));
  EXPECT_TRUE(dead.has_dead_code);
  // A statically-false implication guard makes the constraint vacuous.
  EXPECT_TRUE(has_warning_containing(
      interpret("self.active < 0 implies self.seats > 100"),
      "vacuously true"));
  // Plain contingent constraints stay clean.
  EXPECT_TRUE(interpret("self.seats >= 0").diagnostics.empty());
}

TEST(AbstractInterp, SatisfactionBoxes) {
  const AnalysisReport band = interpret("self.seats >= 5 and self.seats <= 10");
  ASSERT_EQ(band.sat_box.count("seats"), 1u);
  EXPECT_EQ(band.sat_box.at("seats"), Interval::range(5, 10));
  EXPECT_TRUE(band.sat_box_exact);

  const AnalysisReport point = interpret("self.seats = 7");
  ASSERT_EQ(point.sat_box.count("seats"), 1u);
  EXPECT_EQ(point.sat_box.at("seats"), Interval::point(7));
  EXPECT_TRUE(point.sat_box_exact);

  // Strict bounds keep the closed over-approximation but lose exactness.
  const AnalysisReport strict = interpret("self.seats > 5");
  ASSERT_EQ(strict.sat_box.count("seats"), 1u);
  EXPECT_FALSE(strict.sat_box_exact);

  // Disjunctions only keep what both arms agree on, never exactly.
  const AnalysisReport disj =
      interpret("self.seats <= 2 or self.seats >= 8");
  EXPECT_FALSE(disj.sat_box_exact);
}

/// Pinned regression (PR 8 satellite): a comparison mixing a *folded*
/// numeric constant with a string-kind attribute must hit the same
/// kind-mismatch diagnostic a literal numeric operand does.
TEST(AbstractInterp, FoldedConstantVsStringKindRegression) {
  const AnalysisReport r = analysis::analyze_expression(
      parse_ocl("self.status = \"open\" and self.status = 2 - 1"));
  EXPECT_TRUE(has_error_containing(r, "string and numeric"));

  // Registration-level with declared class metadata agrees.
  const ClassRegistry classes = typed_classes();
  const AnalysisReport reg = analysis::analyze_registration(
      make_reg("mix", "self.status = \"open\" and self.status = 2 - 1",
               "Flight", {setter("Flight", "setStatus")}),
      &classes);
  EXPECT_TRUE(has_error_containing(reg, "string and numeric"));
}

// -- whole-configuration analysis -------------------------------------------

ConstraintRepository conflicting_repo() {
  ConstraintRepository repo;
  repo.register_constraint(make_reg("a_min", "self.seats >= 10", "Flight",
                                    {setter("Flight", "setSeats")}));
  repo.register_constraint(make_reg("a_max", "self.seats <= 5", "Flight",
                                    {setter("Flight", "setSeats")}));
  repo.register_constraint(make_reg("p_strong", "self.price >= 10", "Flight",
                                    {setter("Flight", "setPrice")}));
  repo.register_constraint(make_reg("p_weak", "self.price >= 5", "Flight",
                                    {setter("Flight", "setPrice")}));
  repo.register_constraint(make_reg("solo", "self.soldTickets >= 0", "Flight",
                                    {setter("Flight", "setSoldTickets")}));
  return repo;
}

TEST(ConfigAnalysisTest, ConflictSubsumptionAndInterference) {
  const ClassRegistry classes = typed_classes();
  ConstraintRepository repo = conflicting_repo();
  EXPECT_EQ(repo.config_analysis(), nullptr);  // not analyzed yet
  analysis::analyze_repository(repo, &classes);
  const ConfigAnalysis* cfg = repo.config_analysis();
  ASSERT_NE(cfg, nullptr);

  // Disjoint satisfaction sets on `seats` -> conflict with witness.
  ASSERT_EQ(cfg->conflicts.size(), 1u);
  EXPECT_EQ(cfg->conflicts[0].first, "a_min");
  EXPECT_EQ(cfg->conflicts[0].second, "a_max");
  EXPECT_EQ(cfg->conflicts[0].attribute, "seats");

  // price >= 10 implies price >= 5 -> the weaker invariant is redundant.
  ASSERT_EQ(cfg->subsumptions.size(), 1u);
  EXPECT_EQ(cfg->subsumptions[0].stronger, "p_strong");
  EXPECT_EQ(cfg->subsumptions[0].weaker, "p_weak");

  // Interference: shared read-set attributes within one context class.
  ASSERT_EQ(cfg->interference.size(), 2u);
  // Cluster keys are the lexicographically smallest member ("a_max" <
  // "a_min").
  EXPECT_EQ(cfg->cluster_of.at("a_min"), "a_max");
  EXPECT_EQ(cfg->cluster_of.at("a_max"), "a_max");
  EXPECT_EQ(cfg->cluster_of.at("p_strong"), "p_strong");
  EXPECT_EQ(cfg->cluster_of.at("p_weak"), "p_strong");
  EXPECT_EQ(cfg->cluster_of.at("solo"), "solo");
  EXPECT_EQ(cfg->clusters, 3u);

  EXPECT_EQ(cfg->tautologies, 0u);
  EXPECT_EQ(cfg->unsatisfiable, 0u);
  EXPECT_EQ(cfg->contingent, 5u);

  // Any repository mutation invalidates the configuration analysis.
  repo.remove("solo");
  EXPECT_EQ(repo.config_analysis(), nullptr);
}

constexpr const char* kMinSeatsXml =
    "<constraints>"
    "  <constraint name=\"MinSeats\" type=\"HARD\" priority=\"CRITICAL\">"
    "    <ocl>self.seats &gt;= 10</ocl>"
    "    <context-class>Flight</context-class>"
    "    <affected-methods><affected-method>"
    "      <objectMethod name=\"setSeats\">"
    "        <objectClass>Flight</objectClass>"
    "        <arguments><argument>int</argument></arguments>"
    "      </objectMethod>"
    "    </affected-method></affected-methods>"
    "  </constraint>"
    "</constraints>";

constexpr const char* kMaxSeatsXml =
    "<constraints>"
    "  <constraint name=\"MaxSeats\" type=\"HARD\" priority=\"CRITICAL\">"
    "    <ocl>self.seats &lt;= 5</ocl>"
    "    <context-class>Flight</context-class>"
    "    <affected-methods><affected-method>"
    "      <objectMethod name=\"setSeats\">"
    "        <objectClass>Flight</objectClass>"
    "        <arguments><argument>int</argument></arguments>"
    "      </objectMethod>"
    "    </affected-method></affected-methods>"
    "  </constraint>"
    "</constraints>";

constexpr const char* kImpossibleXml =
    "<constraints>"
    "  <constraint name=\"Impossible\" type=\"HARD\" priority=\"CRITICAL\">"
    "    <ocl>self.seats &gt;= 10 and self.seats &lt;= 5</ocl>"
    "    <context-class>Flight</context-class>"
    "    <affected-methods><affected-method>"
    "      <objectMethod name=\"setSeats\">"
    "        <objectClass>Flight</objectClass>"
    "        <arguments><argument>int</argument></arguments>"
    "      </objectMethod>"
    "    </affected-method></affected-methods>"
    "  </constraint>"
    "</constraints>";

Cluster& define_flight_class(Cluster& cluster) {
  ClassDescriptor& flight = cluster.classes().define("Flight");
  flight.define_property("seats", Value{std::int64_t{100}}, "int");
  return cluster;
}

TEST(ConfigAnalysisTest, DeployRejectsUnsatisfiableInvariant) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  define_flight_class(cluster);
  AdminConsole admin(cluster);
  try {
    admin.deploy_constraints(kImpossibleXml);
    FAIL() << "unsatisfiable invariant must be rejected at deploy time";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Impossible"), std::string::npos) << what;
    EXPECT_NE(what.find("statically unsatisfiable"), std::string::npos)
        << what;
  }
  // The failed batch was rolled back completely.
  EXPECT_EQ(admin.analysis_report("Impossible"), nullptr);
  EXPECT_TRUE(cluster.constraints().registrations().empty());
}

TEST(ConfigAnalysisTest, DeployRejectsConflictingPairNamingBoth) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  define_flight_class(cluster);
  AdminConsole admin(cluster);
  EXPECT_EQ(admin.deploy_constraints(kMinSeatsXml), 1u);
  try {
    admin.deploy_constraints(kMaxSeatsXml);
    FAIL() << "conflicting invariant pair must be rejected at deploy time";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("MinSeats"), std::string::npos) << what;
    EXPECT_NE(what.find("MaxSeats"), std::string::npos) << what;
    EXPECT_NE(what.find("seats"), std::string::npos) << what;
  }
  // The pre-existing deployment survives, the new constraint is gone and
  // the configuration analysis was rebuilt for the surviving set.
  EXPECT_NE(admin.analysis_report("MinSeats"), nullptr);
  EXPECT_EQ(admin.analysis_report("MaxSeats"), nullptr);
  const ConfigAnalysis* restored = cluster.constraints().config_analysis();
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(restored->conflicts.empty());

  // The configuration summary rides along in the metrics export.
  const obs::Json doc = obs::Json::parse(admin.metrics_json());
  const obs::Json& an = doc.at("analysis");
  EXPECT_EQ(an.at("verdicts").at("contingent").as_int(), 1);
  EXPECT_EQ(an.at("conflicts").size(), 0u);
}

// -- runtime wiring: proven tautologies and the reconciliation scheduler ----

TEST(ConfigAnalysisTest, ProvenTautologySkipsValidationWithTrace) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.flags.observability = true;
  Cluster cluster(cfg);
  ClassDescriptor& flight = cluster.classes().define("Flight");
  flight.define_property("active", Value{false}, "bool");
  flight.define_property("seats", Value{std::int64_t{0}}, "int");

  ConstraintRegistration taut;
  taut.constraint = std::make_shared<OclConstraint>(
      "ActiveIsBool", ConstraintType::HardInvariant,
      ConstraintPriority::NonTradeable,
      "self.active >= 0 and self.active <= 1");
  taut.context_class = "Flight";
  taut.affected_methods = {AffectedMethod{
      "Flight", MethodSignature{"setActive", {"bool"}},
      ContextPreparation{}}};
  cluster.constraints().register_constraint(std::move(taut));
  cluster.constraints().register_constraint(
      make_reg("SeatsNonNegative", "self.seats >= 0", "Flight",
               {setter("Flight", "setSeats")}));
  analysis::analyze_repository(cluster.constraints(), &cluster.classes());

  const ConstraintRegistration* reg =
      cluster.constraints().registration("ActiveIsBool");
  ASSERT_NE(reg, nullptr);
  ASSERT_NE(reg->analysis, nullptr);
  EXPECT_EQ(reg->analysis->verdict, Verdict::Tautology);

  DedisysNode& node = cluster.node(0);
  ObjectId id;
  {
    TxScope tx(node.tx());
    id = node.create(tx.id(), "Flight");
    tx.commit();
  }
  {
    TxScope tx(node.tx());
    node.invoke(tx.id(), id, "setActive", {Value{true}});
    tx.commit();
  }
  {
    TxScope tx(node.tx());
    node.invoke(tx.id(), id, "setSeats", {Value{std::int64_t{5}}});
    tx.commit();
  }

  const auto& stats = node.ccmgr().stats();
  EXPECT_GT(stats.evaluations_proven, 0u);
  // The contingent invariant still validated normally.
  EXPECT_GT(stats.validations, 0u);

  const auto proven = cluster.obs().trace().events_of(
      obs::TraceEventKind::ValidationProven);
  ASSERT_FALSE(proven.empty());
  EXPECT_EQ(proven[0].label, "ActiveIsBool");
  EXPECT_EQ(proven[0].detail, "proven tautology");

  const ClusterMetrics m = collect_metrics(cluster);
  EXPECT_EQ(m.nodes[0].evaluations_proven, stats.evaluations_proven);
}

void register_interfering_invariants(ConstraintRepository& repo) {
  repo.register_constraint(
      make_reg("a_pair", "self.f0 >= 0 and self.f1 >= 0", "Wide",
               {setter("Wide", "setF0"), setter("Wide", "setF1")}));
  repo.register_constraint(
      make_reg("z_pair", "self.f1 >= 0 and self.f2 >= 0", "Wide",
               {setter("Wide", "setF1"), setter("Wide", "setF2")}));
  repo.register_constraint(make_reg("m_solo", "self.f3 >= 0", "Wide",
                                    {setter("Wide", "setF3")}));
}

std::vector<std::string> reconcile_order(bool scheduler,
                                         std::size_t* scheduled) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.flags.observability = true;
  Cluster cluster(cfg);
  define_wide_class(cluster.classes());
  register_interfering_invariants(cluster.constraints());
  analysis::analyze_repository(cluster.constraints(), &cluster.classes());

  DedisysNode& node = cluster.node(0);
  node.ccmgr().set_scheduling(scheduler);
  ObjectId id;
  {
    TxScope tx(node.tx());
    id = node.create(tx.id(), "Wide");
    tx.commit();
  }
  for (const char* name : {"a_pair", "z_pair", "m_solo"}) {
    ConsistencyThreat t;
    t.constraint_name = name;
    t.context_object = id;
    t.degree = SatisfactionDegree::Uncheckable;
    cluster.threats().store(t);
  }

  const auto stats = node.ccmgr().reconcile(nullptr);
  EXPECT_EQ(stats.reevaluated, 3u);
  EXPECT_EQ(stats.removed_satisfied, 3u);
  EXPECT_EQ(cluster.threats().identity_count(), 0u);
  if (scheduled != nullptr) *scheduled = stats.scheduled;

  std::vector<std::string> order;
  for (const obs::TraceEvent& e : cluster.obs().trace().events_of(
           obs::TraceEventKind::ThreatReconciled)) {
    order.push_back(e.label);
  }
  return order;
}

/// The interference-aware scheduler reorders the reconciliation batch by
/// cluster (a_pair and z_pair share f1) without changing any outcome;
/// with the scheduler off the legacy identity order is untouched.
TEST(ConfigAnalysisTest, SchedulerGroupsInterferingThreats) {
  std::size_t scheduled_on = 0;
  std::size_t scheduled_off = 0;
  const std::vector<std::string> on = reconcile_order(true, &scheduled_on);
  const std::vector<std::string> off = reconcile_order(false, &scheduled_off);
  EXPECT_EQ(on, (std::vector<std::string>{"a_pair", "z_pair", "m_solo"}));
  EXPECT_EQ(off, (std::vector<std::string>{"a_pair", "m_solo", "z_pair"}));
  EXPECT_EQ(scheduled_on, 3u);
  EXPECT_EQ(scheduled_off, 0u);
}

}  // namespace
}  // namespace dedisys
