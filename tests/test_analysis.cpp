// Static analysis of OCL constraints (PR 3): read-set extraction,
// constant folding, locality classification, descriptor diagnostics and
// the read-set pruning equivalence property.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/report.h"
#include "constraints/constraint.h"
#include "constraints/ocl_constraint.h"
#include "constraints/repository.h"
#include "middleware/admin.h"
#include "middleware/cluster.h"
#include "middleware/metrics.h"
#include "obs/json.h"
#include "ocl/ocl.h"

namespace dedisys {
namespace {

using analysis::AnalysisReport;
using analysis::Diagnostic;
using analysis::Locality;
using analysis::Triviality;

bool has_error_containing(const AnalysisReport& report,
                          const std::string& needle) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Diagnostic::Severity::Error &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// -- expression-level analysis ----------------------------------------------

TEST(Analysis, ReadSetExtraction) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.a + arg0 > self.b * 2"));
  EXPECT_FALSE(r.opaque);
  EXPECT_EQ(r.read_set.attributes, (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(r.read_set.arguments, (std::set<std::size_t>{0}));
  EXPECT_EQ(r.triviality, Triviality::None);
  // arg-reading invariants depend on the invocation itself: never pruned.
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, AttributeOnlyReadSetIsPrunable) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x >= 0"));
  EXPECT_EQ(r.read_set.attributes, (std::set<std::string>{"x"}));
  EXPECT_TRUE(r.read_set.arguments.empty());
  EXPECT_TRUE(r.prunable);
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(Analysis, ConstantFoldingAlwaysTrue) {
  const AnalysisReport r = analysis::analyze_expression(parse_ocl("1 <= 2"));
  EXPECT_EQ(r.triviality, Triviality::AlwaysTrue);
  EXPECT_TRUE(r.prunable);
  EXPECT_FALSE(r.has_errors());  // warning only
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].severity, Diagnostic::Severity::Warning);
}

TEST(Analysis, ConstantFoldingAlwaysFalse) {
  const AnalysisReport r = analysis::analyze_expression(parse_ocl("1 > 2"));
  EXPECT_EQ(r.triviality, Triviality::AlwaysFalse);
  EXPECT_FALSE(r.prunable);
  EXPECT_TRUE(has_error_containing(r, "always false"));
}

TEST(Analysis, FoldingThroughNot) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("not (1 > 2)"));
  EXPECT_EQ(r.triviality, Triviality::AlwaysTrue);
}

TEST(Analysis, DeadCodeAbsorbingAnd) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x >= 0 and false"));
  EXPECT_TRUE(r.has_dead_code);
  EXPECT_EQ(r.triviality, Triviality::AlwaysFalse);
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, DeadCodeAbsorbingOr) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("true or self.x > 0"));
  EXPECT_TRUE(r.has_dead_code);
  EXPECT_EQ(r.triviality, Triviality::AlwaysTrue);
  EXPECT_TRUE(r.prunable);
}

TEST(Analysis, NonAbsorbingLogicIsNotDeadCode) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x >= 0 and true"));
  EXPECT_FALSE(r.has_dead_code);
  EXPECT_EQ(r.triviality, Triviality::None);
}

TEST(Analysis, DivisionByConstantZero) {
  const AnalysisReport r =
      analysis::analyze_expression(parse_ocl("self.x / 0 <= 1"));
  EXPECT_TRUE(has_error_containing(r, "division by zero"));
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, SetterAttributeMapping) {
  EXPECT_EQ(analysis::setter_attribute("setValue"), "value");
  EXPECT_EQ(analysis::setter_attribute("setSoldTickets"), "soldTickets");
  EXPECT_EQ(analysis::setter_attribute("setX"), "x");
  EXPECT_EQ(analysis::setter_attribute("set"), "");
  EXPECT_EQ(analysis::setter_attribute("getValue"), "");
  EXPECT_EQ(analysis::setter_attribute("settle"), "");
}

TEST(Analysis, OclApplySharedWithInterpreter) {
  const OclValue sum =
      ocl_apply(OclBinOp::Add, OclValue{2.0}, OclValue{3.0});
  EXPECT_DOUBLE_EQ(std::get<double>(sum), 5.0);
  const OclValue eq = ocl_apply(OclBinOp::Eq, OclValue{std::string{"a"}},
                                OclValue{std::string{"a"}});
  EXPECT_NE(std::get<double>(eq), 0.0);
  EXPECT_STREQ(to_string(OclBinOp::Implies), "implies");
}

// -- registration-level analysis --------------------------------------------

ConstraintRegistration make_reg(
    const std::string& name, const std::string& expr,
    const std::string& context_class,
    std::vector<AffectedMethod> methods) {
  ConstraintRegistration reg;
  reg.constraint = std::make_shared<OclConstraint>(
      name, ConstraintType::HardInvariant, ConstraintPriority::NonTradeable,
      expr);
  reg.context_class = context_class;
  reg.affected_methods = std::move(methods);
  return reg;
}

AffectedMethod setter(const std::string& cls, const std::string& name,
                      ContextPreparationKind kind =
                          ContextPreparationKind::CalledObject) {
  ContextPreparation prep;
  prep.kind = kind;
  if (kind == ContextPreparationKind::ReferenceGetter) {
    prep.getter = "getRef";
  }
  return AffectedMethod{cls, MethodSignature{name, {"int"}}, prep};
}

ClassRegistry flight_classes() {
  ClassRegistry classes;
  ClassDescriptor& flight = classes.define("Flight");
  flight.define_attribute("seats", Value{std::int64_t{100}});
  flight.define_attribute("soldTickets", Value{std::int64_t{0}});
  flight.define_attribute("status", Value{std::string{"open"}});
  return classes;
}

TEST(Analysis, UnknownAttributeDiagnostic) {
  const ClassRegistry classes = flight_classes();
  const ConstraintRegistration reg =
      make_reg("typo", "self.soldTickets <= self.seatz", "Flight",
               {setter("Flight", "setSoldTickets")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_TRUE(has_error_containing(r, "seatz"));
  EXPECT_FALSE(r.prunable);
}

TEST(Analysis, UnknownContextClassOnlyWarns) {
  const ClassRegistry classes = flight_classes();
  const ConstraintRegistration reg =
      make_reg("ghost", "self.anything >= 0", "Cargo",
               {setter("Cargo", "setAnything")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_FALSE(r.has_errors());
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_NE(r.diagnostics[0].message.find("no class metadata"),
            std::string::npos);
  EXPECT_TRUE(r.prunable);  // no proven error, attribute-only read-set
}

TEST(Analysis, StringNumericComparisonDiagnostics) {
  const ClassRegistry classes = flight_classes();
  const AnalysisReport eq = analysis::analyze_registration(
      make_reg("kind_eq", "self.status = 1", "Flight",
               {setter("Flight", "setStatus")}),
      &classes);
  EXPECT_TRUE(has_error_containing(eq, "string and numeric"));

  const AnalysisReport arith = analysis::analyze_registration(
      make_reg("kind_arith", "self.status + 1 > 0", "Flight",
               {setter("Flight", "setStatus")}),
      &classes);
  EXPECT_TRUE(has_error_containing(arith, "string operand"));
}

TEST(Analysis, ArgumentOutOfRangeDiagnostic) {
  const ClassRegistry classes = flight_classes();
  const ConstraintRegistration reg =
      make_reg("argrange", "arg1 >= 0", "Flight",
               {setter("Flight", "setSeats")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_TRUE(has_error_containing(r, "arg1 is out of range"));
}

TEST(Analysis, LocalityClassification) {
  const ClassRegistry classes = flight_classes();
  const AnalysisReport local = analysis::analyze_registration(
      make_reg("local", "self.seats >= 0", "Flight",
               {setter("Flight", "setSeats")}),
      &classes);
  EXPECT_EQ(local.locality, Locality::Local);

  const AnalysisReport cross = analysis::analyze_registration(
      make_reg("cross", "self.seats >= 0", "Flight",
               {setter("Flight", "setSeats"),
                setter("Booking", "setFlight",
                       ContextPreparationKind::ReferenceGetter)}),
      &classes);
  EXPECT_EQ(cross.locality, Locality::CrossObject);

  ConstraintRegistration fn;
  fn.constraint = std::make_shared<FunctionConstraint>(
      "opaque", ConstraintType::HardInvariant, ConstraintPriority::Tradeable,
      [](ConstraintValidationContext&) { return true; });
  const AnalysisReport opaque = analysis::analyze_registration(fn, &classes);
  EXPECT_TRUE(opaque.opaque);
  EXPECT_EQ(opaque.locality, Locality::Opaque);
  EXPECT_FALSE(opaque.prunable);
}

TEST(Analysis, RepositoryAnalysisAttachesReportsOnce) {
  ClassRegistry classes = flight_classes();
  ConstraintRepository repo;
  repo.register_constraint(make_reg("inv", "self.seats >= 0", "Flight",
                                    {setter("Flight", "setSeats")}));
  EXPECT_EQ(analysis::analyze_repository(repo, &classes), 1u);
  const ConstraintRegistration* reg = repo.registration("inv");
  ASSERT_NE(reg, nullptr);
  ASSERT_NE(reg->analysis, nullptr);
  EXPECT_TRUE(reg->analysis->prunable);
  // Structurally local constraints become intra-object (Section 3.1).
  EXPECT_TRUE(reg->constraint->intra_object());
  // Idempotent: already-analyzed registrations are left alone.
  EXPECT_EQ(analysis::analyze_repository(repo, &classes), 0u);
}

TEST(Analysis, LoadClassesXml) {
  ClassRegistry classes;
  const std::size_t n = analysis::load_classes_xml(
      "<classes>"
      "  <class name=\"Base\"><attribute name=\"id\" type=\"long\"/></class>"
      "  <class name=\"Derived\" super=\"Base\">"
      "    <attribute name=\"label\" type=\"string\"/>"
      "  </class>"
      "</classes>",
      classes);
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(classes.contains("Derived"));
  EXPECT_EQ(classes.get("Derived").super(), "Base");
  // Inherited attributes resolve through the ancestry walk.
  const ConstraintRegistration reg =
      make_reg("inherit", "self.id >= 0 and self.label = self.label",
               "Derived", {setter("Derived", "setLabel")});
  const AnalysisReport r = analysis::analyze_registration(reg, &classes);
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, RenderDiagnosticsFormat) {
  AnalysisReport r;
  r.diagnostics.push_back(
      Diagnostic{Diagnostic::Severity::Error, "boom"});
  EXPECT_EQ(analysis::render_diagnostics("C1", r), "C1: error: boom\n");
}

// -- cluster wiring ----------------------------------------------------------

void define_wide_class(ClassRegistry& classes) {
  ClassDescriptor& wide = classes.define("Wide");
  for (int k = 0; k < 4; ++k) {
    wide.define_property("f" + std::to_string(k), Value{std::int64_t{0}},
                         "int");
  }
}

std::vector<AffectedMethod> all_wide_setters() {
  std::vector<AffectedMethod> out;
  out.reserve(4);
  for (int k = 0; k < 4; ++k) {
    out.push_back(setter("Wide", "setF" + std::to_string(k)));
  }
  return out;
}

void register_wide_constraints(ConstraintRepository& repo) {
  for (int k = 0; k < 4; ++k) {
    repo.register_constraint(
        make_reg("inv" + std::to_string(k),
                 "self.f" + std::to_string(k) + " >= 0", "Wide",
                 all_wide_setters()));
  }
  ConstraintRegistration triv = make_reg("triv", "1 <= 2", "Wide",
                                         all_wide_setters());
  repo.register_constraint(std::move(triv));
  ConstraintRegistration soft =
      make_reg("soft0", "self.f0 >= 0 - 1000", "Wide", all_wide_setters());
  soft.constraint = std::make_shared<OclConstraint>(
      "soft0", ConstraintType::SoftInvariant, ConstraintPriority::Tradeable,
      "self.f0 >= 0 - 1000");
  repo.register_constraint(std::move(soft));
}

/// Deterministic xorshift so the "randomized" workload is reproducible.
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  int below(int n) { return static_cast<int>(next() % n); }
};

std::string run_wide_workload(Cluster& cluster) {
  DedisysNode& node = cluster.node(0);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    TxScope tx(node.tx());
    ids.push_back(node.create(tx.id(), "Wide"));
    tx.commit();
  }
  Rng rng;
  std::string digest;
  for (int i = 0; i < 160; ++i) {
    const ObjectId target = ids[static_cast<std::size_t>(rng.below(3))];
    const int field = rng.below(4);
    // ~25% of writes are negative -> hard-invariant violations + rollback.
    const std::int64_t value = rng.below(16) - 4;
    try {
      TxScope tx(node.tx());
      node.invoke(tx.id(), target, "setF" + std::to_string(field),
                  {Value{value}});
      tx.commit();
      digest += "ok;";
    } catch (const DedisysError&) {
      digest += "viol;";
    }
  }
  // Final state must match too: pruning may not change any outcome.
  for (const ObjectId id : ids) {
    for (int k = 0; k < 4; ++k) {
      TxScope tx(node.tx());
      const Value v =
          node.invoke(tx.id(), id, "getF" + std::to_string(k), {});
      tx.commit();
      digest += std::to_string(std::get<std::int64_t>(v)) + ",";
    }
  }
  return digest;
}

/// Pinned equivalence property: read-set pruning must not change a single
/// invocation outcome or any final attribute value, while provably
/// skipping work.
TEST(Analysis, PruningEquivalentToExhaustiveValidation) {
  ClusterConfig cfg;
  cfg.nodes = 2;

  Cluster pruned(cfg);
  define_wide_class(pruned.classes());
  register_wide_constraints(pruned.constraints());
  analysis::analyze_repository(pruned.constraints(), &pruned.classes());
  ASSERT_TRUE(pruned.node(0).ccmgr().pruning());  // default on

  Cluster exhaustive(cfg);
  define_wide_class(exhaustive.classes());
  register_wide_constraints(exhaustive.constraints());
  analysis::analyze_repository(exhaustive.constraints(),
                               &exhaustive.classes());
  for (std::size_t n = 0; n < cfg.nodes; ++n) {
    exhaustive.node(n).ccmgr().set_pruning(false);
  }

  const std::string pruned_digest = run_wide_workload(pruned);
  const std::string exhaustive_digest = run_wide_workload(exhaustive);
  EXPECT_EQ(pruned_digest, exhaustive_digest);
  // The workload contains both outcomes, so the digest is discriminating.
  EXPECT_NE(pruned_digest.find("ok;"), std::string::npos);
  EXPECT_NE(pruned_digest.find("viol;"), std::string::npos);

  const auto& ps = pruned.node(0).ccmgr().stats();
  const auto& es = exhaustive.node(0).ccmgr().stats();
  EXPECT_GT(ps.evaluations_skipped, 0u);
  EXPECT_EQ(es.evaluations_skipped, 0u);
  EXPECT_LT(ps.validations, es.validations);
  EXPECT_EQ(ps.violations, es.violations);

  // The saved work is visible to operators through the metrics snapshot.
  const ClusterMetrics m = collect_metrics(pruned);
  EXPECT_EQ(m.nodes[0].evaluations_skipped, ps.evaluations_skipped);
}

TEST(Analysis, AdminDeployAnalyzesAndExportsReports) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  Cluster cluster(cfg);
  ClassDescriptor& flight = cluster.classes().define("Flight");
  flight.define_property("seats", Value{std::int64_t{100}}, "int");
  flight.define_property("soldTickets", Value{std::int64_t{0}}, "int");

  AdminConsole admin(cluster);
  const std::size_t loaded = admin.deploy_constraints(
      "<constraints>"
      "  <constraint name=\"SeatLimit\" type=\"HARD\" priority=\"CRITICAL\">"
      "    <ocl>self.soldTickets &lt;= self.seats</ocl>"
      "    <context-class>Flight</context-class>"
      "    <affected-methods>"
      "      <affected-method>"
      "        <objectMethod name=\"setSoldTickets\">"
      "          <objectClass>Flight</objectClass>"
      "          <arguments><argument>int</argument></arguments>"
      "        </objectMethod>"
      "      </affected-method>"
      "    </affected-methods>"
      "  </constraint>"
      "</constraints>");
  EXPECT_EQ(loaded, 1u);

  const AnalysisReport* r = admin.analysis_report("SeatLimit");
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->opaque);
  EXPECT_EQ(r->locality, Locality::Local);
  EXPECT_TRUE(r->prunable);
  EXPECT_EQ(r->read_set.attributes,
            (std::set<std::string>{"seats", "soldTickets"}));
  EXPECT_EQ(admin.analysis_report("NoSuch"), nullptr);

  // The reports ride along in the JSON export for /metrics consumers.
  const obs::Json doc = obs::Json::parse(admin.metrics_json());
  const obs::Json& constraints = doc.at("constraints");
  ASSERT_EQ(constraints.size(), 1u);
  const obs::Json& entry = constraints.at(0);
  EXPECT_EQ(entry.at("name").as_string(), "SeatLimit");
  EXPECT_EQ(entry.at("analysis").at("locality").as_string(), "local");
  EXPECT_EQ(entry.at("analysis").at("prunable").as_bool(), true);
}

}  // namespace
}  // namespace dedisys
