# Empty compiler generated dependencies file for bench_fig2_5_interception.
# This may be replaced when dependencies are built.
