file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_5_interception.dir/bench_fig2_5_interception.cpp.o"
  "CMakeFiles/bench_fig2_5_interception.dir/bench_fig2_5_interception.cpp.o.d"
  "bench_fig2_5_interception"
  "bench_fig2_5_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_5_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
