# Empty dependencies file for bench_partition_duration.
# This may be replaced when dependencies are built.
