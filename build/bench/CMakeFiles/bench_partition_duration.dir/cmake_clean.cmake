file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_duration.dir/bench_partition_duration.cpp.o"
  "CMakeFiles/bench_partition_duration.dir/bench_partition_duration.cpp.o.d"
  "bench_partition_duration"
  "bench_partition_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
