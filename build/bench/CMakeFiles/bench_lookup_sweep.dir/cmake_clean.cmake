file(REMOVE_RECURSE
  "CMakeFiles/bench_lookup_sweep.dir/bench_lookup_sweep.cpp.o"
  "CMakeFiles/bench_lookup_sweep.dir/bench_lookup_sweep.cpp.o.d"
  "bench_lookup_sweep"
  "bench_lookup_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lookup_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
