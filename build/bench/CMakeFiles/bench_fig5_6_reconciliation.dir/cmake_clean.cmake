file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_6_reconciliation.dir/bench_fig5_6_reconciliation.cpp.o"
  "CMakeFiles/bench_fig5_6_reconciliation.dir/bench_fig5_6_reconciliation.cpp.o.d"
  "bench_fig5_6_reconciliation"
  "bench_fig5_6_reconciliation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_6_reconciliation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
