file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_slices.dir/bench_fig2_3_slices.cpp.o"
  "CMakeFiles/bench_fig2_3_slices.dir/bench_fig2_3_slices.cpp.o.d"
  "bench_fig2_3_slices"
  "bench_fig2_3_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
