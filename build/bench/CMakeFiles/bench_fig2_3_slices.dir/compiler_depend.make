# Empty compiler generated dependencies file for bench_fig2_3_slices.
# This may be replaced when dependencies are built.
