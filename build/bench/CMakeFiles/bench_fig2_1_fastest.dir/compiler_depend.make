# Empty compiler generated dependencies file for bench_fig2_1_fastest.
# This may be replaced when dependencies are built.
