file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_1_fastest.dir/bench_fig2_1_fastest.cpp.o"
  "CMakeFiles/bench_fig2_1_fastest.dir/bench_fig2_1_fastest.cpp.o.d"
  "bench_fig2_1_fastest"
  "bench_fig2_1_fastest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_1_fastest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
