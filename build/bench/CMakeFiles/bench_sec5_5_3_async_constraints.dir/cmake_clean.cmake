file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_5_3_async_constraints.dir/bench_sec5_5_3_async_constraints.cpp.o"
  "CMakeFiles/bench_sec5_5_3_async_constraints.dir/bench_sec5_5_3_async_constraints.cpp.o.d"
  "bench_sec5_5_3_async_constraints"
  "bench_sec5_5_3_async_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_5_3_async_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
