# Empty dependencies file for bench_sec5_5_3_async_constraints.
# This may be replaced when dependencies are built.
