# Empty compiler generated dependencies file for bench_fig2_6_param_extract.
# This may be replaced when dependencies are built.
