file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_6_param_extract.dir/bench_fig2_6_param_extract.cpp.o"
  "CMakeFiles/bench_fig2_6_param_extract.dir/bench_fig2_6_param_extract.cpp.o.d"
  "bench_fig2_6_param_extract"
  "bench_fig2_6_param_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_6_param_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
