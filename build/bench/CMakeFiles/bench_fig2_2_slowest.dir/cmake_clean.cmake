file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_2_slowest.dir/bench_fig2_2_slowest.cpp.o"
  "CMakeFiles/bench_fig2_2_slowest.dir/bench_fig2_2_slowest.cpp.o.d"
  "bench_fig2_2_slowest"
  "bench_fig2_2_slowest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_2_slowest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
