# Empty dependencies file for bench_fig2_2_slowest.
# This may be replaced when dependencies are built.
