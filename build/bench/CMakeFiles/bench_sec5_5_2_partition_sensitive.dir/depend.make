# Empty dependencies file for bench_sec5_5_2_partition_sensitive.
# This may be replaced when dependencies are built.
