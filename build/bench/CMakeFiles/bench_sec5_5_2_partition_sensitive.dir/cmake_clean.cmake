file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_5_2_partition_sensitive.dir/bench_sec5_5_2_partition_sensitive.cpp.o"
  "CMakeFiles/bench_sec5_5_2_partition_sensitive.dir/bench_sec5_5_2_partition_sensitive.cpp.o.d"
  "bench_sec5_5_2_partition_sensitive"
  "bench_sec5_5_2_partition_sensitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_5_2_partition_sensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
