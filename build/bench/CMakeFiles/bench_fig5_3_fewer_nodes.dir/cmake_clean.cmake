file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_3_fewer_nodes.dir/bench_fig5_3_fewer_nodes.cpp.o"
  "CMakeFiles/bench_fig5_3_fewer_nodes.dir/bench_fig5_3_fewer_nodes.cpp.o.d"
  "bench_fig5_3_fewer_nodes"
  "bench_fig5_3_fewer_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_3_fewer_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
