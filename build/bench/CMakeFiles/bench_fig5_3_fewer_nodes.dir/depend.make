# Empty dependencies file for bench_fig5_3_fewer_nodes.
# This may be replaced when dependencies are built.
