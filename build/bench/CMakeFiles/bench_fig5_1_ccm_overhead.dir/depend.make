# Empty dependencies file for bench_fig5_1_ccm_overhead.
# This may be replaced when dependencies are built.
