
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sim_availability.cpp" "bench/CMakeFiles/bench_sim_availability.dir/bench_sim_availability.cpp.o" "gcc" "bench/CMakeFiles/bench_sim_availability.dir/bench_sim_availability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/dedisys_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/dedisys_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/dedisys_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/dedisys_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dedisys_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/dedisys_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/dedisys_ocl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
