file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_availability.dir/bench_sim_availability.cpp.o"
  "CMakeFiles/bench_sim_availability.dir/bench_sim_availability.cpp.o.d"
  "bench_sim_availability"
  "bench_sim_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
