# Empty dependencies file for bench_sim_availability.
# This may be replaced when dependencies are built.
