file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_8_reduced_history.dir/bench_fig5_8_reduced_history.cpp.o"
  "CMakeFiles/bench_fig5_8_reduced_history.dir/bench_fig5_8_reduced_history.cpp.o.d"
  "bench_fig5_8_reduced_history"
  "bench_fig5_8_reduced_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_8_reduced_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
