# Empty dependencies file for bench_fig5_8_reduced_history.
# This may be replaced when dependencies are built.
