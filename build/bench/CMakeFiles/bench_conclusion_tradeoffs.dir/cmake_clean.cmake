file(REMOVE_RECURSE
  "CMakeFiles/bench_conclusion_tradeoffs.dir/bench_conclusion_tradeoffs.cpp.o"
  "CMakeFiles/bench_conclusion_tradeoffs.dir/bench_conclusion_tradeoffs.cpp.o.d"
  "bench_conclusion_tradeoffs"
  "bench_conclusion_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conclusion_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
