# Empty dependencies file for bench_conclusion_tradeoffs.
# This may be replaced when dependencies are built.
