# Empty compiler generated dependencies file for bench_fig5_2_healthy_degraded.
# This may be replaced when dependencies are built.
