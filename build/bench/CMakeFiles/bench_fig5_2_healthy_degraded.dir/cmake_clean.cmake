file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_2_healthy_degraded.dir/bench_fig5_2_healthy_degraded.cpp.o"
  "CMakeFiles/bench_fig5_2_healthy_degraded.dir/bench_fig5_2_healthy_degraded.cpp.o.d"
  "bench_fig5_2_healthy_degraded"
  "bench_fig5_2_healthy_degraded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_2_healthy_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
