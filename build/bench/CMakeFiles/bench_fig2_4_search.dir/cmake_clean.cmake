file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_4_search.dir/bench_fig2_4_search.cpp.o"
  "CMakeFiles/bench_fig2_4_search.dir/bench_fig2_4_search.cpp.o.d"
  "bench_fig2_4_search"
  "bench_fig2_4_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_4_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
