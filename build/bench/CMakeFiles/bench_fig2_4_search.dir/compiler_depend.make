# Empty compiler generated dependencies file for bench_fig2_4_search.
# This may be replaced when dependencies are built.
