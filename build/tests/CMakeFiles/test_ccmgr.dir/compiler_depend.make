# Empty compiler generated dependencies file for test_ccmgr.
# This may be replaced when dependencies are built.
