file(REMOVE_RECURSE
  "CMakeFiles/test_ccmgr.dir/test_ccmgr.cpp.o"
  "CMakeFiles/test_ccmgr.dir/test_ccmgr.cpp.o.d"
  "test_ccmgr"
  "test_ccmgr.pdb"
  "test_ccmgr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
