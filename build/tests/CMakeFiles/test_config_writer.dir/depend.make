# Empty dependencies file for test_config_writer.
# This may be replaced when dependencies are built.
