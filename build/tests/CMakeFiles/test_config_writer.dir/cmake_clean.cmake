file(REMOVE_RECURSE
  "CMakeFiles/test_config_writer.dir/test_config_writer.cpp.o"
  "CMakeFiles/test_config_writer.dir/test_config_writer.cpp.o.d"
  "test_config_writer"
  "test_config_writer.pdb"
  "test_config_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
