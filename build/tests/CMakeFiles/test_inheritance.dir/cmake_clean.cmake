file(REMOVE_RECURSE
  "CMakeFiles/test_inheritance.dir/test_inheritance.cpp.o"
  "CMakeFiles/test_inheritance.dir/test_inheritance.cpp.o.d"
  "test_inheritance"
  "test_inheritance.pdb"
  "test_inheritance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
