# Empty dependencies file for test_inheritance.
# This may be replaced when dependencies are built.
