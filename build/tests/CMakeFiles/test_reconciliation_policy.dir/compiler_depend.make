# Empty compiler generated dependencies file for test_reconciliation_policy.
# This may be replaced when dependencies are built.
