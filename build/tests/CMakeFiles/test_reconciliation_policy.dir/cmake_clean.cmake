file(REMOVE_RECURSE
  "CMakeFiles/test_reconciliation_policy.dir/test_reconciliation_policy.cpp.o"
  "CMakeFiles/test_reconciliation_policy.dir/test_reconciliation_policy.cpp.o.d"
  "test_reconciliation_policy"
  "test_reconciliation_policy.pdb"
  "test_reconciliation_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconciliation_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
