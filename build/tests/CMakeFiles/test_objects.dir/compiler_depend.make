# Empty compiler generated dependencies file for test_objects.
# This may be replaced when dependencies are built.
