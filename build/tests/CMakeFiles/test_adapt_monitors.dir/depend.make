# Empty dependencies file for test_adapt_monitors.
# This may be replaced when dependencies are built.
