file(REMOVE_RECURSE
  "CMakeFiles/test_adapt_monitors.dir/test_adapt_monitors.cpp.o"
  "CMakeFiles/test_adapt_monitors.dir/test_adapt_monitors.cpp.o.d"
  "test_adapt_monitors"
  "test_adapt_monitors.pdb"
  "test_adapt_monitors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adapt_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
