# Empty compiler generated dependencies file for test_gcs.
# This may be replaced when dependencies are built.
