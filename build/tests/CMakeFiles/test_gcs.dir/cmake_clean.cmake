file(REMOVE_RECURSE
  "CMakeFiles/test_gcs.dir/test_gcs.cpp.o"
  "CMakeFiles/test_gcs.dir/test_gcs.cpp.o.d"
  "test_gcs"
  "test_gcs.pdb"
  "test_gcs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
