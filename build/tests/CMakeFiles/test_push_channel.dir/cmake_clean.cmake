file(REMOVE_RECURSE
  "CMakeFiles/test_push_channel.dir/test_push_channel.cpp.o"
  "CMakeFiles/test_push_channel.dir/test_push_channel.cpp.o.d"
  "test_push_channel"
  "test_push_channel.pdb"
  "test_push_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_push_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
