# Empty dependencies file for test_push_channel.
# This may be replaced when dependencies are built.
