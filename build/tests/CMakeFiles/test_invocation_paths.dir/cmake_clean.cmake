file(REMOVE_RECURSE
  "CMakeFiles/test_invocation_paths.dir/test_invocation_paths.cpp.o"
  "CMakeFiles/test_invocation_paths.dir/test_invocation_paths.cpp.o.d"
  "test_invocation_paths"
  "test_invocation_paths.pdb"
  "test_invocation_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invocation_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
