# Empty compiler generated dependencies file for test_invocation_paths.
# This may be replaced when dependencies are built.
