# Empty dependencies file for test_persist.
# This may be replaced when dependencies are built.
