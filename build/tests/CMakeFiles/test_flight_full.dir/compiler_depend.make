# Empty compiler generated dependencies file for test_flight_full.
# This may be replaced when dependencies are built.
