file(REMOVE_RECURSE
  "CMakeFiles/test_flight_full.dir/test_flight_full.cpp.o"
  "CMakeFiles/test_flight_full.dir/test_flight_full.cpp.o.d"
  "test_flight_full"
  "test_flight_full.pdb"
  "test_flight_full[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flight_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
