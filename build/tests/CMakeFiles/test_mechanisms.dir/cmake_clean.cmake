file(REMOVE_RECURSE
  "CMakeFiles/test_mechanisms.dir/test_mechanisms.cpp.o"
  "CMakeFiles/test_mechanisms.dir/test_mechanisms.cpp.o.d"
  "test_mechanisms"
  "test_mechanisms.pdb"
  "test_mechanisms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
