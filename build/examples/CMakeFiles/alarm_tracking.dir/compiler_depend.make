# Empty compiler generated dependencies file for alarm_tracking.
# This may be replaced when dependencies are built.
