file(REMOVE_RECURSE
  "CMakeFiles/alarm_tracking.dir/alarm_tracking.cpp.o"
  "CMakeFiles/alarm_tracking.dir/alarm_tracking.cpp.o.d"
  "alarm_tracking"
  "alarm_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alarm_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
