file(REMOVE_RECURSE
  "CMakeFiles/partition_sensitive.dir/partition_sensitive.cpp.o"
  "CMakeFiles/partition_sensitive.dir/partition_sensitive.cpp.o.d"
  "partition_sensitive"
  "partition_sensitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_sensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
