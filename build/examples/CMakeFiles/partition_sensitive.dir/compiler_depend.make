# Empty compiler generated dependencies file for partition_sensitive.
# This may be replaced when dependencies are built.
