file(REMOVE_RECURSE
  "CMakeFiles/flight_web.dir/flight_web.cpp.o"
  "CMakeFiles/flight_web.dir/flight_web.cpp.o.d"
  "flight_web"
  "flight_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
