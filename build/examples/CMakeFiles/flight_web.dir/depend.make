# Empty dependencies file for flight_web.
# This may be replaced when dependencies are built.
