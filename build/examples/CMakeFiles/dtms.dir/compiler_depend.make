# Empty compiler generated dependencies file for dtms.
# This may be replaced when dependencies are built.
