# Empty dependencies file for dtms.
# This may be replaced when dependencies are built.
