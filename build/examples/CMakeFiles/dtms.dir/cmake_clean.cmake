file(REMOVE_RECURSE
  "CMakeFiles/dtms.dir/dtms.cpp.o"
  "CMakeFiles/dtms.dir/dtms.cpp.o.d"
  "dtms"
  "dtms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
