# Empty compiler generated dependencies file for dedisys_validation.
# This may be replaced when dependencies are built.
