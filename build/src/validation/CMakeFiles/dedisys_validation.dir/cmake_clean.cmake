file(REMOVE_RECURSE
  "CMakeFiles/dedisys_validation.dir/constraints_set.cpp.o"
  "CMakeFiles/dedisys_validation.dir/constraints_set.cpp.o.d"
  "CMakeFiles/dedisys_validation.dir/harness.cpp.o"
  "CMakeFiles/dedisys_validation.dir/harness.cpp.o.d"
  "CMakeFiles/dedisys_validation.dir/reflection.cpp.o"
  "CMakeFiles/dedisys_validation.dir/reflection.cpp.o.d"
  "libdedisys_validation.a"
  "libdedisys_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
