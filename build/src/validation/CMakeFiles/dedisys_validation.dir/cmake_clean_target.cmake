file(REMOVE_RECURSE
  "libdedisys_validation.a"
)
