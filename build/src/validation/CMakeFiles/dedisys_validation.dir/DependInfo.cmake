
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validation/constraints_set.cpp" "src/validation/CMakeFiles/dedisys_validation.dir/constraints_set.cpp.o" "gcc" "src/validation/CMakeFiles/dedisys_validation.dir/constraints_set.cpp.o.d"
  "/root/repo/src/validation/harness.cpp" "src/validation/CMakeFiles/dedisys_validation.dir/harness.cpp.o" "gcc" "src/validation/CMakeFiles/dedisys_validation.dir/harness.cpp.o.d"
  "/root/repo/src/validation/reflection.cpp" "src/validation/CMakeFiles/dedisys_validation.dir/reflection.cpp.o" "gcc" "src/validation/CMakeFiles/dedisys_validation.dir/reflection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocl/CMakeFiles/dedisys_ocl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
