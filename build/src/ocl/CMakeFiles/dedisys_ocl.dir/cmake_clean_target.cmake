file(REMOVE_RECURSE
  "libdedisys_ocl.a"
)
