# Empty dependencies file for dedisys_ocl.
# This may be replaced when dependencies are built.
