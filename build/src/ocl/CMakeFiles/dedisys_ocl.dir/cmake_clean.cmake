file(REMOVE_RECURSE
  "CMakeFiles/dedisys_ocl.dir/ocl.cpp.o"
  "CMakeFiles/dedisys_ocl.dir/ocl.cpp.o.d"
  "libdedisys_ocl.a"
  "libdedisys_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
