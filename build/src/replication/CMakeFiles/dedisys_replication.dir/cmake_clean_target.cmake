file(REMOVE_RECURSE
  "libdedisys_replication.a"
)
