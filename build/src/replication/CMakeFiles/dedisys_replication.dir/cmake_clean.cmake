file(REMOVE_RECURSE
  "CMakeFiles/dedisys_replication.dir/manager.cpp.o"
  "CMakeFiles/dedisys_replication.dir/manager.cpp.o.d"
  "CMakeFiles/dedisys_replication.dir/reconciler.cpp.o"
  "CMakeFiles/dedisys_replication.dir/reconciler.cpp.o.d"
  "libdedisys_replication.a"
  "libdedisys_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
