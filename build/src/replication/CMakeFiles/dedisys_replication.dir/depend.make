# Empty dependencies file for dedisys_replication.
# This may be replaced when dependencies are built.
