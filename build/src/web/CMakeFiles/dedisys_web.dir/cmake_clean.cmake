file(REMOVE_RECURSE
  "CMakeFiles/dedisys_web.dir/bridge.cpp.o"
  "CMakeFiles/dedisys_web.dir/bridge.cpp.o.d"
  "CMakeFiles/dedisys_web.dir/push_channel.cpp.o"
  "CMakeFiles/dedisys_web.dir/push_channel.cpp.o.d"
  "libdedisys_web.a"
  "libdedisys_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
