file(REMOVE_RECURSE
  "libdedisys_web.a"
)
