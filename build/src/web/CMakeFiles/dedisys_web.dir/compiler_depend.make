# Empty compiler generated dependencies file for dedisys_web.
# This may be replaced when dependencies are built.
