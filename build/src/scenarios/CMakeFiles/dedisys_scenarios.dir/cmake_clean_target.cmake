file(REMOVE_RECURSE
  "libdedisys_scenarios.a"
)
