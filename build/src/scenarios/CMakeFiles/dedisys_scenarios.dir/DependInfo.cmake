
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scenarios/ats.cpp" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/ats.cpp.o" "gcc" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/ats.cpp.o.d"
  "/root/repo/src/scenarios/dtms.cpp" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/dtms.cpp.o" "gcc" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/dtms.cpp.o.d"
  "/root/repo/src/scenarios/evalapp.cpp" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/evalapp.cpp.o" "gcc" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/evalapp.cpp.o.d"
  "/root/repo/src/scenarios/flight.cpp" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/flight.cpp.o" "gcc" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/flight.cpp.o.d"
  "/root/repo/src/scenarios/flight_full.cpp" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/flight_full.cpp.o" "gcc" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/flight_full.cpp.o.d"
  "/root/repo/src/scenarios/script.cpp" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/script.cpp.o" "gcc" "src/scenarios/CMakeFiles/dedisys_scenarios.dir/script.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/middleware/CMakeFiles/dedisys_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/dedisys_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/dedisys_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/dedisys_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/dedisys_objects.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
