# Empty dependencies file for dedisys_scenarios.
# This may be replaced when dependencies are built.
