file(REMOVE_RECURSE
  "CMakeFiles/dedisys_scenarios.dir/ats.cpp.o"
  "CMakeFiles/dedisys_scenarios.dir/ats.cpp.o.d"
  "CMakeFiles/dedisys_scenarios.dir/dtms.cpp.o"
  "CMakeFiles/dedisys_scenarios.dir/dtms.cpp.o.d"
  "CMakeFiles/dedisys_scenarios.dir/evalapp.cpp.o"
  "CMakeFiles/dedisys_scenarios.dir/evalapp.cpp.o.d"
  "CMakeFiles/dedisys_scenarios.dir/flight.cpp.o"
  "CMakeFiles/dedisys_scenarios.dir/flight.cpp.o.d"
  "CMakeFiles/dedisys_scenarios.dir/flight_full.cpp.o"
  "CMakeFiles/dedisys_scenarios.dir/flight_full.cpp.o.d"
  "CMakeFiles/dedisys_scenarios.dir/script.cpp.o"
  "CMakeFiles/dedisys_scenarios.dir/script.cpp.o.d"
  "libdedisys_scenarios.a"
  "libdedisys_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
