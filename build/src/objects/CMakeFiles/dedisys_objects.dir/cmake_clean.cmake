file(REMOVE_RECURSE
  "CMakeFiles/dedisys_objects.dir/class_descriptor.cpp.o"
  "CMakeFiles/dedisys_objects.dir/class_descriptor.cpp.o.d"
  "libdedisys_objects.a"
  "libdedisys_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
