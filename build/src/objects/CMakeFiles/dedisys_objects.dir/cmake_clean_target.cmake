file(REMOVE_RECURSE
  "libdedisys_objects.a"
)
