# Empty compiler generated dependencies file for dedisys_objects.
# This may be replaced when dependencies are built.
