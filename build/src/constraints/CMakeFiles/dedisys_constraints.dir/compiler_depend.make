# Empty compiler generated dependencies file for dedisys_constraints.
# This may be replaced when dependencies are built.
