file(REMOVE_RECURSE
  "CMakeFiles/dedisys_constraints.dir/ccmgr.cpp.o"
  "CMakeFiles/dedisys_constraints.dir/ccmgr.cpp.o.d"
  "CMakeFiles/dedisys_constraints.dir/config.cpp.o"
  "CMakeFiles/dedisys_constraints.dir/config.cpp.o.d"
  "libdedisys_constraints.a"
  "libdedisys_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
