file(REMOVE_RECURSE
  "libdedisys_constraints.a"
)
