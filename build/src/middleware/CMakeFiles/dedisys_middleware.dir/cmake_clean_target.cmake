file(REMOVE_RECURSE
  "libdedisys_middleware.a"
)
