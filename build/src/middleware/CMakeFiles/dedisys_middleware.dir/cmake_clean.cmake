file(REMOVE_RECURSE
  "CMakeFiles/dedisys_middleware.dir/cluster.cpp.o"
  "CMakeFiles/dedisys_middleware.dir/cluster.cpp.o.d"
  "CMakeFiles/dedisys_middleware.dir/node.cpp.o"
  "CMakeFiles/dedisys_middleware.dir/node.cpp.o.d"
  "libdedisys_middleware.a"
  "libdedisys_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedisys_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
