# Empty compiler generated dependencies file for dedisys_middleware.
# This may be replaced when dependencies are built.
