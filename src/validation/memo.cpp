#include "validation/memo.h"

namespace dedisys::validation {

ValidationMemo::Lookup ValidationMemo::lookup(const std::string& constraint,
                                              ObjectId context_object,
                                              std::uint64_t fingerprint) {
  auto it = entries_.find(key(constraint, context_object));
  if (it == entries_.end()) {
    ++stats_.misses;
    return Lookup{Outcome::MissCold, SatisfactionDegree::Satisfied};
  }
  if (it->second.fingerprint != fingerprint) {
    ++stats_.misses;
    ++stats_.invalidations;
    return Lookup{Outcome::MissStale, SatisfactionDegree::Satisfied};
  }
  ++stats_.hits;
  return Lookup{Outcome::Hit, it->second.degree};
}

void ValidationMemo::store(const std::string& constraint,
                           ObjectId context_object, std::uint64_t fingerprint,
                           SatisfactionDegree degree) {
  entries_[key(constraint, context_object)] = Entry{fingerprint, degree};
  ++stats_.stores;
}

std::size_t ValidationMemo::invalidate_object(ObjectId object) {
  const std::string suffix = '@' + std::to_string(object.value());
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::string& k = it->first;
    if (k.size() >= suffix.size() &&
        k.compare(k.size() - suffix.size(), suffix.size(), suffix) == 0) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.evictions += removed;
  return removed;
}

std::size_t ValidationMemo::invalidate_constraint(
    const std::string& constraint) {
  const std::string prefix = constraint + '@';
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.evictions += removed;
  return removed;
}

void ValidationMemo::clear() { entries_.clear(); }

}  // namespace dedisys::validation
