#include "validation/reflection.h"

namespace dedisys::validation {

namespace {

Boxed employee_get(const void* object, const std::string& attr) {
  const auto* e = static_cast<const Employee*>(object);
  if (attr == "workload") return Boxed{e->workload};
  if (attr == "max_workload") return Boxed{e->max_workload};
  if (attr == "projects") return Boxed{e->projects};
  if (attr == "salary") return Boxed{e->salary};
  if (attr == "name") return Boxed{e->name};
  throw DedisysError("Employee has no attribute " + attr);
}

Boxed project_get(const void* object, const std::string& attr) {
  const auto* p = static_cast<const Project*>(object);
  if (attr == "budget") return Boxed{p->budget};
  if (attr == "spent") return Boxed{p->spent};
  if (attr == "members") return Boxed{p->members};
  if (attr == "name") return Boxed{p->name};
  throw DedisysError("Project has no attribute " + attr);
}

MethodInfo make_method(const std::string& cls, const std::string& name,
                       std::vector<std::string> params) {
  MethodInfo m;
  m.name = name;
  m.param_types = std::move(params);
  m.declaring_class = cls;
  m.key = name + "(";
  for (std::size_t i = 0; i < m.param_types.size(); ++i) {
    if (i != 0) m.key += ',';
    m.key += m.param_types[i];
  }
  m.key += ")";
  return m;
}

Boxed department_get(const void* object, const std::string& attr) {
  const auto* d = static_cast<const Department*>(object);
  if (attr == "budget_pool") return Boxed{d->budget_pool};
  if (attr == "headcount") return Boxed{d->headcount};
  if (attr == "floor_space") return Boxed{d->floor_space};
  if (attr == "name") return Boxed{d->name};
  throw DedisysError("Department has no attribute " + attr);
}

}  // namespace

const ClassInfo& department_class() {
  static const ClassInfo cls = [] {
    ClassInfo c;
    c.name = "Department";
    c.methods = {
        make_method("Department", "hire", {}),
        make_method("Department", "fire", {}),
        make_method("Department", "allocateBudget", {"double"}),
        make_method("Department", "returnBudget", {"double"}),
        make_method("Department", "resize", {"double"}),
        make_method("Department", "audit", {}),
    };
    c.get_attribute = department_get;
    return c;
  }();
  return cls;
}

const ClassInfo& employee_class() {
  static const ClassInfo cls = [] {
    ClassInfo c;
    c.name = "Employee";
    c.methods = {
        make_method("Employee", "addWork", {"double"}),
        make_method("Employee", "removeWork", {"double"}),
        make_method("Employee", "joinProject", {}),
        make_method("Employee", "leaveProject", {}),
        make_method("Employee", "raiseSalary", {"double"}),
    };
    c.get_attribute = employee_get;
    return c;
  }();
  return cls;
}

const ClassInfo& project_class() {
  static const ClassInfo cls = [] {
    ClassInfo c;
    c.name = "Project";
    c.methods = {
        make_method("Project", "charge", {"double"}),
        make_method("Project", "refund", {"double"}),
        make_method("Project", "addMember", {}),
        make_method("Project", "removeMember", {}),
    };
    c.get_attribute = project_get;
    return c;
  }();
  return cls;
}

StudyApp StudyApp::make(std::size_t num_employees, std::size_t num_projects) {
  StudyApp app;
  app.employees.resize(num_employees);
  for (std::size_t i = 0; i < num_employees; ++i) {
    app.employees[i].name = "employee-" + std::to_string(i);
  }
  app.projects.resize(num_projects);
  for (std::size_t i = 0; i < num_projects; ++i) {
    app.projects[i].name = "project-" + std::to_string(i);
  }
  return app;
}

void StudyApp::reset() {
  for (Employee& e : employees) {
    e.workload = 0;
    e.projects = 0;
    e.salary = 3000;
  }
  for (Project& p : projects) {
    p.spent = 0;
    p.members = 0;
  }
}

}  // namespace dedisys::validation
