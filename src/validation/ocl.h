// OCL support for the Chapter-2 study: environment adaptor over the
// study's reflection layer (the interpreter core lives in ocl/ocl.h).
#pragma once

#include <vector>

#include "ocl/ocl.h"
#include "validation/reflection.h"

namespace dedisys::validation {

using dedisys::OclExpr;
using dedisys::OclNode;
using dedisys::parse_ocl;

/// OCL environment over a reflective study object plus boxed arguments.
class ReflOclEnv final : public OclEnv {
 public:
  ReflOclEnv(const ObjectRefl& self, const std::vector<Boxed>& args)
      : self_(&self), args_(&args) {}

  [[nodiscard]] OclValue attribute(const std::string& name) const override {
    return self_->get(name);
  }

  [[nodiscard]] OclValue argument(std::size_t index) const override {
    if (index >= args_->size()) {
      throw DedisysError("OCL arg index out of range");
    }
    return (*args_)[index];
  }

 private:
  const ObjectRefl* self_;
  const std::vector<Boxed>* args_;
};

/// Evaluates a parsed constraint against a study object (legacy helper).
[[nodiscard]] inline bool ocl_check(const OclExpr& expr, const ObjectRefl& self,
                                    const std::vector<Boxed>& args) {
  return dedisys::ocl_check(expr, ReflOclEnv(self, args));
}

}  // namespace dedisys::validation
