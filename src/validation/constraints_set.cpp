#include "validation/constraints_set.h"

#include "util/errors.h"

namespace dedisys::validation {

namespace {

/// Explicit invariant defined by an attribute comparison — reflective,
/// boxed access as in Listing 2.5.
class AttrInvariant final : public StudyConstraint {
 public:
  enum class Op { Le, Ge };

  AttrInvariant(std::string name, std::string attr, Op op, double bound)
      : StudyConstraint(std::move(name), StudyConstraintType::Invariant),
        attr_(std::move(attr)),
        op_(op),
        bound_(bound) {}

  bool validate(const StudyContext& ctx) const override {
    const double v = boxed_num(ctx.target.get(attr_));
    return op_ == Op::Le ? v <= bound_ : v >= bound_;
  }

 private:
  std::string attr_;
  Op op_;
  double bound_;
};

/// workload <= max_workload / spent <= budget (two-attribute invariants).
class AttrPairInvariant final : public StudyConstraint {
 public:
  AttrPairInvariant(std::string name, std::string lesser, std::string greater)
      : StudyConstraint(std::move(name), StudyConstraintType::Invariant),
        lesser_(std::move(lesser)),
        greater_(std::move(greater)) {}

  bool validate(const StudyContext& ctx) const override {
    return boxed_num(ctx.target.get(lesser_)) <=
           boxed_num(ctx.target.get(greater_));
  }

 private:
  std::string lesser_;
  std::string greater_;
};

/// Precondition: numeric argument 0 must be positive (and optionally below
/// an upper bound).
class PositiveArgPrecondition final : public StudyConstraint {
 public:
  PositiveArgPrecondition(std::string name, double upper_bound = 1e12)
      : StudyConstraint(std::move(name), StudyConstraintType::Precondition),
        upper_(upper_bound) {}

  bool validate(const StudyContext& ctx) const override {
    const double v = boxed_num(ctx.args->at(0));
    return v > 0 && v <= upper_;
  }

 private:
  double upper_;
};

/// Postcondition: attribute must be at least the numeric argument 0
/// (e.g. workload >= hours after addWork).
class AttrAtLeastArgPostcondition final : public StudyConstraint {
 public:
  AttrAtLeastArgPostcondition(std::string name, std::string attr)
      : StudyConstraint(std::move(name), StudyConstraintType::Postcondition),
        attr_(std::move(attr)) {}

  bool validate(const StudyContext& ctx) const override {
    return boxed_num(ctx.target.get(attr_)) >= boxed_num(ctx.args->at(0));
  }

 private:
  std::string attr_;
};

/// Postcondition without arguments: attribute non-negative after the call.
class AttrNonNegativePostcondition final : public StudyConstraint {
 public:
  AttrNonNegativePostcondition(std::string name, std::string attr)
      : StudyConstraint(std::move(name), StudyConstraintType::Postcondition),
        attr_(std::move(attr)) {}

  bool validate(const StudyContext& ctx) const override {
    return boxed_num(ctx.target.get(attr_)) >= 0;
  }

 private:
  std::string attr_;
};

}  // namespace

const StudyConstraintSet& StudyConstraintSet::instance() {
  static const StudyConstraintSet set;
  return set;
}

StudyConstraintSet::StudyConstraintSet() {
  using Op = AttrInvariant::Op;

  // -- Employee invariants (also as OCL sources) -----------------------------
  constraints_.push_back(std::make_unique<AttrInvariant>(
      "EmployeeWorkloadNonNegative", "workload", Op::Ge, 0));
  constraints_.push_back(std::make_unique<AttrPairInvariant>(
      "EmployeeWorkloadBelowMax", "workload", "max_workload"));
  constraints_.push_back(std::make_unique<AttrInvariant>(
      "EmployeeProjectsNonNegative", "projects", Op::Ge, 0));
  constraints_.push_back(std::make_unique<AttrInvariant>(
      "EmployeeProjectsAtMostFive", "projects", Op::Le, 5));
  constraints_.push_back(std::make_unique<AttrInvariant>(
      "EmployeeSalaryAboveMinimum", "salary", Op::Ge, 1000));
  for (const char* src :
       {"self.workload >= 0", "self.workload <= self.max_workload",
        "self.projects >= 0", "self.projects <= 5", "self.salary >= 1000"}) {
    employee_inv_ocl_.push_back(parse_ocl(src));
  }

  // -- Project invariants -------------------------------------------------------
  constraints_.push_back(std::make_unique<AttrInvariant>(
      "ProjectSpentNonNegative", "spent", Op::Ge, 0));
  constraints_.push_back(std::make_unique<AttrPairInvariant>(
      "ProjectWithinBudget", "spent", "budget"));
  constraints_.push_back(std::make_unique<AttrInvariant>(
      "ProjectMembersNonNegative", "members", Op::Ge, 0));
  for (const char* src :
       {"self.spent >= 0", "self.spent <= self.budget", "self.members >= 0"}) {
    project_inv_ocl_.push_back(parse_ocl(src));
  }

  // -- Department invariants (rest of the 78-constraint corpus; the
  // scenario never touches Departments, so these only lengthen naive
  // repository scans, as the unexercised constraints of the paper's
  // application did).
  for (int i = 0; i < 20; ++i) {
    const bool ge = i % 2 == 0;
    constraints_.push_back(std::make_unique<AttrInvariant>(
        "DepartmentRule" + std::to_string(i),
        i % 3 == 0   ? "budget_pool"
        : i % 3 == 1 ? "headcount"
                     : "floor_space",
        ge ? Op::Ge : Op::Le, ge ? -1e9 : 1e9));
  }

  // -- Preconditions ---------------------------------------------------------------
  constraints_.push_back(std::make_unique<PositiveArgPrecondition>(
      "AddWorkHoursPositive", /*upper=*/24));
  constraints_.push_back(
      std::make_unique<PositiveArgPrecondition>("RemoveWorkHoursPositive"));
  constraints_.push_back(
      std::make_unique<PositiveArgPrecondition>("ChargeAmountPositive"));
  constraints_.push_back(
      std::make_unique<PositiveArgPrecondition>("RefundAmountPositive"));
  constraints_.push_back(
      std::make_unique<PositiveArgPrecondition>("RaiseAmountPositive"));
  pre_ocl_["addWork(double)"] = {parse_ocl("arg0 > 0 and arg0 <= 24")};
  pre_ocl_["removeWork(double)"] = {parse_ocl("arg0 > 0")};
  pre_ocl_["charge(double)"] = {parse_ocl("arg0 > 0")};
  pre_ocl_["refund(double)"] = {parse_ocl("arg0 > 0")};
  pre_ocl_["raiseSalary(double)"] = {parse_ocl("arg0 > 0")};

  // -- Postconditions ----------------------------------------------------------------
  constraints_.push_back(std::make_unique<AttrAtLeastArgPostcondition>(
      "WorkloadCoversAddedHours", "workload"));
  constraints_.push_back(std::make_unique<AttrAtLeastArgPostcondition>(
      "SpentCoversChargedAmount", "spent"));
  constraints_.push_back(std::make_unique<AttrNonNegativePostcondition>(
      "MembersNonNegativeAfterJoin", "members"));
  post_ocl_["addWork(double)"] = {parse_ocl("self.workload >= arg0")};
  post_ocl_["charge(double)"] = {parse_ocl("self.spent >= arg0")};
  post_ocl_["addMember()"] = {parse_ocl("self.members >= 0")};
}

void StudyConstraintSet::populate(StudyRepository& repo) const {
  auto find = [&](const std::string& name) -> const StudyConstraint* {
    for (const auto& c : constraints_) {
      if (c->name() == name) return c.get();
    }
    throw ConfigError("unknown study constraint: " + name);
  };

  // Invariants: affected by every public method of the context class
  // (trigger-point convention of Section 2.1).
  for (const char* name :
       {"EmployeeWorkloadNonNegative", "EmployeeWorkloadBelowMax",
        "EmployeeProjectsNonNegative", "EmployeeProjectsAtMostFive",
        "EmployeeSalaryAboveMinimum"}) {
    for (const MethodInfo& m : employee_class().methods) {
      repo.add(find(name), "Employee", m.key);
    }
  }
  for (const char* name :
       {"ProjectSpentNonNegative", "ProjectWithinBudget",
        "ProjectMembersNonNegative"}) {
    for (const MethodInfo& m : project_class().methods) {
      repo.add(find(name), "Project", m.key);
    }
  }

  for (int i = 0; i < 20; ++i) {
    const StudyConstraint* c = find("DepartmentRule" + std::to_string(i));
    for (const MethodInfo& m : department_class().methods) {
      repo.add(c, "Department", m.key);
    }
  }

  // Pre/postconditions: bound to specific methods.
  repo.add(find("AddWorkHoursPositive"), "Employee", "addWork(double)");
  repo.add(find("RemoveWorkHoursPositive"), "Employee", "removeWork(double)");
  repo.add(find("RaiseAmountPositive"), "Employee", "raiseSalary(double)");
  repo.add(find("ChargeAmountPositive"), "Project", "charge(double)");
  repo.add(find("RefundAmountPositive"), "Project", "refund(double)");
  repo.add(find("WorkloadCoversAddedHours"), "Employee", "addWork(double)");
  repo.add(find("SpentCoversChargedAmount"), "Project", "charge(double)");
  repo.add(find("MembersNonNegativeAfterJoin"), "Project", "addMember()");
}

void check_employee_invariants(const Employee& e) {
  if (e.workload < 0) throw DedisysError("workload negative");
  if (e.workload > e.max_workload) throw DedisysError("workload above max");
  if (e.projects < 0) throw DedisysError("projects negative");
  if (e.projects > 5) throw DedisysError("too many projects");
  if (e.salary < 1000) throw DedisysError("salary below minimum");
}

void check_project_invariants(const Project& p) {
  if (p.spent < 0) throw DedisysError("spent negative");
  if (p.spent > p.budget) throw DedisysError("budget exceeded");
  if (p.members < 0) throw DedisysError("members negative");
}

}  // namespace dedisys::validation
