// Validation result cache (version-stamped memoization).
//
// After a constraint evaluates, the CCMgr records the outcome keyed by
// (constraint name, context object, fingerprint of the write stamps of
// every entity in the analyzed read-set).  On the next validation of the
// same constraint over the same context object, an unchanged fingerprint
// proves that no read-set entity was written since — the cached
// SatisfactionDegree can be reused without re-walking the OCL tree.
//
// Invalidation is implicit and exact: Entity::write_stamp() is bumped by
// every state change (local setters, replication apply of a propagated
// update, snapshot restore, reconciliation replays all funnel through
// Entity::set/restore), so a stale entry simply stops matching.  A lookup
// that finds a non-matching fingerprint reports MissStale — the caller
// traces it as validation.memo_invalidate — and the subsequent store
// replaces the dead entry.
//
// The memo itself is policy-free: eligibility (opaque read-sets,
// query-based contexts, LCC/NCC bypass) is decided by the CCMgr; see
// docs/validation_memo.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "constraints/satisfaction.h"
#include "util/ids.h"

namespace dedisys::validation {

/// Order-sensitive FNV-1a digest over (object id, write stamp) pairs.
class FingerprintBuilder {
 public:
  void mix(ObjectId object, std::uint64_t write_stamp) {
    mix64(object.value());
    mix64(write_stamp);
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  void mix64(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (v >> (byte * 8)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }

  std::uint64_t hash_ = 14695981039346656037ull;
};

class ValidationMemo {
 public:
  enum class Outcome {
    Hit,       ///< entry present, fingerprint unchanged: reuse the degree
    MissCold,  ///< never cached for this (constraint, context object)
    MissStale, ///< cached, but a read-set entity was written since
  };

  struct Lookup {
    Outcome outcome = Outcome::MissCold;
    SatisfactionDegree degree = SatisfactionDegree::Satisfied;  // Hit only
  };

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;        ///< cold + stale
    std::size_t invalidations = 0; ///< stale misses (entry busted by a write)
    std::size_t stores = 0;
    std::size_t evictions = 0;     ///< entries dropped via invalidate_object
  };

  [[nodiscard]] Lookup lookup(const std::string& constraint,
                              ObjectId context_object,
                              std::uint64_t fingerprint);

  /// Records (or replaces) the cached outcome for a key.  Callers only
  /// store definite degrees (Satisfied/Violated); threat degrees depend on
  /// partition state the fingerprint cannot see.
  void store(const std::string& constraint, ObjectId context_object,
             std::uint64_t fingerprint, SatisfactionDegree degree);

  /// Drops every entry whose context is `object` (entity destroyed).
  /// Returns the number of entries removed.
  std::size_t invalidate_object(ObjectId object);

  /// Drops every entry of one constraint (removed/disabled at runtime).
  std::size_t invalidate_constraint(const std::string& constraint);

  void clear();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    SatisfactionDegree degree = SatisfactionDegree::Satisfied;
  };

  static std::string key(const std::string& constraint,
                         ObjectId context_object) {
    return constraint + '@' + std::to_string(context_object.value());
  }

  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace dedisys::validation
