// The Chapter-2 study application: management of projects and employees
// within a company (Section 2.3).
//
// The application itself is plain C++ (the paper's app is plain Java); the
// different constraint-validation approaches bolt their machinery around
// it.  Employees participate in projects and perform a certain amount of
// work; several restrictions apply (an employee can only handle a certain
// workload, budgets must not be exceeded, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dedisys::validation {

struct Employee {
  std::string name;
  double workload = 0;         ///< currently assigned hours per week
  double max_workload = 40;    ///< invariant: workload <= max_workload
  std::int64_t projects = 0;   ///< invariant: 0 <= projects <= 5
  double salary = 3000;        ///< invariant: salary >= 1000

  // -- business operations (no checks; approaches wrap these) --------------

  void add_work(double hours) { workload += hours; }
  void remove_work(double hours) { workload -= hours; }
  void join_project() { ++projects; }
  void leave_project() { --projects; }
  void raise_salary(double amount) { salary += amount; }
};

struct Department {
  std::string name;
  double budget_pool = 500000;  ///< invariant: budget_pool >= 0
  std::int64_t headcount = 0;   ///< invariant: 0 <= headcount <= 500
  double floor_space = 100;     ///< invariant: floor_space > 0

  void hire() { ++headcount; }
  void fire() { --headcount; }
  void allocate_budget(double amount) { budget_pool -= amount; }
  void return_budget(double amount) { budget_pool += amount; }
  void resize(double space) { floor_space = space; }
  void audit() {}
};

struct Project {
  std::string name;
  double budget = 100000;      ///< invariant: spent <= budget
  double spent = 0;            ///< invariant: spent >= 0
  std::int64_t members = 0;    ///< invariant: members >= 0

  void charge(double amount) { spent += amount; }
  void refund(double amount) { spent -= amount; }
  void add_member() { ++members; }
  void remove_member() { --members; }
};

/// The fixed study population and the deterministic scenario every
/// approach runs (Section 2.3.2's "use cases").
struct StudyApp {
  std::vector<Employee> employees;
  std::vector<Project> projects;

  static StudyApp make(std::size_t num_employees = 8,
                       std::size_t num_projects = 4);

  void reset();
};

/// Per-run counters so tests can assert that every approach performs the
/// same number of checks (comparison condition of Section 2.3.1).
struct CheckCounters {
  std::size_t preconditions = 0;
  std::size_t postconditions = 0;
  std::size_t invariants = 0;
  std::size_t interceptions = 0;
  std::size_t searches = 0;
  std::size_t violations = 0;

  [[nodiscard]] std::size_t total_checks() const {
    return preconditions + postconditions + invariants;
  }
};

}  // namespace dedisys::validation
