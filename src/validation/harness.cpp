#include "validation/harness.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "util/errors.h"

namespace dedisys::validation {

namespace {

// ---------------------------------------------------------------------------
// Method metadata shortcuts
// ---------------------------------------------------------------------------

struct Methods {
  const MethodInfo* add_work;
  const MethodInfo* remove_work;
  const MethodInfo* join_project;
  const MethodInfo* leave_project;
  const MethodInfo* raise_salary;
  const MethodInfo* charge;
  const MethodInfo* refund;
  const MethodInfo* add_member;
  const MethodInfo* remove_member;

  static const Methods& get() {
    static const Methods m = [] {
      const ClassInfo& e = employee_class();
      const ClassInfo& p = project_class();
      return Methods{&e.methods[0], &e.methods[1], &e.methods[2],
                     &e.methods[3], &e.methods[4], &p.methods[0],
                     &p.methods[1], &p.methods[2], &p.methods[3]};
    }();
    return m;
  }
};

ObjectRefl refl(Employee& e) { return ObjectRefl{&employee_class(), &e}; }
ObjectRefl refl(Project& p) { return ObjectRefl{&project_class(), &p}; }

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

struct NoChecksPolicy {
  CheckCounters* c;

  void add_work(Employee& e, double h) { e.add_work(h); }
  void remove_work(Employee& e, double h) { e.remove_work(h); }
  void join_project(Employee& e) { e.join_project(); }
  void leave_project(Employee& e) { e.leave_project(); }
  void raise_salary(Employee& e, double a) { e.raise_salary(a); }
  void charge(Project& p, double a) { p.charge(a); }
  void refund(Project& p, double a) { p.refund(a); }
  void add_member(Project& p) { p.add_member(); }
  void remove_member(Project& p) { p.remove_member(); }
};

/// Inline if-statements tangled with the business logic (Listing 2.1).
struct HandcraftedPolicy {
  CheckCounters* c;

  void employee_invariants(const Employee& e) {
    check_employee_invariants(e);
    c->invariants += 5;
  }
  void project_invariants(const Project& p) {
    check_project_invariants(p);
    c->invariants += 3;
  }
  void pre(bool ok) {
    ++c->preconditions;
    if (!ok) {
      ++c->violations;
      throw DedisysError("precondition violated");
    }
  }
  void post(bool ok) {
    ++c->postconditions;
    if (!ok) {
      ++c->violations;
      throw DedisysError("postcondition violated");
    }
  }

  void add_work(Employee& e, double h) {
    pre(h > 0 && h <= 24);
    employee_invariants(e);
    e.add_work(h);
    employee_invariants(e);
    post(e.workload >= h);
  }
  void remove_work(Employee& e, double h) {
    pre(h > 0);
    employee_invariants(e);
    e.remove_work(h);
    employee_invariants(e);
  }
  void join_project(Employee& e) {
    employee_invariants(e);
    e.join_project();
    employee_invariants(e);
  }
  void leave_project(Employee& e) {
    employee_invariants(e);
    e.leave_project();
    employee_invariants(e);
  }
  void raise_salary(Employee& e, double a) {
    pre(a > 0);
    employee_invariants(e);
    e.raise_salary(a);
    employee_invariants(e);
  }
  void charge(Project& p, double a) {
    pre(a > 0);
    project_invariants(p);
    p.charge(a);
    project_invariants(p);
    post(p.spent >= a);
  }
  void refund(Project& p, double a) {
    pre(a > 0);
    project_invariants(p);
    p.refund(a);
    project_invariants(p);
  }
  void add_member(Project& p) {
    project_invariants(p);
    p.add_member();
    project_invariants(p);
    post(p.members >= 0);
  }
  void remove_member(Project& p) {
    project_invariants(p);
    p.remove_member();
    project_invariants(p);
  }
};

/// Pre-compiler in-place injection (Section 2.1.2, Listing 2.2): the tool
/// writes the validation statements straight into each method body.  The
/// generated code is duplicated per call site but compiles to the same
/// machine code class as handcrafted checks.
struct InPlaceGeneratedPolicy : HandcraftedPolicy {
  // Structurally: every method body carries its own generated
  // BEGIN/END-validation blocks (code duplication is the maintainability
  // cost, Section 2.2.3); performance-wise the injected code is ordinary
  // compiled C++.
};

/// Wrapper-based source instrumentation (Section 2.1.2, Listing 2.3): the
/// original method is renamed and only called through a generated wrapper
/// holding the checks.  The extra non-inlined call frames are the
/// performance cost of this structure.
struct WrapperGeneratedPolicy {
  CheckCounters* c;

  // "countChar" -> wrapper; "countChar_wrapped" -> original (renamed).
  [[gnu::noinline]] static void add_work_wrapped(Employee& e, double h) {
    e.add_work(h);
  }
  [[gnu::noinline]] static void remove_work_wrapped(Employee& e, double h) {
    e.remove_work(h);
  }
  [[gnu::noinline]] static void join_project_wrapped(Employee& e) {
    e.join_project();
  }
  [[gnu::noinline]] static void leave_project_wrapped(Employee& e) {
    e.leave_project();
  }
  [[gnu::noinline]] static void raise_salary_wrapped(Employee& e, double a) {
    e.raise_salary(a);
  }
  [[gnu::noinline]] static void charge_wrapped(Project& p, double a) {
    p.charge(a);
  }
  [[gnu::noinline]] static void refund_wrapped(Project& p, double a) {
    p.refund(a);
  }
  [[gnu::noinline]] static void add_member_wrapped(Project& p) {
    p.add_member();
  }
  [[gnu::noinline]] static void remove_member_wrapped(Project& p) {
    p.remove_member();
  }

  void employee_invariants(const Employee& e) {
    check_employee_invariants(e);
    c->invariants += 5;
  }
  void project_invariants(const Project& p) {
    check_project_invariants(p);
    c->invariants += 3;
  }
  void pre(bool ok) {
    ++c->preconditions;
    if (!ok) {
      ++c->violations;
      throw DedisysError("precondition violated");
    }
  }
  void post(bool ok) {
    ++c->postconditions;
    if (!ok) {
      ++c->violations;
      throw DedisysError("postcondition violated");
    }
  }

  [[gnu::noinline]] void add_work(Employee& e, double h) {
    pre(h > 0 && h <= 24);
    employee_invariants(e);
    add_work_wrapped(e, h);
    employee_invariants(e);
    post(e.workload >= h);
  }
  [[gnu::noinline]] void remove_work(Employee& e, double h) {
    pre(h > 0);
    employee_invariants(e);
    remove_work_wrapped(e, h);
    employee_invariants(e);
  }
  [[gnu::noinline]] void join_project(Employee& e) {
    employee_invariants(e);
    join_project_wrapped(e);
    employee_invariants(e);
  }
  [[gnu::noinline]] void leave_project(Employee& e) {
    employee_invariants(e);
    leave_project_wrapped(e);
    employee_invariants(e);
  }
  [[gnu::noinline]] void raise_salary(Employee& e, double a) {
    pre(a > 0);
    employee_invariants(e);
    raise_salary_wrapped(e, a);
    employee_invariants(e);
  }
  [[gnu::noinline]] void charge(Project& p, double a) {
    pre(a > 0);
    project_invariants(p);
    charge_wrapped(p, a);
    project_invariants(p);
    post(p.spent >= a);
  }
  [[gnu::noinline]] void refund(Project& p, double a) {
    pre(a > 0);
    project_invariants(p);
    refund_wrapped(p, a);
    project_invariants(p);
  }
  [[gnu::noinline]] void add_member(Project& p) {
    project_invariants(p);
    add_member_wrapped(p);
    project_invariants(p);
    post(p.members >= 0);
  }
  [[gnu::noinline]] void remove_member(Project& p) {
    project_invariants(p);
    remove_member_wrapped(p);
    project_invariants(p);
  }
};

/// Constraints coded directly in aspects: the advice is compiled around the
/// call sites (statically woven), so it performs like handcrafted checks.
struct AspectInlinePolicy : HandcraftedPolicy {
  // Identical check bodies; the structural difference (advice functions vs
  // tangled ifs) disappears after inlining — which is precisely the
  // paper's finding (overhead factor 1.06, Fig. 2.1).
};

/// JML-style compiler-generated assertion machinery: \old() snapshot
/// stores and boxed reflective spec evaluation.
struct JmlStylePolicy {
  CheckCounters* c;

  void jml_assert(bool ok, const char* label, std::size_t* counter) {
    ++*counter;
    if (!ok) {
      ++c->violations;
      throw DedisysError(std::string("JML assertion violated: ") + label);
    }
  }

  void employee_invariants(const ObjectRefl& self) {
    jml_assert(boxed_num(self.get("workload")) >= 0, "inv", &c->invariants);
    jml_assert(boxed_num(self.get("workload")) <=
                   boxed_num(self.get("max_workload")),
               "inv", &c->invariants);
    jml_assert(boxed_num(self.get("projects")) >= 0, "inv", &c->invariants);
    jml_assert(boxed_num(self.get("projects")) <= 5, "inv", &c->invariants);
    jml_assert(boxed_num(self.get("salary")) >= 1000, "inv", &c->invariants);
  }
  void project_invariants(const ObjectRefl& self) {
    jml_assert(boxed_num(self.get("spent")) >= 0, "inv", &c->invariants);
    jml_assert(boxed_num(self.get("spent")) <= boxed_num(self.get("budget")),
               "inv", &c->invariants);
    jml_assert(boxed_num(self.get("members")) >= 0, "inv", &c->invariants);
  }

  /// The generated wrapper conservatively snapshots every field of the
  /// receiver into the \old() store (JML's runtime assertion checker
  /// materializes pre-state for all referenced locations).
  static std::map<std::string, Boxed> old_store(const ObjectRefl& self,
                                                std::initializer_list<const char*>
                                                    attrs) {
    std::map<std::string, Boxed> store;
    if (self.cls == &employee_class()) {
      for (const char* a : {"workload", "max_workload", "projects", "salary"})
        store[a] = self.get(a);
    } else {
      for (const char* a : {"budget", "spent", "members"})
        store[a] = self.get(a);
    }
    (void)attrs;
    return store;
  }

  void add_work(Employee& e, double h) {
    ObjectRefl self = refl(e);
    auto old = old_store(self, {"workload", "projects", "salary"});
    jml_assert(h > 0 && h <= 24, "pre", &c->preconditions);
    employee_invariants(self);
    e.add_work(h);
    employee_invariants(self);
    jml_assert(boxed_num(self.get("workload")) >=
                   boxed_num(old.at("workload")) + h - 1e-9,
               "post", &c->postconditions);
  }
  void remove_work(Employee& e, double h) {
    ObjectRefl self = refl(e);
    auto old = old_store(self, {"workload"});
    jml_assert(h > 0, "pre", &c->preconditions);
    employee_invariants(self);
    e.remove_work(h);
    employee_invariants(self);
    (void)old;
  }
  void join_project(Employee& e) {
    ObjectRefl self = refl(e);
    auto old = old_store(self, {"projects"});
    employee_invariants(self);
    e.join_project();
    employee_invariants(self);
    (void)old;
  }
  void leave_project(Employee& e) {
    ObjectRefl self = refl(e);
    auto old = old_store(self, {"projects"});
    employee_invariants(self);
    e.leave_project();
    employee_invariants(self);
    (void)old;
  }
  void raise_salary(Employee& e, double a) {
    ObjectRefl self = refl(e);
    auto old = old_store(self, {"salary"});
    jml_assert(a > 0, "pre", &c->preconditions);
    employee_invariants(self);
    e.raise_salary(a);
    employee_invariants(self);
    (void)old;
  }
  void charge(Project& p, double a) {
    ObjectRefl self = refl(p);
    auto old = old_store(self, {"spent"});
    jml_assert(a > 0, "pre", &c->preconditions);
    project_invariants(self);
    p.charge(a);
    project_invariants(self);
    jml_assert(boxed_num(self.get("spent")) >=
                   boxed_num(old.at("spent")) + a - 1e-9,
               "post", &c->postconditions);
  }
  void refund(Project& p, double a) {
    ObjectRefl self = refl(p);
    auto old = old_store(self, {"spent"});
    jml_assert(a > 0, "pre", &c->preconditions);
    project_invariants(self);
    p.refund(a);
    project_invariants(self);
    (void)old;
  }
  void add_member(Project& p) {
    ObjectRefl self = refl(p);
    auto old = old_store(self, {"members"});
    project_invariants(self);
    p.add_member();
    project_invariants(self);
    jml_assert(boxed_num(self.get("members")) >= 0, "post",
               &c->postconditions);
  }
  void remove_member(Project& p) {
    ObjectRefl self = refl(p);
    auto old = old_store(self, {"members"});
    project_invariants(self);
    p.remove_member();
    project_invariants(self);
    (void)old;
  }
};

/// Dresden-OCL-style wrapper validation: every check builds a fresh boxed
/// evaluation context and interprets the OCL AST.
struct DresdenOclPolicy {
  CheckCounters* c;
  const StudyConstraintSet* set = &StudyConstraintSet::instance();

  void eval_set(const std::vector<OclExpr>& exprs, const ObjectRefl& self,
                const std::vector<Boxed>& args, std::size_t* counter) {
    for (const OclExpr& e : exprs) {
      // Generated generic code materializes an evaluation environment of
      // boxed attribute values per check before interpreting.
      std::map<std::string, Boxed> env;
      for (const MethodInfo& m : self.cls->methods) env[m.name] = Boxed{};
      env["self"] = Boxed{std::string(self.cls->name)};
      ++*counter;
      if (!ocl_check(e, self, args)) {
        ++c->violations;
        throw DedisysError("OCL constraint violated");
      }
    }
  }

  void invariants(const ObjectRefl& self, const std::vector<Boxed>& args) {
    const auto& exprs = self.cls == &employee_class()
                            ? set->employee_invariants_ocl()
                            : set->project_invariants_ocl();
    eval_set(exprs, self, args, &c->invariants);
  }

  void pre(const ObjectRefl& self, const MethodInfo& m,
           const std::vector<Boxed>& args) {
    auto it = set->pre_ocl().find(m.key);
    if (it != set->pre_ocl().end()) {
      eval_set(it->second, self, args, &c->preconditions);
    }
  }
  void post(const ObjectRefl& self, const MethodInfo& m,
            const std::vector<Boxed>& args) {
    auto it = set->post_ocl().find(m.key);
    if (it != set->post_ocl().end()) {
      eval_set(it->second, self, args, &c->postconditions);
    }
  }

  template <typename Obj, typename Fn>
  void wrapped(Obj& obj, const MethodInfo& m, const double* arg, Fn&& body) {
    ObjectRefl self = refl(obj);
    std::vector<Boxed> args;
    if (arg != nullptr) args.emplace_back(*arg);
    pre(self, m, args);
    invariants(self, args);
    body();
    invariants(self, args);
    post(self, m, args);
  }

  void add_work(Employee& e, double h) {
    wrapped(e, *Methods::get().add_work, &h, [&] { e.add_work(h); });
  }
  void remove_work(Employee& e, double h) {
    wrapped(e, *Methods::get().remove_work, &h, [&] { e.remove_work(h); });
  }
  void join_project(Employee& e) {
    wrapped(e, *Methods::get().join_project, nullptr, [&] { e.join_project(); });
  }
  void leave_project(Employee& e) {
    wrapped(e, *Methods::get().leave_project, nullptr,
            [&] { e.leave_project(); });
  }
  void raise_salary(Employee& e, double a) {
    wrapped(e, *Methods::get().raise_salary, &a, [&] { e.raise_salary(a); });
  }
  void charge(Project& p, double a) {
    wrapped(p, *Methods::get().charge, &a, [&] { p.charge(a); });
  }
  void refund(Project& p, double a) {
    wrapped(p, *Methods::get().refund, &a, [&] { p.refund(a); });
  }
  void add_member(Project& p) {
    wrapped(p, *Methods::get().add_member, nullptr, [&] { p.add_member(); });
  }
  void remove_member(Project& p) {
    wrapped(p, *Methods::get().remove_member, nullptr,
            [&] { p.remove_member(); });
  }
};

/// Generic interceptor + constraint repository (Sections 2.1.4/2.1.5).
struct RepoPolicy {
  CheckCounters* c;
  Mechanism* mech;
  StudyRepository* repo;
  RepoStage stage;

  [[nodiscard]] bool at_least(RepoStage s) const {
    return static_cast<int>(stage) >= static_cast<int>(s);
  }

  void run_set(const std::vector<const StudyConstraint*>& matches,
               const StudyContext& sctx, std::size_t* counter) {
    if (!at_least(RepoStage::Check)) return;
    for (const StudyConstraint* sc : matches) {
      ++*counter;
      if (!sc->validate(sctx)) {
        ++c->violations;
        throw DedisysError("constraint violated: " + sc->name());
      }
    }
  }

  void call(ObjectRefl target, const MethodInfo& m, const double* arg,
            BodyFn body, void* bctx) {
    ++c->interceptions;
    mech->begin(target, m, arg);
    if (!at_least(RepoStage::Extract)) {
      mech->dispatch(body, bctx);
      return;
    }
    std::string class_name;
    std::vector<Boxed> args;
    const MethodInfo* mi = mech->extract(class_name, args);
    if (mi == nullptr) throw DedisysError("method extraction failed");
    if (!at_least(RepoStage::Search)) {
      mech->dispatch(body, bctx);
      return;
    }
    StudyContext sctx{target, mi, &args};
    run_set(repo->lookup(class_name, mi->key,
                         StudyConstraintType::Precondition),
            sctx, &c->preconditions);
    run_set(repo->lookup(class_name, mi->key, StudyConstraintType::Invariant),
            sctx, &c->invariants);
    mech->dispatch(body, bctx);
    run_set(repo->lookup(class_name, mi->key, StudyConstraintType::Invariant),
            sctx, &c->invariants);
    run_set(repo->lookup(class_name, mi->key,
                         StudyConstraintType::Postcondition),
            sctx, &c->postconditions);
    c->searches = repo->search_count();
  }

  // -- operations ------------------------------------------------------------

  void add_work(Employee& e, double h) {
    struct Ctx {
      Employee* e;
      double h;
    } ctx{&e, h};
    call(refl(e), *Methods::get().add_work, &h,
         [](void* p) {
           auto* x = static_cast<Ctx*>(p);
           x->e->add_work(x->h);
         },
         &ctx);
  }
  void remove_work(Employee& e, double h) {
    struct Ctx {
      Employee* e;
      double h;
    } ctx{&e, h};
    call(refl(e), *Methods::get().remove_work, &h,
         [](void* p) {
           auto* x = static_cast<Ctx*>(p);
           x->e->remove_work(x->h);
         },
         &ctx);
  }
  void join_project(Employee& e) {
    call(refl(e), *Methods::get().join_project, nullptr,
         [](void* p) { static_cast<Employee*>(p)->join_project(); }, &e);
  }
  void leave_project(Employee& e) {
    call(refl(e), *Methods::get().leave_project, nullptr,
         [](void* p) { static_cast<Employee*>(p)->leave_project(); }, &e);
  }
  void raise_salary(Employee& e, double a) {
    struct Ctx {
      Employee* e;
      double a;
    } ctx{&e, a};
    call(refl(e), *Methods::get().raise_salary, &a,
         [](void* p) {
           auto* x = static_cast<Ctx*>(p);
           x->e->raise_salary(x->a);
         },
         &ctx);
  }
  void charge(Project& p, double a) {
    struct Ctx {
      Project* p;
      double a;
    } ctx{&p, a};
    call(refl(p), *Methods::get().charge, &a,
         [](void* q) {
           auto* x = static_cast<Ctx*>(q);
           x->p->charge(x->a);
         },
         &ctx);
  }
  void refund(Project& p, double a) {
    struct Ctx {
      Project* p;
      double a;
    } ctx{&p, a};
    call(refl(p), *Methods::get().refund, &a,
         [](void* q) {
           auto* x = static_cast<Ctx*>(q);
           x->p->refund(x->a);
         },
         &ctx);
  }
  void add_member(Project& p) {
    call(refl(p), *Methods::get().add_member, nullptr,
         [](void* q) { static_cast<Project*>(q)->add_member(); }, &p);
  }
  void remove_member(Project& p) {
    call(refl(p), *Methods::get().remove_member, nullptr,
         [](void* q) { static_cast<Project*>(q)->remove_member(); }, &p);
  }
};

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

template <typename Policy>
void scenario(StudyApp& app, Policy& pol, std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) {
    for (Employee& e : app.employees) {
      pol.join_project(e);
      pol.add_work(e, 3);
      pol.raise_salary(e, 5);
      pol.remove_work(e, 3);
      pol.leave_project(e);
    }
    for (Project& p : app.projects) {
      pol.add_member(p);
      pol.charge(p, 100);
      pol.refund(p, 100);
      pol.remove_member(p);
    }
  }
}

template <typename Policy>
std::size_t violation_scenario(StudyApp& app, Policy& pol) {
  std::size_t detected = 0;
  const auto attempt = [&](auto&& op) {
    try {
      op();
    } catch (const DedisysError&) {
      ++detected;
    }
    app.reset();
  };
  attempt([&] { pol.add_work(app.employees[0], 50); });       // pre: h <= 24
  attempt([&] { pol.charge(app.projects[0], 2e6); });          // inv: budget
  attempt([&] { pol.remove_member(app.projects[0]); });        // inv: members
  attempt([&] { pol.remove_work(app.employees[0], 5); });      // inv: workload
  return detected;
}

struct MechSet {
  AspectStaticMechanism aspect;
  AopFrameworkMechanism aop;
  ReflectiveProxyMechanism proxy;

  Mechanism& get(MechKind kind) {
    switch (kind) {
      case MechKind::Aspect: return aspect;
      case MechKind::Aop: return aop;
      case MechKind::Proxy: return proxy;
    }
    throw DedisysError("bad mechanism");
  }
};

StudyRepository& shared_repo(bool optimized) {
  static StudyRepository naive = [] {
    StudyRepository r;
    StudyConstraintSet::instance().populate(r);
    r.set_caching(false);
    return r;
  }();
  static StudyRepository cached = [] {
    StudyRepository r;
    StudyConstraintSet::instance().populate(r);
    r.set_caching(true);
    return r;
  }();
  return optimized ? cached : naive;
}

template <typename Fn>
CheckCounters with_counters(Fn&& fn) {
  CheckCounters c;
  fn(c);
  return c;
}

CheckCounters run_repo(MechKind kind, bool optimized, RepoStage stage,
                       StudyApp& app, std::size_t rounds) {
  return with_counters([&](CheckCounters& c) {
    static MechSet mechs;
    StudyRepository& repo = shared_repo(optimized);
    repo.reset_search_count();
    RepoPolicy pol{&c, &mechs.get(kind), &repo, stage};
    scenario(app, pol, rounds);
    c.searches = repo.search_count();
  });
}

}  // namespace

std::string to_string(Approach a) {
  switch (a) {
    case Approach::NoChecks: return "No checks";
    case Approach::Handcrafted: return "Handcrafted";
    case Approach::InPlaceGenerated: return "InPlace-Generated";
    case Approach::WrapperGenerated: return "Wrapper-Generated";
    case Approach::AspectInline: return "AspectJ-Interceptor";
    case Approach::JmlStyle: return "JML";
    case Approach::DresdenOcl: return "Dresden-OCL";
    case Approach::AspectRepo: return "AspectJ-Rep";
    case Approach::AspectRepoOpt: return "AspectJ-Rep-Opt";
    case Approach::AopRepo: return "JBossAOP-Rep";
    case Approach::AopRepoOpt: return "JBossAOP-Rep-Opt";
    case Approach::ProxyRepo: return "Proxy-Rep";
    case Approach::ProxyRepoOpt: return "Proxy-Rep-Opt";
  }
  return "?";
}

CheckCounters run_scenario(Approach approach, StudyApp& app,
                           std::size_t rounds) {
  switch (approach) {
    case Approach::NoChecks:
      return with_counters([&](CheckCounters& c) {
        NoChecksPolicy pol{&c};
        scenario(app, pol, rounds);
      });
    case Approach::Handcrafted:
      return with_counters([&](CheckCounters& c) {
        HandcraftedPolicy pol{&c};
        scenario(app, pol, rounds);
      });
    case Approach::InPlaceGenerated:
      return with_counters([&](CheckCounters& c) {
        InPlaceGeneratedPolicy pol{{&c}};
        scenario(app, pol, rounds);
      });
    case Approach::WrapperGenerated:
      return with_counters([&](CheckCounters& c) {
        WrapperGeneratedPolicy pol{&c};
        scenario(app, pol, rounds);
      });
    case Approach::AspectInline:
      return with_counters([&](CheckCounters& c) {
        AspectInlinePolicy pol{{&c}};
        scenario(app, pol, rounds);
      });
    case Approach::JmlStyle:
      return with_counters([&](CheckCounters& c) {
        JmlStylePolicy pol{&c};
        scenario(app, pol, rounds);
      });
    case Approach::DresdenOcl:
      return with_counters([&](CheckCounters& c) {
        DresdenOclPolicy pol{&c};
        scenario(app, pol, rounds);
      });
    case Approach::AspectRepo:
      return run_repo(MechKind::Aspect, false, RepoStage::Check, app, rounds);
    case Approach::AspectRepoOpt:
      return run_repo(MechKind::Aspect, true, RepoStage::Check, app, rounds);
    case Approach::AopRepo:
      return run_repo(MechKind::Aop, false, RepoStage::Check, app, rounds);
    case Approach::AopRepoOpt:
      return run_repo(MechKind::Aop, true, RepoStage::Check, app, rounds);
    case Approach::ProxyRepo:
      return run_repo(MechKind::Proxy, false, RepoStage::Check, app, rounds);
    case Approach::ProxyRepoOpt:
      return run_repo(MechKind::Proxy, true, RepoStage::Check, app, rounds);
  }
  throw DedisysError("bad approach");
}

CheckCounters run_repo_staged(MechKind mech, bool optimized_repo,
                              RepoStage stage, StudyApp& app,
                              std::size_t rounds) {
  return run_repo(mech, optimized_repo, stage, app, rounds);
}

namespace {

template <typename Fn>
double measure_median_ns(Fn&& run_once, std::size_t repetitions) {
  for (int i = 0; i < 3; ++i) run_once();  // warm-up (JIT analogue)
  std::vector<double> samples;
  samples.reserve(repetitions);
  for (std::size_t i = 0; i < repetitions; ++i) {
    const auto start = std::chrono::steady_clock::now();
    run_once();
    const auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(end - start).count());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

double measure_approach(Approach approach, std::size_t rounds,
                        std::size_t repetitions) {
  StudyApp app = StudyApp::make();
  return measure_median_ns(
      [&] {
        app.reset();
        (void)run_scenario(approach, app, rounds);
      },
      repetitions);
}

double measure_repo_staged(MechKind mech, bool optimized_repo, RepoStage stage,
                           std::size_t rounds, std::size_t repetitions) {
  StudyApp app = StudyApp::make();
  return measure_median_ns(
      [&] {
        app.reset();
        (void)run_repo_staged(mech, optimized_repo, stage, app, rounds);
      },
      repetitions);
}

std::size_t run_violation_scenario(Approach approach, StudyApp& app) {
  switch (approach) {
    case Approach::NoChecks: {
      NoChecksPolicy pol{nullptr};
      return violation_scenario(app, pol);
    }
    case Approach::Handcrafted: {
      CheckCounters c;
      HandcraftedPolicy pol{&c};
      return violation_scenario(app, pol);
    }
    case Approach::InPlaceGenerated: {
      CheckCounters c;
      InPlaceGeneratedPolicy pol{{&c}};
      return violation_scenario(app, pol);
    }
    case Approach::WrapperGenerated: {
      CheckCounters c;
      WrapperGeneratedPolicy pol{&c};
      return violation_scenario(app, pol);
    }
    case Approach::AspectInline: {
      CheckCounters c;
      AspectInlinePolicy pol{{&c}};
      return violation_scenario(app, pol);
    }
    case Approach::JmlStyle: {
      CheckCounters c;
      JmlStylePolicy pol{&c};
      return violation_scenario(app, pol);
    }
    case Approach::DresdenOcl: {
      CheckCounters c;
      DresdenOclPolicy pol{&c};
      return violation_scenario(app, pol);
    }
    default: {
      CheckCounters c;
      static MechSet mechs;
      const MechKind kind = approach == Approach::AspectRepo ||
                                    approach == Approach::AspectRepoOpt
                                ? MechKind::Aspect
                            : approach == Approach::AopRepo ||
                                    approach == Approach::AopRepoOpt
                                ? MechKind::Aop
                                : MechKind::Proxy;
      const bool optimized = approach == Approach::AspectRepoOpt ||
                             approach == Approach::AopRepoOpt ||
                             approach == Approach::ProxyRepoOpt;
      StudyRepository& repo = shared_repo(optimized);
      RepoPolicy pol{&c, &mechs.get(kind), &repo, RepoStage::Check};
      return violation_scenario(app, pol);
    }
  }
}

}  // namespace dedisys::validation
