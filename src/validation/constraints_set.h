// The constraint corpus of the Chapter-2 study, in every representation
// the approaches need:
//   * explicit constraint classes queried from a repository,
//   * OCL expression sources (interpreted approach),
//   * hand-written check functions (handcrafted / inline aspect / JML).
//
// Comparison conditions of Section 2.3.1 apply uniformly: invariants are
// checked before and after every public method; preconditions before,
// postconditions after; the deterministic scenario violates nothing.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "validation/reflection.h"

namespace dedisys::validation {

enum class StudyConstraintType { Precondition, Postcondition, Invariant };

/// Validation input for explicit constraint classes.
struct StudyContext {
  ObjectRefl target;
  const MethodInfo* method = nullptr;
  const std::vector<Boxed>* args = nullptr;
};

/// One explicit runtime constraint (Section 2.1.4): reflective, boxed
/// attribute access inside validate().
class StudyConstraint {
 public:
  StudyConstraint(std::string name, StudyConstraintType type)
      : name_(std::move(name)), type_(type) {}
  virtual ~StudyConstraint() = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] StudyConstraintType type() const { return type_; }

  [[nodiscard]] virtual bool validate(const StudyContext& ctx) const = 0;

 private:
  std::string name_;
  StudyConstraintType type_;
};

/// Registration of a constraint for one affected method.
struct StudyRegistration {
  const StudyConstraint* constraint;
  std::string class_name;
  std::string method_key;
};

/// Constraint repository for the study (Section 2.1.4): naive linear
/// search per query, or the optimized variant caching query results in a
/// hash table keyed by class+method+type (Section 2.2.1).
class StudyRepository {
 public:
  void add(const StudyConstraint* c, std::string class_name,
           std::string method_key) {
    registrations_.push_back(
        StudyRegistration{c, std::move(class_name), std::move(method_key)});
    cache_.clear();
  }

  void set_caching(bool on) {
    caching_ = on;
    cache_.clear();
  }

  [[nodiscard]] std::size_t size() const { return registrations_.size(); }
  [[nodiscard]] std::size_t search_count() const { return searches_; }
  void reset_search_count() { searches_ = 0; }

  /// Constraints of `type` affected by (class, method).
  const std::vector<const StudyConstraint*>& lookup(
      const std::string& class_name, const std::string& method_key,
      StudyConstraintType type) {
    ++searches_;
    if (!caching_) {
      scratch_ = search(class_name, method_key, type);
      return scratch_;
    }
    // Optimized repository: combined-key hash lookup with a reused key
    // buffer (no per-query allocation once warm).
    key_buf_.clear();
    key_buf_.append(class_name);
    key_buf_.push_back('#');
    key_buf_.append(method_key);
    key_buf_.push_back('#');
    key_buf_.push_back(static_cast<char>('0' + static_cast<int>(type)));
    auto it = cache_.find(key_buf_);
    if (it != cache_.end()) return it->second;
    auto [ins, _] =
        cache_.emplace(key_buf_, search(class_name, method_key, type));
    return ins->second;
  }

 private:
  [[nodiscard]] std::vector<const StudyConstraint*> search(
      const std::string& class_name, const std::string& method_key,
      StudyConstraintType type) const {
    std::vector<const StudyConstraint*> out;
    for (const StudyRegistration& reg : registrations_) {
      if (reg.constraint->type() == type && reg.class_name == class_name &&
          reg.method_key == method_key) {
        out.push_back(reg.constraint);
      }
    }
    return out;
  }

  std::vector<StudyRegistration> registrations_;
  std::string key_buf_;
  bool caching_ = true;
  std::unordered_map<std::string, std::vector<const StudyConstraint*>> cache_;
  std::vector<const StudyConstraint*> scratch_;
  std::size_t searches_ = 0;
};

/// The shared constraint corpus (built once, immutable afterwards).
class StudyConstraintSet {
 public:
  static const StudyConstraintSet& instance();

  [[nodiscard]] const std::vector<std::unique_ptr<StudyConstraint>>&
  constraints() const {
    return constraints_;
  }

  /// Fills a repository with all registrations (invariants registered for
  /// every public method of their class).
  void populate(StudyRepository& repo) const;

  /// Parsed OCL invariants per class (same predicates).
  [[nodiscard]] const std::vector<OclExpr>& employee_invariants_ocl() const {
    return employee_inv_ocl_;
  }
  [[nodiscard]] const std::vector<OclExpr>& project_invariants_ocl() const {
    return project_inv_ocl_;
  }
  /// Parsed OCL pre/postconditions keyed by method key.
  [[nodiscard]] const std::unordered_map<std::string, std::vector<OclExpr>>&
  pre_ocl() const {
    return pre_ocl_;
  }
  [[nodiscard]] const std::unordered_map<std::string, std::vector<OclExpr>>&
  post_ocl() const {
    return post_ocl_;
  }

 private:
  StudyConstraintSet();

  std::vector<std::unique_ptr<StudyConstraint>> constraints_;
  std::vector<OclExpr> employee_inv_ocl_;
  std::vector<OclExpr> project_inv_ocl_;
  std::unordered_map<std::string, std::vector<OclExpr>> pre_ocl_;
  std::unordered_map<std::string, std::vector<OclExpr>> post_ocl_;
};

// -- hand-written check functions (handcrafted / inline aspects / JML) -------

/// Throws DedisysError when an Employee invariant is broken.
void check_employee_invariants(const Employee& e);
void check_project_invariants(const Project& p);

}  // namespace dedisys::validation
