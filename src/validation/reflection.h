// Miniature reflection layer for the Chapter-2 study.
//
// The interceptor mechanisms differ in how they obtain method metadata and
// box arguments; this header provides the java.lang.reflect analogues:
// per-class method tables, boxed argument vectors and boxed attribute
// access on the study objects.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "ocl/ocl.h"
#include "util/errors.h"
#include "validation/study_app.h"

namespace dedisys::validation {

/// Boxed value (deliberately small: the study objects only hold numbers
/// and strings).  Shared with the OCL interpreter.
using Boxed = OclValue;

inline double boxed_num(const Boxed& b) { return ocl_num(b); }

/// The java.lang.reflect.Method analogue.
struct MethodInfo {
  std::string name;
  std::vector<std::string> param_types;
  std::string declaring_class;
  /// Pre-computed "name(type,...)" key.
  std::string key;
};

/// The java.lang.Class analogue: method table + boxed attribute access.
struct ClassInfo {
  std::string name;
  std::vector<MethodInfo> methods;
  /// Boxed attribute read by name (reflective field access).
  Boxed (*get_attribute)(const void* object, const std::string& attr);

  /// getMethod(...): the costly reflective lookup AspectJ needs for
  /// parameter extraction (Section 2.3.2).  Like java.lang.Class.getMethod
  /// it materializes each candidate's signature descriptor before
  /// comparing — string construction per candidate, exactly the work the
  /// JVM's reflective lookup performs.
  [[nodiscard]] const MethodInfo* get_method(
      const std::string& method_name,
      const std::vector<std::string>& param_types) const {
    std::string wanted = method_name + "(";
    for (std::size_t i = 0; i < param_types.size(); ++i) {
      if (i != 0) wanted += ',';
      wanted += param_types[i];
    }
    wanted += ")";
    for (const MethodInfo& m : methods) {
      std::string candidate = m.name + "(";
      for (std::size_t i = 0; i < m.param_types.size(); ++i) {
        if (i != 0) candidate += ',';
        candidate += m.param_types[i];
      }
      candidate += ")";
      if (candidate == wanted) return &m;
    }
    return nullptr;
  }
};

/// Reflection registry for the study classes.  Department is part of the
/// application model (and of the 78-constraint corpus) but not exercised
/// by the measured scenario — its registrations lengthen the naive
/// repository scan exactly as the paper's larger application did.
const ClassInfo& employee_class();
const ClassInfo& project_class();
const ClassInfo& department_class();

/// Boxed view of one study object (reflective target).
struct ObjectRefl {
  const ClassInfo* cls;
  void* object;

  [[nodiscard]] Boxed get(const std::string& attr) const {
    return cls->get_attribute(object, attr);
  }
};

// -- OCL over reflection ------------------------------------------------------
//
// The study's interpreted approach evaluates the same OCL ASTs as the
// runtime CCMgr: the parser/visitor core lives in ocl/ocl.h (shared), and
// this adaptor merely binds `self`/arguments to the reflection layer.

using dedisys::OclExpr;
using dedisys::OclNode;
using dedisys::parse_ocl;

/// OCL environment over a reflective study object plus boxed arguments.
class ReflOclEnv final : public OclEnv {
 public:
  ReflOclEnv(const ObjectRefl& self, const std::vector<Boxed>& args)
      : self_(&self), args_(&args) {}

  [[nodiscard]] OclValue attribute(const std::string& name) const override {
    return self_->get(name);
  }

  [[nodiscard]] OclValue argument(std::size_t index) const override {
    if (index >= args_->size()) {
      throw DedisysError("OCL arg index out of range");
    }
    return (*args_)[index];
  }

 private:
  const ObjectRefl* self_;
  const std::vector<Boxed>* args_;
};

/// Evaluates a parsed constraint against a study object (legacy helper).
[[nodiscard]] inline bool ocl_check(const OclExpr& expr, const ObjectRefl& self,
                                    const std::vector<Boxed>& args) {
  return dedisys::ocl_check(expr, ReflOclEnv(self, args));
}

}  // namespace dedisys::validation
