// Chapter-2 study harness: runs the deterministic project/employee scenario
// under every constraint-validation approach and measures it.
#pragma once

#include <cstdint>
#include <string>

#include "validation/constraints_set.h"
#include "validation/mechanisms.h"
#include "validation/study_app.h"

namespace dedisys::validation {

enum class Approach {
  NoChecks,       ///< Application without constraint checks (R1).
  Handcrafted,    ///< Inline if-statements (Section 2.1.1) — the baseline.
  InPlaceGenerated,  ///< Pre-compiler in-place code injection (§2.1.2,
                     ///< iContract style): duplicated generated checks at
                     ///< every call site, compiled with the app.
  WrapperGenerated,  ///< Wrapper-based source instrumentation (§2.1.2,
                     ///< Dresden structure, compiled checks): original
                     ///< methods renamed, wrappers validate around them.
  AspectInline,   ///< Constraints coded directly in aspects (AspectJ-Interceptor).
  JmlStyle,       ///< Compiler-generated checks with @pre snapshots (JML).
  DresdenOcl,     ///< Tool-generated interpreted OCL validation (Dresden).
  AspectRepo,     ///< AspectJ interception + naive repository.
  AspectRepoOpt,  ///< AspectJ interception + optimized (caching) repository.
  AopRepo,        ///< JBoss-AOP-style interception + naive repository.
  AopRepoOpt,     ///< JBoss-AOP-style interception + optimized repository.
  ProxyRepo,      ///< Reflective proxy + naive repository.
  ProxyRepoOpt,   ///< Reflective proxy + optimized repository.
};

[[nodiscard]] std::string to_string(Approach a);

enum class MechKind { Aspect, Aop, Proxy };

/// Runtime slices of Fig. 2.3: how far the repo pipeline runs.
enum class RepoStage {
  InterceptOnly,  ///< R1+R2
  Extract,        ///< R1+R2+R3
  Search,         ///< R1+R2+R3+R4
  Check,          ///< full (R5 included)
};

/// One scenario execution under `approach`; `rounds` scales the workload
/// (each round performs 56 intercepted operations).  Returns check/search
/// counters (identical across approaches per Section 2.3.1).
CheckCounters run_scenario(Approach approach, StudyApp& app,
                           std::size_t rounds = 10);

/// Staged repo-pipeline run for Figures 2.4–2.6.
CheckCounters run_repo_staged(MechKind mech, bool optimized_repo,
                              RepoStage stage, StudyApp& app,
                              std::size_t rounds = 10);

/// Median wall-clock nanoseconds for one scenario run (after warm-up).
double measure_approach(Approach approach, std::size_t rounds = 10,
                        std::size_t repetitions = 15);

double measure_repo_staged(MechKind mech, bool optimized_repo, RepoStage stage,
                           std::size_t rounds = 10,
                           std::size_t repetitions = 15);

/// Scenario that deliberately violates constraints; returns the number of
/// violations each approach must detect (used by equivalence tests).
std::size_t run_violation_scenario(Approach approach, StudyApp& app);

}  // namespace dedisys::validation
