// The three interception mechanisms of the Chapter-2 study (Section 2.1.5).
//
// Each mechanism splits its work into the runtime slices of Fig. 2.3:
//   begin()    — R2: interception (capturing the call into the mechanism's
//                invocation representation),
//   dispatch() — R2: forwarding to the intercepted method,
//   extract()  — R3: obtaining the search parameters (class, method, args)
//                for querying the constraint repository.
//
// Cost profiles mirror the Java originals:
//   * AspectStaticMechanism ("AspectJ"): compile-time woven advice —
//     interception is almost free, but the reflective Method object must
//     be looked up via the costly getClass().getMethod() analogue.
//   * AopFrameworkMechanism ("JBossAOP"): the call is reified into a
//     heap-allocated invocation object traversing a virtual interceptor
//     chain; the Method reference is already inside (cheap extraction).
//   * ReflectiveProxyMechanism ("Java proxy"): dispatch itself goes through
//     a string-keyed handler table with fully boxed arguments (expensive
//     interception); extraction is cheap.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "validation/reflection.h"

namespace dedisys::validation {

using BodyFn = void (*)(void*);

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// R2: intercept a call on `target` to `method` with optional numeric
  /// argument (the study methods take zero or one double).
  virtual void begin(ObjectRefl target, const MethodInfo& method,
                     const double* arg) = 0;

  /// R2: forward to the intercepted method body.
  virtual void dispatch(BodyFn body, void* ctx) = 0;

  /// R3: produce the repository search parameters; returns the Method.
  virtual const MethodInfo* extract(std::string& class_name_out,
                                    std::vector<Boxed>& args_out) = 0;
};

// ---------------------------------------------------------------------------
// AspectJ-style static weaving
// ---------------------------------------------------------------------------

class AspectStaticMechanism final : public Mechanism {
 public:
  [[nodiscard]] const char* name() const override { return "AspectJ"; }

  void begin(ObjectRefl target, const MethodInfo& method,
             const double* arg) override {
    // Woven advice: the join-point context is available statically.
    target_ = target;
    method_hint_ = &method;
    arg_ = arg;
  }

  void dispatch(BodyFn body, void* ctx) override { body(ctx); }

  const MethodInfo* extract(std::string& class_name_out,
                            std::vector<Boxed>& args_out) override {
    // AspectJ only knows name + argument values; the reflective Method has
    // to be fetched via Object.getClass().getMethod(...) (Section 2.3.2).
    class_name_out = target_.cls->name;
    std::vector<std::string> param_types;
    if (arg_ != nullptr) param_types.emplace_back("double");
    const MethodInfo* m =
        target_.cls->get_method(method_hint_->name, param_types);
    args_out.clear();
    if (arg_ != nullptr) args_out.emplace_back(*arg_);
    return m;
  }

 private:
  ObjectRefl target_{};
  const MethodInfo* method_hint_ = nullptr;
  const double* arg_ = nullptr;
};

// ---------------------------------------------------------------------------
// JBoss-AOP-style invocation objects
// ---------------------------------------------------------------------------

class AopFrameworkMechanism final : public Mechanism {
 public:
  AopFrameworkMechanism() {
    chain_.push_back(std::make_unique<NoopInterceptor>());
    chain_.push_back(std::make_unique<NoopInterceptor>());
  }

  [[nodiscard]] const char* name() const override { return "JBossAOP"; }

  void begin(ObjectRefl target, const MethodInfo& method,
             const double* arg) override {
    // Reify the call into a fresh invocation object (heap) and traverse
    // the registered interceptor chain.
    auto inv = std::make_unique<AopInvocation>();
    inv->target = target;
    inv->method = &method;
    if (arg != nullptr) inv->args.emplace_back(*arg);
    for (const auto& i : chain_) i->process(*inv);
    invocation_ = std::move(inv);
  }

  void dispatch(BodyFn body, void* ctx) override {
    invocation_->invoke_next(body, ctx);
  }

  const MethodInfo* extract(std::string& class_name_out,
                            std::vector<Boxed>& args_out) override {
    class_name_out = invocation_->target.cls->name;
    args_out = invocation_->args;  // already boxed in the invocation
    return invocation_->method;
  }

 private:
  struct AopInvocation {
    ObjectRefl target{};
    const MethodInfo* method = nullptr;
    std::vector<Boxed> args;

    void invoke_next(BodyFn body, void* ctx) { body(ctx); }
  };

  class InterceptorBase {
   public:
    virtual ~InterceptorBase() = default;
    virtual void process(AopInvocation& inv) = 0;
  };

  class NoopInterceptor final : public InterceptorBase {
   public:
    void process(AopInvocation& inv) override { (void)inv; }
  };

  std::vector<std::unique_ptr<InterceptorBase>> chain_;
  std::unique_ptr<AopInvocation> invocation_;
};

// ---------------------------------------------------------------------------
// java.lang.reflect.Proxy-style reflective dispatch
// ---------------------------------------------------------------------------

class ReflectiveProxyMechanism final : public Mechanism {
 public:
  [[nodiscard]] const char* name() const override { return "Java-Proxy"; }

  void begin(ObjectRefl target, const MethodInfo& method,
             const double* arg) override {
    target_ = target;
    method_ = &method;
    args_.clear();
    if (arg != nullptr) args_.emplace_back(*arg);
    // The proxy resolves the handler reflectively by method key.
    const std::string key = target.cls->name + '.' + method.key;
    auto it = handlers_.find(key);
    if (it == handlers_.end()) {
      it = handlers_
               .emplace(key,
                        std::function<void(BodyFn, void*)>(
                            [](BodyFn body, void* ctx) { body(ctx); }))
               .first;
    }
    handler_ = &it->second;
  }

  void dispatch(BodyFn body, void* ctx) override {
    // Method.invoke(...): indirect reflective call.
    (*handler_)(body, ctx);
  }

  const MethodInfo* extract(std::string& class_name_out,
                            std::vector<Boxed>& args_out) override {
    class_name_out = target_.cls->name;
    args_out = args_;
    return method_;
  }

 private:
  ObjectRefl target_{};
  const MethodInfo* method_ = nullptr;
  std::vector<Boxed> args_;
  const std::function<void(BodyFn, void*)>* handler_ = nullptr;
  std::unordered_map<std::string, std::function<void(BodyFn, void*)>>
      handlers_;
};

}  // namespace dedisys::validation
