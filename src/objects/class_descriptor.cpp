#include "objects/class_descriptor.h"

#include <cctype>

#include "objects/entity.h"
#include "objects/method_context.h"

namespace dedisys {

namespace {
std::string capitalize(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
  return s;
}
}  // namespace

void ClassDescriptor::define_property(const std::string& attr,
                                      Value default_value,
                                      const std::string& value_type) {
  define_attribute(attr, std::move(default_value));
  const std::string cap = capitalize(attr);
  define_method(
      MethodSignature{"get" + cap, {}}, MethodKind::Getter,
      [attr](Entity& self, MethodContext&, const std::vector<Value>&) {
        return self.get(attr);
      });
  define_method(
      MethodSignature{"set" + cap, {value_type}}, MethodKind::Setter,
      [attr](Entity& self, MethodContext&, const std::vector<Value>& args) {
        self.set(attr, args.at(0));
        return Value{};
      });
}

}  // namespace dedisys
