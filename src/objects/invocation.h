// Invocation objects and interceptor chains (command pattern, Fig. 4.5).
//
// Like the JBoss AS, every call on a distributed object is reified into an
// explicit Invocation object that traverses a client-side and a server-side
// interceptor chain before the target method runs.  Middleware services —
// transaction association, constraint consistency management, replication —
// plug in as interceptors; Section 5.3 credits this command pattern as the
// key enabler for middleware integration.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "objects/class_descriptor.h"
#include "objects/value.h"
#include "util/ids.h"

namespace dedisys {

struct Invocation {
  ObjectId target;
  std::string target_class;
  MethodSignature method;
  std::vector<Value> args;
  TxId tx;
  NodeId client_node;
  /// Node the server-side chain runs on (set by routing).
  NodeId server_node;
  /// Arbitrary context payload attached by interceptors (security context,
  /// application id, replication hints) — "any desired additional payload
  /// can be added to such an invocation" (Section 5.3).
  std::map<std::string, std::string> context;
  /// Result of the target method, populated by the terminal dispatcher.
  Value result;
  /// Whether the invocation is nested inside another intercepted call.
  bool nested = false;
  /// Write classification per the EJB naming/kind rules (Section 4.3):
  /// routed to the primary and locked.  Methods without a recognized
  /// naming convention are conservatively writes (Section 5.1).
  bool is_write = false;
  /// True only for state-changing kinds (setter/mutator): triggers CMP
  /// flush and update propagation.  Empty methods are writes that do not
  /// mutate, hence do not propagate (Section 5.1).
  bool mutates = false;
};

class InterceptorChain;

/// A middleware service participating in invocation processing.
class Interceptor {
 public:
  virtual ~Interceptor() = default;

  /// Process `inv`; implementations must call `chain.proceed(inv)` exactly
  /// once to continue (or throw to abort the invocation).
  virtual Value invoke(Invocation& inv, InterceptorChain& chain) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Terminal operation executed after the last interceptor.
using TerminalDispatcher = std::function<Value(Invocation&)>;

/// One traversal of an ordered interceptor list ending in a terminal
/// dispatcher.  A fresh chain object is created per invocation so that
/// nested invocations re-enter from the top (as in JBoss).
class InterceptorChain {
 public:
  InterceptorChain(const std::vector<std::shared_ptr<Interceptor>>& list,
                   const TerminalDispatcher& terminal)
      : list_(list), terminal_(terminal) {}

  Value proceed(Invocation& inv) {
    if (pos_ < list_.size()) {
      Interceptor& next = *list_[pos_++];
      return next.invoke(inv, *this);
    }
    return terminal_(inv);
  }

 private:
  const std::vector<std::shared_ptr<Interceptor>>& list_;
  const TerminalDispatcher& terminal_;
  std::size_t pos_ = 0;
};

/// An ordered, configurable stack of interceptors (client- or server-side).
class InterceptorStack {
 public:
  void add(std::shared_ptr<Interceptor> interceptor) {
    list_.push_back(std::move(interceptor));
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(list_.size());
    for (const auto& i : list_) out.push_back(i->name());
    return out;
  }

  Value execute(Invocation& inv, const TerminalDispatcher& terminal) const {
    InterceptorChain chain(list_, terminal);
    return chain.proceed(inv);
  }

 private:
  std::vector<std::shared_ptr<Interceptor>> list_;
};

}  // namespace dedisys
