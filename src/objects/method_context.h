// Execution context handed to method bodies and constraint validators.
//
// Methods and constraints never touch peer entities directly; they go
// through an ObjectAccessor supplied by the middleware.  That indirection
// is what lets the CCMgr gather the set of objects a validation accessed
// (Fig. 4.4) and lets the replication service flag possibly stale replicas
// or throw ObjectUnreachable for the NCC case.
#pragma once

#include <vector>

#include "objects/class_descriptor.h"
#include "objects/value.h"
#include "obs/trace.h"
#include "util/ids.h"

namespace dedisys {

class Entity;

/// Mediated access to logical objects.  Implementations resolve the id to
/// a local replica (possibly a stale backup) or throw ObjectUnreachable.
class ObjectAccessor {
 public:
  virtual ~ObjectAccessor() = default;

  /// Read access to the local view of a logical object.
  virtual const Entity& read(ObjectId id) = 0;

  /// Nested invocation on another object (runs through the middleware,
  /// so interception/constraint checking applies recursively).
  virtual Value invoke(ObjectId id, const MethodSignature& method,
                       std::vector<Value> args) = 0;
};

struct MethodContext {
  ObjectAccessor& objects;
  TxId tx;
  NodeId node;
  /// Causal identity of the invocation executing the method (all-zero when
  /// tracing is off); nested invocations and validations it triggers become
  /// children of this span.
  obs::TraceContext trace{};
};

}  // namespace dedisys
