// Runtime class metadata (the ObjectClass/ObjectMethod model of Fig. 4.3).
//
// Business classes are described dynamically: attributes with defaults and
// methods with signatures, kinds and registered bodies.  The middleware
// uses this metadata to (a) detect write requests by method kind / naming
// convention, (b) look up affected constraints in the repository, and
// (c) execute invocations against local replicas.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "objects/value.h"
#include "util/errors.h"
#include "util/strings.h"

namespace dedisys {

class Entity;
struct MethodContext;

/// Classification mirroring the EJB conventions of Section 4.3: all
/// methods starting with `set` + upper-case letter count as writes; other
/// unknown methods are conservatively treated as writes ("to be on the
/// safe side", Section 5.1).
enum class MethodKind {
  Getter,   ///< Reads one attribute; executable on any replica.
  Setter,   ///< Writes one attribute; triggers update propagation.
  Query,    ///< Read-only domain logic.
  Mutator,  ///< State-changing domain logic.
  Empty,    ///< No-op used by the evaluation workloads.
};

struct MethodSignature {
  std::string name;
  std::vector<std::string> param_types;

  /// Unique key "name(type,type,...)" used for repository lookups.
  [[nodiscard]] std::string key() const {
    return name + "(" + join(param_types, ",") + ")";
  }

  friend bool operator==(const MethodSignature& a, const MethodSignature& b) {
    return a.name == b.name && a.param_types == b.param_types;
  }
};

/// Body invoked with the target entity, the execution context (nested
/// object access, transaction) and the boxed arguments.
using MethodBody =
    std::function<Value(Entity&, MethodContext&, const std::vector<Value>&)>;

struct MethodDescriptor {
  MethodSignature signature;
  MethodKind kind = MethodKind::Mutator;
  MethodBody body;

  [[nodiscard]] bool is_write() const {
    return kind == MethodKind::Setter || kind == MethodKind::Mutator ||
           kind == MethodKind::Empty;  // Empty treated as write, Section 5.1
  }

  /// True when the method changes entity state (drives CMP persistence and
  /// update propagation).
  [[nodiscard]] bool mutates() const {
    return kind == MethodKind::Setter || kind == MethodKind::Mutator;
  }
};

class ClassDescriptor {
 public:
  explicit ClassDescriptor(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  // -- inheritance (behavioral subtyping, Section 2.3.1) --------------------

  /// Declares the superclass; its constraints also apply to this class
  /// (preconditions OR'd, postconditions/invariants AND'd [DL96]).
  void set_super(const std::string& super) { super_ = super; }
  [[nodiscard]] const std::string& super() const { return super_; }

  void add_interface(const std::string& iface) {
    interfaces_.push_back(iface);
  }
  [[nodiscard]] const std::vector<std::string>& interfaces() const {
    return interfaces_;
  }

  // -- attributes -----------------------------------------------------------

  void define_attribute(const std::string& attr, Value default_value) {
    defaults_[attr] = std::move(default_value);
  }

  [[nodiscard]] const AttributeMap& default_attributes() const {
    return defaults_;
  }

  // -- methods --------------------------------------------------------------

  MethodDescriptor& define_method(MethodSignature sig, MethodKind kind,
                                  MethodBody body) {
    const std::string key = sig.key();
    auto [it, inserted] = methods_.emplace(
        key, MethodDescriptor{std::move(sig), kind, std::move(body)});
    if (!inserted) {
      throw ConfigError("duplicate method " + key + " on class " + name_);
    }
    return it->second;
  }

  /// Declares attribute `attr` together with conventional
  /// `get<Attr>()` / `set<Attr>(value)` accessor methods.
  void define_property(const std::string& attr, Value default_value,
                       const std::string& value_type);

  [[nodiscard]] const MethodDescriptor* find_method(
      const MethodSignature& sig) const {
    auto it = methods_.find(sig.key());
    return it == methods_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const MethodDescriptor& method(
      const MethodSignature& sig) const {
    const MethodDescriptor* m = find_method(sig);
    if (m == nullptr) {
      throw ConfigError("no method " + sig.key() + " on class " + name_);
    }
    return *m;
  }

  [[nodiscard]] const std::map<std::string, MethodDescriptor>& methods()
      const {
    return methods_;
  }

 private:
  std::string name_;
  std::string super_;
  std::vector<std::string> interfaces_;
  AttributeMap defaults_;
  std::map<std::string, MethodDescriptor> methods_;
};

/// Registry of class descriptors deployed on a cluster.
class ClassRegistry {
 public:
  ClassDescriptor& define(const std::string& name) {
    auto [it, inserted] = classes_.emplace(name, ClassDescriptor(name));
    if (!inserted) throw ConfigError("duplicate class " + name);
    return it->second;
  }

  [[nodiscard]] const ClassDescriptor& get(const std::string& name) const {
    auto it = classes_.find(name);
    if (it == classes_.end()) throw ConfigError("unknown class " + name);
    return it->second;
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    return classes_.count(name) != 0;
  }

  /// The class plus all ancestors (superclass chain and interfaces, in
  /// declaration order, deduplicated).  Names of undeclared ancestors are
  /// still returned — interfaces need no descriptor of their own.
  [[nodiscard]] std::vector<std::string> ancestry(
      const std::string& name) const {
    std::vector<std::string> out;
    std::vector<std::string> queue{name};
    while (!queue.empty()) {
      const std::string current = queue.front();
      queue.erase(queue.begin());
      if (std::find(out.begin(), out.end(), current) != out.end()) continue;
      out.push_back(current);
      auto it = classes_.find(current);
      if (it == classes_.end()) continue;
      if (!it->second.super().empty()) queue.push_back(it->second.super());
      for (const std::string& iface : it->second.interfaces()) {
        queue.push_back(iface);
      }
    }
    return out;
  }

 private:
  std::map<std::string, ClassDescriptor> classes_;
};

}  // namespace dedisys
