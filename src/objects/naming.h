// Naming service (JNDI substitute): name -> logical object bindings.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/errors.h"
#include "util/ids.h"

namespace dedisys {

class NamingService {
 public:
  void bind(const std::string& name, ObjectId id) {
    auto [it, inserted] = bindings_.emplace(name, id);
    if (!inserted) throw ConfigError("name already bound: " + name);
    (void)it;
  }

  void rebind(const std::string& name, ObjectId id) { bindings_[name] = id; }

  void unbind(const std::string& name) { bindings_.erase(name); }

  [[nodiscard]] ObjectId lookup(const std::string& name) const {
    auto it = bindings_.find(name);
    if (it == bindings_.end()) throw ConfigError("unbound name: " + name);
    return it->second;
  }

  [[nodiscard]] bool bound(const std::string& name) const {
    return bindings_.count(name) != 0;
  }

  /// All bindings whose name starts with `prefix` (query-style constraint
  /// validation uses this to enumerate context objects).
  [[nodiscard]] std::vector<ObjectId> list(const std::string& prefix) const {
    std::vector<ObjectId> out;
    for (auto it = bindings_.lower_bound(prefix);
         it != bindings_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      out.push_back(it->second);
    }
    return out;
  }

 private:
  std::map<std::string, ObjectId> bindings_;
};

}  // namespace dedisys
