// Boxed value model for dynamic entities.
//
// The paper's entity beans hold attribute values accessed reflectively.
// We mirror that with a variant-based Value: it gives the middleware a
// uniform representation for method arguments, attribute state, update
// propagation payloads and replica snapshots — and it reproduces the boxing
// costs that matter for the Chapter-2 interceptor study.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "util/ids.h"

namespace dedisys {

/// A dynamically-typed attribute/argument value.  ObjectId values are
/// references to other logical objects (relationships).
using Value = std::variant<std::monostate, bool, std::int64_t, double,
                           std::string, ObjectId>;

/// Ordered map for deterministic snapshots and serialization.
using AttributeMap = std::map<std::string, Value>;

/// Human-readable rendering (examples, logging, error messages).
inline std::string to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return std::to_string(d); }
    std::string operator()(const std::string& s) const { return '"' + s + '"'; }
    std::string operator()(ObjectId id) const {
      return "obj#" + to_string_id(id);
    }
    static std::string to_string_id(ObjectId id) {
      return dedisys::to_string(id);
    }
  };
  return std::visit(Visitor{}, v);
}

/// Runtime type name of a boxed value (used for method signature matching).
inline const char* type_name(const Value& v) {
  switch (v.index()) {
    case 0: return "null";
    case 1: return "bool";
    case 2: return "int";
    case 3: return "double";
    case 4: return "string";
    case 5: return "object";
    default: return "?";
  }
}

inline std::int64_t as_int(const Value& v) { return std::get<std::int64_t>(v); }
inline bool as_bool(const Value& v) { return std::get<bool>(v); }
inline double as_double(const Value& v) { return std::get<double>(v); }
inline const std::string& as_string(const Value& v) {
  return std::get<std::string>(v);
}
inline ObjectId as_object(const Value& v) { return std::get<ObjectId>(v); }
inline bool is_null(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

}  // namespace dedisys
