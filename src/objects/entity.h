// Versioned dynamic entity (the paper's entity bean + VersionedEntity).
//
// Every set-attribute bumps the version.  getEstimatedLatestVersion()
// implements the freshness heuristic of Section 4.2.1: when an object is
// known to be updated about every `expected_update_period`, the estimated
// latest version grows with elapsed virtual time even while no updates
// arrive — the gap to the actual version feeds static threat negotiation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "objects/class_descriptor.h"
#include "objects/value.h"
#include "util/errors.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

/// A snapshot of entity state, used for update propagation, replica
/// history and rollback during reconciliation.
struct EntitySnapshot {
  ObjectId id;
  std::string class_name;
  std::uint64_t version = 0;
  AttributeMap attributes;
};

class Entity {
 public:
  Entity(ObjectId id, const ClassDescriptor& cls)
      : id_(id), cls_(&cls), attrs_(cls.default_attributes()) {}

  [[nodiscard]] ObjectId id() const { return id_; }
  [[nodiscard]] const ClassDescriptor& cls() const { return *cls_; }

  // -- attribute access -----------------------------------------------------

  [[nodiscard]] const Value& get(const std::string& attr) const {
    auto it = attrs_.find(attr);
    if (it == attrs_.end()) {
      throw ConfigError("class " + cls_->name() + " has no attribute " + attr);
    }
    return it->second;
  }

  /// Writes an attribute and bumps the entity version.
  void set(const std::string& attr, Value value) {
    auto it = attrs_.find(attr);
    if (it == attrs_.end()) {
      throw ConfigError("class " + cls_->name() + " has no attribute " + attr);
    }
    it->second = std::move(value);
    ++version_;
    stamp_write();
  }

  /// Records the virtual time of the most recent update (stamped by the
  /// middleware after successful writes; feeds version estimation).
  void touch(SimTime now) { last_update_ = now; }

  [[nodiscard]] const AttributeMap& attributes() const { return attrs_; }

  // -- VersionedEntity (Fig. 4.3) -------------------------------------------

  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Expected update cadence; 0 disables estimation.
  void set_expected_update_period(SimDuration period) {
    expected_update_period_ = period;
  }

  /// Version the object would be expected to have at virtual time `now`.
  [[nodiscard]] std::uint64_t estimated_latest_version(SimTime now) const {
    if (expected_update_period_ <= 0 || now <= last_update_) return version_;
    return version_ + static_cast<std::uint64_t>((now - last_update_) /
                                                 expected_update_period_);
  }

  // -- snapshot / restore -----------------------------------------------------

  [[nodiscard]] EntitySnapshot snapshot() const {
    return EntitySnapshot{id_, cls_->name(), version_, attrs_};
  }

  /// Restores state from a snapshot (update propagation, rollback).
  void restore(const EntitySnapshot& snap) {
    attrs_ = snap.attributes;
    version_ = snap.version;
    stamp_write();
  }

  // -- write stamp (validation memoization, docs/validation_memo.md) ----------

  /// Process-unique, monotonically increasing stamp of the last local
  /// write to this replica.  Unlike version_, the stamp is bumped by
  /// restore() too and never rolls back with a snapshot, so two states of
  /// the same logical object can never share an (id, stamp) pair — the
  /// property the validation-result cache keys on.  Stamps carry no
  /// simulated-time meaning and are never serialized.
  [[nodiscard]] std::uint64_t write_stamp() const { return write_stamp_; }

 private:
  void stamp_write() { write_stamp_ = ++global_write_counter(); }

  static std::uint64_t& global_write_counter() {
    static std::uint64_t counter = 0;
    return counter;
  }

  ObjectId id_;
  const ClassDescriptor* cls_;
  AttributeMap attrs_;
  std::uint64_t version_ = 0;
  std::uint64_t write_stamp_ = 0;
  SimTime last_update_ = 0;
  SimDuration expected_update_period_ = 0;
};

}  // namespace dedisys
