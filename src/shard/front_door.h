// FrontDoor: prioritized admission control and load shedding in front of a
// sharded cluster.
//
// Every shard owns one bounded, priority-ordered request queue.  submit()
// routes a Request to its owning shard (forwarding — one charged hop —
// when the client addressed a node outside that shard's replica group),
// checks the escalated admission fee, and either queues the request or
// sheds it with an explicit reason.  pump() applies one batch per shard
// into the node kernels, best-ranked first, each request in its own
// transaction unless it joined a caller-owned one (cross-shard atomicity
// through the cluster-wide 2PC).
//
// Fee escalation follows rippled's TxQ: flat base fee while the queue is
// below a threshold depth, then the required fee grows quadratically with
// depth, so overload degrades into explicit, observable shedding instead
// of unbounded queueing.  A full queue evicts its cheapest entry when a
// higher-ranked request arrives (the evicted ticket gets a QueueFull
// outcome), otherwise the newcomer is shed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "shard/policy.h"
#include "shard/request.h"
#include "shard/shard_map.h"

namespace dedisys {
class Cluster;
class DedisysNode;
}  // namespace dedisys

namespace dedisys::shard {

class FrontDoor {
 public:
  /// Lifetime per-shard counters (all monotonically increasing except
  /// `depth`); exported through metrics_json() and /metrics.prom.
  struct ShardStats {
    std::size_t submitted = 0;  ///< requests routed to this shard
    std::size_t admitted = 0;   ///< queued (includes later-evicted ones)
    std::size_t applied = 0;    ///< taken off the queue and executed
    std::size_t committed = 0;  ///< applied and committed/accepted
    std::size_t aborted = 0;    ///< applied but rolled back (violation, ...)
    std::size_t forwarded = 0;  ///< arrived via a non-replica node
    std::size_t batches = 0;    ///< pump() rounds that applied work
    std::size_t evicted = 0;    ///< queued entries displaced by higher rank
    std::size_t shed_queue_full = 0;
    std::size_t shed_fee = 0;
    std::size_t shed_unavailable = 0;
    std::size_t shed_bad_request = 0;
    std::size_t depth = 0;      ///< current queue depth
    std::size_t max_depth = 0;  ///< high-water mark

    [[nodiscard]] std::size_t shed_total() const {
      return shed_queue_full + shed_fee + shed_unavailable + shed_bad_request;
    }
    void add(const ShardStats& o);
  };

  FrontDoor(Cluster& cluster, ShardMap& map, ShardPolicy policy);

  /// Admission: route, fee-check, queue or shed.  Never throws for
  /// routine overload — shedding is a return value, not an exception.
  Submission submit(Request request);

  /// Applies up to policy().batch_size queued requests per shard (one
  /// batch-overhead charge per non-empty shard); returns requests applied.
  std::size_t pump();

  /// Pumps until every queue is empty; returns total requests applied.
  std::size_t drain();

  /// Admission fee a new submission to `shard` must offer right now.
  [[nodiscard]] std::uint64_t required_fee(ShardId shard) const {
    return required_fee_at(queues_[shard].size());
  }

  [[nodiscard]] std::size_t queue_depth(ShardId shard) const {
    return queues_[shard].size();
  }

  /// The node a request to `shard` would execute on right now: the first
  /// replica of the group that is up — the shard's acting primary for
  /// observability purposes (its designated home while healthy).
  [[nodiscard]] NodeId current_target(ShardId shard) const;

  [[nodiscard]] const ShardStats& stats(ShardId shard) const {
    return stats_[shard];
  }
  [[nodiscard]] ShardStats totals() const;
  [[nodiscard]] const ShardPolicy& policy() const { return policy_; }
  [[nodiscard]] const ShardMap& map() const { return *map_; }

  /// Observer of every apply/eviction outcome.  Outcomes are not stored
  /// per ticket (a saturation run submits millions); install a sink to
  /// correlate tickets with results.
  void set_outcome_sink(std::function<void(const Outcome&)> sink) {
    sink_ = std::move(sink);
  }

 private:
  struct Entry {
    Request request;
    std::uint64_t ticket = 0;
    std::uint64_t fee = 0;  ///< effective offered fee (0 -> base fee)
    SimTime submitted_at = 0;
  };

  /// True when `a` must apply before `b`: higher priority class first,
  /// then higher fee, then earlier submission (FIFO).
  [[nodiscard]] static bool ranks_before(const Entry& a, const Entry& b);

  [[nodiscard]] std::uint64_t required_fee_at(std::size_t depth) const;
  void shed(ShardId shard, ShedReason reason, const Request& request);
  Outcome apply_one(ShardId shard, Entry entry);
  void deliver(const Outcome& outcome) {
    if (sink_) sink_(outcome);
  }

  Cluster* cluster_;
  ShardMap* map_;
  ShardPolicy policy_;
  std::vector<std::vector<Entry>> queues_;  ///< per shard, best-ranked first
  std::vector<ShardStats> stats_;
  std::uint64_t next_ticket_ = 1;
  std::function<void(const Outcome&)> sink_;
};

}  // namespace dedisys::shard
