// Value-typed front-door API: how client work enters a sharded cluster.
//
// Instead of poking `cluster.node(i)` directly, clients build a `Request`,
// submit it to `Cluster::submit()` and get back a `Submission` — either a
// queue ticket or an explicit shed with a machine-readable reason.  The
// admission queue applies requests in priority/fee order on `pump()`, and
// each applied request produces one `Outcome` (delivered to the optional
// outcome sink; counters are always kept).  A client observes the same
// accept/threat verdict whether its request lands on the owning shard's
// home node or was addressed to any other node and forwarded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "objects/value.h"
#include "shard/shard_map.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys::shard {

enum class RequestOp {
  Create,   ///< create an entity of `class_name` on the target shard
  Invoke,   ///< invoke `method` on the logical object `target`
  Destroy,  ///< destroy the logical object `target`
};

/// Admission classes, most important first.  Within a class the queue
/// orders by offered fee, then submission order (FIFO).
enum class PriorityClass : std::uint8_t {
  High = 0,
  Normal = 1,
  Low = 2,
};

[[nodiscard]] inline const char* to_string(PriorityClass p) {
  switch (p) {
    case PriorityClass::High: return "high";
    case PriorityClass::Normal: return "normal";
    case PriorityClass::Low: return "low";
  }
  return "?";
}

/// Why a request was load-shed instead of queued/applied.
enum class ShedReason : std::uint8_t {
  None = 0,
  QueueFull,          ///< shard queue at capacity and the request did not
                      ///< outrank the cheapest queued entry
  FeeBelowRequired,   ///< offered fee below the escalated admission fee
  ShardUnavailable,   ///< no reachable replica of the owning shard
  BadRequest,         ///< unknown class / unknown target object
};

[[nodiscard]] inline const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::None: return "none";
    case ShedReason::QueueFull: return "queue_full";
    case ShedReason::FeeBelowRequired: return "fee_below_required";
    case ShedReason::ShardUnavailable: return "shard_unavailable";
    case ShedReason::BadRequest: return "bad_request";
  }
  return "?";
}

/// One unit of client work.  `client` is the shard-routing key for creates
/// (object placement follows the submitting client); invokes and destroys
/// route by the target object's recorded shard.
struct Request {
  RequestOp op = RequestOp::Invoke;
  std::string class_name;           ///< Create: entity class
  std::string application;          ///< Create: constraint-repository scope
  ObjectId target;                  ///< Invoke/Destroy: logical object
  std::string method;               ///< Invoke: method name
  std::vector<Value> args;          ///< Invoke: arguments
  PriorityClass priority = PriorityClass::Normal;
  std::uint64_t fee = 0;            ///< offered admission fee (0 = base)
  std::uint64_t client = 0;         ///< client identity / routing key
  /// Node the client addressed (where the request physically arrived).
  /// When it is not a replica of the owning shard the front door forwards
  /// — one charged hop — instead of rejecting (forward-or-redirect).
  std::optional<NodeId> via;
  /// Join an already-open transaction instead of running in an implicit
  /// per-request one: requests of several shards sharing a tx commit or
  /// abort atomically through the cluster-wide 2PC (the caller commits).
  std::optional<TxId> tx;
};

enum class SubmissionStatus : std::uint8_t {
  Queued,  ///< admitted; an Outcome follows once a pump() applies it
  Shed,    ///< rejected at the door; `reason` says why
};

/// Immediate answer of submit(): admission verdict plus enough context for
/// the client to react (escalated fee to retry with, observed queue depth).
struct Submission {
  std::uint64_t ticket = 0;  ///< identity linking to the eventual Outcome
  SubmissionStatus status = SubmissionStatus::Shed;
  ShedReason reason = ShedReason::None;
  ShardId shard = 0;             ///< owning shard the request routed to
  bool forwarded = false;        ///< arrived via a non-replica node
  std::uint64_t required_fee = 0;  ///< admission fee at submission time
  std::size_t queue_depth = 0;     ///< shard queue depth after admission

  [[nodiscard]] bool admitted() const {
    return status == SubmissionStatus::Queued;
  }
};

/// Result of applying one admitted request.
struct Outcome {
  std::uint64_t ticket = 0;
  ShardId shard = 0;
  bool committed = false;
  ShedReason shed = ShedReason::None;  ///< ShardUnavailable when the shard
                                       ///< had no reachable replica at apply
  std::string error;                   ///< abort/violation detail
  ObjectId created;                    ///< Create: the new object
  Value result;                        ///< Invoke: return value
  SimTime submitted_at = 0;            ///< arrival (queueing-delay anchor)
  SimTime completed_at = 0;            ///< apply finished
};

}  // namespace dedisys::shard
