// Shard map: partitions the entity space across replica groups.
//
// Each shard is a contiguous slice of the cluster's nodes that runs the
// full GMS/replication/P4/CCMgr stack independently: objects created
// through the front door are replicated only on their shard's nodes, so a
// write multicast touches one replica group instead of the whole cluster.
// Routing is two-level: client keys map to shards through a fixed avalanche
// hash (stable across runs and releases — the pins in tests/test_shard.cpp
// guard it), and every created object records an explicit assignment so
// lookups never depend on how an object id happens to hash.  Cross-shard
// transactions need no extra machinery: the transaction manager is
// cluster-wide, so one tx spanning two shards rides the existing 2PC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/errors.h"
#include "util/ids.h"

namespace dedisys::shard {

using ShardId = std::size_t;

class ShardMap {
 public:
  /// Partitions `nodes` into `shards` contiguous replica groups.  Requires
  /// 1 <= shards <= nodes.size(); group sizes differ by at most one.
  ShardMap(std::vector<NodeId> nodes, std::size_t shards) {
    if (shards == 0) shards = 1;
    if (shards > nodes.size()) {
      throw ConfigError("shards (" + std::to_string(shards) +
                        ") exceeds cluster size (" +
                        std::to_string(nodes.size()) + ")");
    }
    groups_.resize(shards);
    const std::size_t n = nodes.size();
    for (std::size_t i = 0; i < n; ++i) {
      // Contiguous slices: shard s owns nodes [s*n/S, (s+1)*n/S).
      groups_[i * shards / n].push_back(nodes[i]);
    }
    for (std::size_t s = 0; s < shards; ++s) {
      for (NodeId node : groups_[s]) shard_of_node_[node] = s;
    }
  }

  /// Fixed 64-bit avalanche mix (splitmix64 finalizer).  Deliberately not
  /// std::hash: the mapping from client key to shard must be identical on
  /// every platform and stay stable forever (persisted assignments and the
  /// committed bench baselines depend on it).
  [[nodiscard]] static std::uint64_t mix(std::uint64_t key) {
    key += 0x9e3779b97f4a7c15ULL;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
  }

  /// Shard a client key (account id, session id, ...) routes to.
  [[nodiscard]] ShardId shard_of_key(std::uint64_t key) const {
    return static_cast<ShardId>(mix(key) % groups_.size());
  }

  /// Records where an object was placed at creation time.
  void assign(ObjectId id, ShardId shard) {
    assigned_[id] = bounds_checked(shard);
  }

  /// Drops the assignment of a destroyed object (its id may be reused by a
  /// later create that lands on a different shard).
  void forget(ObjectId id) { assigned_.erase(id); }

  /// Shard owning `id`: the explicit creation-time assignment when one was
  /// recorded, else the hash of the raw id (objects that predate sharding
  /// or were created outside the front door).
  [[nodiscard]] ShardId shard_of(ObjectId id) const {
    const auto it = assigned_.find(id);
    if (it != assigned_.end()) return it->second;
    return shard_of_key(id.value());
  }

  /// Replica group of one shard (the nodes its objects live on).
  [[nodiscard]] const std::vector<NodeId>& nodes_of(ShardId shard) const {
    return groups_[bounds_checked(shard)];
  }

  /// Designated home of a shard: the first node of its group (creations
  /// enter here, making it the designated primary of new objects).
  [[nodiscard]] NodeId home_of(ShardId shard) const {
    return groups_[bounds_checked(shard)].front();
  }

  /// Whether `node` belongs to `shard`'s replica group.
  [[nodiscard]] bool owns(ShardId shard, NodeId node) const {
    const auto it = shard_of_node_.find(node);
    return it != shard_of_node_.end() && it->second == bounds_checked(shard);
  }

  /// Shard whose replica group contains `node`; throws for unknown nodes.
  [[nodiscard]] ShardId shard_of_node(NodeId node) const {
    const auto it = shard_of_node_.find(node);
    if (it == shard_of_node_.end()) {
      throw ConfigError("node " + to_string(node) + " is in no shard");
    }
    return it->second;
  }

  [[nodiscard]] std::size_t shard_count() const { return groups_.size(); }
  [[nodiscard]] std::size_t assigned_count() const { return assigned_.size(); }

 private:
  [[nodiscard]] ShardId bounds_checked(ShardId shard) const {
    if (shard >= groups_.size()) {
      throw ConfigError("shard " + std::to_string(shard) + " out of range");
    }
    return shard;
  }

  std::vector<std::vector<NodeId>> groups_;
  std::unordered_map<NodeId, ShardId> shard_of_node_;
  std::unordered_map<ObjectId, ShardId> assigned_;
};

}  // namespace dedisys::shard
