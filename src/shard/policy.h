// Shard/admission policy knobs carried by ClusterConfig.
//
// Kept in its own header so ClusterConfig can embed the policy without
// pulling the whole front-door implementation into every middleware
// include.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dedisys::shard {

/// Tuning of the sharded front door.  The fee-escalation model follows
/// rippled's TxQ: below `escalation_threshold` of capacity the admission
/// fee is flat (`base_fee`); above it the required fee grows with the
/// square of the queue depth, so under overload only clients willing to
/// outbid the backlog are admitted and everyone else is shed with an
/// explicit reason instead of silently queueing forever.
struct ShardPolicy {
  /// Bounded per-shard queue capacity.  A full queue evicts its cheapest
  /// entry when a higher-ranked request arrives, else sheds the newcomer.
  std::size_t queue_capacity = 256;
  /// Requests applied per shard per pump() round (NetworkOPs-style
  /// batching: one batch overhead amortized over the whole batch).
  std::size_t batch_size = 16;
  /// Flat admission fee while the queue is below the escalation threshold.
  std::uint64_t base_fee = 10;
  /// Fraction of capacity where fee escalation starts (TxQ's "expected
  /// ledger size" analogue).
  double escalation_threshold = 0.5;
  /// Simulated cost charged once per applied batch (scheduling overhead);
  /// per-request costs come from the middleware invocation path itself.
  std::int64_t batch_overhead_us = 5;
  /// Run each request without an explicit Request::tx in its own
  /// transaction (commit semantics, threat negotiation, 2PC).  Off =
  /// apply non-transactionally — cheaper, used by saturation benches.
  bool transactional = true;
};

}  // namespace dedisys::shard
