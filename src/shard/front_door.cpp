#include "shard/front_door.h"

#include <algorithm>
#include <utility>

#include "middleware/cluster.h"
#include "middleware/node.h"
#include "tx/tx_manager.h"
#include "util/errors.h"

namespace dedisys::shard {

void FrontDoor::ShardStats::add(const ShardStats& o) {
  submitted += o.submitted;
  admitted += o.admitted;
  applied += o.applied;
  committed += o.committed;
  aborted += o.aborted;
  forwarded += o.forwarded;
  batches += o.batches;
  evicted += o.evicted;
  shed_queue_full += o.shed_queue_full;
  shed_fee += o.shed_fee;
  shed_unavailable += o.shed_unavailable;
  shed_bad_request += o.shed_bad_request;
  depth += o.depth;
  max_depth = std::max(max_depth, o.max_depth);
}

FrontDoor::FrontDoor(Cluster& cluster, ShardMap& map, ShardPolicy policy)
    : cluster_(&cluster),
      map_(&map),
      policy_(policy),
      queues_(map.shard_count()),
      stats_(map.shard_count()) {
  if (policy_.queue_capacity == 0) policy_.queue_capacity = 1;
  if (policy_.batch_size == 0) policy_.batch_size = 1;
  if (policy_.base_fee == 0) policy_.base_fee = 1;
}

bool FrontDoor::ranks_before(const Entry& a, const Entry& b) {
  if (a.request.priority != b.request.priority) {
    return a.request.priority < b.request.priority;  // High=0 ranks first
  }
  if (a.fee != b.fee) return a.fee > b.fee;
  return a.ticket < b.ticket;
}

std::uint64_t FrontDoor::required_fee_at(std::size_t depth) const {
  // TxQ-style escalation: flat below the threshold depth, then the
  // required fee grows with the square of the (1-based) depth relative
  // to the threshold — outbidding a deep backlog gets expensive fast.
  const auto threshold = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(policy_.queue_capacity) *
             policy_.escalation_threshold));
  if (depth < threshold) return policy_.base_fee;
  const std::uint64_t d = depth + 1;
  return policy_.base_fee * d * d /
         static_cast<std::uint64_t>(threshold * threshold);
}

NodeId FrontDoor::current_target(ShardId shard) const {
  const std::vector<NodeId>& group = map_->nodes_of(shard);
  Runtime& rt = cluster_->runtime();
  for (NodeId n : group) {
    // A crashed node has an empty membership set; a partitioned-but-alive
    // one at least contains itself.
    if (!rt.membership_set(n).empty()) return n;
  }
  return group.front();
}

void FrontDoor::shed(ShardId shard, ShedReason reason,
                     const Request& request) {
  ShardStats& s = stats_[shard];
  switch (reason) {
    case ShedReason::QueueFull: ++s.shed_queue_full; break;
    case ShedReason::FeeBelowRequired: ++s.shed_fee; break;
    case ShedReason::ShardUnavailable: ++s.shed_unavailable; break;
    case ShedReason::BadRequest: ++s.shed_bad_request; break;
    case ShedReason::None: break;
  }
  obs::Observability& obs = cluster_->obs();
  if (obs.enabled()) {
    obs.event(cluster_->runtime().now(), obs::TraceEventKind::AdmissionShed,
              request.via.value_or(map_->home_of(shard)), request.target, {},
              "admission",
              std::string("shard=") + std::to_string(shard) +
                  " reason=" + to_string(reason) +
                  " priority=" + to_string(request.priority));
  }
}

Submission FrontDoor::submit(Request request) {
  Submission out;

  // -- routing ----------------------------------------------------------
  switch (request.op) {
    case RequestOp::Create:
      if (!cluster_->classes().contains(request.class_name)) {
        out.shard = map_->shard_of_key(request.client);
        shed(out.shard, ShedReason::BadRequest, request);
        ++stats_[out.shard].submitted;
        out.reason = ShedReason::BadRequest;
        return out;
      }
      out.shard = map_->shard_of_key(request.client);
      break;
    case RequestOp::Invoke:
    case RequestOp::Destroy:
      if (!cluster_->directory()->contains(request.target)) {
        out.shard = map_->shard_of_key(request.client);
        shed(out.shard, ShedReason::BadRequest, request);
        ++stats_[out.shard].submitted;
        out.reason = ShedReason::BadRequest;
        return out;
      }
      out.shard = map_->shard_of(request.target);
      break;
  }
  ShardStats& stats = stats_[out.shard];
  ++stats.submitted;

  // -- forward-or-redirect ----------------------------------------------
  // A request addressed to a node outside the owning shard's replica
  // group is forwarded to the shard home: one charged point-to-point hop,
  // same verdict as a directly-routed request.
  if (request.via && !map_->owns(out.shard, *request.via)) {
    out.forwarded = true;
    ++stats.forwarded;
    cluster_->runtime().charge_rpc(*request.via, map_->home_of(out.shard));
    obs::Observability& obs = cluster_->obs();
    if (obs.enabled()) {
      obs.event(cluster_->runtime().now(),
                obs::TraceEventKind::AdmissionForward, *request.via,
                request.target, {}, "admission",
                "shard=" + std::to_string(out.shard) + " home=" +
                    to_string(map_->home_of(out.shard)));
    }
  }

  // -- fee escalation ----------------------------------------------------
  std::vector<Entry>& queue = queues_[out.shard];
  out.required_fee = required_fee_at(queue.size());
  const std::uint64_t offered =
      request.fee == 0 ? policy_.base_fee : request.fee;
  if (offered < out.required_fee) {
    shed(out.shard, ShedReason::FeeBelowRequired, request);
    out.reason = ShedReason::FeeBelowRequired;
    out.queue_depth = queue.size();
    return out;
  }

  Entry entry;
  entry.fee = offered;
  entry.ticket = next_ticket_++;
  entry.submitted_at = cluster_->runtime().now();
  entry.request = std::move(request);

  // -- bounded queue: evict or shed --------------------------------------
  if (queue.size() >= policy_.queue_capacity) {
    Entry& worst = queue.back();
    if (!ranks_before(entry, worst)) {
      shed(out.shard, ShedReason::QueueFull, entry.request);
      out.reason = ShedReason::QueueFull;
      out.queue_depth = queue.size();
      return out;
    }
    // The displaced ticket was admitted earlier; its client learns of the
    // eviction through a QueueFull outcome.
    Outcome evicted;
    evicted.ticket = worst.ticket;
    evicted.shard = out.shard;
    evicted.shed = ShedReason::QueueFull;
    evicted.submitted_at = worst.submitted_at;
    evicted.completed_at = cluster_->runtime().now();
    ++stats.evicted;
    shed(out.shard, ShedReason::QueueFull, worst.request);
    queue.pop_back();
    deliver(evicted);
  }

  const auto at = std::upper_bound(
      queue.begin(), queue.end(), entry,
      [](const Entry& a, const Entry& b) { return ranks_before(a, b); });
  queue.insert(at, std::move(entry));
  ++stats.admitted;
  stats.depth = queue.size();
  stats.max_depth = std::max(stats.max_depth, queue.size());

  out.status = SubmissionStatus::Queued;
  out.ticket = next_ticket_ - 1;
  out.queue_depth = queue.size();
  return out;
}

Outcome FrontDoor::apply_one(ShardId shard, Entry entry) {
  ShardStats& stats = stats_[shard];
  Outcome out;
  out.ticket = entry.ticket;
  out.shard = shard;
  out.submitted_at = entry.submitted_at;
  ++stats.applied;

  Runtime& rt = cluster_->runtime();
  const Request& req = entry.request;

  // Candidate kernels: the shard's replica group, home first, skipping
  // nodes that are down.  An ObjectUnreachable from one candidate (e.g. a
  // minority-side node refusing the write) falls through to the next.
  std::vector<NodeId> candidates;
  for (NodeId n : map_->nodes_of(shard)) {
    if (!rt.membership_set(n).empty()) candidates.push_back(n);
  }
  if (candidates.empty()) {
    out.shed = ShedReason::ShardUnavailable;
    ++stats.shed_unavailable;
    ++stats.aborted;
    out.completed_at = rt.now();
    deliver(out);
    return out;
  }

  auto run = [&](DedisysNode& kernel, TxId tx) {
    switch (req.op) {
      case RequestOp::Create:
        out.created = kernel.create(tx, req.class_name, req.application,
                                    map_->nodes_of(shard));
        map_->assign(out.created, shard);
        break;
      case RequestOp::Invoke:
        out.result = kernel.invoke(tx, req.target, req.method, req.args);
        break;
      case RequestOp::Destroy:
        kernel.destroy(tx, req.target);
        map_->forget(req.target);
        break;
    }
  };

  bool unreachable_everywhere = true;
  for (NodeId n : candidates) {
    DedisysNode* kernel = cluster_->node_by_id(n);
    if (kernel == nullptr) continue;
    try {
      if (req.tx) {
        // Caller-owned transaction: apply only — commit/abort is the
        // caller's 2PC decision, possibly spanning several shards.
        run(*kernel, *req.tx);
      } else if (policy_.transactional) {
        TxScope tx(cluster_->tx());
        run(*kernel, tx.id());
        tx.commit();
      } else {
        run(*kernel, TxId{});
      }
      out.committed = true;
      unreachable_everywhere = false;
      break;
    } catch (const ObjectUnreachable& e) {
      out.error = e.what();  // try the next replica of the group
    } catch (const DedisysError& e) {
      out.error = e.what();  // aborted/violated: definitive, do not retry
      unreachable_everywhere = false;
      break;
    }
  }
  if (out.committed) {
    ++stats.committed;
  } else {
    ++stats.aborted;
    if (unreachable_everywhere) {
      out.shed = ShedReason::ShardUnavailable;
      ++stats.shed_unavailable;
    }
  }
  out.completed_at = rt.now();
  obs::Observability& obs = cluster_->obs();
  if (obs.enabled()) {
    obs.latency("frontdoor.queue", out.completed_at - out.submitted_at);
  }
  deliver(out);
  return out;
}

std::size_t FrontDoor::pump() {
  std::size_t applied = 0;
  for (ShardId shard = 0; shard < queues_.size(); ++shard) {
    std::vector<Entry>& queue = queues_[shard];
    if (queue.empty()) continue;
    ShardStats& stats = stats_[shard];
    ++stats.batches;
    // One scheduling overhead per batch, amortized over its requests
    // (NetworkOPs-style batching).
    cluster_->runtime().charge(policy_.batch_overhead_us);
    const std::size_t count = std::min(policy_.batch_size, queue.size());
    // Take the whole batch up front: applying a request can recursively
    // observe the queue (outcome sinks submitting follow-ups).
    std::vector<Entry> batch(std::make_move_iterator(queue.begin()),
                             std::make_move_iterator(queue.begin() + count));
    queue.erase(queue.begin(), queue.begin() + count);
    stats.depth = queue.size();
    for (Entry& entry : batch) {
      apply_one(shard, std::move(entry));
      ++applied;
    }
  }
  return applied;
}

std::size_t FrontDoor::drain() {
  std::size_t total = 0;
  for (std::size_t n = pump(); n > 0; n = pump()) total += n;
  return total;
}

FrontDoor::ShardStats FrontDoor::totals() const {
  ShardStats out;
  for (const ShardStats& s : stats_) out.add(s);
  return out;
}

}  // namespace dedisys::shard
