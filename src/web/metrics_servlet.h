// Observability endpoint for the web tier (Section 4.5 infrastructure).
//
// Exposes the cluster's observability hub over the same strict
// request/response HTTP model the negotiation bridge uses:
//   /metrics   — the full JSON observability document (counters snapshot,
//                latency percentiles, retained trace); param "pretty" =
//                "true" switches to indented output
//   /timeline  — the human-readable event timeline, one event per line
//   /metrics.prom — Prometheus text exposition (counters, latency
//                quantiles, trace ring accounting, per-phase attribution)
// Unknown paths yield a 404 error response.
#pragma once

#include <string>

#include "middleware/cluster.h"
#include "middleware/obs_export.h"
#include "web/http.h"

namespace dedisys::web {

class MetricsServlet {
 public:
  explicit MetricsServlet(Cluster& cluster) : cluster_(&cluster) {}

  [[nodiscard]] bool handles(const std::string& path) const {
    return path == "/metrics" || path == "/metrics.prom" ||
           path == "/timeline";
  }

  HttpResponse handle(const HttpRequest& request) {
    HttpResponse response;
    if (request.path == "/metrics") {
      const auto pretty = request.params.find("pretty");
      const int indent =
          pretty != request.params.end() && pretty->second == "true" ? 2 : -1;
      response.kind = "metrics";
      response.fields["content-type"] = "application/json";
      response.fields["body"] =
          obs::export_cluster_json(*cluster_).dump(indent);
    } else if (request.path == "/metrics.prom") {
      response.kind = "metrics";
      response.fields["content-type"] = "text/plain; version=0.0.4";
      response.fields["body"] = obs::render_prometheus(*cluster_);
    } else if (request.path == "/timeline") {
      response.kind = "timeline";
      response.fields["content-type"] = "text/plain";
      response.fields["body"] = obs::render_timeline(cluster_->obs().trace());
    } else {
      response.status = 404;
      response.kind = "error";
      response.fields["message"] = "unknown path: " + request.path;
    }
    return response;
  }

 private:
  Cluster* cluster_;
};

}  // namespace dedisys::web
