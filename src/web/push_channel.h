// Persistent-connection push callbacks (Section 6.4).
//
// The request/response bridge of Section 4.5 piggybacks negotiation onto
// HTTP responses.  The alternative discussed in the related work is an
// XMLBlaster-style persistent connection (Connection: keep-alive): the
// browser keeps one long-lived channel open and the server pushes messages
// — which may actually be callbacks — as data chunks.
//
// This module implements that alternative:
//   * PushChannel — the held-open connection; the server pushes chunks,
//     the browser (test/client code) polls with a timeout.
//   * PushBusinessServlet — business requests return immediately with 202
//     Accepted; negotiation requests arrive as pushed chunks; decisions
//     and result polling are ordinary requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "constraints/negotiation.h"
#include "web/http.h"

namespace dedisys::web {

/// One message pushed over the persistent connection.
struct PushChunk {
  std::string kind;  ///< "negotiation-request" | ...
  std::map<std::string, std::string> fields;
};

/// The held-open server->browser connection.
class PushChannel {
 public:
  /// Server side: push one chunk to the browser.
  void push(PushChunk chunk) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      chunks_.push_back(std::move(chunk));
    }
    cv_.notify_all();
  }

  /// Browser side: blocking poll; nullopt on timeout.
  std::optional<PushChunk> poll(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(2000)) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [this] { return !chunks_.empty(); })) {
      return std::nullopt;
    }
    PushChunk chunk = std::move(chunks_.front());
    chunks_.pop_front();
    return chunk;
  }

  [[nodiscard]] std::size_t pending() {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_.size();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PushChunk> chunks_;
};

class PushBusinessServlet;

/// Negotiation handler publishing threats over the push channel and
/// parking the business thread until the browser's decision arrives.
class PushNegotiationBridge final : public NegotiationHandler {
 public:
  NegotiationOutcome negotiate(const ConsistencyThreat& threat,
                               ConstraintValidationContext& ctx) override;

 private:
  friend class PushBusinessServlet;
  PushBusinessServlet* servlet_ = nullptr;
};

/// Paths:
///   /business  — starts the operation, responds 202 immediately
///   /decision  — param "accept"="true|false", resumes the parked worker
///   /result    — 200 + result when done, 202 while pending, 500 on error
class PushBusinessServlet {
 public:
  using BusinessOp = std::function<std::string()>;

  explicit PushBusinessServlet(BusinessOp op);
  ~PushBusinessServlet();

  PushBusinessServlet(const PushBusinessServlet&) = delete;
  PushBusinessServlet& operator=(const PushBusinessServlet&) = delete;

  [[nodiscard]] std::shared_ptr<PushNegotiationBridge> bridge() {
    return bridge_;
  }
  [[nodiscard]] PushChannel& channel() { return channel_; }

  HttpResponse handle(const HttpRequest& request);

  void set_negotiation_timeout(std::chrono::milliseconds t) { timeout_ = t; }

 private:
  friend class PushNegotiationBridge;

  /// Worker-side: publish the threat chunk and park until the decision.
  bool park_for_decision(const ConsistencyThreat& threat);
  void join_worker();

  BusinessOp op_;
  std::shared_ptr<PushNegotiationBridge> bridge_;
  PushChannel channel_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
  bool running_ = false;
  bool done_ = false;
  std::optional<std::string> result_;
  std::optional<std::string> error_;

  bool decision_pending_ = false;
  bool decision_accept_ = false;
  std::chrono::milliseconds timeout_{2000};
};

}  // namespace dedisys::web
