// Web negotiation bridge (Section 4.5, Fig. 4.8).
//
// Problem: consistency-threat negotiation is a synchronous middleware →
// application callback, but a callback to a Web browser is impossible.
// Solution (as in the paper):
//   1. The business request starts the operation on a worker thread.
//   2. When a threat arises, the negotiation handler parks the worker and
//      the pending negotiation is transferred to the browser as the HTTP
//      *response* of the business request.
//   3. The browser's decision arrives as a *new* HTTP request, is matched
//      to the parked worker, and resumes it.
//   4. The business result travels back in the response to the request
//      that carried the negotiation decision.
// A configurable timeout rejects the threat when the user never answers,
// so the worker is never parked indefinitely.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "constraints/negotiation.h"
#include "web/http.h"

namespace dedisys::web {

class WebBusinessServlet;

/// Negotiation handler handed to the middleware: publishes the threat to
/// the servlet and blocks the business (worker) thread until the browser's
/// decision arrives or the timeout fires.
class WebNegotiationBridge final : public NegotiationHandler {
 public:
  NegotiationOutcome negotiate(const ConsistencyThreat& threat,
                               ConstraintValidationContext& ctx) override;

 private:
  friend class WebBusinessServlet;
  WebBusinessServlet* servlet_ = nullptr;
};

/// Server-side logic matching the HTTP request/response discrepancy.
///
/// Paths:
///   /business            — starts the business operation
///   /negotiation-result  — carries the user's accept/reject decision
///                          (param "accept" = "true"/"false")
class WebBusinessServlet {
 public:
  /// The business operation; returns the payload for the final response.
  /// Runs on a worker thread; may trigger negotiation via the bridge.
  using BusinessOp = std::function<std::string()>;

  explicit WebBusinessServlet(BusinessOp op);
  ~WebBusinessServlet();

  WebBusinessServlet(const WebBusinessServlet&) = delete;
  WebBusinessServlet& operator=(const WebBusinessServlet&) = delete;

  /// The negotiation handler to register with the CCMgr for business
  /// transactions served by this servlet.
  [[nodiscard]] std::shared_ptr<WebNegotiationBridge> bridge() {
    return bridge_;
  }

  /// Strict request/response entry point.
  HttpResponse handle(const HttpRequest& request);

  /// How long a parked negotiation waits for the browser before the
  /// threat is auto-rejected (the paper's anti-starvation timeout).
  void set_negotiation_timeout(std::chrono::milliseconds t) { timeout_ = t; }

  /// Whether a business operation is currently executing (or parked).
  [[nodiscard]] bool business_in_progress() {
    std::lock_guard<std::mutex> lock(mu_);
    return business_running_;
  }

 private:
  friend class WebNegotiationBridge;

  enum class NegotiationState {
    Idle,
    Pending,   ///< worker parked, browser must decide
    Decided,   ///< browser decided, worker may resume
  };

  HttpResponse start_business();
  HttpResponse deliver_decision(const HttpRequest& request);
  /// Waits until the worker either finishes or parks on a negotiation and
  /// renders the corresponding response.
  HttpResponse await_worker_progress();
  void join_worker();

  /// Worker-side: park until the decision or timeout; returns acceptance.
  bool park_for_decision(const ConsistencyThreat& threat);

  BusinessOp op_;
  std::shared_ptr<WebNegotiationBridge> bridge_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
  bool business_running_ = false;
  bool business_done_ = false;
  std::optional<std::string> business_result_;
  std::optional<std::string> business_error_;

  NegotiationState neg_state_ = NegotiationState::Idle;
  ConsistencyThreat pending_threat_;
  bool decision_accept_ = false;
  std::chrono::milliseconds timeout_{2000};
};

}  // namespace dedisys::web
