// Minimal strict request/response HTTP model (Section 4.5).
//
// Web browsers cannot receive callbacks: every interaction is a request
// the browser initiates plus exactly one response.  These types model that
// discipline; the negotiation bridge maps middleware callbacks onto it.
#pragma once

#include <map>
#include <string>

namespace dedisys::web {

struct HttpRequest {
  std::string path;
  std::map<std::string, std::string> params;
};

struct HttpResponse {
  int status = 200;
  /// "business-result" | "negotiation-request" | "error"
  std::string kind;
  std::map<std::string, std::string> fields;
};

}  // namespace dedisys::web
