#include "web/bridge.h"

#include "constraints/satisfaction.h"
#include "util/errors.h"

namespace dedisys::web {

NegotiationOutcome WebNegotiationBridge::negotiate(
    const ConsistencyThreat& threat, ConstraintValidationContext&) {
  NegotiationOutcome out;
  if (servlet_ == nullptr) {
    out.accepted = false;  // no browser attached: reject conservatively
    return out;
  }
  out.accepted = servlet_->park_for_decision(threat);
  return out;
}

WebBusinessServlet::WebBusinessServlet(BusinessOp op)
    : op_(std::move(op)), bridge_(std::make_shared<WebNegotiationBridge>()) {
  bridge_->servlet_ = this;
}

WebBusinessServlet::~WebBusinessServlet() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (neg_state_ == NegotiationState::Pending) {
      decision_accept_ = false;  // shutting down: reject pending threat
      neg_state_ = NegotiationState::Decided;
      cv_.notify_all();
    }
  }
  join_worker();
}

HttpResponse WebBusinessServlet::handle(const HttpRequest& request) {
  if (request.path == "/business") return start_business();
  if (request.path == "/negotiation-result") return deliver_decision(request);
  return HttpResponse{404, "error", {{"message", "no such path"}}};
}

HttpResponse WebBusinessServlet::start_business() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (business_running_) {
      return HttpResponse{409, "error",
                          {{"message", "business operation in progress"}}};
    }
    business_running_ = true;
    business_done_ = false;
    business_result_.reset();
    business_error_.reset();
  }
  join_worker();  // reap a previously finished worker

  worker_ = std::thread([this] {
    std::optional<std::string> result;
    std::optional<std::string> error;
    try {
      result = op_();
    } catch (const std::exception& e) {
      error = e.what();
    }
    std::lock_guard<std::mutex> lock(mu_);
    business_result_ = std::move(result);
    business_error_ = std::move(error);
    business_done_ = true;
    business_running_ = false;
    cv_.notify_all();
  });

  return await_worker_progress();
}

HttpResponse WebBusinessServlet::deliver_decision(const HttpRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (neg_state_ != NegotiationState::Pending) {
      return HttpResponse{409, "error",
                          {{"message", "no negotiation pending"}}};
    }
    auto it = request.params.find("accept");
    decision_accept_ = it != request.params.end() && it->second == "true";
    neg_state_ = NegotiationState::Decided;
    cv_.notify_all();
  }
  // The business response (or the next negotiation request) travels back
  // via the response to THIS request (Fig. 4.8).
  return await_worker_progress();
}

HttpResponse WebBusinessServlet::await_worker_progress() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return business_done_ || neg_state_ == NegotiationState::Pending;
  });

  if (neg_state_ == NegotiationState::Pending) {
    HttpResponse r;
    r.kind = "negotiation-request";
    r.fields["constraint"] = pending_threat_.constraint_name;
    r.fields["degree"] = to_string(pending_threat_.degree);
    r.fields["context"] = pending_threat_.context_object.valid()
                              ? to_string(pending_threat_.context_object)
                              : "-";
    return r;
  }

  lock.unlock();
  join_worker();
  HttpResponse r;
  if (business_error_) {
    r.status = 500;
    r.kind = "error";
    r.fields["message"] = *business_error_;
  } else {
    r.kind = "business-result";
    r.fields["result"] = business_result_.value_or("");
  }
  return r;
}

bool WebBusinessServlet::park_for_decision(const ConsistencyThreat& threat) {
  std::unique_lock<std::mutex> lock(mu_);
  pending_threat_ = threat;
  neg_state_ = NegotiationState::Pending;
  cv_.notify_all();  // wake the servlet thread to emit the response

  const bool decided = cv_.wait_for(lock, timeout_, [this] {
    return neg_state_ == NegotiationState::Decided;
  });
  const bool accepted = decided && decision_accept_;
  neg_state_ = NegotiationState::Idle;
  return accepted;  // timeout: "not accepting the consistency threat"
}

void WebBusinessServlet::join_worker() {
  if (worker_.joinable()) worker_.join();
}

}  // namespace dedisys::web
