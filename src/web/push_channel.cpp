#include "web/push_channel.h"

#include "constraints/satisfaction.h"

namespace dedisys::web {

NegotiationOutcome PushNegotiationBridge::negotiate(
    const ConsistencyThreat& threat, ConstraintValidationContext&) {
  NegotiationOutcome out;
  out.accepted = servlet_ != nullptr && servlet_->park_for_decision(threat);
  return out;
}

PushBusinessServlet::PushBusinessServlet(BusinessOp op)
    : op_(std::move(op)), bridge_(std::make_shared<PushNegotiationBridge>()) {
  bridge_->servlet_ = this;
}

PushBusinessServlet::~PushBusinessServlet() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    decision_pending_ = false;
    decision_accept_ = false;
    cv_.notify_all();
  }
  join_worker();
}

HttpResponse PushBusinessServlet::handle(const HttpRequest& request) {
  if (request.path == "/business") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (running_) {
        return HttpResponse{409, "error",
                            {{"message", "operation in progress"}}};
      }
      running_ = true;
      done_ = false;
      result_.reset();
      error_.reset();
    }
    join_worker();
    worker_ = std::thread([this] {
      std::optional<std::string> result;
      std::optional<std::string> error;
      try {
        result = op_();
      } catch (const std::exception& e) {
        error = e.what();
      }
      std::lock_guard<std::mutex> lock(mu_);
      result_ = std::move(result);
      error_ = std::move(error);
      done_ = true;
      running_ = false;
      cv_.notify_all();
    });
    // The persistent channel decouples callbacks from this response: the
    // browser gets an immediate acknowledgement.
    return HttpResponse{202, "accepted", {}};
  }

  if (request.path == "/decision") {
    std::lock_guard<std::mutex> lock(mu_);
    if (!decision_pending_) {
      return HttpResponse{409, "error", {{"message", "no negotiation pending"}}};
    }
    auto it = request.params.find("accept");
    decision_accept_ = it != request.params.end() && it->second == "true";
    decision_pending_ = false;
    cv_.notify_all();
    return HttpResponse{200, "decision-recorded", {}};
  }

  if (request.path == "/result") {
    std::unique_lock<std::mutex> lock(mu_);
    if (!done_) return HttpResponse{202, "pending", {}};
    lock.unlock();
    join_worker();
    if (error_) {
      return HttpResponse{500, "error", {{"message", *error_}}};
    }
    return HttpResponse{200, "business-result",
                        {{"result", result_.value_or("")}}};
  }

  return HttpResponse{404, "error", {{"message", "no such path"}}};
}

bool PushBusinessServlet::park_for_decision(const ConsistencyThreat& threat) {
  PushChunk chunk;
  chunk.kind = "negotiation-request";
  chunk.fields["constraint"] = threat.constraint_name;
  chunk.fields["degree"] = to_string(threat.degree);

  std::unique_lock<std::mutex> lock(mu_);
  decision_pending_ = true;
  channel_.push(std::move(chunk));  // real server->browser callback
  const bool decided = cv_.wait_for(lock, timeout_, [this] {
    return !decision_pending_;
  });
  if (!decided) {
    decision_pending_ = false;
    return false;  // timeout: reject
  }
  return decision_accept_;
}

void PushBusinessServlet::join_worker() {
  if (worker_.joinable()) worker_.join();
}

}  // namespace dedisys::web
