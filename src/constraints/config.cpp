#include "constraints/config.h"

#include "constraints/ocl_constraint.h"

#include <cctype>

#include "util/strings.h"

namespace dedisys {

// ---------------------------------------------------------------------------
// XML subset parser
// ---------------------------------------------------------------------------

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : in_(input) {}

  XmlNode parse_document() {
    skip_misc();
    XmlNode root = parse_element();
    skip_misc();
    if (pos_ != in_.size()) {
      throw ConfigError("trailing content after root element");
    }
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_])) != 0) {
      ++pos_;
    }
  }

  /// Skips whitespace, comments and XML declarations between elements.
  void skip_misc() {
    while (true) {
      skip_ws();
      if (peek_is("<!--")) {
        const std::size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) {
          throw ConfigError("unterminated XML comment");
        }
        pos_ = end + 3;
      } else if (peek_is("<?")) {
        const std::size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) {
          throw ConfigError("unterminated XML declaration");
        }
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  [[nodiscard]] bool peek_is(std::string_view token) const {
    return in_.substr(pos_, token.size()) == token;
  }

  void expect(char c) {
    if (pos_ >= in_.size() || in_[pos_] != c) {
      throw ConfigError(std::string("expected '") + c + "' at offset " +
                        std::to_string(pos_));
    }
    ++pos_;
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < in_.size()) {
      const char c = in_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '_' || c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      throw ConfigError("expected name at offset " + std::to_string(start));
    }
    return std::string(in_.substr(start, pos_ - start));
  }

  std::string parse_quoted() {
    const char quote = in_[pos_];
    if (quote != '"' && quote != '\'') {
      throw ConfigError("expected quoted value at offset " +
                        std::to_string(pos_));
    }
    ++pos_;
    const std::size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != quote) ++pos_;
    if (pos_ >= in_.size()) throw ConfigError("unterminated attribute value");
    std::string value(in_.substr(start, pos_ - start));
    ++pos_;
    return decode_entities(value);
  }

  static std::string decode_entities(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out += s[i];
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) {
        out += '<';
        i += 3;
      } else if (s.compare(i, 4, "&gt;") == 0) {
        out += '>';
        i += 3;
      } else if (s.compare(i, 5, "&amp;") == 0) {
        out += '&';
        i += 4;
      } else if (s.compare(i, 6, "&quot;") == 0) {
        out += '"';
        i += 5;
      } else if (s.compare(i, 6, "&apos;") == 0) {
        out += '\'';
        i += 5;
      } else {
        out += s[i];
      }
    }
    return out;
  }

  XmlNode parse_element() {
    expect('<');
    XmlNode node;
    node.tag = parse_name();
    // Attributes.
    while (true) {
      skip_ws();
      if (pos_ >= in_.size()) throw ConfigError("unterminated element");
      if (in_[pos_] == '/') {
        ++pos_;
        expect('>');
        return node;  // self-closing
      }
      if (in_[pos_] == '>') {
        ++pos_;
        break;
      }
      std::string attr_name = parse_name();
      skip_ws();
      expect('=');
      skip_ws();
      node.attrs[attr_name] = parse_quoted();
    }
    // Content.
    while (true) {
      skip_misc_in_content(node);
      if (peek_is("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != node.tag) {
          throw ConfigError("mismatched closing tag </" + closing +
                            "> for <" + node.tag + ">");
        }
        skip_ws();
        expect('>');
        node.text = decode_entities(std::string(trim(node.text)));
        return node;
      }
      if (pos_ < in_.size() && in_[pos_] == '<') {
        node.children.push_back(parse_element());
      } else if (pos_ >= in_.size()) {
        throw ConfigError("unterminated element <" + node.tag + ">");
      }
    }
  }

  /// Accumulates text until the next markup, skipping comments.
  void skip_misc_in_content(XmlNode& node) {
    while (pos_ < in_.size()) {
      if (peek_is("<!--")) {
        const std::size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) {
          throw ConfigError("unterminated XML comment");
        }
        pos_ = end + 3;
      } else if (in_[pos_] == '<') {
        return;
      } else {
        node.text += in_[pos_++];
      }
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

ConstraintType parse_type(const std::string& s) {
  if (s == "HARD") return ConstraintType::HardInvariant;
  if (s == "SOFT") return ConstraintType::SoftInvariant;
  if (s == "ASYNC") return ConstraintType::AsyncInvariant;
  if (s == "PRE") return ConstraintType::Precondition;
  if (s == "POST") return ConstraintType::Postcondition;
  throw ConfigError("unknown constraint type: " + s);
}

ConstraintPriority parse_priority(const std::string& s) {
  if (s == "RELAXABLE") return ConstraintPriority::Tradeable;
  if (s == "CRITICAL") return ConstraintPriority::NonTradeable;
  throw ConfigError("unknown constraint priority: " + s);
}

ContextPreparation parse_preparation(const XmlNode& method_node) {
  ContextPreparation prep;
  const XmlNode* prep_node = method_node.child("context-preparation");
  if (prep_node == nullptr) return prep;  // default: called object
  const std::string& cls =
      prep_node->require_child("preparation-class").text;
  if (cls == "CalledObjectIsContextObject") {
    prep.kind = ContextPreparationKind::CalledObject;
  } else if (cls == "ReferenceIsContextObject") {
    prep.kind = ContextPreparationKind::ReferenceGetter;
    const XmlNode* params = prep_node->child("params");
    if (params != nullptr) {
      for (const XmlNode* p : params->children_named("param")) {
        if (p->attr("name") == "getter") prep.getter = p->attr("value");
      }
    }
    if (prep.getter.empty()) {
      throw ConfigError("ReferenceIsContextObject requires a getter param");
    }
  } else if (cls == "NoContextObject") {
    prep.kind = ContextPreparationKind::None;
  } else {
    throw ConfigError("unknown preparation class: " + cls);
  }
  return prep;
}

AffectedMethod parse_affected_method(const XmlNode& node) {
  AffectedMethod am;
  am.preparation = parse_preparation(node);
  const XmlNode& method = node.require_child("objectMethod");
  am.method.name = method.require_attr("name");
  am.class_name = method.require_child("objectClass").text;
  const XmlNode* arguments = method.child("arguments");
  if (arguments != nullptr) {
    for (const XmlNode* arg : arguments->children_named("argument")) {
      am.method.param_types.push_back(arg->text);
    }
  }
  return am;
}

}  // namespace

XmlNode parse_xml(std::string_view input) {
  return XmlParser(input).parse_document();
}

std::size_t load_constraints(std::string_view xml_text,
                             const ConstraintFactory& factory,
                             ConstraintRepository& repository) {
  const XmlNode root = parse_xml(xml_text);
  if (root.tag != "constraints") {
    throw ConfigError("descriptor root must be <constraints>, found <" +
                      root.tag + ">");
  }

  std::size_t loaded = 0;
  for (const XmlNode* node : root.children_named("constraint")) {
    const std::string name = node->require_attr("name");
    const ConstraintType type = parse_type(node->require_attr("type"));
    const ConstraintPriority prio =
        parse_priority(node->attr("priority", "CRITICAL"));

    ConstraintPtr constraint;
    const XmlNode* ocl = node->child("ocl");
    if (ocl != nullptr) {
      // Design-phase OCL expression made executable at runtime.
      constraint = std::make_shared<OclConstraint>(name, type, prio, ocl->text);
    } else {
      const std::string impl = node->require_child("class").text;
      constraint = factory.create(impl, name, type, prio);
    }
    constraint->set_context_object_needed(node->attr("contextObject", "Y") ==
                                          "Y");
    constraint->set_intra_object(node->attr("intraObject", "N") == "Y");
    const std::string min_degree = node->attr("minSatisfactionDegree");
    if (!min_degree.empty()) {
      constraint->set_min_satisfaction_degree(degree_from_string(min_degree));
    }
    const XmlNode* desc = node->child("description");
    if (desc != nullptr) constraint->set_description(desc->text);
    for (const XmlNode* fresh : node->children_named("freshness")) {
      constraint->set_freshness(
          fresh->require_attr("class"),
          std::stoull(fresh->require_attr("maxAge")));
    }

    ConstraintRegistration reg;
    reg.constraint = std::move(constraint);
    const XmlNode* context_class = node->child("context-class");
    if (context_class != nullptr) reg.context_class = context_class->text;
    const XmlNode* methods = node->child("affected-methods");
    if (methods != nullptr) {
      for (const XmlNode* m : methods->children_named("affected-method")) {
        reg.affected_methods.push_back(parse_affected_method(*m));
      }
    }
    repository.register_constraint(std::move(reg));
    ++loaded;
  }
  return loaded;
}

}  // namespace dedisys
