// ConstraintValidationContext (Fig. 4.3) with object-access tracking.
//
// A validation context carries the called object, the context object, the
// invoked method, its arguments and (for postconditions) the result.  All
// object access inside validate() flows through the context so the CCMgr
// can, after validation returns, ask the replication service whether any
// accessed object was possibly stale (Fig. 4.4) and derive the
// satisfaction degree accordingly.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "objects/entity.h"
#include "objects/method_context.h"
#include "objects/value.h"
#include "util/errors.h"
#include "util/ids.h"

namespace dedisys {

/// Answers staleness/reachability questions about local object views.
/// Implemented by the replication service; a trivial implementation for
/// non-replicated deployments reports everything fresh.
class StalenessOracle {
 public:
  virtual ~StalenessOracle() = default;

  /// True when updates to `id` may have happened in another partition
  /// (the local view may have missed them).
  virtual bool possibly_stale(ObjectId id) const = 0;

  /// True when some replica of `id` is reachable from this node.
  virtual bool reachable(ObjectId id) const = 0;
};

/// Oracle for single-node / healthy deployments: everything fresh.
class AlwaysFreshOracle final : public StalenessOracle {
 public:
  bool possibly_stale(ObjectId) const override { return false; }
  bool reachable(ObjectId) const override { return true; }
};

class ConstraintValidationContext {
 public:
  /// Enumerates the logical objects of a class (query-based constraints
  /// that need no context object obtain their affected objects this way,
  /// Section 3.2.2 case 2).
  using ObjectQuery =
      std::function<std::vector<ObjectId>(const std::string& class_name)>;

  ConstraintValidationContext(ObjectAccessor& objects, NodeId node, TxId tx)
      : objects_(&objects), node_(node), tx_(tx) {}

  // -- invocation details ------------------------------------------------

  void set_called_object(ObjectId id) { called_object_ = id; }
  void set_context_object(ObjectId id) { context_object_ = id; }
  void set_method(const MethodSignature* m) { method_ = m; }
  void set_arguments(const std::vector<Value>* args) { args_ = args; }
  void set_result(const Value* r) { result_ = r; }

  [[nodiscard]] ObjectId called_object() const { return called_object_; }
  [[nodiscard]] ObjectId context_object() const { return context_object_; }
  [[nodiscard]] const MethodSignature* method() const { return method_; }
  [[nodiscard]] const std::vector<Value>& arguments() const {
    static const std::vector<Value> kNone;
    return args_ != nullptr ? *args_ : kNone;
  }
  [[nodiscard]] const Value& result() const {
    static const Value kNone;
    return result_ != nullptr ? *result_ : kNone;
  }

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] TxId tx() const { return tx_; }

  // -- causal identity ---------------------------------------------------

  /// Trace context of the invocation this validation belongs to (all-zero
  /// when tracing is off); threat records capture it so reconciliation can
  /// re-join the originating trace.
  void set_trace(const obs::TraceContext& t) { trace_ = t; }
  [[nodiscard]] const obs::TraceContext& trace() const { return trace_; }

  // -- partition awareness (Section 5.5.2) ----------------------------------

  void set_partition_weight(double w) { partition_weight_ = w; }
  void set_degraded(bool d) { degraded_ = d; }

  /// This partition's share of the total node weight; 1.0 when healthy.
  [[nodiscard]] double partition_weight() const { return partition_weight_; }
  [[nodiscard]] bool degraded() const { return degraded_; }

  // -- tracked object access ---------------------------------------------

  /// Reads the local view of a logical object, recording the access.
  /// Throws ObjectUnreachable when no replica is reachable.
  const Entity& read(ObjectId id) {
    accessed_.insert(id);
    return objects_->read(id);
  }

  /// Convenience: context object entity (throws if none was prepared).
  const Entity& context_entity() {
    if (!context_object_.valid()) {
      throw ConfigError("constraint requires a context object");
    }
    return read(context_object_);
  }

  [[nodiscard]] const std::unordered_set<ObjectId>& accessed_objects() const {
    return accessed_;
  }

  // -- query-based validation ------------------------------------------------

  void set_object_query(const ObjectQuery* query) { query_ = query; }

  /// All logical objects of `class_name` (for constraints whose validation
  /// "starts from a set of objects, obtained by a query operation").
  [[nodiscard]] std::vector<ObjectId> objects_of(
      const std::string& class_name) const {
    if (query_ == nullptr || !*query_) {
      throw ConfigError("no object query configured for this context");
    }
    return (*query_)(class_name);
  }

 private:
  ObjectAccessor* objects_;
  NodeId node_;
  TxId tx_;
  ObjectId called_object_;
  ObjectId context_object_;
  const MethodSignature* method_ = nullptr;
  const std::vector<Value>* args_ = nullptr;
  const Value* result_ = nullptr;
  double partition_weight_ = 1.0;
  bool degraded_ = false;
  const ObjectQuery* query_ = nullptr;
  std::unordered_set<ObjectId> accessed_;
  obs::TraceContext trace_{};
};

}  // namespace dedisys
