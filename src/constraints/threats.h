// Consistency threats and their persistent store (Sections 3.1, 3.2.2).
//
// An accepted threat is remembered durably so the reconciliation phase can
// re-evaluate it after partitions merge.  Two storage policies implement
// the Section-5.5.1 trade-off:
//   * FullHistory   — every occurrence is persisted (needed when the
//                     application wants rollback/undo to intermediate
//                     states),
//   * IdenticalOnce — threats with the same identity (constraint +
//                     context object) are persisted once; later
//                     occurrences only cost a read to detect the duplicate.
//
// Matching the paper's measurements, a new threat costs three durable
// records (threat row + two associated-object rows) and each additional
// identical occurrence under FullHistory costs two more.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/satisfaction.h"
#include "persist/record_store.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

/// Application-supplied instructions attached to an accepted threat
/// (Section 3.2.2).
struct ReconciliationInstructions {
  /// Rollback/undo to historical states may be attempted for violations.
  bool allow_rollback = false;
  /// Notify the application when the constraint turned out satisfied but a
  /// replica conflict was involved (Section 3.3).
  bool notify_on_replica_conflict = false;
};

struct ConsistencyThreat {
  std::string constraint_name;
  /// Context object for re-evaluation; invalid when the constraint starts
  /// from a query instead of a context object.
  ObjectId context_object;
  SatisfactionDegree degree = SatisfactionDegree::Uncheckable;
  std::vector<ObjectId> affected_objects;
  /// Opaque application-specific data associated during negotiation.
  std::string application_data;
  ReconciliationInstructions instructions;
  SimTime occurred_at = 0;
  /// Trace context of the invocation whose validation raised the threat
  /// (zero when tracing was off).  Reconciliation re-evaluations open their
  /// span with this as explicit parent, so the threat's whole lifecycle —
  /// detection in one partition, re-evaluation after the merge — belongs to
  /// one causal trace.
  std::uint64_t origin_trace = 0;
  std::uint64_t origin_span = 0;

  /// Two threats are identical iff they refer to the same constraint and
  /// the same context object (Section 3.2.2).
  [[nodiscard]] std::string identity() const {
    return constraint_name + '@' +
           (context_object.valid() ? to_string(context_object) : "-");
  }
};

enum class ThreatHistoryPolicy { FullHistory, IdenticalOnce };

/// A stored threat identity plus how many identical occurrences exist.
struct StoredThreat {
  ConsistencyThreat threat;
  std::size_t occurrences = 1;
};

class ThreatStore {
 public:
  explicit ThreatStore(RecordStore& db) : db_(&db) {}

  [[nodiscard]] ThreatHistoryPolicy policy() const { return policy_; }
  void set_policy(ThreatHistoryPolicy p) { policy_ = p; }

  /// Persists a threat occurrence; returns true when this identity was new.
  bool store(const ConsistencyThreat& threat) {
    const std::string key = threat.identity();
    const bool exists = db_->contains(kTable, key);
    if (!exists) {
      db_->put(kTable, key, serialize(threat));
      // Two associated-object records (affected objects, app data).
      db_->put(kObjectsTable, key + "/objects", {});
      db_->put(kObjectsTable, key + "/appdata", {});
      counts_[key] = 1;
      return true;
    }
    ++counts_[key];
    if (policy_ == ThreatHistoryPolicy::FullHistory) {
      const std::string occ_key =
          key + '#' + std::to_string(counts_[key]);
      db_->put(kHistoryTable, occ_key, serialize(threat));
      db_->put(kObjectsTable, occ_key + "/objects", {});
    }
    return false;
  }

  /// Removes a threat identity and all identical occurrences.  Identical
  /// occurrences are range-deleted in one statement.
  void remove(const std::string& identity) {
    auto it = counts_.find(identity);
    if (it == counts_.end()) return;
    db_->erase(kTable, identity);
    db_->erase(kObjectsTable, identity + "/objects");
    db_->erase(kObjectsTable, identity + "/appdata");
    if (policy_ == ThreatHistoryPolicy::FullHistory && it->second > 1) {
      db_->erase_prefix(kHistoryTable, identity + "#");
      db_->erase_prefix(kObjectsTable, identity + "#");
    }
    counts_.erase(it);
  }

  /// Loads every stored threat identity with its occurrence count
  /// (reconciliation re-evaluates identical threats only once).
  [[nodiscard]] std::vector<StoredThreat> load_all() {
    std::vector<StoredThreat> out;
    for (const auto& [key, record] : db_->scan(kTable)) {
      StoredThreat st;
      st.threat = deserialize(record);
      auto it = counts_.find(key);
      st.occurrences = it == counts_.end() ? 1 : it->second;
      out.push_back(std::move(st));
    }
    return out;
  }

  /// Rebuilds the in-memory identity index from durable rows — the
  /// recovery path after a node pause-crash (the paper's threats are
  /// "persistently stored by the middleware").  Occurrence counts under
  /// the full-history policy are restored from the history table.
  void rebuild_index() {
    counts_.clear();
    for (const auto& [key, record] : db_->scan(kTable)) {
      counts_[key] = 1;
    }
    for (const auto& [key, record] : db_->scan(kHistoryTable)) {
      const std::size_t hash = key.rfind('#');
      if (hash == std::string::npos) continue;
      auto it = counts_.find(key.substr(0, hash));
      if (it != counts_.end()) ++it->second;
    }
  }

  [[nodiscard]] std::size_t identity_count() const { return counts_.size(); }

  [[nodiscard]] std::size_t total_occurrences() const {
    std::size_t n = 0;
    for (const auto& [key, c] : counts_) n += c;
    return n;
  }

  [[nodiscard]] bool has(const std::string& identity) const {
    return counts_.count(identity) != 0;
  }

  // -- (de)serialization ------------------------------------------------------

  static AttributeMap serialize(const ConsistencyThreat& t) {
    AttributeMap m;
    m["constraint"] = t.constraint_name;
    m["context"] = t.context_object.valid()
                       ? Value{t.context_object}
                       : Value{};
    m["degree"] = static_cast<std::int64_t>(t.degree);
    m["appdata"] = t.application_data;
    m["allow_rollback"] = t.instructions.allow_rollback;
    m["notify_conflict"] = t.instructions.notify_on_replica_conflict;
    m["occurred_at"] = static_cast<std::int64_t>(t.occurred_at);
    m["origin_trace"] = static_cast<std::int64_t>(t.origin_trace);
    m["origin_span"] = static_cast<std::int64_t>(t.origin_span);
    std::string objs;
    for (ObjectId o : t.affected_objects) {
      if (!objs.empty()) objs += ',';
      objs += to_string(o);
    }
    m["objects"] = objs;
    return m;
  }

  static ConsistencyThreat deserialize(const AttributeMap& m) {
    ConsistencyThreat t;
    t.constraint_name = as_string(m.at("constraint"));
    if (!is_null(m.at("context"))) t.context_object = as_object(m.at("context"));
    t.degree = static_cast<SatisfactionDegree>(as_int(m.at("degree")));
    t.application_data = as_string(m.at("appdata"));
    t.instructions.allow_rollback = as_bool(m.at("allow_rollback"));
    t.instructions.notify_on_replica_conflict =
        as_bool(m.at("notify_conflict"));
    t.occurred_at = as_int(m.at("occurred_at"));
    if (auto it = m.find("origin_trace"); it != m.end()) {
      t.origin_trace = static_cast<std::uint64_t>(as_int(it->second));
    }
    if (auto it = m.find("origin_span"); it != m.end()) {
      t.origin_span = static_cast<std::uint64_t>(as_int(it->second));
    }
    const std::string& objs = as_string(m.at("objects"));
    std::size_t start = 0;
    while (start < objs.size()) {
      std::size_t end = objs.find(',', start);
      if (end == std::string::npos) end = objs.size();
      t.affected_objects.push_back(
          ObjectId{std::stoull(objs.substr(start, end - start))});
      start = end + 1;
    }
    return t;
  }

 private:
  static constexpr const char* kTable = "threats";
  static constexpr const char* kObjectsTable = "threat_objects";
  static constexpr const char* kHistoryTable = "threat_history";

  RecordStore* db_;
  ThreatHistoryPolicy policy_ = ThreatHistoryPolicy::IdenticalOnce;
  std::map<std::string, std::size_t> counts_;
};

}  // namespace dedisys
