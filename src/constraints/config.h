// Constraint configuration files (Section 4.2.2, Listing 4.1).
//
// Constraints, their metadata and their affected methods are declared in an
// XML descriptor read at application deployment.  The <class> element names
// the application's constraint implementation class; a ConstraintFactory
// maps that name to a creator function (the C++ stand-in for instantiating
// a Java class reflectively).
//
// Supported descriptor shape:
//
//   <constraints>
//     <constraint name="..." type="HARD|SOFT|ASYNC|PRE|POST"
//                 priority="RELAXABLE|CRITICAL" contextObject="Y|N"
//                 minSatisfactionDegree="UNCHECKABLE|..." intraObject="Y|N">
//       <class>ImplementationClass</class>          <!-- or instead: -->
//       <ocl>self.soldTickets &lt;= self.seats</ocl>
//       <context-class>ContextClass</context-class>
//       <freshness class="SomeClass" maxAge="3"/>
//       <affected-methods>
//         <affected-method>
//           <context-preparation>
//             <preparation-class>CalledObjectIsContextObject
//                 |ReferenceIsContextObject|NoContextObject</preparation-class>
//             <params><param name="getter" value="getX"/></params>
//           </context-preparation>
//           <objectMethod name="setX">
//             <objectClass>SomeClass</objectClass>
//             <arguments><argument>string</argument></arguments>
//           </objectMethod>
//         </affected-method>
//       </affected-methods>
//     </constraint>
//   </constraints>
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "constraints/constraint.h"
#include "constraints/repository.h"
#include "util/errors.h"

namespace dedisys {

// -- minimal XML subset ------------------------------------------------------

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attrs;
  std::vector<XmlNode> children;
  std::string text;

  [[nodiscard]] const XmlNode* child(const std::string& name) const {
    for (const auto& c : children) {
      if (c.tag == name) return &c;
    }
    return nullptr;
  }

  [[nodiscard]] const XmlNode& require_child(const std::string& name) const {
    const XmlNode* c = child(name);
    if (c == nullptr) {
      throw ConfigError("<" + tag + "> is missing child <" + name + ">");
    }
    return *c;
  }

  [[nodiscard]] std::vector<const XmlNode*> children_named(
      const std::string& name) const {
    std::vector<const XmlNode*> out;
    for (const auto& c : children) {
      if (c.tag == name) out.push_back(&c);
    }
    return out;
  }

  [[nodiscard]] std::string attr(const std::string& name,
                                 const std::string& fallback = "") const {
    auto it = attrs.find(name);
    return it == attrs.end() ? fallback : it->second;
  }

  [[nodiscard]] const std::string& require_attr(const std::string& name) const {
    auto it = attrs.find(name);
    if (it == attrs.end()) {
      throw ConfigError("<" + tag + "> is missing attribute " + name);
    }
    return it->second;
  }
};

/// Parses a document with one root element.  Supports attributes,
/// nested elements, text content, comments and self-closing tags.
[[nodiscard]] XmlNode parse_xml(std::string_view input);

// -- constraint factory --------------------------------------------------------

/// Maps <class> implementation names to constraint creator functions.
class ConstraintFactory {
 public:
  using Creator = std::function<ConstraintPtr(
      const std::string& name, ConstraintType type, ConstraintPriority prio)>;

  void register_class(const std::string& impl_class, Creator creator) {
    auto [it, inserted] = creators_.emplace(impl_class, std::move(creator));
    if (!inserted) {
      throw ConfigError("duplicate constraint class: " + impl_class);
    }
    (void)it;
  }

  [[nodiscard]] ConstraintPtr create(const std::string& impl_class,
                                     const std::string& name,
                                     ConstraintType type,
                                     ConstraintPriority prio) const {
    auto it = creators_.find(impl_class);
    if (it == creators_.end()) {
      throw ConfigError("unknown constraint class: " + impl_class);
    }
    return it->second(name, type, prio);
  }

 private:
  std::map<std::string, Creator> creators_;
};

/// Parses a descriptor and registers every declared constraint with the
/// repository.  Returns the number of constraints registered.
std::size_t load_constraints(std::string_view xml_text,
                             const ConstraintFactory& factory,
                             ConstraintRepository& repository);

}  // namespace dedisys
