// Runtime constraints defined by OCL expressions.
//
// Closes the loop from design-phase OCL (Fig. 1.6) to explicit runtime
// constraints (Listing 1.2): an OclConstraint parses the design-time
// expression once and evaluates it against the context entity's attributes
// and the invocation arguments — no hand-written validate() body needed.
// Constraint descriptors embed the expression in an <ocl> element
// (Section 4.2.2).
#pragma once

#include <string>
#include <utility>

#include "constraints/constraint.h"
#include "ocl/ocl.h"

namespace dedisys {

/// OCL environment over a middleware entity: `self.<attr>` reads boxed
/// entity attributes (recorded as object accesses through the validation
/// context), `arg<N>` reads the intercepted invocation's arguments.
class EntityOclEnv final : public OclEnv {
 public:
  explicit EntityOclEnv(ConstraintValidationContext& ctx) : ctx_(&ctx) {}

  [[nodiscard]] OclValue attribute(const std::string& name) const override {
    const Value& v = ctx_->context_entity().get(name);
    return to_ocl(v, name);
  }

  [[nodiscard]] OclValue argument(std::size_t index) const override {
    const auto& args = ctx_->arguments();
    if (index >= args.size()) {
      throw DedisysError("OCL arg index out of range");
    }
    return to_ocl(args[index], "arg" + std::to_string(index));
  }

 private:
  static OclValue to_ocl(const Value& v, const std::string& what) {
    if (std::holds_alternative<std::int64_t>(v)) {
      return OclValue{std::get<std::int64_t>(v)};
    }
    if (std::holds_alternative<double>(v)) {
      return OclValue{std::get<double>(v)};
    }
    if (std::holds_alternative<std::string>(v)) {
      return OclValue{std::get<std::string>(v)};
    }
    if (std::holds_alternative<bool>(v)) {
      return OclValue{static_cast<double>(std::get<bool>(v))};
    }
    throw DedisysError("OCL cannot evaluate non-scalar value " + what);
  }

  ConstraintValidationContext* ctx_;
};

class OclConstraint final : public Constraint {
 public:
  OclConstraint(std::string name, ConstraintType type,
                ConstraintPriority prio, const std::string& expression)
      : Constraint(std::move(name), type, prio),
        source_(expression),
        expr_(parse_ocl(expression)) {}

  [[nodiscard]] const std::string& expression() const { return source_; }

  bool validate(ConstraintValidationContext& ctx) override {
    EntityOclEnv env(ctx);
    return ocl_check(expr_, env);
  }

 private:
  std::string source_;
  OclExpr expr_;
};

}  // namespace dedisys
