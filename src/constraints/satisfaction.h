// Satisfaction degrees and constraint-check categories (Section 3.1).
//
// In a partitioned system a validation may run on stale backups (LCC) or
// not at all (NCC), which extends the boolean outcome to five degrees with
// the total order
//     violated < uncheckable < possibly_violated < possibly_satisfied
//              < satisfied.
// A *consistency threat* is any of the three middle degrees.
#pragma once

#include <string>

#include "util/errors.h"

namespace dedisys {

enum class SatisfactionDegree {
  Violated = 0,
  Uncheckable = 1,
  PossiblyViolated = 2,
  PossiblySatisfied = 3,
  Satisfied = 4,
};

/// Category of an individual constraint check (Section 3.1).
enum class CheckCategory {
  FCC,  ///< Full check: all affected objects up to date.
  LCC,  ///< Limited check: some affected objects possibly stale.
  NCC,  ///< No check possible: some affected object unreachable.
};

[[nodiscard]] inline bool is_threat(SatisfactionDegree d) {
  return d == SatisfactionDegree::Uncheckable ||
         d == SatisfactionDegree::PossiblyViolated ||
         d == SatisfactionDegree::PossiblySatisfied;
}

/// Combines degrees of a constraint set into the overall outcome
/// (Section 3.1): the minimum under the total order above.
[[nodiscard]] inline SatisfactionDegree combine(SatisfactionDegree a,
                                                SatisfactionDegree b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

[[nodiscard]] inline bool at_least(SatisfactionDegree d,
                                   SatisfactionDegree minimum) {
  return static_cast<int>(d) >= static_cast<int>(minimum);
}

[[nodiscard]] inline std::string to_string(SatisfactionDegree d) {
  switch (d) {
    case SatisfactionDegree::Violated: return "violated";
    case SatisfactionDegree::Uncheckable: return "uncheckable";
    case SatisfactionDegree::PossiblyViolated: return "possibly_violated";
    case SatisfactionDegree::PossiblySatisfied: return "possibly_satisfied";
    case SatisfactionDegree::Satisfied: return "satisfied";
  }
  return "?";
}

[[nodiscard]] inline SatisfactionDegree degree_from_string(
    const std::string& s) {
  if (s == "violated" || s == "VIOLATED") return SatisfactionDegree::Violated;
  if (s == "uncheckable" || s == "UNCHECKABLE")
    return SatisfactionDegree::Uncheckable;
  if (s == "possibly_violated" || s == "POSSIBLY_VIOLATED")
    return SatisfactionDegree::PossiblyViolated;
  if (s == "possibly_satisfied" || s == "POSSIBLY_SATISFIED")
    return SatisfactionDegree::PossiblySatisfied;
  if (s == "satisfied" || s == "SATISFIED")
    return SatisfactionDegree::Satisfied;
  throw ConfigError("unknown satisfaction degree: " + s);
}

}  // namespace dedisys
