#include "constraints/ccmgr.h"

#include <algorithm>
#include <cctype>

#include "analysis/report.h"
#include "objects/entity.h"
#include "util/errors.h"
#include "util/logging.h"

namespace dedisys {

const AlwaysFreshOracle ConstraintConsistencyManager::kFreshOracle{};

namespace {

/// "getRepairReport" -> "repairReport": attribute addressed by a
/// conventional getter used in <preparation-class> reference rules.
std::string attribute_from_getter(const std::string& getter) {
  if (getter.size() <= 3 || getter.compare(0, 3, "get") != 0) {
    throw ConfigError("context preparation getter must be named get*: " +
                      getter);
  }
  std::string attr = getter.substr(3);
  attr[0] = static_cast<char>(std::tolower(attr[0]));
  return attr;
}

std::string threat_identity(const std::string& constraint_name,
                            ObjectId context_object) {
  return constraint_name + '@' +
         (context_object.valid() ? to_string(context_object)
                                 : std::string("-"));
}

}  // namespace

ConstraintConsistencyManager::ConstraintConsistencyManager(
    ConstraintRepository& repository, ThreatStore& threats,
    TransactionManager& tm, Runtime& rt, NodeId self)
    : repository_(repository),
      threats_(threats),
      tm_(tm),
      rt_(rt),
      self_(self),
      oracle_(&kFreshOracle) {}

void ConstraintConsistencyManager::set_degraded(bool degraded,
                                                double partition_weight) {
  degraded_ = degraded;
  partition_weight_ = partition_weight;
}

void ConstraintConsistencyManager::register_negotiation_handler(
    TxId tx, std::shared_ptr<NegotiationHandler> h) {
  tx_state(tx).negotiation = std::move(h);
  // Enlist so per-transaction state is cleaned up on completion.
  if (tm_.exists(tx)) tm_.enlist(tx, this);
}

// ---------------------------------------------------------------------------
// Application-specific repositories (Section 5.3)
// ---------------------------------------------------------------------------

ConstraintRepository& ConstraintConsistencyManager::repository_for(
    const Invocation& inv) {
  auto app = inv.context.find("application");
  if (app != inv.context.end() && !app->second.empty()) {
    auto it = app_repositories_.find(app->second);
    if (it != app_repositories_.end()) return *it->second;
  }
  return repository_;
}

const ConstraintRegistration* ConstraintConsistencyManager::find_registration(
    const std::string& name) {
  if (const ConstraintRegistration* reg = repository_.registration(name)) {
    return reg;
  }
  for (auto& [app, repo] : app_repositories_) {
    if (const ConstraintRegistration* reg = repo->registration(name)) {
      return reg;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Hierarchy-aware constraint lookup (Section 2.3.1)
// ---------------------------------------------------------------------------

std::vector<ConstraintRepository::Match>
ConstraintConsistencyManager::collect_matches(ConstraintRepository& repository,
                                              const Invocation& inv,
                                              ConstraintType type) {
  std::vector<ConstraintRepository::Match> out;
  rt_.charge(rt_.cost().constraint_lookup);
  if (!ancestry_) {
    const auto& direct = repository.lookup(inv.target_class, inv.method, type);
    out.assign(direct.begin(), direct.end());
    return out;
  }
  for (const std::string& cls : ancestry_(inv.target_class)) {
    const auto& matches = repository.lookup(cls, inv.method, type);
    out.insert(out.end(), matches.begin(), matches.end());
  }
  return out;
}

std::vector<std::vector<ConstraintRepository::Match>>
ConstraintConsistencyManager::precondition_groups(
    ConstraintRepository& repository, const Invocation& inv) {
  std::vector<std::vector<ConstraintRepository::Match>> groups;
  rt_.charge(rt_.cost().constraint_lookup);
  const std::vector<std::string> classes =
      ancestry_ ? ancestry_(inv.target_class)
                : std::vector<std::string>{inv.target_class};
  for (const std::string& cls : classes) {
    const auto& matches =
        repository.lookup(cls, inv.method, ConstraintType::Precondition);
    if (!matches.empty()) {
      groups.emplace_back(matches.begin(), matches.end());
    }
  }
  return groups;
}

void ConstraintConsistencyManager::check_preconditions(
    ConstraintRepository& repository, const Invocation& inv,
    ObjectAccessor& objects) {
  const auto groups = precondition_groups(repository, inv);
  if (groups.empty()) return;
  if (groups.size() == 1) {
    // No inherited preconditions: plain conjunction with full threat
    // handling per constraint.
    for (const auto& match : groups.front()) {
      const ObjectId ctx_obj =
          prepare_context_object(inv, *match.preparation, objects);
      check(*match.constraint, inv, ctx_obj, objects);
    }
    return;
  }
  // Behavioral subtyping: preconditions of the subclass level are OR'd
  // with those inherited from superclasses/interfaces [DL96] — the call
  // proceeds when ANY level's conjunction holds.
  SatisfactionDegree best = SatisfactionDegree::Violated;
  Constraint* representative = nullptr;
  ConstraintValidationContext best_ctx(objects, self_, inv.tx);
  for (const auto& group : groups) {
    SatisfactionDegree level = SatisfactionDegree::Satisfied;
    Constraint* level_constraint = nullptr;
    ConstraintValidationContext level_ctx(objects, self_, inv.tx);
    for (const auto& match : group) {
      const ObjectId ctx_obj =
          prepare_context_object(inv, *match.preparation, objects);
      if (match.constraint->context_object_needed() && !ctx_obj.valid()) {
        continue;  // reference still null: constraint does not apply
      }
      ConstraintValidationContext ctx = make_context(inv, ctx_obj, objects);
      const SatisfactionDegree d = evaluate_cached(*match.constraint, ctx);
      if (static_cast<int>(d) < static_cast<int>(level)) {
        level = d;  // conjunction within one hierarchy level
        level_constraint = match.constraint;
        level_ctx = ctx;
      }
    }
    if (static_cast<int>(level) > static_cast<int>(best)) {
      best = level;
      representative = level_constraint != nullptr
                           ? level_constraint
                           : group.front().constraint;
      best_ctx = level_ctx;
    }
    if (best == SatisfactionDegree::Satisfied) return;  // some level holds
  }
  // No level fully holds: handle the best outcome (threat or violation).
  if (representative == nullptr) representative = groups.front().front().constraint;
  handle_outcome(*representative, best, best_ctx, inv.tx);
}

// ---------------------------------------------------------------------------
// Invocation hooks
// ---------------------------------------------------------------------------

void ConstraintConsistencyManager::before_invocation(const Invocation& inv,
                                                     ObjectAccessor& objects) {
  if (in_validation_) return;  // re-entrancy guard (Section 5.3)
  ConstraintRepository& repository = repository_for(inv);

  check_preconditions(repository, inv, objects);

  // Give postconditions and invariants the chance to snapshot @pre state
  // (Fig. 4.3 defines beforeMethodInvocation on Constraint generally; the
  // partition-sensitive ticket constraint of Section 5.5.2 uses it to
  // record the healthy-mode baseline before the first degraded write).
  for (ConstraintType type :
       {ConstraintType::Postcondition, ConstraintType::HardInvariant,
        ConstraintType::SoftInvariant}) {
    for (const auto& match : collect_matches(repository, inv, type)) {
      const ObjectId ctx_obj =
          prepare_context_object(inv, *match.preparation, objects);
      ConstraintValidationContext ctx = make_context(inv, ctx_obj, objects);
      ValidationGuard guard(in_validation_);
      match.constraint->before_method_invocation(ctx);
    }
  }
}

void ConstraintConsistencyManager::after_invocation(const Invocation& inv,
                                                    ObjectAccessor& objects) {
  if (in_validation_) return;
  ConstraintRepository& repository = repository_for(inv);

  for (const auto& match :
       collect_matches(repository, inv, ConstraintType::Postcondition)) {
    const ObjectId ctx_obj =
        prepare_context_object(inv, *match.preparation, objects);
    check(*match.constraint, inv, ctx_obj, objects);
  }

  for (const auto& match :
       collect_matches(repository, inv, ConstraintType::HardInvariant)) {
    const ObjectId ctx_obj =
        prepare_context_object(inv, *match.preparation, objects);
    if (should_skip(match, inv, ctx_obj)) continue;
    check(*match.constraint, inv, ctx_obj, objects);
  }

  for (const auto& match :
       collect_matches(repository, inv, ConstraintType::SoftInvariant)) {
    const ObjectId ctx_obj =
        prepare_context_object(inv, *match.preparation, objects);
    if (should_skip(match, inv, ctx_obj)) continue;
    record_pending(inv.tx, *match.constraint, ctx_obj, inv.target);
  }

  for (const auto& match :
       collect_matches(repository, inv, ConstraintType::AsyncInvariant)) {
    const ObjectId ctx_obj =
        prepare_context_object(inv, *match.preparation, objects);
    if (degraded_) {
      // Section 5.5.3: no validation, no negotiation — only record the
      // threat for re-evaluation during reconciliation.  Pruning never
      // applies in degraded mode.
      store_async_threat(inv.tx, *match.constraint, ctx_obj);
    } else {
      if (should_skip(match, inv, ctx_obj)) continue;
      record_pending(inv.tx, *match.constraint, ctx_obj, inv.target);
    }
  }
}

// ---------------------------------------------------------------------------
// Read-set pruning (PR 3)
// ---------------------------------------------------------------------------

bool ConstraintConsistencyManager::should_skip(
    const ConstraintRepository::Match& match, const Invocation& inv,
    ObjectId context_object) {
  if (!pruning_) return false;
  const analysis::AnalysisReport* report = match.analysis;
  if (report == nullptr || !report->prunable) return false;
  // Skipping relies on the induction "the invariant held after the last
  // validated operation and nothing it reads changed since".  In degraded
  // mode (or with forced-stale objects) a validation additionally derives
  // threat bookkeeping from staleness, which a skip would suppress.
  if (degraded_ || !forced_stale_.empty()) return false;
  // Only the called-object preparation pins the context object to the
  // invocation target: a reference-derived context can be *changed* by a
  // write to the reference attribute, making the newly-referenced
  // object's state unvalidated even though the read-set looks disjoint.
  if (match.preparation == nullptr ||
      match.preparation->kind != ContextPreparationKind::CalledObject) {
    return false;
  }
  // A Satisfied outcome removes a matching stored threat (Section 3.3);
  // skipping must not suppress that removal.
  if (threats_.has(threat_identity(match.constraint->name(),
                                   context_object))) {
    return false;
  }
  // Proven tautologies (PR 8: interval verdict, which subsumes the old
  // AlwaysTrue fold) cannot be violated regardless of state — skippable
  // even when the write touches their read-set.
  if (report->verdict == analysis::Verdict::Tautology) {
    ++stats_.evaluations_proven;
    if (obs::on(obs_)) {
      obs_->event(rt_.now(), obs::TraceEventKind::ValidationProven, self_,
                  context_object, inv.tx, match.constraint->name(),
                  "proven tautology");
    }
    return true;
  }
  bool skip = false;
  if (!inv.mutates) {
    skip = true;  // the invocation cannot change entity state at all
  } else {
    const std::string written = analysis::setter_attribute(inv.method.name);
    // Non-setter mutators have an unknown write-set: validate.
    skip = !written.empty() &&
           report->read_set.attributes.count(written) == 0;
  }
  if (skip) {
    ++stats_.evaluations_skipped;
    if (obs::on(obs_)) {
      obs_->event(rt_.now(), obs::TraceEventKind::ValidationSkipped, self_,
                  context_object, inv.tx, match.constraint->name(),
                  "read-set disjoint");
    }
  }
  return skip;
}

// ---------------------------------------------------------------------------
// Context construction and evaluation
// ---------------------------------------------------------------------------

ObjectId ConstraintConsistencyManager::prepare_context_object(
    const Invocation& inv, const ContextPreparation& prep,
    ObjectAccessor& objects) const {
  switch (prep.kind) {
    case ContextPreparationKind::None:
      return ObjectId{};
    case ContextPreparationKind::CalledObject:
      return inv.target;
    case ContextPreparationKind::ReferenceGetter: {
      const Entity& called = objects.read(inv.target);
      const Value& ref = called.get(attribute_from_getter(prep.getter));
      return is_null(ref) ? ObjectId{} : as_object(ref);
    }
  }
  return ObjectId{};
}

ConstraintValidationContext ConstraintConsistencyManager::make_context(
    const Invocation& inv, ObjectId context_object,
    ObjectAccessor& objects) const {
  ConstraintValidationContext ctx(objects, self_, inv.tx);
  ctx.set_called_object(inv.target);
  ctx.set_context_object(context_object);
  ctx.set_method(&inv.method);
  ctx.set_arguments(&inv.args);
  ctx.set_result(&inv.result);
  ctx.set_degraded(degraded_);
  ctx.set_partition_weight(partition_weight_);
  ctx.set_object_query(&object_query_);
  if (obs::on(obs_)) ctx.set_trace(obs_->current());
  return ctx;
}

bool ConstraintConsistencyManager::memo_fingerprint(
    const Constraint& constraint, ConstraintValidationContext& ctx,
    std::uint64_t* out) {
  if (!memo_enabled_) return false;
  // LCC/NCC bypass: in degraded mode (or with forced-stale objects) the
  // satisfaction degree additionally depends on per-object staleness and
  // partition state that the fingerprint cannot see.
  if (degraded_ || !forced_stale_.empty()) return false;
  // Query-based contexts enumerate objects at validation time; there is
  // no bounded read-set to stamp.
  if (!ctx.context_object().valid()) return false;
  const ConstraintRegistration* reg = find_registration(constraint.name());
  if (reg == nullptr || reg->analysis == nullptr) return false;
  const analysis::AnalysisReport& report = *reg->analysis;
  // Opaque bodies (FunctionConstraint & friends) and error-carrying
  // reports have an unknown/untrusted read-set; argument reads make the
  // outcome depend on per-invocation values the key does not cover.
  if (report.opaque || report.has_errors()) return false;
  if (!report.read_set.arguments.empty()) return false;
  // The analyzed read-set of a non-opaque constraint is confined to
  // attributes of the context entity (the OCL grammar only reads
  // `self.<attr>` and `arg<N>`), so one (id, write stamp) pair pins the
  // entire state the outcome depends on.  Reference-derived contexts are
  // covered too: a write to the reference attribute changes which entity
  // becomes the context object, and with it the cache key.
  validation::FingerprintBuilder fp;
  try {
    const Entity& entity = ctx.read(ctx.context_object());
    fp.mix(entity.id(), entity.write_stamp());
  } catch (const ObjectUnreachable&) {
    return false;  // NCC: let evaluate() derive Uncheckable
  }
  *out = fp.value();
  return true;
}

SatisfactionDegree ConstraintConsistencyManager::evaluate_cached(
    Constraint& constraint, ConstraintValidationContext& ctx, bool* hit) {
  if (hit != nullptr) *hit = false;
  std::uint64_t fingerprint = 0;
  if (!memo_fingerprint(constraint, ctx, &fingerprint)) {
    return evaluate(constraint, ctx);
  }
  const validation::ValidationMemo::Lookup looked =
      memo_.lookup(constraint.name(), ctx.context_object(), fingerprint);
  if (looked.outcome == validation::ValidationMemo::Outcome::Hit) {
    if (hit != nullptr) *hit = true;
    if (obs::on(obs_)) {
      obs_->event(rt_.now(), obs::TraceEventKind::ValidationMemoHit, self_,
                  ctx.context_object(), ctx.tx(), constraint.name(),
                  to_string(looked.degree));
    }
    return looked.degree;
  }
  if (looked.outcome == validation::ValidationMemo::Outcome::MissStale &&
      obs::on(obs_)) {
    obs_->event(rt_.now(), obs::TraceEventKind::ValidationMemoInvalidate,
                self_, ctx.context_object(), ctx.tx(), constraint.name(),
                "read-set write stamp changed");
  }
  const SatisfactionDegree degree = evaluate(constraint, ctx);
  // Threat degrees (LCC/NCC) are partition-dependent; only definite
  // outcomes are a pure function of the fingerprinted state.
  if (degree == SatisfactionDegree::Satisfied ||
      degree == SatisfactionDegree::Violated) {
    memo_.store(constraint.name(), ctx.context_object(), fingerprint, degree);
  }
  return degree;
}

SatisfactionDegree ConstraintConsistencyManager::evaluate(
    Constraint& constraint, ConstraintValidationContext& ctx) {
  ++stats_.validations;
  obs::SpanGuard span_guard(obs_, rt_, "validation", self_,
                            ctx.context_object(), ctx.tx());
  rt_.charge(rt_.cost().constraint_validate);
  bool ok = false;
  bool uncheckable = false;
  {
    ValidationGuard guard(in_validation_);
    try {
      ok = constraint.validate(ctx);
    } catch (const ObjectUnreachable&) {
      uncheckable = true;  // NCC
    }
  }
  SatisfactionDegree degree;
  if (uncheckable) {
    degree = SatisfactionDegree::Uncheckable;
  } else {
    degree = ok ? SatisfactionDegree::Satisfied : SatisfactionDegree::Violated;
    if ((degraded_ || !forced_stale_.empty()) && !constraint.intra_object()) {
      for (ObjectId id : ctx.accessed_objects()) {
        if ((degraded_ && oracle_->possibly_stale(id)) ||
            forced_stale_.count(id) != 0) {
          degree = ok ? SatisfactionDegree::PossiblySatisfied
                      : SatisfactionDegree::PossiblyViolated;  // LCC
          break;
        }
      }
    }
  }
  if (obs::on(obs_)) {
    obs_->event(rt_.now(), obs::TraceEventKind::Validation, self_,
                ctx.context_object(), {}, constraint.name(),
                to_string(degree));
  }
  return degree;
}

void ConstraintConsistencyManager::check(Constraint& constraint,
                                         const Invocation& inv,
                                         ObjectId context_object,
                                         ObjectAccessor& objects) {
  // A constraint needing a context object trivially does not apply while
  // the reference that would provide it is still null.
  if (constraint.context_object_needed() && !context_object.valid()) return;
  ConstraintValidationContext ctx = make_context(inv, context_object, objects);
  const SatisfactionDegree degree = evaluate_cached(constraint, ctx);
  handle_outcome(constraint, degree, ctx, inv.tx);
}

void ConstraintConsistencyManager::handle_outcome(
    Constraint& constraint, SatisfactionDegree degree,
    ConstraintValidationContext& ctx, TxId tx) {
  switch (degree) {
    case SatisfactionDegree::Satisfied: {
      // A business operation that fully satisfies a constraint removes
      // matching stored threats (Section 3.3).
      const std::string identity =
          threat_identity(constraint.name(), ctx.context_object());
      if (threats_.has(identity) && tx.valid() && tm_.exists(tx)) {
        tx_state(tx).staged_removals.push_back(identity);
        tm_.enlist(tx, this);
      }
      return;
    }
    case SatisfactionDegree::Violated:
      ++stats_.violations;
      if (tx.valid() && tm_.exists(tx)) tm_.set_rollback_only(tx);
      throw ConstraintViolation(constraint.name());
    default:
      handle_threat(constraint, degree, ctx, tx);
  }
}

void ConstraintConsistencyManager::handle_threat(
    Constraint& constraint, SatisfactionDegree degree,
    ConstraintValidationContext& ctx, TxId tx) {
  ++stats_.threats_detected;
  rt_.charge(rt_.cost().threat_detection);
  if (obs::on(obs_)) {
    obs_->event(rt_.now(), obs::TraceEventKind::ThreatDetected, self_,
                ctx.context_object(), tx, constraint.name(),
                to_string(degree));
  }

  if (!constraint.is_tradeable()) {
    ++stats_.threats_rejected;
    if (obs::on(obs_)) {
      obs_->event(rt_.now(), obs::TraceEventKind::ThreatRejected, self_,
                  ctx.context_object(), tx, constraint.name(),
                  "not tradeable");
    }
    if (tx.valid() && tm_.exists(tx)) tm_.set_rollback_only(tx);
    throw ConsistencyThreatRejected(constraint.name());
  }

  ConsistencyThreat threat;
  threat.constraint_name = constraint.name();
  threat.context_object = ctx.context_object();
  threat.degree = degree;
  threat.affected_objects.assign(ctx.accessed_objects().begin(),
                                 ctx.accessed_objects().end());
  std::sort(threat.affected_objects.begin(), threat.affected_objects.end());
  threat.occurred_at = rt_.now();
  threat.origin_trace = ctx.trace().trace_id;
  threat.origin_span = ctx.trace().span_id;

  if (negotiation_timing_ == NegotiationTiming::Deferred && tx.valid() &&
      tm_.exists(tx)) {
    // Section 5.4: for longer-lasting transactions, negotiation can be
    // deferred; the transaction continues on the assumption that the
    // threats will be accepted and blocks before commit until all
    // decisions are available.
    tx_state(tx).deferred.push_back(PendingThreat{&constraint, std::move(threat)});
    tm_.enlist(tx, this);
    return;
  }
  negotiate_threat(constraint, std::move(threat), ctx, tx);
}

void ConstraintConsistencyManager::negotiate_threat(
    Constraint& constraint, ConsistencyThreat threat,
    ConstraintValidationContext& ctx, TxId tx) {
  const SatisfactionDegree degree = threat.degree;
  bool accepted;
  bool dynamic = false;
  auto st = tx.valid() ? tx_state_.find(tx) : tx_state_.end();
  if (st != tx_state_.end() && st->second.negotiation != nullptr) {
    // Dynamic (algorithmic) negotiation.
    dynamic = true;
    rt_.charge(rt_.cost().negotiation_callback);
    NegotiationOutcome outcome =
        st->second.negotiation->negotiate(threat, ctx);
    accepted = outcome.accepted;
    threat.application_data = std::move(outcome.application_data);
    threat.instructions = outcome.instructions;
  } else {
    // Static (descriptive) negotiation.
    const SatisfactionDegree effective_min =
        constraint.min_satisfaction_degree().value_or(default_min_);
    accepted = static_negotiation_accepts(constraint, effective_min, degree,
                                          ctx, *oracle_, rt_.now());
  }
  if (obs::on(obs_)) {
    obs_->event(rt_.now(), obs::TraceEventKind::ThreatNegotiated, self_,
                threat.context_object, tx, constraint.name(),
                dynamic ? "dynamic" : "static");
  }

  if (!accepted) {
    ++stats_.threats_rejected;
    if (obs::on(obs_)) {
      obs_->event(rt_.now(), obs::TraceEventKind::ThreatRejected, self_,
                  threat.context_object, tx, constraint.name(),
                  to_string(degree));
    }
    if (tx.valid() && tm_.exists(tx)) tm_.set_rollback_only(tx);
    throw ConsistencyThreatRejected(constraint.name());
  }

  ++stats_.threats_accepted;
  if (obs::on(obs_)) {
    obs_->event(rt_.now(), obs::TraceEventKind::ThreatAccepted, self_,
                threat.context_object, tx, constraint.name(),
                to_string(degree));
  }
  if (tx.valid() && tm_.exists(tx)) {
    tx_state(tx).staged.push_back(std::move(threat));
    tm_.enlist(tx, this);
  } else {
    // Non-transactional operation: persist immediately.
    const bool was_new = threats_.store(threat);
    if (replicate_threat_ &&
        (was_new || threats_.policy() == ThreatHistoryPolicy::FullHistory)) {
      replicate_threat_(threat);
    }
  }
}

void ConstraintConsistencyManager::record_pending(TxId tx,
                                                  Constraint& constraint,
                                                  ObjectId context_object,
                                                  ObjectId called_object) {
  if (!tx.valid()) {
    // Without a transaction there is no commit point; check immediately.
    if (objects_ == nullptr) {
      throw ConfigError("CCMgr has no object accessor configured");
    }
    Invocation pseudo;
    pseudo.target = called_object;
    check(constraint, pseudo, context_object, *objects_);
    return;
  }
  TxState& state = tx_state(tx);
  for (const auto& p : state.pending) {
    if (p.constraint == &constraint && p.context_object == context_object) {
      return;  // checked once per transaction
    }
  }
  state.pending.push_back(PendingCheck{&constraint, context_object,
                                       called_object});
  tm_.enlist(tx, this);
}

void ConstraintConsistencyManager::store_async_threat(TxId tx,
                                                      Constraint& constraint,
                                                      ObjectId context_object) {
  ConsistencyThreat threat;
  threat.constraint_name = constraint.name();
  threat.context_object = context_object;
  threat.degree = SatisfactionDegree::PossiblySatisfied;
  if (context_object.valid()) {
    threat.affected_objects.push_back(context_object);
  }
  threat.occurred_at = rt_.now();
  ++stats_.threats_detected;
  ++stats_.threats_accepted;
  if (obs::on(obs_)) {
    const obs::TraceContext& cur = obs_->current();
    threat.origin_trace = cur.trace_id;
    threat.origin_span = cur.span_id;
    obs_->event(rt_.now(), obs::TraceEventKind::ThreatDetected, self_,
                context_object, tx, constraint.name(), "async");
    obs_->event(rt_.now(), obs::TraceEventKind::ThreatAccepted, self_,
                context_object, tx, constraint.name(),
                "async, recorded without validation");
  }
  if (tx.valid() && tm_.exists(tx)) {
    tx_state(tx).staged.push_back(std::move(threat));
    tm_.enlist(tx, this);
  } else {
    threats_.store(threat);
    if (replicate_threat_) replicate_threat_(threat);
  }
}

// ---------------------------------------------------------------------------
// TransactionalResource
// ---------------------------------------------------------------------------

Vote ConstraintConsistencyManager::prepare(TxId tx) {
  auto it = tx_state_.find(tx);
  if (it == tx_state_.end()) return Vote::Commit;
  if (objects_ == nullptr &&
      (!it->second.pending.empty() || !it->second.deferred.empty())) {
    throw ConfigError("CCMgr has no object accessor configured");
  }
  // Soft (and healthy-mode async) invariants are validated at commit time.
  for (const PendingCheck& p : it->second.pending) {
    Invocation pseudo;
    pseudo.target = p.called_object;
    pseudo.tx = tx;
    try {
      check(*p.constraint, pseudo, p.context_object, *objects_);
    } catch (const ConstraintViolation&) {
      return Vote::Rollback;
    } catch (const ConsistencyThreatRejected&) {
      return Vote::Rollback;
    }
  }
  // Deferred negotiations: the transaction blocks before commit until the
  // decisions for all occurred threats are available (Section 5.4).
  auto deferred = std::move(it->second.deferred);
  it->second.deferred.clear();
  for (PendingThreat& p : deferred) {
    Invocation pseudo;
    pseudo.tx = tx;
    ConstraintValidationContext ctx =
        make_context(pseudo, p.threat.context_object, *objects_);
    for (ObjectId o : p.threat.affected_objects) ctx.read(o);
    try {
      negotiate_threat(*p.constraint, std::move(p.threat), ctx, tx);
    } catch (const ConsistencyThreatRejected&) {
      return Vote::Rollback;
    } catch (const ObjectUnreachable&) {
      return Vote::Rollback;
    }
  }
  return Vote::Commit;
}

void ConstraintConsistencyManager::commit(TxId tx) {
  auto it = tx_state_.find(tx);
  if (it == tx_state_.end()) return;
  for (const ConsistencyThreat& threat : it->second.staged) {
    const bool was_new = threats_.store(threat);
    // Identical threats stored only once need no re-replication; under
    // the full-history policy every occurrence is propagated (Section 5.5.1).
    if (replicate_threat_ &&
        (was_new || threats_.policy() == ThreatHistoryPolicy::FullHistory)) {
      replicate_threat_(threat);
    }
  }
  for (const std::string& identity : it->second.staged_removals) {
    const bool was_live = threats_.has(identity);
    threats_.remove(identity);
    if (was_live && obs::on(obs_)) {
      // The identity string is "<constraint>@<object|->" (threats.h).
      const std::size_t at = identity.rfind('@');
      const std::string name = identity.substr(0, at);
      const std::string obj = identity.substr(at + 1);
      ObjectId object{};
      if (obj != "-") object = ObjectId{std::stoull(obj)};
      obs_->event(rt_.now(), obs::TraceEventKind::ThreatResolved, self_,
                  object, tx, name, "satisfied by business operation");
    }
  }
  tx_state_.erase(it);
}

void ConstraintConsistencyManager::rollback(TxId tx) { tx_state_.erase(tx); }

// ---------------------------------------------------------------------------
// Reconciliation (Section 4.4)
// ---------------------------------------------------------------------------

ConstraintConsistencyManager::ReconcileStats
ConstraintConsistencyManager::reconcile(ConstraintReconciliationHandler* handler,
                                        const ConflictQuery& had_conflict,
                                        const TryRollback& try_rollback) {
  ReconcileStats out;
  if (objects_ == nullptr) {
    throw ConfigError("CCMgr has no object accessor configured");
  }
  auto trace_outcome = [&](const ConsistencyThreat& t, const char* outcome) {
    if (obs::on(obs_)) {
      obs_->event(rt_.now(), obs::TraceEventKind::ThreatReconciled, self_,
                  t.context_object, {}, t.constraint_name, outcome);
    }
  };

  // Batched revalidation: threats arrive grouped by constraint (load_all
  // returns identities sorted as "<constraint>@<object>", so the grouping
  // is inherent) and each distinct (constraint, fingerprint) pair is
  // evaluated at most once — the validation memo caches the first
  // evaluation's definite outcome and fans it out to every later threat
  // with the same key, within this pass and across repeated reconciliation
  // rounds over postponed threats.  With the memo off, every threat is
  // re-evaluated exactly as before, in the same order.
  //
  // Interference-aware scheduling (PR 8, opt-in): with a ConfigAnalysis
  // attached, the batch is reordered by interference-graph cluster so
  // constraints sharing read-set attributes evaluate adjacently.  The
  // sort is stable over the legacy identity order, so the set of
  // evaluations and every per-threat outcome is unchanged — only
  // adjacency moves.
  std::vector<StoredThreat> batch = threats_.load_all();
  const analysis::ConfigAnalysis* schedule =
      scheduling_ ? repository_.config_analysis() : nullptr;
  if (schedule != nullptr) {
    auto cluster_key = [&](const StoredThreat& st) -> const std::string& {
      auto it = schedule->cluster_of.find(st.threat.constraint_name);
      return it == schedule->cluster_of.end() ? st.threat.constraint_name
                                              : it->second;
    };
    std::stable_sort(batch.begin(), batch.end(),
                     [&](const StoredThreat& a, const StoredThreat& b) {
                       return cluster_key(a) < cluster_key(b);
                     });
    out.scheduled = batch.size();
    stats_.reconcile_scheduled += batch.size();
  }
  for (StoredThreat& st : batch) {
    ConsistencyThreat& threat = st.threat;
    ++out.reevaluated;

    // Re-evaluation joins the trace of the invocation that raised the
    // threat (captured in the stored record), so a threat's whole
    // lifecycle — detection in one partition, re-evaluation after the
    // merge — forms one causal trace.  Untraced threats (origin zero)
    // nest under the ambient reconcile span instead.
    obs::SpanGuard threat_span(
        obs_, rt_, "reconcile.threat", self_, threat.context_object, {},
        obs::TraceContext{threat.origin_trace, threat.origin_span, 0});

    const ConstraintRegistration* reg =
        find_registration(threat.constraint_name);
    if (reg == nullptr || !reg->constraint->enabled()) {
      // Constraint removed/disabled at runtime: nothing to re-establish.
      threats_.remove(threat.identity());
      if (obs::on(obs_)) {
        obs_->event(rt_.now(), obs::TraceEventKind::ThreatResolved, self_,
                    threat.context_object, {}, threat.constraint_name,
                    "constraint removed or disabled");
      }
      continue;
    }
    Constraint& constraint = *reg->constraint;

    Invocation pseudo;
    ConstraintValidationContext ctx =
        make_context(pseudo, threat.context_object, *objects_);
    bool batched = false;
    SatisfactionDegree degree = evaluate_cached(constraint, ctx, &batched);
    if (batched) ++out.batched;

    if (degree == SatisfactionDegree::Satisfied) {
      threats_.remove(threat.identity());
      ++out.removed_satisfied;
      trace_outcome(threat, "satisfied");
      if (handler != nullptr && threat.instructions.notify_on_replica_conflict &&
          had_conflict) {
        const bool conflicted = std::any_of(
            threat.affected_objects.begin(), threat.affected_objects.end(),
            [&](ObjectId o) { return had_conflict(o); });
        if (conflicted) {
          handler->on_replica_conflict_resolved(threat);
          ++out.conflict_notifications;
        }
      }
      continue;
    }

    if (is_threat(degree)) {
      // Some affected object still unavailable/stale: another partition
      // remains; postpone re-evaluation (Section 3.3).
      ++out.postponed;
      trace_outcome(threat, "postponed");
      continue;
    }

    // Violated.
    ++out.violations;
    if (threat.instructions.allow_rollback && try_rollback &&
        try_rollback(threat)) {
      ConstraintValidationContext recheck =
          make_context(pseudo, threat.context_object, *objects_);
      if (evaluate_cached(constraint, recheck) ==
          SatisfactionDegree::Satisfied) {
        threats_.remove(threat.identity());
        ++out.resolved_by_rollback;
        trace_outcome(threat, "rolled-back");
        continue;
      }
    }

    if (handler == nullptr) {
      ++out.deferred;
      trace_outcome(threat, "deferred");
      continue;
    }

    bool resolved = false;
    constexpr int kMaxImmediateAttempts = 3;
    for (int attempt = 0; attempt < kMaxImmediateAttempts; ++attempt) {
      rt_.charge(rt_.cost().negotiation_callback);
      const bool claims_solved = handler->reconcile(threat, ctx);
      if (!claims_solved) break;  // deferred reconciliation
      ConstraintValidationContext recheck =
          make_context(pseudo, threat.context_object, *objects_);
      if (evaluate_cached(constraint, recheck) ==
          SatisfactionDegree::Satisfied) {
        resolved = true;
        break;
      }
    }
    if (resolved) {
      threats_.remove(threat.identity());
      ++out.resolved_immediately;
      trace_outcome(threat, "resolved");
    } else {
      // Deferred: the application cleans up later; the threat stays until a
      // business operation satisfies the constraint (Section 4.4).
      ++out.deferred;
      trace_outcome(threat, "deferred");
    }
  }
  return out;
}

std::vector<ObjectId> ConstraintConsistencyManager::revalidate_for_objects(
    const std::string& constraint_name,
    const std::vector<ObjectId>& context_objects) {
  if (objects_ == nullptr) {
    throw ConfigError("CCMgr has no object accessor configured");
  }
  Constraint& constraint = repository_.find(constraint_name);
  std::vector<ObjectId> violating;
  for (ObjectId id : context_objects) {
    Invocation pseudo;
    ConstraintValidationContext ctx = make_context(pseudo, id, *objects_);
    if (evaluate_cached(constraint, ctx) == SatisfactionDegree::Violated) {
      violating.push_back(id);
    }
  }
  return violating;
}

std::unordered_set<ObjectId>
ConstraintConsistencyManager::threatened_objects() {
  std::unordered_set<ObjectId> out;
  for (const StoredThreat& st : threats_.load_all()) {
    for (ObjectId o : st.threat.affected_objects) out.insert(o);
    if (st.threat.context_object.valid()) out.insert(st.threat.context_object);
  }
  return out;
}

}  // namespace dedisys
