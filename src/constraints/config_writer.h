// Constraint descriptor writer: serializes registered constraints back to
// the Listing-4.1 XML format.
//
// Runtime constraint management (add/remove/enable at runtime) needs a way
// to persist the currently deployed configuration — e.g. so an
// administrator can snapshot a tuned deployment and redeploy it elsewhere.
// OclConstraints round-trip completely; class-based constraints serialize
// their metadata and reference their implementation class by name.
#pragma once

#include <string>

#include "constraints/ocl_constraint.h"
#include "constraints/repository.h"

namespace dedisys {

namespace config_writer_detail {

inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

inline const char* type_name(ConstraintType t) {
  switch (t) {
    case ConstraintType::Precondition: return "PRE";
    case ConstraintType::Postcondition: return "POST";
    case ConstraintType::HardInvariant: return "HARD";
    case ConstraintType::SoftInvariant: return "SOFT";
    case ConstraintType::AsyncInvariant: return "ASYNC";
  }
  return "?";
}

inline std::string degree_name(SatisfactionDegree d) {
  switch (d) {
    case SatisfactionDegree::Violated: return "VIOLATED";
    case SatisfactionDegree::Uncheckable: return "UNCHECKABLE";
    case SatisfactionDegree::PossiblyViolated: return "POSSIBLY_VIOLATED";
    case SatisfactionDegree::PossiblySatisfied: return "POSSIBLY_SATISFIED";
    case SatisfactionDegree::Satisfied: return "SATISFIED";
  }
  return "?";
}

}  // namespace config_writer_detail

/// Serializes one registration.  `impl_class` names the implementation
/// class for non-OCL constraints (ignored for OclConstraint).
inline std::string write_constraint_xml(const ConstraintRegistration& reg,
                                        const std::string& impl_class = "") {
  using namespace config_writer_detail;
  const Constraint& c = *reg.constraint;
  std::string out;
  out += "  <constraint name=\"" + escape(c.name()) + "\" type=\"" +
         type_name(c.type()) + "\" priority=\"" +
         (c.is_tradeable() ? "RELAXABLE" : "CRITICAL") + "\" contextObject=\"" +
         (c.context_object_needed() ? "Y" : "N") + "\"";
  if (c.intra_object()) out += " intraObject=\"Y\"";
  if (c.min_satisfaction_degree()) {
    out += " minSatisfactionDegree=\"" +
           degree_name(*c.min_satisfaction_degree()) + "\"";
  }
  out += ">\n";

  if (const auto* ocl = dynamic_cast<const OclConstraint*>(&c)) {
    out += "    <ocl>" + escape(ocl->expression()) + "</ocl>\n";
  } else {
    out += "    <class>" + escape(impl_class) + "</class>\n";
  }
  if (!c.description().empty()) {
    out += "    <description>" + escape(c.description()) + "</description>\n";
  }
  if (!reg.context_class.empty()) {
    out += "    <context-class>" + escape(reg.context_class) +
           "</context-class>\n";
  }
  for (const auto& [cls, max_age] : c.freshness_criteria()) {
    out += "    <freshness class=\"" + escape(cls) + "\" maxAge=\"" +
           std::to_string(max_age) + "\"/>\n";
  }

  if (!reg.affected_methods.empty()) {
    out += "    <affected-methods>\n";
    for (const AffectedMethod& am : reg.affected_methods) {
      out += "      <affected-method>\n";
      out += "        <context-preparation><preparation-class>";
      switch (am.preparation.kind) {
        case ContextPreparationKind::None:
          out += "NoContextObject";
          break;
        case ContextPreparationKind::CalledObject:
          out += "CalledObjectIsContextObject";
          break;
        case ContextPreparationKind::ReferenceGetter:
          out += "ReferenceIsContextObject";
          break;
      }
      out += "</preparation-class>";
      if (am.preparation.kind == ContextPreparationKind::ReferenceGetter) {
        out += "<params><param name=\"getter\" value=\"" +
               escape(am.preparation.getter) + "\"/></params>";
      }
      out += "</context-preparation>\n";
      out += "        <objectMethod name=\"" + escape(am.method.name) +
             "\">\n";
      out += "          <objectClass>" + escape(am.class_name) +
             "</objectClass>\n";
      if (!am.method.param_types.empty()) {
        out += "          <arguments>";
        for (const std::string& p : am.method.param_types) {
          out += "<argument>" + escape(p) + "</argument>";
        }
        out += "</arguments>\n";
      }
      out += "        </objectMethod>\n";
      out += "      </affected-method>\n";
    }
    out += "    </affected-methods>\n";
  }
  out += "  </constraint>\n";
  return out;
}

/// Serializes every registration of a repository into one descriptor.
inline std::string write_constraints_xml(const ConstraintRepository& repo) {
  std::string out = "<constraints>\n";
  for (const ConstraintRegistration& reg : repo.registrations()) {
    out += write_constraint_xml(reg);
  }
  out += "</constraints>\n";
  return out;
}

}  // namespace dedisys
