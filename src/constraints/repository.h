// Constraint repository (Sections 2.1.4, 4.2.2).
//
// All constraints of an application are registered here together with
// their affected methods and context-preparation rules.  The repository
// can be queried by (class, method, constraint type); constraints can be
// added, removed, enabled and disabled at runtime — the flexibility that
// motivates explicit runtime constraints in the first place.
//
// Two search modes reproduce the Chapter-2 study: a naive scan that walks
// every registration per query, and an optimized mode that caches query
// results in a hash table keyed by class+method+type (Section 2.2.1).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/report.h"
#include "constraints/constraint.h"
#include "objects/class_descriptor.h"
#include "util/errors.h"

namespace dedisys {

/// How to derive the context object from an intercepted invocation
/// (the <preparation-class> of Listing 4.1).
enum class ContextPreparationKind {
  None,            ///< Constraint needs no context object (query-based).
  CalledObject,    ///< The called object is the context object.
  ReferenceGetter, ///< Follow a reference: call `getter` on the called object.
};

struct ContextPreparation {
  ContextPreparationKind kind = ContextPreparationKind::CalledObject;
  /// Getter method name for ReferenceGetter (e.g. "getRepairReport").
  std::string getter;
};

struct AffectedMethod {
  std::string class_name;
  MethodSignature method;
  ContextPreparation preparation;
};

struct ConstraintRegistration {
  ConstraintPtr constraint;
  /// Context class for invariant constraints (may be empty).
  std::string context_class;
  std::vector<AffectedMethod> affected_methods;
  /// Static-analysis report produced at registration time (PR 3); null
  /// until the analyzer runs.  Null means "no static knowledge": the
  /// CCMgr then validates exhaustively, exactly as before.
  std::shared_ptr<const analysis::AnalysisReport> analysis;
};

class ConstraintRepository {
 public:
  struct Match {
    Constraint* constraint;
    const ContextPreparation* preparation;
    /// Null when the constraint was never analyzed.
    const analysis::AnalysisReport* analysis;
  };

  // -- runtime management ---------------------------------------------------

  void register_constraint(ConstraintRegistration reg) {
    if (!reg.constraint) throw ConfigError("null constraint registration");
    const std::string& name = reg.constraint->name();
    if (by_name_.count(name) != 0) {
      throw ConfigError("duplicate constraint name: " + name);
    }
    by_name_[name] = registrations_.size();
    registrations_.push_back(std::move(reg));
    config_.reset();  // stale: the deployed set changed
    invalidate_cache();
  }

  /// Removes a constraint at runtime.
  void remove(const std::string& name) {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) throw ConfigError("unknown constraint: " + name);
    registrations_.erase(registrations_.begin() +
                         static_cast<std::ptrdiff_t>(it->second));
    by_name_.clear();
    for (std::size_t i = 0; i < registrations_.size(); ++i) {
      by_name_[registrations_[i].constraint->name()] = i;
    }
    config_.reset();  // stale: the deployed set changed
    invalidate_cache();
  }

  void set_enabled(const std::string& name, bool enabled) {
    find(name).set_enabled(enabled);
    invalidate_cache();
  }

  [[nodiscard]] Constraint& find(const std::string& name) {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) throw ConfigError("unknown constraint: " + name);
    return *registrations_[it->second].constraint;
  }

  [[nodiscard]] const ConstraintRegistration* registration(
      const std::string& name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &registrations_[it->second];
  }

  /// Attaches a static-analysis report to a registered constraint.
  /// Cached Match vectors carry raw report pointers, so the query cache
  /// is invalidated.
  void set_analysis(const std::string& name,
                    std::shared_ptr<const analysis::AnalysisReport> report) {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) throw ConfigError("unknown constraint: " + name);
    registrations_[it->second].analysis = std::move(report);
    invalidate_cache();
  }

  /// Attaches the whole-configuration analysis (conflicts, subsumption,
  /// interference clustering — PR 8).  Reset to null whenever the
  /// deployed set changes; the CCMgr's scheduler falls back to the legacy
  /// evaluation order until the analyzer runs again.
  void set_config_analysis(
      std::shared_ptr<const analysis::ConfigAnalysis> config) {
    config_ = std::move(config);
  }

  /// Null until analyze_repository ran (and since the last change).
  [[nodiscard]] const analysis::ConfigAnalysis* config_analysis() const {
    return config_.get();
  }

  [[nodiscard]] const std::vector<ConstraintRegistration>& registrations()
      const {
    return registrations_;
  }

  [[nodiscard]] std::size_t size() const { return registrations_.size(); }

  // -- search ----------------------------------------------------------------

  /// Enables/disables the query cache (the "optimized repository").
  /// Idempotent: re-asserting the current mode keeps the warm cache.
  void set_caching(bool on) {
    if (on == caching_) return;
    caching_ = on;
    invalidate_cache();
  }

  /// All enabled constraints of `type` affected by `method` on
  /// `class_name`, each with its context-preparation rule.
  const std::vector<Match>& lookup(const std::string& class_name,
                                   const MethodSignature& method,
                                   ConstraintType type) {
    ++searches_;
    if (!caching_) {
      scratch_ = search(class_name, method, type);
      return scratch_;
    }
    const std::string key =
        class_name + '#' + method.key() + '#' +
        std::to_string(static_cast<int>(type));
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
    ++cache_misses_;
    auto [ins, _] = cache_.emplace(key, search(class_name, method, type));
    return ins->second;
  }

  [[nodiscard]] std::size_t search_count() const { return searches_; }
  /// Query-cache hit/miss counters (only move while caching is on).
  [[nodiscard]] std::size_t cache_hit_count() const { return cache_hits_; }
  [[nodiscard]] std::size_t cache_miss_count() const { return cache_misses_; }

 private:
  /// Linear scan over every registration and affected method — the
  /// non-optimized search whose cost dominates Fig. 2.2.
  std::vector<Match> search(const std::string& class_name,
                            const MethodSignature& method,
                            ConstraintType type) const {
    std::vector<Match> out;
    const std::string method_key = method.key();
    for (const auto& reg : registrations_) {
      Constraint& c = *reg.constraint;
      if (!c.enabled() || c.type() != type) continue;
      for (const auto& am : reg.affected_methods) {
        if (am.class_name == class_name && am.method.key() == method_key) {
          out.push_back(Match{&c, &am.preparation, reg.analysis.get()});
          break;
        }
      }
    }
    return out;
  }

  void invalidate_cache() { cache_.clear(); }

  std::vector<ConstraintRegistration> registrations_;
  std::shared_ptr<const analysis::ConfigAnalysis> config_;
  std::unordered_map<std::string, std::size_t> by_name_;
  bool caching_ = true;
  std::unordered_map<std::string, std::vector<Match>> cache_;
  std::vector<Match> scratch_;
  std::size_t searches_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
};

}  // namespace dedisys
