// Explicit runtime integrity constraints (Fig. 4.3, Listing 1.2).
//
// One class instance represents exactly one integrity constraint.  The
// middleware owns triggering; the application owns the validate() body.
// Metadata (type, tradeability, minimum acceptable satisfaction degree,
// freshness criteria, intra-object classification) configures the
// integrity/availability balancing of Chapter 3.
#pragma once

#include <functional>
#include <optional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "constraints/satisfaction.h"
#include "constraints/validation_context.h"
#include "util/errors.h"

namespace dedisys {

/// When a constraint's validation is triggered (Section 1.6).
enum class ConstraintType {
  Precondition,   ///< Before an affected method.
  Postcondition,  ///< After an affected method (may snapshot @pre state).
  HardInvariant,  ///< After each affected operation within a transaction.
  SoftInvariant,  ///< At transaction commit (prepare phase).
  AsyncInvariant, ///< Soft in healthy mode; in degraded mode not validated
                  ///< at all, only recorded for reconciliation (§5.5.3).
};

/// Whether availability may be traded against this constraint (Section 3).
enum class ConstraintPriority {
  NonTradeable,  ///< Must never be violated; threats are always rejected.
  Tradeable,     ///< May be relaxed during degraded mode ("RELAXABLE").
};

/// Freshness criterion: maximum tolerated version gap
/// (estimated latest version - actual version) per affected class.
using FreshnessCriteria = std::map<std::string, std::uint64_t>;

class Constraint {
 public:
  Constraint(std::string name, ConstraintType type, ConstraintPriority prio)
      : name_(std::move(name)), type_(type), priority_(prio) {}

  virtual ~Constraint() = default;

  // -- metadata ------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ConstraintType type() const { return type_; }
  [[nodiscard]] ConstraintPriority priority() const { return priority_; }
  [[nodiscard]] bool is_tradeable() const {
    return priority_ == ConstraintPriority::Tradeable;
  }

  /// Minimum acceptable satisfaction degree for static negotiation; when
  /// unset, the CCMgr falls back to the application-wide default
  /// (negotiation priority of Section 3.2.1).
  [[nodiscard]] std::optional<SatisfactionDegree> min_satisfaction_degree()
      const {
    return min_degree_;
  }
  void set_min_satisfaction_degree(SatisfactionDegree d) { min_degree_ = d; }

  [[nodiscard]] const std::string& description() const { return description_; }
  void set_description(std::string d) { description_ = std::move(d); }

  [[nodiscard]] bool context_object_needed() const { return needs_context_; }
  void set_context_object_needed(bool v) { needs_context_ = v; }

  /// Intra-object constraints touch a single object only; LCC validations
  /// of them may report plain satisfied/violated (Section 3.1).
  [[nodiscard]] bool intra_object() const { return intra_object_; }
  void set_intra_object(bool v) { intra_object_ = v; }

  [[nodiscard]] const FreshnessCriteria& freshness_criteria() const {
    return freshness_;
  }
  void set_freshness(const std::string& class_name, std::uint64_t max_age) {
    freshness_[class_name] = max_age;
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool v) { enabled_ = v; }

  // -- contract with the middleware -----------------------------------------

  /// Called before the affected method runs; postconditions snapshot the
  /// @pre state here (Section 4.2.1).
  virtual void before_method_invocation(ConstraintValidationContext&) {}

  /// Returns true iff the constraint holds; must not modify state; throws
  /// ObjectUnreachable when checking is impossible.
  virtual bool validate(ConstraintValidationContext& ctx) = 0;

 private:
  std::string name_;
  ConstraintType type_;
  ConstraintPriority priority_;
  std::optional<SatisfactionDegree> min_degree_;
  std::string description_;
  bool needs_context_ = true;
  bool intra_object_ = false;
  bool enabled_ = true;
  FreshnessCriteria freshness_;
};

/// Convenience adaptor: constraint defined by callables.
class FunctionConstraint final : public Constraint {
 public:
  using Predicate = std::function<bool(ConstraintValidationContext&)>;
  using BeforeHook = std::function<void(ConstraintValidationContext&)>;

  FunctionConstraint(std::string name, ConstraintType type,
                     ConstraintPriority prio, Predicate predicate)
      : Constraint(std::move(name), type, prio),
        predicate_(std::move(predicate)) {}

  void set_before_hook(BeforeHook hook) { before_ = std::move(hook); }

  void before_method_invocation(ConstraintValidationContext& ctx) override {
    if (before_) before_(ctx);
  }

  bool validate(ConstraintValidationContext& ctx) override {
    return predicate_(ctx);
  }

 private:
  Predicate predicate_;
  BeforeHook before_;
};

using ConstraintPtr = std::shared_ptr<Constraint>;

}  // namespace dedisys
