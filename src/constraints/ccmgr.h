// Constraint consistency manager (CCMgr, Section 4.2.3).
//
// The CCMgr is the new middleware service introduced by the paper.  It is
// notified before and after method invocations by the invocation-service
// interceptor, looks up affected constraints in the repository and triggers
// validation according to constraint type:
//
//   preconditions      -> before the invocation,
//   postconditions     -> after the invocation (with a @pre snapshot hook),
//   hard invariants    -> after each affected operation,
//   soft invariants    -> at transaction prepare (the CCMgr enlists as a
//                         transactional resource),
//   async invariants   -> soft in healthy mode; in degraded mode recorded
//                         as threats without validation (Section 5.5.3).
//
// In degraded mode the CCMgr gathers the objects each validation accessed,
// asks the replication service whether any were possibly stale, derives the
// satisfaction degree, negotiates arising consistency threats (dynamic
// handler > per-constraint static rule > application-wide default) and
// persists accepted threats.  During reconciliation it re-evaluates stored
// threats and drives the application's constraint reconciliation handler.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "constraints/negotiation.h"
#include "constraints/repository.h"
#include "constraints/threats.h"
#include "objects/invocation.h"
#include "objects/method_context.h"
#include "obs/observability.h"
#include "sim/cost_model.h"
#include "tx/tx_manager.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

/// Application callback invoked for violated constraints detected during
/// the reconciliation phase (Section 4.4).  Returning true means the
/// inconsistency is resolved now (the CCMgr revalidates); returning false
/// defers the clean-up to the application (e-mail to an operator, ...).
class ConstraintReconciliationHandler {
 public:
  virtual ~ConstraintReconciliationHandler() = default;
  virtual bool reconcile(const ConsistencyThreat& threat,
                         ConstraintValidationContext& ctx) = 0;
  /// Optional notification: a threat's constraint is satisfied but a
  /// replica conflict was involved (Section 3.3).
  virtual void on_replica_conflict_resolved(const ConsistencyThreat&) {}
};

class ConstraintConsistencyManager final : public TransactionalResource {
 public:
  ConstraintConsistencyManager(ConstraintRepository& repository,
                               ThreatStore& threats, TransactionManager& tm,
                               SimClock& clock, const CostModel& cost,
                               NodeId self);

  // -- wiring ----------------------------------------------------------------

  void set_staleness_oracle(const StalenessOracle* oracle) {
    oracle_ = oracle;
  }
  /// Accessor used for prepare-time and reconciliation-time validations.
  void set_object_accessor(ObjectAccessor* objects) { objects_ = objects; }
  /// Hook replicating an accepted threat to partition members.
  void set_threat_replicator(std::function<void(const ConsistencyThreat&)> f) {
    replicate_threat_ = std::move(f);
  }
  /// Application-wide fallback minimum satisfaction degree.
  void set_default_min_degree(SatisfactionDegree d) { default_min_ = d; }

  /// Wires the cluster's observability hub; validations and the threat
  /// lifecycle (detected/negotiated/accepted/rejected/reconciled) are then
  /// recorded as trace events.
  void set_observability(obs::Observability* obs) { obs_ = obs; }

  /// Query used by constraints without a context object ("validation
  /// starts from a set of objects obtained by a query", Section 3.2.2).
  void set_object_query(ConstraintValidationContext::ObjectQuery query) {
    object_query_ = std::move(query);
  }

  /// Class-hierarchy resolver (behavioral subtyping, Section 2.3.1):
  /// constraints of superclasses/interfaces also apply, preconditions
  /// OR'd across levels, postconditions/invariants AND'd [DL96].
  using AncestryQuery =
      std::function<std::vector<std::string>(const std::string&)>;
  void set_class_ancestry(AncestryQuery query) {
    ancestry_ = std::move(query);
  }

  /// When a threat is negotiated (Section 5.4): immediately when it
  /// arises, or deferred in a batch at transaction commit (useful for
  /// longer-lasting transactions).
  enum class NegotiationTiming { Immediate, Deferred };
  void set_negotiation_timing(NegotiationTiming t) { negotiation_timing_ = t; }

  /// Registers a per-application constraint repository (Section 5.3:
  /// "constraint names have to be unique within an application and not
  /// within the whole application server").  Invocations carrying
  /// context["application"] = name use this repository; everything else
  /// uses the default one.
  void register_application(const std::string& name,
                            ConstraintRepository* repository) {
    app_repositories_[name] = repository;
  }

  /// Driven by the middleware kernel on view changes.
  void set_degraded(bool degraded, double partition_weight);
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Read-set pruning (PR 3): invariants whose statically-computed
  /// read-set is disjoint from the invocation's write-set are skipped.
  /// Only constraints carrying a prunable AnalysisReport are affected;
  /// without analysis, validation is exhaustive as before.
  void set_pruning(bool on) { pruning_ = on; }
  [[nodiscard]] bool pruning() const { return pruning_; }

  /// Objects treated as possibly stale regardless of the replication
  /// oracle — used by the TreatAsDegraded reconciliation policy
  /// (Section 3.3): until their threats are re-evaluated, validations on
  /// them must not be trusted as full checks.
  void set_forced_stale(std::unordered_set<ObjectId> objects) {
    forced_stale_ = std::move(objects);
  }
  void clear_forced_stale() { forced_stale_.clear(); }

  // -- negotiation handler binding (Section 4.2.3) -----------------------------

  void register_negotiation_handler(TxId tx,
                                    std::shared_ptr<NegotiationHandler> h);

  // -- invocation hooks (called by the CCM interceptor) -------------------------

  void before_invocation(const Invocation& inv, ObjectAccessor& objects);
  void after_invocation(const Invocation& inv, ObjectAccessor& objects);

  // -- TransactionalResource -----------------------------------------------------

  [[nodiscard]] std::string name() const override { return "CCMgr"; }
  Vote prepare(TxId tx) override;
  void commit(TxId tx) override;
  void rollback(TxId tx) override;

  // -- reconciliation (Section 4.4) -----------------------------------------------

  struct ReconcileStats {
    std::size_t reevaluated = 0;
    std::size_t removed_satisfied = 0;
    std::size_t violations = 0;
    std::size_t resolved_by_rollback = 0;
    std::size_t resolved_immediately = 0;
    std::size_t deferred = 0;
    std::size_t postponed = 0;
    std::size_t conflict_notifications = 0;
  };

  /// Attempts rollback-based resolution of a violated threat; provided by
  /// the replication reconciler when replica history is kept.
  using TryRollback = std::function<bool(const ConsistencyThreat&)>;
  /// Whether a replica write-write conflict was detected for an object
  /// during the preceding replica reconciliation.
  using ConflictQuery = std::function<bool(ObjectId)>;

  ReconcileStats reconcile(ConstraintReconciliationHandler* handler,
                           const ConflictQuery& had_conflict = {},
                           const TryRollback& try_rollback = {});

  /// Re-validates one constraint for every given context object — required
  /// when a disabled constraint is enabled again or a new constraint is
  /// introduced at runtime (Section 3.3).  Returns the violating objects.
  std::vector<ObjectId> revalidate_for_objects(
      const std::string& constraint_name,
      const std::vector<ObjectId>& context_objects);

  /// Objects currently covered by stored threats; business operations
  /// touching them during reconciliation are still subject to threats.
  [[nodiscard]] std::unordered_set<ObjectId> threatened_objects();

  // -- statistics --------------------------------------------------------------

  struct Stats {
    std::size_t validations = 0;
    std::size_t threats_detected = 0;
    std::size_t threats_accepted = 0;
    std::size_t threats_rejected = 0;
    std::size_t violations = 0;
    /// Invariant evaluations avoided by read-set pruning.
    std::size_t evaluations_skipped = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct PendingCheck {
    Constraint* constraint;
    ObjectId context_object;
    ObjectId called_object;
  };

  struct PendingThreat {
    Constraint* constraint;
    ConsistencyThreat threat;
  };

  struct TxState {
    std::shared_ptr<NegotiationHandler> negotiation;
    std::vector<PendingCheck> pending;          // soft/async invariants
    std::vector<PendingThreat> deferred;        // deferred negotiations
    std::vector<ConsistencyThreat> staged;      // accepted threats
    std::vector<std::string> staged_removals;   // satisfied identities
  };

  /// RAII guard preventing re-entrant constraint validation when a
  /// validate() body invokes further intercepted methods (Section 5.3).
  class ValidationGuard {
   public:
    explicit ValidationGuard(bool& flag) : flag_(flag) { flag_ = true; }
    ~ValidationGuard() { flag_ = false; }
    ValidationGuard(const ValidationGuard&) = delete;
    ValidationGuard& operator=(const ValidationGuard&) = delete;

   private:
    bool& flag_;
  };

  /// Repository for the application the invocation belongs to.
  ConstraintRepository& repository_for(const Invocation& inv);

  /// Matches of `type` for the invocation's class and all its ancestors,
  /// flattened (postconditions/invariants: conjunction semantics).
  std::vector<ConstraintRepository::Match> collect_matches(
      ConstraintRepository& repository, const Invocation& inv,
      ConstraintType type);

  /// Precondition groups per hierarchy level (disjunction across levels).
  std::vector<std::vector<ConstraintRepository::Match>> precondition_groups(
      ConstraintRepository& repository, const Invocation& inv);

  /// OR semantics across levels: the call proceeds when any level's
  /// conjunction holds.
  void check_preconditions(ConstraintRepository& repository,
                           const Invocation& inv, ObjectAccessor& objects);

  /// Finds a constraint registration across all applications.
  const ConstraintRegistration* find_registration(const std::string& name);

  /// Whether an invariant validation may be skipped because the
  /// invocation provably cannot change anything the constraint reads
  /// (see docs/static_analysis.md for the soundness argument).
  bool should_skip(const ConstraintRepository::Match& match,
                   const Invocation& inv, ObjectId context_object);

  ObjectId prepare_context_object(const Invocation& inv,
                                  const ContextPreparation& prep,
                                  ObjectAccessor& objects) const;

  ConstraintValidationContext make_context(const Invocation& inv,
                                           ObjectId context_object,
                                           ObjectAccessor& objects) const;

  /// Runs validate() and derives the satisfaction degree from the
  /// staleness of the accessed objects (Fig. 4.4).
  SatisfactionDegree evaluate(Constraint& constraint,
                              ConstraintValidationContext& ctx);

  /// Full handling of one constraint check within a business operation.
  void check(Constraint& constraint, const Invocation& inv,
             ObjectId context_object, ObjectAccessor& objects);

  void handle_outcome(Constraint& constraint, SatisfactionDegree degree,
                      ConstraintValidationContext& ctx, TxId tx);

  void handle_threat(Constraint& constraint, SatisfactionDegree degree,
                     ConstraintValidationContext& ctx, TxId tx);

  /// Runs (dynamic-or-static) negotiation; on acceptance stages/persists
  /// the threat, otherwise marks the tx rollback-only and throws.
  void negotiate_threat(Constraint& constraint, ConsistencyThreat threat,
                        ConstraintValidationContext& ctx, TxId tx);

  void record_pending(TxId tx, Constraint& constraint, ObjectId context_object,
                      ObjectId called_object);

  void store_async_threat(TxId tx, Constraint& constraint,
                          ObjectId context_object);

  TxState& tx_state(TxId tx) { return tx_state_[tx]; }

  ConstraintRepository& repository_;
  ThreatStore& threats_;
  TransactionManager& tm_;
  SimClock& clock_;
  const CostModel& cost_;
  NodeId self_;

  const StalenessOracle* oracle_;
  obs::Observability* obs_ = nullptr;
  ObjectAccessor* objects_ = nullptr;
  std::function<void(const ConsistencyThreat&)> replicate_threat_;
  SatisfactionDegree default_min_ = SatisfactionDegree::Satisfied;
  ConstraintValidationContext::ObjectQuery object_query_;
  AncestryQuery ancestry_;
  NegotiationTiming negotiation_timing_ = NegotiationTiming::Immediate;

  bool degraded_ = false;
  double partition_weight_ = 1.0;
  bool pruning_ = true;
  bool in_validation_ = false;
  std::unordered_set<ObjectId> forced_stale_;

  std::unordered_map<TxId, TxState> tx_state_;
  std::map<std::string, ConstraintRepository*> app_repositories_;
  Stats stats_;

  static const AlwaysFreshOracle kFreshOracle;
};

}  // namespace dedisys
