// Constraint consistency manager (CCMgr, Section 4.2.3).
//
// The CCMgr is the new middleware service introduced by the paper.  It is
// notified before and after method invocations by the invocation-service
// interceptor, looks up affected constraints in the repository and triggers
// validation according to constraint type:
//
//   preconditions      -> before the invocation,
//   postconditions     -> after the invocation (with a @pre snapshot hook),
//   hard invariants    -> after each affected operation,
//   soft invariants    -> at transaction prepare (the CCMgr enlists as a
//                         transactional resource),
//   async invariants   -> soft in healthy mode; in degraded mode recorded
//                         as threats without validation (Section 5.5.3).
//
// In degraded mode the CCMgr gathers the objects each validation accessed,
// asks the replication service whether any were possibly stale, derives the
// satisfaction degree, negotiates arising consistency threats (dynamic
// handler > per-constraint static rule > application-wide default) and
// persists accepted threats.  During reconciliation it re-evaluates stored
// threats and drives the application's constraint reconciliation handler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "constraints/negotiation.h"
#include "constraints/repository.h"
#include "constraints/threats.h"
#include "objects/invocation.h"
#include "objects/method_context.h"
#include "obs/observability.h"
#include "runtime/runtime.h"
#include "tx/tx_manager.h"
#include "util/ids.h"
#include "util/sim_clock.h"
#include "validation/memo.h"

namespace dedisys {

/// Value-typed wiring of the CCMgr's collaborators, passed at construction
/// (or through one wire() call) instead of six order-sensitive set_*
/// calls.  Every field has a safe default: a default-constructed wiring
/// yields the same standalone CCMgr as the plain constructor.
struct CcmgrWiring {
  /// Staleness/reachability oracle; null means "always fresh"
  /// (single-node / healthy deployments).
  const StalenessOracle* oracle = nullptr;
  /// Accessor used for prepare-time and reconciliation-time validations.
  ObjectAccessor* objects = nullptr;
  /// Hook replicating an accepted threat to partition members.
  std::function<void(const ConsistencyThreat&)> threat_replicator;
  /// Application-wide fallback minimum satisfaction degree.
  SatisfactionDegree default_min = SatisfactionDegree::Satisfied;
  /// Observability hub; validations and the threat lifecycle are then
  /// recorded as trace events.
  obs::Observability* obs = nullptr;
  /// Query used by constraints without a context object ("validation
  /// starts from a set of objects obtained by a query", Section 3.2.2).
  ConstraintValidationContext::ObjectQuery object_query;
  /// Version-stamped validation memoization (docs/validation_memo.md).
  /// Off by default: memo-off runs are byte-identical to an un-memoized
  /// build.
  bool memo = false;
  /// Interference-aware evaluation scheduling (PR 8): reconciliation
  /// batches are ordered by interference-graph cluster so constraints
  /// sharing read-sets evaluate adjacently.  Off by default — the legacy
  /// `<constraint>@<object>` identity order is then used unchanged.
  bool scheduler = false;
};

/// Application callback invoked for violated constraints detected during
/// the reconciliation phase (Section 4.4).  Returning true means the
/// inconsistency is resolved now (the CCMgr revalidates); returning false
/// defers the clean-up to the application (e-mail to an operator, ...).
class ConstraintReconciliationHandler {
 public:
  virtual ~ConstraintReconciliationHandler() = default;
  virtual bool reconcile(const ConsistencyThreat& threat,
                         ConstraintValidationContext& ctx) = 0;
  /// Optional notification: a threat's constraint is satisfied but a
  /// replica conflict was involved (Section 3.3).
  virtual void on_replica_conflict_resolved(const ConsistencyThreat&) {}
};

class ConstraintConsistencyManager final : public TransactionalResource {
 public:
  ConstraintConsistencyManager(ConstraintRepository& repository,
                               ThreatStore& threats, TransactionManager& tm,
                               Runtime& rt, NodeId self);

  /// Constructs and wires in one step (the preferred form).
  ConstraintConsistencyManager(ConstraintRepository& repository,
                               ThreatStore& threats, TransactionManager& tm,
                               Runtime& rt, NodeId self, CcmgrWiring wiring)
      : ConstraintConsistencyManager(repository, threats, tm, rt, self) {
    wire(std::move(wiring));
  }

  // -- wiring ----------------------------------------------------------------

  /// Applies a complete wiring in one call; replaces whatever was wired
  /// before (a null oracle reverts to the built-in always-fresh one).
  void wire(CcmgrWiring wiring) {
    oracle_ = wiring.oracle != nullptr ? wiring.oracle : &kFreshOracle;
    objects_ = wiring.objects;
    replicate_threat_ = std::move(wiring.threat_replicator);
    default_min_ = wiring.default_min;
    obs_ = wiring.obs;
    object_query_ = std::move(wiring.object_query);
    memo_enabled_ = wiring.memo;
    scheduling_ = wiring.scheduler;
  }

  /// Class-hierarchy resolver (behavioral subtyping, Section 2.3.1):
  /// constraints of superclasses/interfaces also apply, preconditions
  /// OR'd across levels, postconditions/invariants AND'd [DL96].
  using AncestryQuery =
      std::function<std::vector<std::string>(const std::string&)>;
  void set_class_ancestry(AncestryQuery query) {
    ancestry_ = std::move(query);
  }

  /// When a threat is negotiated (Section 5.4): immediately when it
  /// arises, or deferred in a batch at transaction commit (useful for
  /// longer-lasting transactions).
  enum class NegotiationTiming { Immediate, Deferred };
  void set_negotiation_timing(NegotiationTiming t) { negotiation_timing_ = t; }

  /// Registers a per-application constraint repository (Section 5.3:
  /// "constraint names have to be unique within an application and not
  /// within the whole application server").  Invocations carrying
  /// context["application"] = name use this repository; everything else
  /// uses the default one.
  void register_application(const std::string& name,
                            ConstraintRepository* repository) {
    app_repositories_[name] = repository;
  }

  /// Driven by the middleware kernel on view changes.
  void set_degraded(bool degraded, double partition_weight);
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Read-set pruning (PR 3): invariants whose statically-computed
  /// read-set is disjoint from the invocation's write-set are skipped.
  /// Only constraints carrying a prunable AnalysisReport are affected;
  /// without analysis, validation is exhaustive as before.
  void set_pruning(bool on) { pruning_ = on; }
  [[nodiscard]] bool pruning() const { return pruning_; }

  /// Interference-aware evaluation scheduling (PR 8): when on and the
  /// repository carries a ConfigAnalysis, reconciliation orders its
  /// threat batch by interference-graph cluster (constraints sharing
  /// read-set attributes evaluate adjacently, improving memo locality).
  /// The set of evaluations and their outcomes is unchanged — only the
  /// order within the batch moves.
  void set_scheduling(bool on) { scheduling_ = on; }
  [[nodiscard]] bool scheduling() const { return scheduling_; }

  /// Version-stamped validation memoization (this PR): definite outcomes
  /// of analyzable constraints are cached keyed by (constraint, context
  /// object, fingerprint of read-set entity write stamps) and reused while
  /// no read-set entity is written.  Off by default — memo-off runs are
  /// byte-identical to an un-memoized build (see docs/validation_memo.md).
  void set_validation_memo(bool on) {
    memo_enabled_ = on;
    if (!on) memo_.clear();
  }
  [[nodiscard]] bool validation_memo() const { return memo_enabled_; }
  [[nodiscard]] const validation::ValidationMemo::Stats& memo_stats() const {
    return memo_.stats();
  }
  /// Drops cached results whose context object is `id` (entity destroyed).
  void invalidate_memo_object(ObjectId id) { memo_.invalidate_object(id); }
  /// Drops cached results of one constraint — required when a constraint
  /// name is re-registered with a different body at runtime.
  void invalidate_memo_constraint(const std::string& name) {
    memo_.invalidate_constraint(name);
  }

  /// Objects treated as possibly stale regardless of the replication
  /// oracle — used by the TreatAsDegraded reconciliation policy
  /// (Section 3.3): until their threats are re-evaluated, validations on
  /// them must not be trusted as full checks.
  void set_forced_stale(std::unordered_set<ObjectId> objects) {
    forced_stale_ = std::move(objects);
  }
  void clear_forced_stale() { forced_stale_.clear(); }

  // -- negotiation handler binding (Section 4.2.3) -----------------------------

  void register_negotiation_handler(TxId tx,
                                    std::shared_ptr<NegotiationHandler> h);

  // -- invocation hooks (called by the CCM interceptor) -------------------------

  void before_invocation(const Invocation& inv, ObjectAccessor& objects);
  void after_invocation(const Invocation& inv, ObjectAccessor& objects);

  // -- TransactionalResource -----------------------------------------------------

  [[nodiscard]] std::string name() const override { return "CCMgr"; }
  Vote prepare(TxId tx) override;
  void commit(TxId tx) override;
  void rollback(TxId tx) override;

  // -- reconciliation (Section 4.4) -----------------------------------------------

  struct ReconcileStats {
    std::size_t reevaluated = 0;
    std::size_t removed_satisfied = 0;
    std::size_t violations = 0;
    std::size_t resolved_by_rollback = 0;
    std::size_t resolved_immediately = 0;
    std::size_t deferred = 0;
    std::size_t postponed = 0;
    std::size_t conflict_notifications = 0;
    /// Batched revalidation (memo on): threats whose (constraint,
    /// fingerprint) was already evaluated and took the cached result.
    std::size_t batched = 0;
    /// Threats re-evaluated under interference-cluster ordering
    /// (scheduler on and a ConfigAnalysis attached to the repository).
    std::size_t scheduled = 0;
  };

  /// Attempts rollback-based resolution of a violated threat; provided by
  /// the replication reconciler when replica history is kept.
  using TryRollback = std::function<bool(const ConsistencyThreat&)>;
  /// Whether a replica write-write conflict was detected for an object
  /// during the preceding replica reconciliation.
  using ConflictQuery = std::function<bool(ObjectId)>;

  ReconcileStats reconcile(ConstraintReconciliationHandler* handler,
                           const ConflictQuery& had_conflict = {},
                           const TryRollback& try_rollback = {});

  /// Re-validates one constraint for every given context object — required
  /// when a disabled constraint is enabled again or a new constraint is
  /// introduced at runtime (Section 3.3).  Returns the violating objects.
  std::vector<ObjectId> revalidate_for_objects(
      const std::string& constraint_name,
      const std::vector<ObjectId>& context_objects);

  /// Objects currently covered by stored threats; business operations
  /// touching them during reconciliation are still subject to threats.
  [[nodiscard]] std::unordered_set<ObjectId> threatened_objects();

  // -- statistics --------------------------------------------------------------

  struct Stats {
    std::size_t validations = 0;
    std::size_t threats_detected = 0;
    std::size_t threats_accepted = 0;
    std::size_t threats_rejected = 0;
    std::size_t violations = 0;
    /// Invariant evaluations avoided by read-set pruning.
    std::size_t evaluations_skipped = 0;
    /// Invariant evaluations avoided because the abstract interpreter
    /// proved the constraint a tautology (PR 8).
    std::size_t evaluations_proven = 0;
    /// Cumulative ReconcileStats::scheduled across reconcile() calls.
    std::size_t reconcile_scheduled = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct PendingCheck {
    Constraint* constraint;
    ObjectId context_object;
    ObjectId called_object;
  };

  struct PendingThreat {
    Constraint* constraint;
    ConsistencyThreat threat;
  };

  struct TxState {
    std::shared_ptr<NegotiationHandler> negotiation;
    std::vector<PendingCheck> pending;          // soft/async invariants
    std::vector<PendingThreat> deferred;        // deferred negotiations
    std::vector<ConsistencyThreat> staged;      // accepted threats
    std::vector<std::string> staged_removals;   // satisfied identities
  };

  /// RAII guard preventing re-entrant constraint validation when a
  /// validate() body invokes further intercepted methods (Section 5.3).
  class ValidationGuard {
   public:
    explicit ValidationGuard(bool& flag) : flag_(flag) { flag_ = true; }
    ~ValidationGuard() { flag_ = false; }
    ValidationGuard(const ValidationGuard&) = delete;
    ValidationGuard& operator=(const ValidationGuard&) = delete;

   private:
    bool& flag_;
  };

  /// Repository for the application the invocation belongs to.
  ConstraintRepository& repository_for(const Invocation& inv);

  /// Matches of `type` for the invocation's class and all its ancestors,
  /// flattened (postconditions/invariants: conjunction semantics).
  std::vector<ConstraintRepository::Match> collect_matches(
      ConstraintRepository& repository, const Invocation& inv,
      ConstraintType type);

  /// Precondition groups per hierarchy level (disjunction across levels).
  std::vector<std::vector<ConstraintRepository::Match>> precondition_groups(
      ConstraintRepository& repository, const Invocation& inv);

  /// OR semantics across levels: the call proceeds when any level's
  /// conjunction holds.
  void check_preconditions(ConstraintRepository& repository,
                           const Invocation& inv, ObjectAccessor& objects);

  /// Finds a constraint registration across all applications.
  const ConstraintRegistration* find_registration(const std::string& name);

  /// Whether an invariant validation may be skipped because the
  /// invocation provably cannot change anything the constraint reads
  /// (see docs/static_analysis.md for the soundness argument).
  bool should_skip(const ConstraintRepository::Match& match,
                   const Invocation& inv, ObjectId context_object);

  ObjectId prepare_context_object(const Invocation& inv,
                                  const ContextPreparation& prep,
                                  ObjectAccessor& objects) const;

  ConstraintValidationContext make_context(const Invocation& inv,
                                           ObjectId context_object,
                                           ObjectAccessor& objects) const;

  /// Runs validate() and derives the satisfaction degree from the
  /// staleness of the accessed objects (Fig. 4.4).
  SatisfactionDegree evaluate(Constraint& constraint,
                              ConstraintValidationContext& ctx);

  /// Memo-aware evaluate: on a fingerprint match the cached degree is
  /// reused (no validate(), no constraint_validate cost); otherwise
  /// evaluates and caches definite outcomes.  Falls through to evaluate()
  /// whenever the memo is off or the constraint is ineligible, so memo-off
  /// behavior is byte-identical.  `hit` (optional) reports a cache hit.
  SatisfactionDegree evaluate_cached(Constraint& constraint,
                                     ConstraintValidationContext& ctx,
                                     bool* hit = nullptr);

  /// Memo eligibility gate + cache-key computation.  Returns false (no
  /// fingerprint) for opaque/unanalyzed constraints, read-sets that reach
  /// beyond the context entity's attributes (arguments), query-based
  /// contexts, unreachable context objects, and any validation under
  /// LCC/NCC semantics (degraded mode or forced-stale objects).
  bool memo_fingerprint(const Constraint& constraint,
                        ConstraintValidationContext& ctx, std::uint64_t* out);

  /// Full handling of one constraint check within a business operation.
  void check(Constraint& constraint, const Invocation& inv,
             ObjectId context_object, ObjectAccessor& objects);

  void handle_outcome(Constraint& constraint, SatisfactionDegree degree,
                      ConstraintValidationContext& ctx, TxId tx);

  void handle_threat(Constraint& constraint, SatisfactionDegree degree,
                     ConstraintValidationContext& ctx, TxId tx);

  /// Runs (dynamic-or-static) negotiation; on acceptance stages/persists
  /// the threat, otherwise marks the tx rollback-only and throws.
  void negotiate_threat(Constraint& constraint, ConsistencyThreat threat,
                        ConstraintValidationContext& ctx, TxId tx);

  void record_pending(TxId tx, Constraint& constraint, ObjectId context_object,
                      ObjectId called_object);

  void store_async_threat(TxId tx, Constraint& constraint,
                          ObjectId context_object);

  TxState& tx_state(TxId tx) { return tx_state_[tx]; }

  ConstraintRepository& repository_;
  ThreatStore& threats_;
  TransactionManager& tm_;
  Runtime& rt_;
  NodeId self_;

  const StalenessOracle* oracle_;
  obs::Observability* obs_ = nullptr;
  ObjectAccessor* objects_ = nullptr;
  std::function<void(const ConsistencyThreat&)> replicate_threat_;
  SatisfactionDegree default_min_ = SatisfactionDegree::Satisfied;
  ConstraintValidationContext::ObjectQuery object_query_;
  AncestryQuery ancestry_;
  NegotiationTiming negotiation_timing_ = NegotiationTiming::Immediate;

  bool degraded_ = false;
  double partition_weight_ = 1.0;
  bool pruning_ = true;
  bool scheduling_ = false;
  bool in_validation_ = false;
  bool memo_enabled_ = false;
  validation::ValidationMemo memo_;
  std::unordered_set<ObjectId> forced_stale_;

  std::unordered_map<TxId, TxState> tx_state_;
  std::map<std::string, ConstraintRepository*> app_repositories_;
  Stats stats_;

  static const AlwaysFreshOracle kFreshOracle;
};

}  // namespace dedisys
