// Consistency-threat negotiation (Section 3.2.1, Fig. 3.3).
//
// Two negotiation kinds decide whether an arising threat is acceptable:
//   * dynamic (algorithmic): an application-provided NegotiationHandler
//     registered with the current transaction;
//   * static (descriptive): the constraint's configured minimum
//     satisfaction degree plus optional freshness criteria.
// Dynamic negotiation takes priority over static negotiation (Section
// 3.2.1); non-tradeable constraints are rejected without negotiation.
#pragma once

#include <memory>
#include <string>

#include "constraints/constraint.h"
#include "constraints/threats.h"
#include "constraints/validation_context.h"

namespace dedisys {

struct NegotiationOutcome {
  bool accepted = false;
  /// Application data to associate with the stored threat.
  std::string application_data;
  ReconciliationInstructions instructions;
};

/// Application callback deciding on a specific consistency threat.  May be
/// registered per transaction to associate the mechanism with a use case.
class NegotiationHandler {
 public:
  virtual ~NegotiationHandler() = default;
  virtual NegotiationOutcome negotiate(const ConsistencyThreat& threat,
                                       ConstraintValidationContext& ctx) = 0;
};

/// Convenience adaptor for lambda-based negotiation handlers.
class FunctionNegotiationHandler final : public NegotiationHandler {
 public:
  using Fn = std::function<NegotiationOutcome(const ConsistencyThreat&,
                                              ConstraintValidationContext&)>;
  explicit FunctionNegotiationHandler(Fn fn) : fn_(std::move(fn)) {}

  NegotiationOutcome negotiate(const ConsistencyThreat& threat,
                               ConstraintValidationContext& ctx) override {
    return fn_(threat, ctx);
  }

 private:
  Fn fn_;
};

/// Static (descriptive) negotiation: accept when the degree is at least the
/// effective minimum (per-constraint rule or application-wide default) and
/// every possibly-stale accessed object satisfies the constraint's
/// freshness criterion for its class (Section 4.2.3).
[[nodiscard]] inline bool static_negotiation_accepts(
    const Constraint& constraint, SatisfactionDegree effective_min,
    SatisfactionDegree degree, ConstraintValidationContext& ctx,
    const StalenessOracle& oracle, SimTime now) {
  if (!at_least(degree, effective_min)) return false;
  const FreshnessCriteria& criteria = constraint.freshness_criteria();
  if (criteria.empty()) return true;
  for (ObjectId id : ctx.accessed_objects()) {
    if (!oracle.possibly_stale(id)) continue;
    const Entity& e = ctx.read(id);
    auto it = criteria.find(e.cls().name());
    if (it == criteria.end()) continue;
    const std::uint64_t gap = e.estimated_latest_version(now) - e.version();
    if (gap > it->second) return false;
  }
  return true;
}

}  // namespace dedisys
