// Exception hierarchy of the DeDiSys middleware.
//
// The paper distinguishes three failure signals surfaced to applications:
//   * ConstraintViolation      — a constraint evaluated to `false` in a
//                                situation where that is not tolerable
//                                (healthy mode, or non-tradeable constraint).
//   * ConsistencyThreatRejected— a threat arose in degraded mode and the
//                                negotiation decided not to accept it; the
//                                surrounding transaction is rolled back.
//   * ObjectUnreachable        — an affected object has no reachable replica
//                                (the NCC case of Section 3.1).
#pragma once

#include <stdexcept>
#include <string>

namespace dedisys {

/// Base class for all middleware errors.
class DedisysError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A data integrity constraint is definitely violated.
class ConstraintViolation : public DedisysError {
 public:
  explicit ConstraintViolation(const std::string& constraint_name)
      : DedisysError("constraint violated: " + constraint_name),
        constraint_name_(constraint_name) {}

  [[nodiscard]] const std::string& constraint_name() const {
    return constraint_name_;
  }

 private:
  std::string constraint_name_;
};

/// A consistency threat was rejected during negotiation.
class ConsistencyThreatRejected : public DedisysError {
 public:
  explicit ConsistencyThreatRejected(const std::string& constraint_name)
      : DedisysError("consistency threat rejected: " + constraint_name),
        constraint_name_(constraint_name) {}

  [[nodiscard]] const std::string& constraint_name() const {
    return constraint_name_;
  }

 private:
  std::string constraint_name_;
};

/// No replica of a required object is reachable in the current partition.
class ObjectUnreachable : public DedisysError {
 public:
  using DedisysError::DedisysError;
};

/// A transaction was aborted (lock conflict, rollback-only, resource veto).
class TxAborted : public DedisysError {
 public:
  using DedisysError::DedisysError;
};

/// The 2PC coordinator crashed between prepare and commit: the outcome of
/// the transaction is unknown (in doubt) until recovery runs the
/// presumed-abort protocol.
class CoordinatorCrashed : public DedisysError {
 public:
  using DedisysError::DedisysError;
};

/// Malformed configuration input (constraint descriptor files etc.).
class ConfigError : public DedisysError {
 public:
  using DedisysError::DedisysError;
};

/// A business operation touched a still-threatened object while the
/// reconciliation of that object is underway and the deployment chose the
/// blocking policy (Section 3.3).
class ReconciliationBlocked : public DedisysError {
 public:
  using DedisysError::DedisysError;
};

}  // namespace dedisys
