// Minimal leveled logging for tests and examples.
//
// Logging is off by default so benchmarks stay quiet; examples flip the
// level to Info to narrate the scenario.  Not thread-safe by design: the
// cluster simulation is single-threaded and deterministic.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace dedisys {

enum class LogLevel { Off = 0, Error = 1, Info = 2, Debug = 3 };

class Logger {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::Off;
    return lvl;
  }

  static void log(LogLevel lvl, const std::string& component,
                  const std::string& message) {
    if (static_cast<int>(lvl) > static_cast<int>(level())) return;
    const char* tag = lvl == LogLevel::Error  ? "ERROR"
                      : lvl == LogLevel::Info ? "INFO "
                                              : "DEBUG";
    std::clog << "[" << tag << "] " << component << ": " << message << '\n';
  }
};

#define DEDISYS_LOG_INFO(component, msg)                        \
  do {                                                          \
    if (::dedisys::Logger::level() >= ::dedisys::LogLevel::Info) { \
      std::ostringstream oss__;                                 \
      oss__ << msg;                                             \
      ::dedisys::Logger::log(::dedisys::LogLevel::Info, component, \
                             oss__.str());                      \
    }                                                           \
  } while (0)

#define DEDISYS_LOG_DEBUG(component, msg)                        \
  do {                                                           \
    if (::dedisys::Logger::level() >= ::dedisys::LogLevel::Debug) { \
      std::ostringstream oss__;                                  \
      oss__ << msg;                                              \
      ::dedisys::Logger::log(::dedisys::LogLevel::Debug, component, \
                             oss__.str());                       \
    }                                                            \
  } while (0)

}  // namespace dedisys
