// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dedisys {

/// Splits `text` on `sep`, keeping empty fields.
inline std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Removes leading/trailing ASCII whitespace.
inline std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const auto begin = s.find_first_not_of(ws);
  if (begin == std::string_view::npos) return {};
  const auto end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

/// Joins `parts` with `sep`.
inline std::string join(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace dedisys
