// Deterministic simulated clock.
//
// Chapter-5 experiments in the paper depend on relative costs of network
// and database operations rather than on CPU speed.  The discrete-event
// simulation therefore advances a virtual clock by configurable amounts;
// benchmark harnesses report operations per *simulated* second, which makes
// runs deterministic and hardware-independent.
#pragma once

#include <cstdint>

namespace dedisys {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in simulated microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration sim_us(std::int64_t n) { return n; }
constexpr SimDuration sim_ms(std::int64_t n) { return n * 1000; }
constexpr SimDuration sim_sec(std::int64_t n) { return n * 1000 * 1000; }

/// Read-only source of the current time in microseconds.  Implemented by
/// the virtual SimClock and by the execution runtimes (src/runtime): a
/// deterministic-sim runtime reads the virtual clock, a wall-clock runtime
/// reads steady_clock elapsed time.  Components that only need "what time
/// is it" (span guards, trace stamps) take a TimeSource so they work on
/// either backend.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// A monotonically advancing virtual clock shared by all simulated
/// components of a cluster.
class SimClock final : public TimeSource {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }

  /// Advances the clock; negative durations are ignored.
  void advance(SimDuration d) {
    if (d > 0) now_ += d;
  }

  /// Moves the clock to an absolute point, never backwards.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  void reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace dedisys
