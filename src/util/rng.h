// Deterministic random number generation.
//
// All stochastic behaviour in workloads and failure injection flows through
// a seeded SplitMix64/xoshiro-style generator so that every test and
// benchmark run is reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace dedisys {

/// Small, fast, seedable PRNG (SplitMix64).  Satisfies
/// UniformRandomBitGenerator so it can be used with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace dedisys
