// Strong identifier types used across the DeDiSys middleware.
//
// Every subsystem refers to nodes, logical objects, transactions, views and
// consistency threats by value-typed identifiers.  Using distinct wrapper
// types (rather than bare integers) prevents accidentally passing a
// transaction id where a node id is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace dedisys {

/// CRTP base for strongly-typed 64-bit identifiers.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }

  static constexpr std::uint64_t kInvalid = UINT64_MAX;

 private:
  std::uint64_t value_ = kInvalid;
};

struct NodeIdTag {};
struct ObjectIdTag {};
struct TxIdTag {};
struct ViewIdTag {};
struct ThreatIdTag {};

/// Identifies a server node in the distributed system.
using NodeId = StrongId<NodeIdTag>;
/// Identifies a logical (replicated) object; replicas share the ObjectId.
using ObjectId = StrongId<ObjectIdTag>;
/// Identifies a distributed transaction.
using TxId = StrongId<TxIdTag>;
/// Identifies a group-membership view installed by the GMS.
using ViewId = StrongId<ViewIdTag>;
/// Identifies a stored consistency threat.
using ThreatId = StrongId<ThreatIdTag>;

template <typename Tag>
std::string to_string(StrongId<Tag> id) {
  return id.valid() ? std::to_string(id.value()) : std::string("<invalid>");
}

}  // namespace dedisys

namespace std {
template <typename Tag>
struct hash<dedisys::StrongId<Tag>> {
  size_t operator()(dedisys::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
