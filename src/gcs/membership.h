// Group membership service (GMS).
//
// One instance runs per node.  It watches the runtime for
// topology changes, derives the node's current view and notifies listeners
// (the replication service, the middleware kernel).  Node weights support
// the weighted-partition mechanism of Section 5.5.2: the GMS computes the
// current partition's weight relative to the whole system, which
// partition-sensitive constraints use to apportion partitionable resources.
#pragma once

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gcs/view.h"
#include "obs/observability.h"
#include "runtime/runtime.h"
#include "util/ids.h"

namespace dedisys {

/// Static per-node weights shared by all GMS instances of a cluster
/// (Gifford-style weighted voting, Section 5.5.2).
class NodeWeights {
 public:
  void set(NodeId node, double weight) { weights_[node] = weight; }

  [[nodiscard]] double of(NodeId node) const {
    auto it = weights_.find(node);
    return it == weights_.end() ? 1.0 : it->second;
  }

  [[nodiscard]] double total(const std::vector<NodeId>& nodes) const {
    double sum = 0;
    for (NodeId n : nodes) sum += of(n);
    return sum;
  }

 private:
  std::unordered_map<NodeId, double> weights_;
};

class GroupMembershipService : public TopologyListener {
 public:
  /// `legacy_unidirectional_views` restores the pre-gray-failure behavior
  /// of deriving views from outbound reachability alone.  Under a one-way
  /// cut that lets two nodes of the same strongly-connected component elect
  /// different primaries (split brain); it exists only so tests can pin the
  /// bug this flag's default fixes.
  GroupMembershipService(Runtime& rt, NodeId self,
                         std::shared_ptr<NodeWeights> weights,
                         bool legacy_unidirectional_views = false)
      : rt_(rt),
        self_(self),
        weights_(std::move(weights)),
        legacy_unidirectional_(legacy_unidirectional_views) {
    rt_.subscribe(this);
    recompute(/*force=*/true);
  }

  ~GroupMembershipService() override { rt_.unsubscribe(this); }

  GroupMembershipService(const GroupMembershipService&) = delete;
  GroupMembershipService& operator=(const GroupMembershipService&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const View& current_view() const { return view_; }

  void subscribe(ViewListener* listener) { listeners_.push_back(listener); }

  /// Wires the cluster's observability hub; installed views are then
  /// recorded as view.change trace events.  The already-installed view is
  /// announced immediately: the initial recompute happens in the
  /// constructor, before wiring, and offline trace analysis needs every
  /// node's baseline membership to judge later divergence.
  void set_observability(obs::Observability* obs) {
    obs_ = obs;
    record_view();
  }

  void on_topology_changed() override { recompute(/*force=*/false); }

 private:
  void record_view() {
    if (!obs::on(obs_) || !view_.id.valid()) return;
    std::string members;
    for (NodeId m : view_.members) {
      if (!members.empty()) members += ',';
      members += to_string(m);
    }
    obs_->event(rt_.now(), obs::TraceEventKind::ViewChange, self_,
                {}, {}, "view " + to_string(view_.id),
                "members={" + members + "} complete=" +
                    (view_.complete ? "true" : "false"));
  }

  void recompute(bool force) {
    // Views must contain only *mutually* reachable nodes: under a one-way
    // cut, outbound reachability alone lets a node that cannot send to
    // the primary form a smaller view and elect a second primary inside
    // the same strongly-connected component.
    std::vector<NodeId> members = legacy_unidirectional_
                                      ? rt_.legacy_membership_set(self_)
                                      : rt_.membership_set(self_);
    std::sort(members.begin(), members.end());
    if (!force && members == view_.members) return;

    View previous = view_;
    view_.id = ViewId{next_view_id_++};
    view_.members = std::move(members);
    view_.complete = view_.members.size() == rt_.nodes().size();
    const double total = weights_->total(rt_.nodes());
    view_.weight_fraction =
        total > 0 ? weights_->total(view_.members) / total : 1.0;
    record_view();
    if (!force) {
      for (auto* l : listeners_) l->on_view_installed(view_, previous);
    }
  }

  Runtime& rt_;
  NodeId self_;
  std::shared_ptr<NodeWeights> weights_;
  bool legacy_unidirectional_ = false;
  obs::Observability* obs_ = nullptr;
  View view_;
  std::uint64_t next_view_id_ = 1;
  std::vector<ViewListener*> listeners_;
};

}  // namespace dedisys
