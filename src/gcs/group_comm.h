// Group communication primitives (Spread substitute).
//
// Update propagation in the replication service uses a synchronous, acked
// multicast: the primary sends state to all reachable backups and waits for
// confirmations (Section 4.3).  Because the whole cluster lives in one
// process, "delivery" is a direct call per receiver; this class contributes
// the cost accounting and the reachability filtering.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/network.h"
#include "util/ids.h"

namespace dedisys {

class GroupCommunication {
 public:
  explicit GroupCommunication(SimNetwork& net) : net_(net) {}

  /// Synchronous acked multicast: invokes `deliver(node)` for every
  /// reachable member other than `from`, charging multicast plus one
  /// aggregate confirmation round.  Returns the number of nodes reached.
  std::size_t multicast(NodeId from, const std::vector<NodeId>& members,
                        const std::function<void(NodeId)>& deliver) {
    const std::size_t reached = net_.charge_multicast(from, members);
    for (NodeId m : members) {
      if (m != from && net_.reachable(from, m)) deliver(m);
    }
    if (reached > 0) {
      // Confirmation messages from the backups travel back to the primary
      // in parallel; charge a single response latency.
      net_.clock().advance(net_.cost().rpc_latency);
    }
    return reached;
  }

  /// Synchronous point-to-point request; returns false when unreachable.
  bool send(NodeId from, NodeId to, const std::function<void()>& deliver) {
    if (!net_.charge_rpc(from, to)) return false;
    deliver();
    if (from != to) net_.clock().advance(net_.cost().rpc_latency);  // reply
    return true;
  }

  SimNetwork& network() { return net_; }

 private:
  SimNetwork& net_;
};

}  // namespace dedisys
