// Group communication primitives (Spread substitute).
//
// Update propagation in the replication service uses a synchronous, acked
// multicast: the primary sends state to all reachable backups and waits for
// confirmations (Section 4.3).  "Delivery" is `Runtime::run_on(receiver)`:
// a direct call within the sender's stack on the sim backend, a mailbox
// round to the receiver's worker thread on the threaded backend; this class
// contributes the cost accounting and the reachability filtering.
//
// On fair-lossy links (Section 1.1) messages may be dropped, delayed or
// duplicated, so the primitives implement timeout/retry with exponential
// backoff and idempotent delivery: every logical message carries an id, a
// lost request or lost acknowledgement triggers a retransmission (charged
// as a point-to-point round plus backoff), and duplicate deliveries —
// whether from in-flight duplication or from an ack-loss retransmission —
// are suppressed before reaching the handler.  With no link faults
// configured the fast path charges exactly the fault-free costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/observability.h"
#include "runtime/runtime.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

class GroupCommunication {
 public:
  /// Retransmission policy for lost messages and lost acknowledgements.
  struct RetryPolicy {
    std::size_t max_attempts = 4;         ///< total tries per receiver
    SimDuration base_backoff = sim_us(500);
    double multiplier = 2.0;              ///< exponential backoff factor
  };

  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t multicasts = 0;
    std::uint64_t retries = 0;                 ///< retransmissions issued
    std::uint64_t gave_up = 0;                 ///< receivers abandoned
    std::uint64_t duplicates_suppressed = 0;   ///< idempotent-delivery hits
    std::uint64_t reordered = 0;               ///< multicasts shuffled
  };

  explicit GroupCommunication(Runtime& rt) : rt_(rt) {}

  /// Wires the cluster's observability hub (msg.retried / msg.deduped).
  void set_observability(obs::Observability* obs) { obs_ = obs; }

  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Synchronous acked multicast: invokes `deliver(node)` on every
  /// reachable member other than `from` (in the receiver's execution
  /// context), charging multicast plus one aggregate confirmation round.
  /// Lost per-receiver deliveries are retransmitted point-to-point.
  /// Returns the number of nodes that ultimately received the message.
  std::size_t multicast(NodeId from, const std::vector<NodeId>& members,
                        const std::function<void(NodeId)>& deliver) {
    // Network span: every per-receiver delivery — including the retry and
    // dedup legs and whatever `deliver` triggers on the receiver (backup
    // applies run inside this call) — joins the caller's trace.
    obs::SpanGuard span_guard(obs_, rt_, "gcs.multicast", from);
    ++stats_.multicasts;
    const std::size_t reached = rt_.charge_multicast(from, members);
    std::vector<NodeId> targets;
    for (NodeId m : members) {
      if (m != from && rt_.reachable(from, m)) targets.push_back(m);
    }
    if (rt_.reorder_receivers(from, targets)) ++stats_.reordered;
    const std::uint64_t msg = next_msg_id_++;
    std::unordered_set<std::uint64_t> seen;
    std::size_t delivered = 0;
    for (NodeId m : targets) {
      if (deliver_with_retry(from, m, msg, seen,
                             /*first_attempt_charged=*/true,
                             [&] { deliver(m); })) {
        ++delivered;
      }
    }
    if (reached > 0) {
      // Confirmation messages from the backups travel back to the primary
      // in parallel; charge a single response latency — the slowest
      // return path when gray failures (slow nodes, relayed links) apply.
      SimDuration confirm = rt_.cost().rpc_latency;
      for (NodeId t : targets) {
        const SimDuration leg = rt_.rpc_cost(t, from);
        if (leg > confirm) confirm = leg;
      }
      rt_.charge(confirm);
    }
    return delivered;
  }

  /// Synchronous point-to-point request; returns false when unreachable
  /// (a partition is not retried — only message loss on live links is).
  bool send(NodeId from, NodeId to, const std::function<void()>& deliver) {
    obs::SpanGuard span_guard(obs_, rt_, "gcs.send", from);
    ++stats_.sends;
    if (!rt_.reachable(from, to)) return false;
    if (from == to) {
      rt_.run_on(to, deliver);
      return true;
    }
    const std::uint64_t msg = next_msg_id_++;
    std::unordered_set<std::uint64_t> seen;
    return deliver_with_retry(from, to, msg, seen,
                              /*first_attempt_charged=*/false, deliver);
  }

  Runtime& runtime() { return rt_; }

 private:
  /// Delivers one logical message to one receiver with retransmission on
  /// request or acknowledgement loss.  `first_attempt_charged` marks the
  /// first request leg as already paid for (multicast base cost); every
  /// retransmission is charged as a point-to-point round plus backoff.
  /// Returns true when the payload reached the receiver at least once.
  bool deliver_with_retry(NodeId from, NodeId to, std::uint64_t msg,
                          std::unordered_set<std::uint64_t>& seen,
                          bool first_attempt_charged,
                          const std::function<void()>& deliver) {
    bool delivered_any = false;
    for (std::size_t attempt = 1;; ++attempt) {
      const bool charged = first_attempt_charged && attempt == 1;
      Delivery request = rt_.delivery_verdict(from, to);
      if (!charged) {
        rt_.charge(rt_.rpc_cost(from, to) + request.extra_delay);
      } else if (request.extra_delay > 0) {
        rt_.charge(request.extra_delay);
      }
      if (request.delivered) {
        for (std::size_t c = 0; c < request.copies; ++c) {
          deliver_once(msg, to, seen, deliver);
        }
        delivered_any = true;
        Delivery ack = rt_.delivery_verdict(to, from);
        if (!charged) {
          rt_.charge(rt_.rpc_cost(to, from) + ack.extra_delay);
        } else if (ack.extra_delay > 0) {
          rt_.charge(ack.extra_delay);
        }
        if (ack.delivered) return true;
        // Lost acknowledgement: the sender cannot distinguish this from a
        // lost request and retransmits; dedup makes the retry idempotent.
      }
      if (attempt >= retry_.max_attempts) {
        ++stats_.gave_up;
        return delivered_any;
      }
      ++stats_.retries;
      if (obs::on(obs_)) {
        obs_->event(rt_.now(), obs::TraceEventKind::MsgRetried, from,
                    {}, {}, "gc",
                    "msg " + std::to_string(msg) + " -> node " + to_string(to) +
                        " attempt " + std::to_string(attempt + 1));
      }
      rt_.charge(backoff_delay(attempt));
    }
  }

  void deliver_once(std::uint64_t msg, NodeId to,
                    std::unordered_set<std::uint64_t>& seen,
                    const std::function<void()>& deliver) {
    if (!seen.insert(to.value()).second) {
      ++stats_.duplicates_suppressed;
      if (obs::on(obs_)) {
        obs_->event(rt_.now(), obs::TraceEventKind::MsgDeduped, to,
                    {}, {}, "gc", "msg " + std::to_string(msg));
      }
      return;
    }
    rt_.run_on(to, deliver);
  }

  [[nodiscard]] SimDuration backoff_delay(std::size_t attempt) const {
    double d = static_cast<double>(retry_.base_backoff);
    for (std::size_t i = 1; i < attempt; ++i) d *= retry_.multiplier;
    return static_cast<SimDuration>(d);
  }

  Runtime& rt_;
  obs::Observability* obs_ = nullptr;
  RetryPolicy retry_;
  Stats stats_;
  std::uint64_t next_msg_id_ = 1;
};

}  // namespace dedisys
