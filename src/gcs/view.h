// Group-membership views.
//
// A view is the set of nodes a given node can currently communicate with.
// View changes are the signal that moves the system between the three major
// states of Figure 1.4: healthy (full view), degraded (partial view) and
// reconciliation (previously missing nodes re-appear in the view).
#pragma once

#include <algorithm>
#include <vector>

#include "util/ids.h"

namespace dedisys {

struct View {
  ViewId id;
  /// Members of this view, sorted ascending by NodeId.
  std::vector<NodeId> members;
  /// True when the view covers every registered node (healthy system).
  bool complete = false;
  /// This partition's share of the total node weight (Section 5.5.2),
  /// in (0, 1].  1.0 in a healthy system.
  double weight_fraction = 1.0;

  [[nodiscard]] bool contains(NodeId node) const {
    return std::binary_search(members.begin(), members.end(), node);
  }

  /// Deterministic coordinator choice: the smallest member id.
  [[nodiscard]] NodeId coordinator() const { return members.front(); }

  /// Members present in this view but absent from `previous` — the
  /// "joined nodes" that trigger the reconciliation phase.
  [[nodiscard]] std::vector<NodeId> joined_since(const View& previous) const {
    std::vector<NodeId> out;
    std::set_difference(members.begin(), members.end(),
                        previous.members.begin(), previous.members.end(),
                        std::back_inserter(out));
    return out;
  }
};

/// Observer of view installations on a particular node.
class ViewListener {
 public:
  virtual ~ViewListener() = default;
  virtual void on_view_installed(const View& installed,
                                 const View& previous) = 0;
};

}  // namespace dedisys
