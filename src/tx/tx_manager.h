// Distributed transaction manager (JBoss TS substitute).
//
// Provides flat transactions with:
//   * resource enlistment and two-phase commit,
//   * a rollback-only flag (set by the CCMgr on violations / rejected
//     threats),
//   * exclusive per-object locks,
//   * undo actions (entity state restoration on rollback) and post-commit
//     actions (threat flushing, update propagation bookkeeping).
//
// Atomicity, isolation and durability stay strictly bound to transactions;
// constraint consistency and replication operate on top of these "AID"
// transactions (Fig. 1.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/observability.h"
#include "runtime/runtime.h"
#include "sim/cost_model.h"
#include "tx/resource.h"
#include "util/errors.h"
#include "util/ids.h"
#include "util/sim_clock.h"

namespace dedisys {

enum class TxStatus {
  Active,
  RollbackOnly,
  Committed,
  RolledBack,
  /// The coordinator crashed after phase 1: resources are prepared, locks
  /// are held, the decision is lost.  Resolved by recover_in_doubt()
  /// running the presumed-abort protocol.
  InDoubt,
};

class Transaction {
 public:
  explicit Transaction(TxId id) : id_(id) {}

  [[nodiscard]] TxId id() const { return id_; }
  [[nodiscard]] TxStatus status() const { return status_; }
  [[nodiscard]] bool finished() const {
    return status_ == TxStatus::Committed || status_ == TxStatus::RolledBack;
  }

 private:
  friend class TransactionManager;

  TxId id_;
  TxStatus status_ = TxStatus::Active;
  std::vector<TransactionalResource*> resources_;
  std::vector<std::function<void()>> undo_actions_;
  std::vector<std::function<void()>> post_commit_actions_;
  std::unordered_set<ObjectId> locks_;
};

class TransactionManager {
 public:
  explicit TransactionManager(Runtime& rt) : rt_(&rt) {}

  /// Wires the cluster's observability hub (2PC trace events + commit
  /// latency histograms).  Optional; null leaves the manager untraced.
  void set_observability(obs::Observability* obs) { obs_ = obs; }

  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t presumed_aborts = 0;  ///< in-doubt txs resolved by recovery
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fault-injection hook: consulted between 2PC phase 1 and phase 2.
  /// Returning true simulates a coordinator crash at the most dangerous
  /// point — all resources prepared, decision not yet announced.  The
  /// transaction is left InDoubt (locks held, resources prepared) and
  /// commit() throws CoordinatorCrashed.
  void set_crash_point(std::function<bool(TxId)> crash_point) {
    crash_point_ = std::move(crash_point);
  }

  /// Coordinator recovery (presumed abort, the JBoss TS default): without a
  /// durable commit record, every in-doubt transaction is rolled back —
  /// prepared resources are released and locks dropped, so a client retry
  /// can succeed.  Returns the number of transactions resolved.
  std::size_t recover_in_doubt() {
    Runtime::Section section(*rt_);
    std::vector<TxId> pending;
    for (auto& [id, tx] : txs_) {
      if (tx->status_ == TxStatus::InDoubt) pending.push_back(id);
    }
    std::sort(pending.begin(), pending.end());
    for (TxId id : pending) {
      Transaction& tx = *txs_.at(id);
      do_rollback(tx);
      ++stats_.presumed_aborts;
      if (obs::on(obs_)) {
        obs_->event(rt_->now(), obs::TraceEventKind::TxAbort, {}, {}, id,
                    "2pc", "presumed abort after coordinator restart");
      }
    }
    return pending.size();
  }

  [[nodiscard]] std::size_t in_doubt_count() const {
    std::size_t n = 0;
    for (const auto& [id, tx] : txs_) {
      if (tx->status_ == TxStatus::InDoubt) ++n;
    }
    return n;
  }

  [[nodiscard]] bool holds_locks(TxId id) {
    return !get(id).locks_.empty();
  }

  // -- lifecycle ------------------------------------------------------------

  TxId begin() {
    Runtime::Section section(*rt_);
    rt_->charge(rt_->cost().tx_begin);
    const TxId id{next_id_++};
    txs_.emplace(id, std::make_unique<Transaction>(id));
    return id;
  }

  [[nodiscard]] Transaction& get(TxId id) {
    auto it = txs_.find(id);
    if (it == txs_.end()) throw TxAborted("unknown transaction");
    return *it->second;
  }

  [[nodiscard]] bool exists(TxId id) const { return txs_.count(id) != 0; }

  // -- enlistment ------------------------------------------------------------

  /// Enlists a resource once per transaction.
  void enlist(TxId id, TransactionalResource* resource) {
    Transaction& tx = get(id);
    for (auto* r : tx.resources_) {
      if (r == resource) return;
    }
    tx.resources_.push_back(resource);
  }

  /// Registers an action to run (in reverse order) if the tx rolls back.
  void on_rollback(TxId id, std::function<void()> undo) {
    get(id).undo_actions_.push_back(std::move(undo));
  }

  /// Registers an action to run after a successful commit.
  void after_commit(TxId id, std::function<void()> action) {
    get(id).post_commit_actions_.push_back(std::move(action));
  }

  // -- rollback-only ----------------------------------------------------------

  void set_rollback_only(TxId id) {
    Transaction& tx = get(id);
    if (tx.status_ == TxStatus::Active) tx.status_ = TxStatus::RollbackOnly;
  }

  [[nodiscard]] bool is_rollback_only(TxId id) {
    return get(id).status_ == TxStatus::RollbackOnly;
  }

  // -- locking ----------------------------------------------------------------

  /// Acquires an exclusive lock; throws TxAborted on conflict with another
  /// live transaction (no deadlock-prone waiting in the simulation).
  void lock(TxId id, ObjectId object) {
    Transaction& tx = get(id);
    auto holder = lock_table_.find(object);
    if (holder != lock_table_.end() && holder->second != id) {
      throw TxAborted("lock conflict on object " + to_string(object));
    }
    lock_table_[object] = id;
    tx.locks_.insert(object);
  }

  [[nodiscard]] bool is_locked_by_other(TxId id, ObjectId object) const {
    auto holder = lock_table_.find(object);
    return holder != lock_table_.end() && holder->second != id;
  }

  // -- completion ---------------------------------------------------------------

  /// Two-phase commit.  Throws TxAborted (after rolling back) when the
  /// transaction is rollback-only or any resource votes Rollback.
  void commit(TxId id) {
    Runtime::Section section(*rt_);
    Transaction& tx = get(id);
    if (tx.finished()) throw TxAborted("transaction already finished");
    if (tx.status_ == TxStatus::RollbackOnly) {
      do_rollback(tx);
      throw TxAborted("transaction marked rollback-only");
    }

    const SimTime commit_start = rt_->now();
    // 2PC span: prepare/commit/abort events plus the post-commit threat
    // flushing and propagations attach to the committing invocation's trace.
    obs::SpanGuard span_guard(obs_, *rt_, "2pc", {}, {}, id);
    // Phase 1: prepare.
    if (obs::on(obs_)) {
      obs_->event(rt_->now(), obs::TraceEventKind::TxPrepare, {}, {}, id,
                  "2pc", std::to_string(tx.resources_.size()) + " resources");
    }
    for (auto* r : tx.resources_) {
      rt_->charge(rt_->cost().tx_commit_per_resource);
      if (r->prepare(id) == Vote::Rollback ||
          tx.status_ == TxStatus::RollbackOnly) {
        do_rollback(tx);
        throw TxAborted("resource " +
                        std::string(r != nullptr ? r->name() : "?") +
                        " vetoed commit");
      }
    }
    // Coordinator crash window: every participant is prepared but the
    // commit decision has not been announced (Section 1.1 pause-crash).
    if (crash_point_ && crash_point_(id)) {
      tx.status_ = TxStatus::InDoubt;
      throw CoordinatorCrashed("coordinator crashed after prepare of tx " +
                               to_string(id));
    }
    // Phase 2: commit.
    for (auto* r : tx.resources_) {
      rt_->charge(rt_->cost().tx_commit_per_resource);
      r->commit(id);
    }
    tx.status_ = TxStatus::Committed;
    ++stats_.commits;
    release_locks(tx);
    auto actions = std::move(tx.post_commit_actions_);
    tx.post_commit_actions_.clear();
    for (auto& a : actions) a();
    if (obs::on(obs_)) {
      obs_->event(rt_->now(), obs::TraceEventKind::TxCommit, {}, {}, id,
                  "2pc");
      obs_->latency("tx.commit", rt_->now() - commit_start);
    }
  }

  void rollback(TxId id) {
    Runtime::Section section(*rt_);
    Transaction& tx = get(id);
    if (tx.finished()) return;
    do_rollback(tx);
  }

 private:
  void do_rollback(Transaction& tx) {
    for (auto* r : tx.resources_) r->rollback(tx.id_);
    for (auto it = tx.undo_actions_.rbegin(); it != tx.undo_actions_.rend();
         ++it) {
      (*it)();
    }
    tx.undo_actions_.clear();
    tx.status_ = TxStatus::RolledBack;
    ++stats_.aborts;
    release_locks(tx);
    if (obs::on(obs_)) {
      obs_->event(rt_->now(), obs::TraceEventKind::TxAbort, {}, {}, tx.id_,
                  "2pc");
    }
  }

  void release_locks(Transaction& tx) {
    for (ObjectId o : tx.locks_) {
      auto holder = lock_table_.find(o);
      if (holder != lock_table_.end() && holder->second == tx.id_) {
        lock_table_.erase(holder);
      }
    }
    tx.locks_.clear();
  }

  Runtime* rt_;
  obs::Observability* obs_ = nullptr;
  std::function<bool(TxId)> crash_point_;
  Stats stats_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<TxId, std::unique_ptr<Transaction>> txs_;
  std::unordered_map<ObjectId, TxId> lock_table_;
};

/// RAII transaction scope: rolls back unless commit() was called.
class TxScope {
 public:
  explicit TxScope(TransactionManager& tm) : tm_(&tm), id_(tm.begin()) {}

  TxScope(const TxScope&) = delete;
  TxScope& operator=(const TxScope&) = delete;

  ~TxScope() {
    if (!done_) {
      try {
        tm_->rollback(id_);
      } catch (...) {  // NOLINT(bugprone-empty-catch) — dtor must not throw
      }
    }
  }

  [[nodiscard]] TxId id() const { return id_; }

  void commit() {
    done_ = true;
    tm_->commit(id_);
  }

  void rollback() {
    done_ = true;
    tm_->rollback(id_);
  }

 private:
  TransactionManager* tm_;
  TxId id_;
  bool done_ = false;
};

}  // namespace dedisys
