// Transactional resource interface (XA analogue).
//
// The CCMgr registers itself as a transactional resource so that soft
// invariant constraints are validated during prepare() — any violation or
// rejected threat turns the transaction rollback-only before commit
// (Section 4.2.3).
#pragma once

#include <string>

#include "util/ids.h"

namespace dedisys {

enum class Vote { Commit, Rollback };

class TransactionalResource {
 public:
  virtual ~TransactionalResource() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Phase 1 of two-phase commit.  A Rollback vote aborts the transaction.
  virtual Vote prepare(TxId tx) = 0;

  /// Phase 2: make the work durable.  Must not fail.
  virtual void commit(TxId tx) = 0;

  /// Undo any transaction-scoped work.
  virtual void rollback(TxId tx) = 0;
};

}  // namespace dedisys
