// Discrete-event queue for deferred work.
//
// Most protocol interactions in the paper are synchronous (blocking
// negotiation, synchronous update propagation), but deferred constraint
// reconciliation and asynchronous application notifications run "later".
// The event queue schedules such work at virtual timestamps and drains it
// deterministically (FIFO among events with equal timestamps).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/sim_clock.h"

namespace dedisys {

class EventQueue {
 public:
  explicit EventQueue(SimClock& clock) : clock_(clock) {}

  /// Schedules `fn` to run `delay` after the current virtual time.
  void schedule_in(SimDuration delay, std::function<void()> fn) {
    schedule_at(clock_.now() + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Schedules `fn` at an absolute virtual time (clamped to now).
  void schedule_at(SimTime when, std::function<void()> fn) {
    if (when < clock_.now()) when = clock_.now();
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

  /// Runs a single event (if any), advancing the clock to its timestamp.
  bool run_one() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    clock_.advance_to(ev.when);
    ev.fn();
    return true;
  }

  /// Drains every event, including events scheduled while draining.
  void run_all() {
    while (run_one()) {
    }
  }

  /// Runs events with timestamp <= `until`, then advances the clock there.
  void run_until(SimTime until) {
    while (!queue_.empty() && queue_.top().when <= until) {
      run_one();
    }
    clock_.advance_to(until);
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  SimClock& clock_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dedisys
