// Cost model for the discrete-event simulation.
//
// The paper's Chapter-5 measurements were taken on 2–3 GHz machines with a
// 100 MBit LAN and MySQL persistence.  We replace that testbed with a
// virtual clock and a table of relative costs.  The *shape* of the results
// (synchronous update propagation dominating writes, reads staying local,
// threat persistence being expensive) follows from these relative costs,
// which are chosen to mirror a LAN + disk-backed RDBMS:
//   - a point-to-point message is ~hundreds of microseconds,
//   - a durable database write is ~1 ms (dominates everything else),
//   - in-process work (interception, constraint lookup) is ~microseconds.
#pragma once

#include "util/sim_clock.h"

namespace dedisys {

/// Scales a nominal cost by a gray-failure slowdown factor (the
/// `fault::SlowNode` multiplier: the node is alive but every message leg
/// touching it is this much slower).  Factors at or below 1.0 return the
/// duration untouched with no floating-point arithmetic, so runs without
/// slow nodes stay byte-identical to builds without this feature.
[[nodiscard]] constexpr SimDuration scaled_cost(SimDuration d, double factor) {
  return factor <= 1.0
             ? d
             : static_cast<SimDuration>(static_cast<double>(d) * factor);
}

struct CostModel {
  // -- network ------------------------------------------------------------
  /// One-way latency of a point-to-point message between reachable nodes.
  SimDuration rpc_latency = sim_us(250);
  /// Fixed cost of initiating a multicast (marshalling + group send).
  SimDuration multicast_base = sim_us(800);
  /// Additional cost per receiver for a synchronous (acked) multicast.
  SimDuration multicast_per_receiver = sim_us(1500);

  // -- persistence ----------------------------------------------------------
  /// Durable insert/update of one record (MySQL-backed in the paper).
  SimDuration db_write = sim_us(1000);
  /// Read of one record; cheaper than a write (buffer pool hit).
  SimDuration db_read = sim_us(150);
  /// Durable delete of one record.
  SimDuration db_delete = sim_us(800);

  // -- middleware ---------------------------------------------------------
  /// Container overhead per remote invocation: proxy, security,
  /// transaction association, entity-bean locking.
  SimDuration invocation_overhead = sim_us(3400);
  /// CCMgr interception + cached repository lookup per invocation.
  SimDuration constraint_lookup = sim_us(60);
  /// Executing one application-provided validate() body.
  SimDuration constraint_validate = sim_us(10);
  /// One negotiation callback round (in-process handler).
  SimDuration negotiation_callback = sim_us(150);
  /// Detecting and processing a consistency threat before negotiation:
  /// gathering accessed objects, querying the replication manager for
  /// staleness, linking against already-recorded threats (Section 5.2).
  SimDuration threat_detection = sim_us(5000);
  /// AOP interception of a nested (in-container) invocation.
  SimDuration aop_interception = sim_us(20);

  // -- transactions -------------------------------------------------------
  /// Starting a distributed transaction.
  SimDuration tx_begin = sim_us(120);
  /// Two-phase-commit cost per enlisted resource.
  SimDuration tx_commit_per_resource = sim_us(180);

  // -- replication --------------------------------------------------------
  /// Bookkeeping to persist replica metadata on create (JNDI name, key,
  /// serialized creation request) — database writes plus packing.
  SimDuration replica_create_bookkeeping = sim_us(5500);
  /// Extracting + packing entity state for update propagation, plus
  /// persisting per-write replica version metadata.
  SimDuration state_extraction = sim_us(2500);
  /// Applying a propagated update on the backups; the backups process the
  /// message in parallel (Section 5.1), so this is charged once per
  /// propagation, not per receiver.
  SimDuration backup_apply = sim_us(6000);
  /// Persisting one historical replica state during degraded mode.
  SimDuration history_write = sim_us(900);
  /// Per-invocation overhead of the ADAPT replication framework's
  /// client/server component monitors (22% of the 27% "empty method"
  /// loss in Section 5.1 stems from ADAPT).
  SimDuration adapt_overhead = sim_us(900);
};

}  // namespace dedisys
