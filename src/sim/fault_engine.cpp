#include "sim/fault_engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>

#include "util/errors.h"
#include "util/rng.h"

namespace dedisys {

void FaultPlan::sort() {
  std::stable_sort(
      actions.begin(), actions.end(),
      [](const TimedFault& a, const TimedFault& b) { return a.at < b.at; });
}

namespace fault {

namespace {

std::string format_prob(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string format_faults(const LinkFaults& f) {
  if (!f.any()) return "clear";
  std::string out;
  if (f.drop > 0.0) out += "drop=" + format_prob(f.drop);
  if (f.duplicate > 0.0) {
    out += (out.empty() ? "" : " ") + ("dup=" + format_prob(f.duplicate));
  }
  if (f.delay_prob > 0.0 && f.delay > 0) {
    out += (out.empty() ? "" : " ") +
           ("delay=" + format_prob(f.delay_prob) + "x" +
            std::to_string(f.delay) + "us");
  }
  if (f.reorder > 0.0) {
    out += (out.empty() ? "" : " ") + ("reorder=" + format_prob(f.reorder));
  }
  return out;
}

}  // namespace

std::string describe(const Op& op) {
  struct Describer {
    std::string operator()(const Partition& p) const {
      std::string out = "groups";
      for (const auto& g : p.groups) {
        out += " {";
        for (std::size_t i = 0; i < g.size(); ++i) {
          if (i > 0) out += ',';
          out += to_string(g[i]);
        }
        out += '}';
      }
      return out;
    }
    std::string operator()(const Crash& c) const {
      return "node " + to_string(c.node);
    }
    std::string operator()(const Restart& r) const {
      return "node " + to_string(r.node);
    }
    std::string operator()(const Heal&) const { return "all links repaired"; }
    std::string operator()(const SetLinkFaults& s) const {
      return format_faults(s.faults);
    }
    std::string operator()(const SetLinkFaultsOn& s) const {
      return to_string(s.from) + "->" + to_string(s.to) + " " +
             format_faults(s.faults);
    }
    std::string operator()(const AsymPartition& a) const {
      std::string out = "cut";
      for (const OneWayCut& c : a.cuts) {
        out += " " + to_string(c.from) + ">" + to_string(c.to);
      }
      return out;
    }
    std::string operator()(const HealLinks& h) const {
      if (h.cuts.empty()) return "all cut links repaired";
      std::string out = "repair";
      for (const OneWayCut& c : h.cuts) {
        out += " " + to_string(c.from) + ">" + to_string(c.to);
      }
      return out;
    }
    std::string operator()(const Flap& f) const {
      return "link " + to_string(f.a) + "<->" + to_string(f.b) + " period " +
             std::to_string(f.period) + "us for " +
             std::to_string(f.duration) + "us";
    }
    std::string operator()(const SlowNode& s) const {
      return "node " + to_string(s.node) +
             (s.multiplier > 1.0 ? " x" + format_prob(s.multiplier)
                                 : " back to speed");
    }
    std::string operator()(const ClockSkew& s) const {
      return "node " + to_string(s.node) +
             (s.offset != 0 ? " offset " + std::to_string(s.offset) + "us"
                            : " unskewed");
    }
  };
  return std::visit(Describer{}, op);
}

}  // namespace fault

// ---------------------------------------------------------------------------
// Random plan generation
// ---------------------------------------------------------------------------

FaultPlan random_fault_plan(std::uint64_t seed,
                            const RandomPlanOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  if (options.nodes.size() < 2 || options.events == 0 ||
      options.horizon <= 0) {
    return plan;
  }
  // A distinct stream from the per-message generator (which the network
  // seeds with plan.seed), so plan shape and message fates are decoupled.
  Rng rng(seed ^ 0xFA17B17E5C4EDULL);

  std::vector<SimTime> times;
  times.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    times.push_back(static_cast<SimTime>(
        rng.below(static_cast<std::uint64_t>(options.horizon))));
  }
  std::sort(times.begin(), times.end());

  NodeId crashed{};  // invalid while every node is up
  bool partitioned = false;
  for (SimTime t : times) {
    switch (rng.below(6)) {
      case 0: {  // partition flap: split into two random groups
        std::vector<NodeId> shuffled = options.nodes;
        for (std::size_t i = shuffled.size(); i > 1; --i) {
          std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
        }
        const std::size_t cut =
            1 + static_cast<std::size_t>(rng.below(shuffled.size() - 1));
        std::vector<std::vector<NodeId>> groups{
            {shuffled.begin(), shuffled.begin() + cut},
            {shuffled.begin() + cut, shuffled.end()}};
        for (auto& g : groups) std::sort(g.begin(), g.end());
        plan.add(t, fault::Partition{std::move(groups)});
        partitioned = true;
        break;
      }
      case 1:
        if (partitioned) {
          plan.add(t, fault::Heal{});
          partitioned = false;
        } else {
          plan.add(t, fault::SetLinkFaults{});  // reset link faults
        }
        break;
      case 2:
      case 3:  // crash/restart pair: at most one node down at a time
        if (crashed.valid()) {
          plan.add(t, fault::Restart{crashed});
          crashed = NodeId{};
        } else {
          crashed = options.nodes[rng.below(options.nodes.size())];
          plan.add(t, fault::Crash{crashed});
        }
        break;
      default: {  // link-fault episode
        LinkFaults f;
        f.drop = rng.uniform01() * options.max_drop;
        f.duplicate = rng.uniform01() * options.max_duplicate;
        f.delay_prob = rng.uniform01() * options.max_delay_prob;
        f.delay = options.max_delay > 0
                      ? static_cast<SimDuration>(rng.below(
                            static_cast<std::uint64_t>(options.max_delay) + 1))
                      : 0;
        f.reorder = rng.uniform01() * options.max_reorder;
        plan.add(t, fault::SetLinkFaults{f});
        break;
      }
    }
  }

  // Close the plan just past the horizon: every node up, links healed and
  // perfect, so a harness can reconcile and check convergence afterwards.
  if (crashed.valid()) plan.add(options.horizon, fault::Restart{crashed});
  plan.add(options.horizon + 1, fault::Heal{});
  plan.add(options.horizon + 2, fault::SetLinkFaults{});
  plan.sort();
  return plan;
}

FaultPlan random_gray_plan(std::uint64_t seed,
                           const RandomPlanOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  if (options.nodes.size() < 2 || options.events == 0 ||
      options.horizon <= 0) {
    return plan;
  }
  // Distinct from both the per-message stream and the non-gray plan stream
  // so a gray plan with the same seed is a different — but reproducible —
  // schedule.
  Rng rng(seed ^ 0x6BA7FA17C0DE5ULL);

  std::vector<SimTime> times;
  times.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    times.push_back(static_cast<SimTime>(
        rng.below(static_cast<std::uint64_t>(options.horizon))));
  }
  std::sort(times.begin(), times.end());

  auto pick_node = [&] {
    return options.nodes[rng.below(options.nodes.size())];
  };
  auto pick_pair = [&](NodeId& a, NodeId& b) {
    a = pick_node();
    do {
      b = pick_node();
    } while (b == a);
  };

  NodeId crashed{};          // invalid while every node is up
  bool partitioned = false;
  std::vector<NodeId> slowed;
  std::vector<NodeId> skewed;
  for (SimTime t : times) {
    switch (rng.below(10)) {
      case 0: {  // symmetric partition flap
        std::vector<NodeId> shuffled = options.nodes;
        for (std::size_t i = shuffled.size(); i > 1; --i) {
          std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
        }
        const std::size_t cut =
            1 + static_cast<std::size_t>(rng.below(shuffled.size() - 1));
        std::vector<std::vector<NodeId>> groups{
            {shuffled.begin(), shuffled.begin() + cut},
            {shuffled.begin() + cut, shuffled.end()}};
        for (auto& g : groups) std::sort(g.begin(), g.end());
        plan.add(t, fault::Partition{std::move(groups)});
        partitioned = true;
        break;
      }
      case 1:
        if (partitioned) {
          plan.add(t, fault::Heal{});
          partitioned = false;
        } else {
          plan.add(t, fault::HealLinks{});  // repair any one-way cuts
        }
        break;
      case 2:  // crash/restart pair: at most one node down at a time
        if (crashed.valid()) {
          plan.add(t, fault::Restart{crashed});
          crashed = NodeId{};
        } else {
          crashed = pick_node();
          plan.add(t, fault::Crash{crashed});
        }
        break;
      case 3: {  // link-fault episode
        LinkFaults f;
        f.drop = rng.uniform01() * options.max_drop;
        f.duplicate = rng.uniform01() * options.max_duplicate;
        f.delay_prob = rng.uniform01() * options.max_delay_prob;
        f.delay = options.max_delay > 0
                      ? static_cast<SimDuration>(rng.below(
                            static_cast<std::uint64_t>(options.max_delay) + 1))
                      : 0;
        f.reorder = rng.uniform01() * options.max_reorder;
        plan.add(t, fault::SetLinkFaults{f});
        break;
      }
      case 4:
      case 5: {  // one-way cut (the bread-and-butter gray failure)
        NodeId a, b;
        pick_pair(a, b);
        plan.add(t, fault::AsymPartition{{{a, b}}});
        break;
      }
      case 6: {  // flapping link, clamped inside the horizon
        NodeId a, b;
        pick_pair(a, b);
        fault::Flap f;
        f.a = a;
        f.b = b;
        const std::uint64_t span = static_cast<std::uint64_t>(
            options.max_flap_period - options.min_flap_period + 1);
        f.period = options.min_flap_period +
                   static_cast<SimDuration>(rng.below(span));
        f.duration = static_cast<SimDuration>(
            rng.below(static_cast<std::uint64_t>(options.max_flap_duration)) +
            1);
        if (t + f.duration > options.horizon) {
          f.duration = options.horizon - t;
        }
        if (f.duration > 0) plan.add(t, f);
        break;
      }
      case 7: {  // slow-but-alive node
        const NodeId n = pick_node();
        const double mult =
            1.5 + rng.uniform01() * (options.max_slow_multiplier - 1.5);
        plan.add(t, fault::SlowNode{n, mult});
        slowed.push_back(n);
        break;
      }
      case 8: {  // clock skew, either direction
        const NodeId n = pick_node();
        SimDuration offset = static_cast<SimDuration>(rng.below(
            static_cast<std::uint64_t>(options.max_clock_skew) + 1));
        if (rng.below(2) == 0) offset = -offset;
        if (offset == 0) offset = sim_us(1);
        plan.add(t, fault::ClockSkew{n, offset});
        skewed.push_back(n);
        break;
      }
      default:  // let a slowed node recover mid-run
        if (!slowed.empty()) {
          plan.add(t, fault::SlowNode{slowed.back(), 1.0});
          slowed.pop_back();
        } else {
          plan.add(t, fault::HealLinks{});
        }
        break;
    }
  }

  // Closing sequence: node up, every link (and one-way cut) repaired, link
  // faults cleared, slow multipliers and skews reset.  Flap durations are
  // clamped to the horizon above, so no toggle lands after the heal.
  if (crashed.valid()) plan.add(options.horizon, fault::Restart{crashed});
  plan.add(options.horizon + 1, fault::Heal{});
  plan.add(options.horizon + 2, fault::SetLinkFaults{});
  for (NodeId n : slowed) {
    plan.add(options.horizon + 2, fault::SlowNode{n, 1.0});
  }
  for (NodeId n : skewed) {
    plan.add(options.horizon + 2, fault::ClockSkew{n, 0});
  }
  plan.sort();
  return plan;
}

// ---------------------------------------------------------------------------
// Plan text round-trip (tests/gray_corpus/*.plan)
// ---------------------------------------------------------------------------

namespace {

// %.17g round-trips IEEE doubles exactly, so a written corpus plan replays
// the same probabilities bit for bit.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string cuts_to_text(const std::vector<OneWayCut>& cuts) {
  std::string out;
  for (const OneWayCut& c : cuts) {
    out += " " + std::to_string(c.from.value()) + ">" +
           std::to_string(c.to.value());
  }
  return out;
}

std::string faults_to_text(const LinkFaults& f) {
  return format_double(f.drop) + " " + format_double(f.duplicate) + " " +
         format_double(f.delay_prob) + " " + std::to_string(f.delay) + " " +
         format_double(f.reorder);
}

[[noreturn]] void bad_plan(const std::string& what) {
  throw ConfigError("malformed fault plan: " + what);
}

NodeId parse_node(std::istringstream& in, const char* ctx) {
  std::uint64_t v = 0;
  if (!(in >> v)) bad_plan(std::string("expected node id after ") + ctx);
  return NodeId{v};
}

double parse_double(std::istringstream& in, const char* ctx) {
  double v = 0.0;
  if (!(in >> v)) bad_plan(std::string("expected number after ") + ctx);
  return v;
}

std::int64_t parse_int(std::istringstream& in, const char* ctx) {
  std::int64_t v = 0;
  if (!(in >> v)) bad_plan(std::string("expected integer after ") + ctx);
  return v;
}

// Parses zero or more `from>to` tokens until end of line.
std::vector<OneWayCut> parse_cuts(std::istringstream& in) {
  std::vector<OneWayCut> cuts;
  std::string tok;
  while (in >> tok) {
    const auto gt = tok.find('>');
    if (gt == std::string::npos) bad_plan("expected from>to, got '" + tok + "'");
    try {
      cuts.push_back(OneWayCut{NodeId{std::stoull(tok.substr(0, gt))},
                               NodeId{std::stoull(tok.substr(gt + 1))}});
    } catch (const std::exception&) {
      bad_plan("bad link '" + tok + "'");
    }
  }
  return cuts;
}

LinkFaults parse_faults(std::istringstream& in) {
  LinkFaults f;
  f.drop = parse_double(in, "drop");
  f.duplicate = parse_double(in, "duplicate");
  f.delay_prob = parse_double(in, "delay-prob");
  f.delay = static_cast<SimDuration>(parse_int(in, "delay"));
  f.reorder = parse_double(in, "reorder");
  return f;
}

}  // namespace

std::string plan_to_text(const FaultPlan& plan) {
  std::string out = "seed " + std::to_string(plan.seed) + "\n";
  struct Writer {
    std::string operator()(const fault::Partition& p) const {
      std::string s = "partition";
      for (const auto& g : p.groups) {
        s += ' ';
        for (std::size_t i = 0; i < g.size(); ++i) {
          if (i > 0) s += ',';
          s += std::to_string(g[i].value());
        }
      }
      return s;
    }
    std::string operator()(const fault::Crash& c) const {
      return "crash " + std::to_string(c.node.value());
    }
    std::string operator()(const fault::Restart& r) const {
      return "restart " + std::to_string(r.node.value());
    }
    std::string operator()(const fault::Heal&) const { return "heal"; }
    std::string operator()(const fault::SetLinkFaults& s) const {
      return "link-faults " + faults_to_text(s.faults);
    }
    std::string operator()(const fault::SetLinkFaultsOn& s) const {
      return "link-faults-on " + std::to_string(s.from.value()) + " " +
             std::to_string(s.to.value()) + " " + faults_to_text(s.faults);
    }
    std::string operator()(const fault::AsymPartition& a) const {
      return "asym" + cuts_to_text(a.cuts);
    }
    std::string operator()(const fault::HealLinks& h) const {
      return "heal-links" + cuts_to_text(h.cuts);
    }
    std::string operator()(const fault::Flap& f) const {
      return "flap " + std::to_string(f.a.value()) + " " +
             std::to_string(f.b.value()) + " " + std::to_string(f.period) +
             " " + std::to_string(f.duration);
    }
    std::string operator()(const fault::SlowNode& s) const {
      return "slow " + std::to_string(s.node.value()) + " " +
             format_double(s.multiplier);
    }
    std::string operator()(const fault::ClockSkew& s) const {
      return "skew " + std::to_string(s.node.value()) + " " +
             std::to_string(s.offset);
    }
  };
  for (const TimedFault& action : plan.actions) {
    out += "at " + std::to_string(action.at) + " " +
           std::visit(Writer{}, action.op) + "\n";
  }
  return out;
}

FaultPlan plan_from_text(const std::string& text) {
  FaultPlan plan;
  bool seen_seed = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word.empty()) continue;
    if (word == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_int(in, "seed"));
      seen_seed = true;
      continue;
    }
    if (word != "at") bad_plan("expected 'seed' or 'at', got '" + word + "'");
    const SimTime at = static_cast<SimTime>(parse_int(in, "at"));
    std::string op;
    if (!(in >> op)) bad_plan("missing op name");
    if (op == "partition") {
      fault::Partition p;
      std::string group;
      while (in >> group) {
        std::vector<NodeId> ids;
        std::istringstream gs(group);
        std::string id;
        while (std::getline(gs, id, ',')) {
          try {
            ids.push_back(NodeId{std::stoull(id)});
          } catch (const std::exception&) {
            bad_plan("bad node id '" + id + "'");
          }
        }
        if (ids.empty()) bad_plan("empty partition group");
        p.groups.push_back(std::move(ids));
      }
      if (p.groups.empty()) bad_plan("partition needs at least one group");
      plan.add(at, std::move(p));
    } else if (op == "crash") {
      plan.add(at, fault::Crash{parse_node(in, "crash")});
    } else if (op == "restart") {
      plan.add(at, fault::Restart{parse_node(in, "restart")});
    } else if (op == "heal") {
      plan.add(at, fault::Heal{});
    } else if (op == "link-faults") {
      plan.add(at, fault::SetLinkFaults{parse_faults(in)});
    } else if (op == "link-faults-on") {
      const NodeId from = parse_node(in, "link-faults-on");
      const NodeId to = parse_node(in, "link-faults-on");
      plan.add(at, fault::SetLinkFaultsOn{from, to, parse_faults(in)});
    } else if (op == "asym") {
      fault::AsymPartition a{parse_cuts(in)};
      if (a.cuts.empty()) bad_plan("asym needs at least one from>to link");
      plan.add(at, std::move(a));
    } else if (op == "heal-links") {
      plan.add(at, fault::HealLinks{parse_cuts(in)});
    } else if (op == "flap") {
      fault::Flap f;
      f.a = parse_node(in, "flap");
      f.b = parse_node(in, "flap");
      f.period = static_cast<SimDuration>(parse_int(in, "flap period"));
      f.duration = static_cast<SimDuration>(parse_int(in, "flap duration"));
      if (f.period <= 0 || f.duration < 0) bad_plan("flap needs period > 0");
      plan.add(at, f);
    } else if (op == "slow") {
      const NodeId n = parse_node(in, "slow");
      plan.add(at, fault::SlowNode{n, parse_double(in, "slow")});
    } else if (op == "skew") {
      const NodeId n = parse_node(in, "skew");
      plan.add(at, fault::ClockSkew{
                       n, static_cast<SimDuration>(parse_int(in, "skew"))});
    } else {
      bad_plan("unknown op '" + op + "'");
    }
  }
  if (!seen_seed) bad_plan("missing 'seed' line");
  plan.sort();
  return plan;
}

// ---------------------------------------------------------------------------
// FaultEngine
// ---------------------------------------------------------------------------

FaultEngine::FaultEngine(SimNetwork& net, FaultPlan plan)
    : net_(net), plan_(std::move(plan)),
      // Flap-jitter stream: derived from the plan seed but distinct from the
      // per-message generator, so adding a flap never perturbs message fates.
      flap_rng_(plan_.seed ^ 0xF1A9F1A9F1A9ULL) {
  plan_.sort();
  net_.seed_faults(plan_.seed);
}

std::size_t FaultEngine::poll() {
  std::size_t applied = 0;
  while (next_ < plan_.actions.size() &&
         plan_.actions[next_].at <= net_.clock().now()) {
    apply_one(plan_.actions[next_]);
    ++next_;
    ++applied;
  }
  return applied;
}

std::size_t FaultEngine::advance_to(SimTime when) {
  std::size_t applied = 0;
  while (next_ < plan_.actions.size() && plan_.actions[next_].at <= when) {
    if (plan_.actions[next_].at > net_.clock().now()) {
      net_.clock().advance_to(plan_.actions[next_].at);
    }
    apply_one(plan_.actions[next_]);
    ++next_;
    ++applied;
  }
  if (when > net_.clock().now()) net_.clock().advance_to(when);
  return applied;
}

SimTime FaultEngine::next_at() const {
  return done() ? std::numeric_limits<SimTime>::max()
                : plan_.actions[next_].at;
}

// Takes the action by value: the flap case inserts expansion toggles into
// `plan_.actions` mid-visit, which would invalidate a reference into it.
void FaultEngine::apply_one(TimedFault action) {
  ++stats_.applied;
  struct Applier {
    FaultEngine* e;
    void operator()(const fault::Partition& op) {
      ++e->stats_.partitions;
      if (e->partition_handler_) {
        e->partition_handler_(op.groups);
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::Heal& op) {
      ++e->stats_.heals;
      if (e->heal_handler_) {
        e->heal_handler_();
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::Crash& op) {
      ++e->stats_.crashes;
      if (e->crash_handler_) {
        e->crash_handler_(op.node);
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::Restart& op) {
      ++e->stats_.restarts;
      if (e->restart_handler_) {
        e->restart_handler_(op.node);
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::SetLinkFaults& op) {
      ++e->stats_.link_changes;
      e->net_.apply(op);
    }
    void operator()(const fault::SetLinkFaultsOn& op) {
      ++e->stats_.link_changes;
      e->net_.apply(op);
    }
    void operator()(const fault::AsymPartition& op) {
      ++e->stats_.asym_cuts;
      e->net_.apply(op);
    }
    void operator()(const fault::HealLinks& op) {
      ++e->stats_.link_changes;
      e->net_.apply(op);
    }
    void operator()(const fault::Flap& op) {
      ++e->stats_.flaps;
      e->net_.apply(op);  // immediate down phase
      e->schedule_flap(at, op);
    }
    void operator()(const fault::SlowNode& op) {
      ++e->stats_.slow_changes;
      e->net_.apply(op);
    }
    void operator()(const fault::ClockSkew& op) {
      ++e->stats_.skew_changes;
      e->net_.apply(op);
    }
    SimTime at;
  };
  std::visit(Applier{this, action.at}, action.op);
  if (obs::on(obs_)) {
    obs_->event(net_.clock().now(), obs::TraceEventKind::FaultInjected, {}, {},
                {}, fault::op_name(action.op), fault::describe(action.op));
  }
}

void FaultEngine::schedule_flap(SimTime at, const fault::Flap& op) {
  const std::vector<OneWayCut> both{{op.a, op.b}, {op.b, op.a}};
  const SimTime end = at + op.duration;
  const SimDuration dwell = op.period / 2;
  if (dwell <= 0) {
    insert_pending({end, fault::HealLinks{both}});
    ++stats_.flap_toggles;
    return;
  }
  // Alternate up/down with seeded jitter; the op itself was the first down
  // phase, so the first toggle brings the link up.
  SimTime t = at;
  bool up = true;
  while (true) {
    t += dwell + static_cast<SimDuration>(
                     flap_rng_.below(static_cast<std::uint64_t>(dwell) / 2 + 1));
    if (t >= end) break;
    if (up) {
      insert_pending({t, fault::HealLinks{both}});
    } else {
      insert_pending({t, fault::AsymPartition{both}});
    }
    ++stats_.flap_toggles;
    up = !up;
  }
  // Close with the link up regardless of where the oscillation stopped.
  insert_pending({end, fault::HealLinks{both}});
  ++stats_.flap_toggles;
}

void FaultEngine::insert_pending(TimedFault action) {
  auto begin = plan_.actions.begin() +
               static_cast<std::ptrdiff_t>(next_);
  auto pos = std::upper_bound(
      begin, plan_.actions.end(), action,
      [](const TimedFault& a, const TimedFault& b) { return a.at < b.at; });
  plan_.actions.insert(pos, std::move(action));
}

}  // namespace dedisys
