#include "sim/fault_engine.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include "util/rng.h"

namespace dedisys {

void FaultPlan::sort() {
  std::stable_sort(
      actions.begin(), actions.end(),
      [](const TimedFault& a, const TimedFault& b) { return a.at < b.at; });
}

namespace fault {

namespace {

std::string format_prob(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string format_faults(const LinkFaults& f) {
  if (!f.any()) return "clear";
  std::string out;
  if (f.drop > 0.0) out += "drop=" + format_prob(f.drop);
  if (f.duplicate > 0.0) {
    out += (out.empty() ? "" : " ") + ("dup=" + format_prob(f.duplicate));
  }
  if (f.delay_prob > 0.0 && f.delay > 0) {
    out += (out.empty() ? "" : " ") +
           ("delay=" + format_prob(f.delay_prob) + "x" +
            std::to_string(f.delay) + "us");
  }
  if (f.reorder > 0.0) {
    out += (out.empty() ? "" : " ") + ("reorder=" + format_prob(f.reorder));
  }
  return out;
}

}  // namespace

std::string describe(const Op& op) {
  struct Describer {
    std::string operator()(const Partition& p) const {
      std::string out = "groups";
      for (const auto& g : p.groups) {
        out += " {";
        for (std::size_t i = 0; i < g.size(); ++i) {
          if (i > 0) out += ',';
          out += to_string(g[i]);
        }
        out += '}';
      }
      return out;
    }
    std::string operator()(const Crash& c) const {
      return "node " + to_string(c.node);
    }
    std::string operator()(const Restart& r) const {
      return "node " + to_string(r.node);
    }
    std::string operator()(const Heal&) const { return "all links repaired"; }
    std::string operator()(const SetLinkFaults& s) const {
      return format_faults(s.faults);
    }
    std::string operator()(const SetLinkFaultsOn& s) const {
      return to_string(s.from) + "->" + to_string(s.to) + " " +
             format_faults(s.faults);
    }
  };
  return std::visit(Describer{}, op);
}

}  // namespace fault

// ---------------------------------------------------------------------------
// Random plan generation
// ---------------------------------------------------------------------------

FaultPlan random_fault_plan(std::uint64_t seed,
                            const RandomPlanOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  if (options.nodes.size() < 2 || options.events == 0 ||
      options.horizon <= 0) {
    return plan;
  }
  // A distinct stream from the per-message generator (which the network
  // seeds with plan.seed), so plan shape and message fates are decoupled.
  Rng rng(seed ^ 0xFA17B17E5C4EDULL);

  std::vector<SimTime> times;
  times.reserve(options.events);
  for (std::size_t i = 0; i < options.events; ++i) {
    times.push_back(static_cast<SimTime>(
        rng.below(static_cast<std::uint64_t>(options.horizon))));
  }
  std::sort(times.begin(), times.end());

  NodeId crashed{};  // invalid while every node is up
  bool partitioned = false;
  for (SimTime t : times) {
    switch (rng.below(6)) {
      case 0: {  // partition flap: split into two random groups
        std::vector<NodeId> shuffled = options.nodes;
        for (std::size_t i = shuffled.size(); i > 1; --i) {
          std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
        }
        const std::size_t cut =
            1 + static_cast<std::size_t>(rng.below(shuffled.size() - 1));
        std::vector<std::vector<NodeId>> groups{
            {shuffled.begin(), shuffled.begin() + cut},
            {shuffled.begin() + cut, shuffled.end()}};
        for (auto& g : groups) std::sort(g.begin(), g.end());
        plan.add(t, fault::Partition{std::move(groups)});
        partitioned = true;
        break;
      }
      case 1:
        if (partitioned) {
          plan.add(t, fault::Heal{});
          partitioned = false;
        } else {
          plan.add(t, fault::SetLinkFaults{});  // reset link faults
        }
        break;
      case 2:
      case 3:  // crash/restart pair: at most one node down at a time
        if (crashed.valid()) {
          plan.add(t, fault::Restart{crashed});
          crashed = NodeId{};
        } else {
          crashed = options.nodes[rng.below(options.nodes.size())];
          plan.add(t, fault::Crash{crashed});
        }
        break;
      default: {  // link-fault episode
        LinkFaults f;
        f.drop = rng.uniform01() * options.max_drop;
        f.duplicate = rng.uniform01() * options.max_duplicate;
        f.delay_prob = rng.uniform01() * options.max_delay_prob;
        f.delay = options.max_delay > 0
                      ? static_cast<SimDuration>(rng.below(
                            static_cast<std::uint64_t>(options.max_delay) + 1))
                      : 0;
        f.reorder = rng.uniform01() * options.max_reorder;
        plan.add(t, fault::SetLinkFaults{f});
        break;
      }
    }
  }

  // Close the plan just past the horizon: every node up, links healed and
  // perfect, so a harness can reconcile and check convergence afterwards.
  if (crashed.valid()) plan.add(options.horizon, fault::Restart{crashed});
  plan.add(options.horizon + 1, fault::Heal{});
  plan.add(options.horizon + 2, fault::SetLinkFaults{});
  plan.sort();
  return plan;
}

// ---------------------------------------------------------------------------
// FaultEngine
// ---------------------------------------------------------------------------

FaultEngine::FaultEngine(SimNetwork& net, FaultPlan plan)
    : net_(net), plan_(std::move(plan)) {
  plan_.sort();
  net_.seed_faults(plan_.seed);
}

std::size_t FaultEngine::poll() {
  std::size_t applied = 0;
  while (next_ < plan_.actions.size() &&
         plan_.actions[next_].at <= net_.clock().now()) {
    apply_one(plan_.actions[next_]);
    ++next_;
    ++applied;
  }
  return applied;
}

std::size_t FaultEngine::advance_to(SimTime when) {
  std::size_t applied = 0;
  while (next_ < plan_.actions.size() && plan_.actions[next_].at <= when) {
    if (plan_.actions[next_].at > net_.clock().now()) {
      net_.clock().advance_to(plan_.actions[next_].at);
    }
    apply_one(plan_.actions[next_]);
    ++next_;
    ++applied;
  }
  if (when > net_.clock().now()) net_.clock().advance_to(when);
  return applied;
}

SimTime FaultEngine::next_at() const {
  return done() ? std::numeric_limits<SimTime>::max()
                : plan_.actions[next_].at;
}

void FaultEngine::apply_one(const TimedFault& action) {
  ++stats_.applied;
  struct Applier {
    FaultEngine* e;
    void operator()(const fault::Partition& op) {
      ++e->stats_.partitions;
      if (e->partition_handler_) {
        e->partition_handler_(op.groups);
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::Heal& op) {
      ++e->stats_.heals;
      if (e->heal_handler_) {
        e->heal_handler_();
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::Crash& op) {
      ++e->stats_.crashes;
      if (e->crash_handler_) {
        e->crash_handler_(op.node);
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::Restart& op) {
      ++e->stats_.restarts;
      if (e->restart_handler_) {
        e->restart_handler_(op.node);
      } else {
        e->net_.apply(op);
      }
    }
    void operator()(const fault::SetLinkFaults& op) {
      ++e->stats_.link_changes;
      e->net_.apply(op);
    }
    void operator()(const fault::SetLinkFaultsOn& op) {
      ++e->stats_.link_changes;
      e->net_.apply(op);
    }
  };
  std::visit(Applier{this}, action.op);
  if (obs::on(obs_)) {
    obs_->event(net_.clock().now(), obs::TraceEventKind::FaultInjected, {}, {},
                {}, fault::op_name(action.op), fault::describe(action.op));
  }
}

}  // namespace dedisys
